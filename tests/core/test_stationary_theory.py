"""Tests for Theorem 2 (stationary-method extra-iteration bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stationary_theory import (
    StationaryImpactModel,
    expected_extra_iterations,
    expected_extra_iterations_interval,
    extra_iterations_at,
)
from repro.solvers import JacobiSolver
from repro.sparse.analysis import jacobi_iteration_matrix, spectral_radius
from repro.compression.sz import SZCompressor


class TestExtraIterationsAt:
    def test_formula(self):
        t, R, eb = 100.0, 0.99, 1e-4
        expected = t - np.log(R**t + eb) / np.log(R)
        assert extra_iterations_at(t, R, eb) == pytest.approx(expected)

    def test_nonnegative(self):
        assert extra_iterations_at(0.0, 0.9, 1e-4) >= 0.0

    def test_increases_with_error_bound(self):
        assert extra_iterations_at(500, 0.995, 1e-3) > extra_iterations_at(500, 0.995, 1e-5)

    def test_increases_with_restart_iteration(self):
        # Late restarts are worse: the compression error dominates the small residual.
        assert extra_iterations_at(900, 0.995, 1e-4) > extra_iterations_at(100, 0.995, 1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            extra_iterations_at(10, 1.5, 1e-4)
        with pytest.raises(ValueError):
            extra_iterations_at(10, 0.9, 0.0)
        with pytest.raises(ValueError):
            extra_iterations_at(-1, 0.9, 1e-4)


class TestExpectedInterval:
    def test_paper_jacobi_numbers(self):
        """N = 3941, eb = 1e-4, R ~ 0.99998 gives an expectation of about 6."""
        lower, upper = expected_extra_iterations_interval(3941, 0.99998, 1e-4)
        assert lower <= upper
        midpoint = (lower + upper) / 2
        assert 1.0 <= midpoint <= 15.0

    def test_numerical_expectation_inside_interval(self):
        lower, upper = expected_extra_iterations_interval(2000, 0.999, 1e-4)
        expected = expected_extra_iterations(2000, 0.999, 1e-4)
        assert lower - 1e-9 <= expected <= upper + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_extra_iterations_interval(0, 0.9, 1e-4)

    @given(
        total=st.integers(min_value=10, max_value=5000),
        radius=st.floats(min_value=0.5, max_value=0.99999),
        eb=st.sampled_from([1e-3, 1e-4, 1e-5, 1e-6]),
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_ordering_property(self, total, radius, eb):
        lower, upper = expected_extra_iterations_interval(total, radius, eb)
        assert 0.0 <= lower <= upper <= total + abs(np.log(eb) / np.log(radius)) + 1


class TestAgainstRealJacobi:
    def test_bound_holds_for_actual_lossy_restart(self, poisson_medium):
        """The Theorem-2 upper bound covers the measured extra iterations."""
        solver = JacobiSolver(poisson_medium.A, rtol=1e-5, max_iter=50000)
        baseline = solver.solve(poisson_medium.b)
        radius = spectral_radius(jacobi_iteration_matrix(poisson_medium.A).toarray())
        eb = 1e-3
        restart_at = baseline.iterations // 2

        captured = {}

        def capture(state):
            if state.iteration == restart_at:
                captured["x"] = state.x

        solver.solve(poisson_medium.b, callback=capture)
        compressor = SZCompressor(eb)
        x_restart = compressor.decompress(compressor.compress(captured["x"]))
        resumed = solver.solve(poisson_medium.b, x0=x_restart)
        measured_extra = restart_at + resumed.iterations - baseline.iterations
        bound = extra_iterations_at(restart_at, radius, eb)
        assert measured_extra <= bound + 2  # +2 absorbs discreteness


class TestImpactModel:
    def test_wrapper_consistency(self):
        model = StationaryImpactModel(spectral_radius=0.999, total_iterations=1000)
        assert model.interval(1e-4) == expected_extra_iterations_interval(1000, 0.999, 1e-4)
        assert model.expected(1e-4) == pytest.approx(
            expected_extra_iterations(1000, 0.999, 1e-4)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            StationaryImpactModel(spectral_radius=1.2, total_iterations=10)
        with pytest.raises(ValueError):
            StationaryImpactModel(spectral_radius=0.9, total_iterations=0)
