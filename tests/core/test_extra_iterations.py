"""Tests for the empirical extra-iteration measurement (Fig. 2 harness)."""

import numpy as np
import pytest

from repro.compression.lossless import ZlibCompressor
from repro.compression.sz import SZCompressor
from repro.core.extra_iterations import measure_extra_iterations
from repro.solvers import CGSolver, JacobiSolver


class TestMeasureExtraIterations:
    def test_cg_lossy_restart_costs_iterations(self, poisson_medium):
        solver = CGSolver(poisson_medium.A, rtol=1e-7, max_iter=5000)
        study = measure_extra_iterations(
            solver, poisson_medium.b, SZCompressor(1e-4), trials=6, seed=0
        )
        assert study.baseline_iterations > 10
        assert len(study.trials) >= 4
        assert all(t.converged for t in study.trials)
        # Restarted CG after a lossy restart pays a visible delay (paper: 10-25%).
        assert 0.0 < study.mean_extra_fraction < 0.8

    def test_lossless_restart_of_jacobi_costs_nothing(self, poisson_medium):
        solver = JacobiSolver(poisson_medium.A, rtol=1e-4, max_iter=20000)
        study = measure_extra_iterations(
            solver, poisson_medium.b, ZlibCompressor(), trials=4, seed=1
        )
        assert study.mean_extra_iterations <= 1.0

    def test_jacobi_lossy_restart_near_zero_delay(self, poisson_medium):
        solver = JacobiSolver(poisson_medium.A, rtol=1e-4, max_iter=20000)
        study = measure_extra_iterations(
            solver, poisson_medium.b, SZCompressor(1e-4), trials=4, seed=2
        )
        # Theorem 2 with the Jacobi spectral radius of this problem gives a
        # handful of iterations at most.
        assert study.mean_extra_iterations <= 10

    def test_tighter_bounds_do_not_increase_delay(self, poisson_medium):
        solver = CGSolver(poisson_medium.A, rtol=1e-7, max_iter=5000)
        points = [10, 20, 30]
        loose = measure_extra_iterations(
            solver, poisson_medium.b, SZCompressor(1e-3),
            restart_iterations=points, seed=3,
        )
        tight = measure_extra_iterations(
            solver, poisson_medium.b, SZCompressor(1e-6),
            restart_iterations=points, seed=3,
        )
        assert tight.mean_extra_iterations <= loose.mean_extra_iterations + 2

    def test_explicit_restart_points_clipped(self, poisson_medium):
        solver = CGSolver(poisson_medium.A, rtol=1e-7, max_iter=5000)
        study = measure_extra_iterations(
            solver, poisson_medium.b, SZCompressor(1e-4),
            restart_iterations=[0, 10**9], seed=4,
        )
        assert all(1 <= t.restart_iteration < study.baseline_iterations for t in study.trials)

    def test_summary_keys(self, poisson_medium):
        solver = CGSolver(poisson_medium.A, rtol=1e-7, max_iter=5000)
        study = measure_extra_iterations(
            solver, poisson_medium.b, SZCompressor(1e-4), trials=3, seed=5
        )
        summary = study.summary()
        assert {"baseline_iterations", "trials", "mean_extra_iterations",
                "mean_extra_fraction", "max_extra_iterations"} <= set(summary)

    def test_trivial_problem_rejected(self):
        A = np.eye(4)
        solver = CGSolver(A, rtol=1e-12, max_iter=10)
        with pytest.raises(ValueError):
            measure_extra_iterations(solver, np.ones(4), SZCompressor(1e-4), trials=2)
