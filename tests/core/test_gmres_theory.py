"""Tests for Theorem 3 (GMRES adaptive error bound)."""

import numpy as np
import pytest

from repro.compression.errorbounds import ErrorBoundMode
from repro.compression.sz import SZCompressor
from repro.core.gmres_theory import (
    GMRESErrorBoundPolicy,
    adaptive_relative_bound,
    residual_jump_bound,
)
from repro.solvers import GMRESSolver


class TestAdaptiveBound:
    def test_proportional_to_residual(self):
        assert adaptive_relative_bound(1e-3, 1.0) == pytest.approx(1e-3)
        assert adaptive_relative_bound(1e-5, 1.0) == pytest.approx(1e-5)

    def test_safety_factor(self):
        assert adaptive_relative_bound(1e-3, 1.0, safety_factor=0.5) == pytest.approx(5e-4)

    def test_clipping(self):
        assert adaptive_relative_bound(10.0, 1.0) == 1e-1
        assert adaptive_relative_bound(1e-30, 1.0) == 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            adaptive_relative_bound(1e-3, 0.0)
        with pytest.raises(ValueError):
            adaptive_relative_bound(-1e-3, 1.0)


class TestResidualJumpBound:
    def test_formula(self):
        assert residual_jump_bound(0.5, 2.0, 1e-2) == pytest.approx(
            (1 + 1e-2) * 0.5 + 1e-2 * 2.0
        )

    def test_bound_holds_for_actual_compression(self, poisson_medium):
        """Compressing the iterate with eb = ||r||/||b|| keeps the residual on
        the same order — the empirical content of Theorem 3."""
        solver = GMRESSolver(poisson_medium.A, rtol=1e-9, max_iter=5000)
        full = solver.solve(poisson_medium.b)
        target = max(1, full.iterations // 2)
        captured = {}

        def capture(state):
            if state.iteration == target:
                captured["x"] = state.x

        solver.solve(poisson_medium.b, callback=capture)
        b = poisson_medium.b
        A = poisson_medium.A
        x_t = captured["x"]
        residual = float(np.linalg.norm(b - A @ x_t))
        b_norm = float(np.linalg.norm(b))
        eb = adaptive_relative_bound(residual, b_norm)
        compressor = SZCompressor(eb)
        x_restart = compressor.decompress(compressor.compress(x_t))
        new_residual = float(np.linalg.norm(b - A @ x_restart))
        # The paper's Eq. (14) step ||A e|| <= eb ||A x|| holds elementwise in
        # spirit but not rigorously in the 2-norm; the rigorous version picks
        # up a factor of ||A|| (<= 12 for the 7-point stencil).  "Same order"
        # is the claim Theorem 3 actually needs.
        assert new_residual <= 12.0 * residual_jump_bound(residual, b_norm, eb)
        assert new_residual <= 12.0 * (residual + eb * b_norm)


class TestPolicy:
    def test_policy_returns_pointwise_relative_bound(self):
        policy = GMRESErrorBoundPolicy()
        eb = policy.error_bound(1e-2, 1.0)
        assert eb.mode is ErrorBoundMode.POINTWISE_RELATIVE
        assert eb.value == pytest.approx(1e-2)

    def test_policy_tracks_residual_decrease(self):
        policy = GMRESErrorBoundPolicy()
        early = policy.bound_value(1e-1, 1.0)
        late = policy.bound_value(1e-6, 1.0)
        assert late < early
