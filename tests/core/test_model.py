"""Tests for the checkpoint/restart performance model (Eqs. 1-8, Theorem 1)."""

import numpy as np
import pytest

from repro.core.model import (
    CheckpointTimings,
    expected_overhead_fraction,
    expected_total_time,
    lossy_expected_overhead_fraction,
    lossy_expected_total_time,
    max_acceptable_extra_iterations,
    overhead_function,
    young_interval,
)


class TestYoungInterval:
    def test_formula(self):
        assert young_interval(18.0, 4 * 3600.0) == pytest.approx(
            np.sqrt(2 * 4 * 3600.0 * 18.0)
        )

    def test_paper_example_five_checkpoints_per_hour(self):
        """MTTI 4 h, Tckp 18 s -> about 5 checkpoints/hour (Section 3)."""
        interval = young_interval(18.0, 4 * 3600.0)
        per_hour = 3600.0 / interval
        assert per_hour == pytest.approx(5.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0.0, 3600.0)


class TestOverheadFunction:
    def test_definition(self):
        lam = 1 / 3600.0
        t = 120.0
        assert overhead_function(t, lam) == pytest.approx(
            np.sqrt(2 * lam * t) + lam * t
        )

    def test_monotone_in_checkpoint_time(self):
        lam = 1 / 3600.0
        assert overhead_function(20.0, lam) < overhead_function(120.0, lam)

    def test_zero_failure_rate_gives_zero(self):
        assert overhead_function(120.0, 0.0) == 0.0


class TestExpectedOverhead:
    def test_figure1_hourly_failures_120s_checkpoint_about_40_percent(self):
        """The paper reads ~40% off Figure 1 at MTTI = 1 h, Tckp = 120 s."""
        overhead = expected_overhead_fraction(1 / 3600.0, 120.0)
        assert 0.3 < overhead < 0.5

    def test_overhead_increases_with_failure_rate(self):
        assert expected_overhead_fraction(2 / 3600.0, 60.0) > expected_overhead_fraction(
            1 / 3600.0, 60.0
        )

    def test_unstable_regime_raises(self):
        with pytest.raises(ValueError):
            expected_overhead_fraction(3.5 / 3600.0, 5000.0)

    def test_expected_total_time_consistent_with_overhead(self):
        lam = 1 / 3600.0
        productive = 7200.0
        total = expected_total_time(productive, lam, 120.0)
        overhead = expected_overhead_fraction(lam, 120.0)
        assert total == pytest.approx(productive * (1 + overhead), rel=1e-12)

    def test_total_time_with_distinct_recovery(self):
        total_fast = expected_total_time(1000.0, 1 / 3600.0, 60.0, recovery_seconds=10.0)
        total_slow = expected_total_time(1000.0, 1 / 3600.0, 60.0, recovery_seconds=200.0)
        assert total_fast < total_slow


class TestLossyModel:
    def test_reduces_to_exact_model_when_no_extra_iterations(self):
        lam = 1 / 3600.0
        assert lossy_expected_overhead_fraction(lam, 25.0, 0.0, 1.2) == pytest.approx(
            expected_overhead_fraction(lam, 25.0)
        )

    def test_extra_iterations_increase_overhead(self):
        lam = 1 / 3600.0
        assert lossy_expected_overhead_fraction(lam, 25.0, 500, 1.2) > (
            lossy_expected_overhead_fraction(lam, 25.0, 0, 1.2)
        )

    def test_lossy_total_time_consistency(self):
        lam = 1 / 3600.0
        productive = 7160.0
        total = lossy_expected_total_time(productive, lam, 25.0, 100, 1.2)
        overhead = lossy_expected_overhead_fraction(lam, 25.0, 100, 1.2)
        assert total == pytest.approx(productive * (1 + overhead), rel=1e-12)


class TestTheorem1:
    def test_paper_worked_example_500_iterations(self):
        """GMRES example in Section 4.3: Tckp 120 -> 25 s, MTTI 1 h, Tit 1.2 s
        gives a budget of roughly 500 extra iterations."""
        budget = max_acceptable_extra_iterations(120.0, 25.0, 1 / 3600.0, 1.2)
        assert budget == pytest.approx(500.0, rel=0.15)

    def test_budget_positive_only_when_lossy_cheaper(self):
        lam = 1 / 3600.0
        assert max_acceptable_extra_iterations(120.0, 25.0, lam, 1.0) > 0
        assert max_acceptable_extra_iterations(25.0, 120.0, lam, 1.0) < 0

    def test_budget_shrinks_with_longer_iterations(self):
        lam = 1 / 3600.0
        assert max_acceptable_extra_iterations(120.0, 25.0, lam, 2.0) < (
            max_acceptable_extra_iterations(120.0, 25.0, lam, 1.0)
        )

    def test_lossy_wins_iff_extra_iterations_below_budget(self):
        """Cross-check Theorem 1 against the overhead formulas themselves."""
        lam = 1 / 3600.0
        t_trad, t_lossy, tit = 120.0, 25.0, 1.2
        budget = max_acceptable_extra_iterations(t_trad, t_lossy, lam, tit)
        below = lossy_expected_overhead_fraction(lam, t_lossy, budget * 0.9, tit)
        above = lossy_expected_overhead_fraction(lam, t_lossy, budget * 1.1, tit)
        trad = expected_overhead_fraction(lam, t_trad)
        assert below < trad
        assert above > trad


class TestCheckpointTimings:
    def test_young_interval_helper(self):
        timings = CheckpointTimings(checkpoint_seconds=25.0, recovery_seconds=30.0)
        assert timings.young_interval(3600.0) == pytest.approx(young_interval(25.0, 3600.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointTimings(checkpoint_seconds=-1.0, recovery_seconds=0.0)
