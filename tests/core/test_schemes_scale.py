"""Tests for checkpointing schemes and paper-scale descriptions."""

import pytest

from repro.compression.base import Compressor
from repro.core.scale import ExperimentScale, PAPER_WEAK_SCALING, paper_scale
from repro.core.schemes import CheckpointingScheme


class TestSchemes:
    def test_traditional_uses_identity(self):
        scheme = CheckpointingScheme.traditional()
        assert scheme.compressor().name in ("none", "identity")
        assert not scheme.lossy
        assert not scheme.uses_compression

    def test_lossless_uses_zlib_by_default(self):
        scheme = CheckpointingScheme.lossless()
        assert scheme.compressor().name == "zlib"
        assert scheme.uses_compression

    def test_lossless_lzma_variant(self):
        scheme = CheckpointingScheme.lossless(codec="lzma", level=1)
        assert scheme.compressor().name == "lzma"

    def test_lossless_unknown_codec(self):
        with pytest.raises(ValueError):
            CheckpointingScheme.lossless(codec="bzip42")

    def test_lossy_sz_default(self):
        scheme = CheckpointingScheme.lossy(1e-4)
        assert scheme.lossy
        assert scheme.compressor().name == "sz"
        assert not scheme.checkpoint_krylov_state

    def test_lossy_zfp_variant(self):
        scheme = CheckpointingScheme.lossy(1e-4, compressor="zfp")
        assert scheme.compressor().name == "zfp"

    def test_lossy_invalid_compressor(self):
        with pytest.raises(ValueError):
            CheckpointingScheme.lossy(1e-4, compressor="jpeg")

    def test_compressor_cached(self):
        scheme = CheckpointingScheme.lossy(1e-4)
        assert scheme.compressor() is scheme.compressor()

    def test_dynamic_vector_count(self):
        assert CheckpointingScheme.traditional().dynamic_vector_count("cg") == 2
        assert CheckpointingScheme.traditional().dynamic_vector_count("jacobi") == 1
        assert CheckpointingScheme.lossy(1e-4).dynamic_vector_count("cg") == 1
        assert CheckpointingScheme.lossless().dynamic_vector_count("gmres") == 1

    def test_dynamic_vector_count_derives_from_declared_state(self):
        # BiCGSTAB's exact checkpoint stores x + r/r_hat/p/v (its full
        # recurrence), not the hard-coded 2 the old table claimed.
        assert CheckpointingScheme.traditional().dynamic_vector_count("bicgstab") == 5
        assert CheckpointingScheme.lossy(1e-4).dynamic_vector_count("bicgstab") == 1
        # Unknown methods fall back to one vector.
        assert CheckpointingScheme.traditional().dynamic_vector_count("kkt") == 1

    def test_dynamic_vector_count_accepts_solver_instances(self, poisson_small):
        from repro.solvers import BiCGStabSolver, CGSolver, JacobiSolver

        scheme = CheckpointingScheme.traditional()
        assert scheme.dynamic_vector_count(CGSolver(poisson_small.A)) == 2
        assert scheme.dynamic_vector_count(BiCGStabSolver(poisson_small.A)) == 5
        assert scheme.dynamic_vector_count(JacobiSolver(poisson_small.A)) == 1
        # Name-based and instance-based lookups agree (the engine passes the
        # solver, the table-3 model passes the name).
        for name, cls in (("cg", CGSolver), ("bicgstab", BiCGStabSolver)):
            assert scheme.dynamic_vector_count(name) == scheme.dynamic_vector_count(
                cls(poisson_small.A)
            )

    def test_adaptive_policy_changes_bound(self):
        scheme = CheckpointingScheme.lossy(1e-4, adaptive=True)
        loose = scheme.checkpoint_compressor(residual_norm=1e-1, b_norm=1.0)
        tight = scheme.checkpoint_compressor(residual_norm=1e-6, b_norm=1.0)
        assert isinstance(loose, Compressor) and isinstance(tight, Compressor)
        assert loose.error_bound.value > tight.error_bound.value

    def test_non_adaptive_ignores_residual(self):
        scheme = CheckpointingScheme.lossy(1e-4)
        comp = scheme.checkpoint_compressor(residual_norm=1e-1, b_norm=1.0)
        assert comp.error_bound.value == pytest.approx(1e-4)


class TestExperimentScale:
    def test_paper_table3_sizes(self):
        scale = paper_scale(2048)
        assert scale.grid_n == 2160
        # 2160^3 doubles ~ 75 GiB; per process ~ 37.5 MB (Table 3 reports ~39 MB).
        per_process_mb = scale.per_process_vector_bytes() / 1024**2
        assert 30.0 < per_process_mb < 45.0

    def test_all_paper_scales_defined(self):
        for procs in (256, 512, 768, 1024, 1280, 1536, 1792, 2048):
            assert procs in PAPER_WEAK_SCALING
            assert paper_scale(procs).num_processes == procs

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            paper_scale(4096)

    def test_static_bytes_multiple_of_vector(self):
        scale = ExperimentScale(num_processes=128, grid_n=100, static_multiplier=10.0)
        assert scale.static_bytes == pytest.approx(10.0 * scale.vector_bytes)

    def test_per_process_elements(self):
        scale = ExperimentScale(num_processes=7, grid_n=10)
        assert scale.per_process_elements() == (1000 + 6) // 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(num_processes=0, grid_n=10)
        with pytest.raises(ValueError):
            ExperimentScale(num_processes=1, grid_n=0)
        with pytest.raises(ValueError):
            ExperimentScale(num_processes=1, grid_n=10, static_multiplier=-1)
