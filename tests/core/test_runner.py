"""Tests for the fault-tolerant execution runner."""

import numpy as np
import pytest

from repro.cluster.machine import ClusterModel
from repro.engine import FaultToleranceEngine as FaultTolerantRunner
from repro.engine import run_failure_free
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.solvers import CGSolver, GMRESSolver, JacobiSolver


@pytest.fixture(scope="module")
def runner_setup(poisson_medium):
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    return poisson_medium, cluster, scale


def _make_runner(problem, cluster, scale, solver, scheme, **kwargs):
    baseline = kwargs.pop("baseline", None)
    if baseline is None:
        baseline = run_failure_free(solver, problem.b)
    iteration_seconds = cluster.calibrated_iteration_time(
        kwargs.pop("method", solver.name), baseline.iterations
    )
    defaults = dict(
        cluster=cluster,
        scale=scale,
        mtti_seconds=3600.0,
        estimated_checkpoint_seconds=60.0,
        iteration_seconds=iteration_seconds,
        baseline=baseline,
        seed=123,
    )
    defaults.update(kwargs)
    return FaultTolerantRunner(solver, problem.b, scheme, **defaults), baseline


class TestFailureFreeBaseline:
    def test_run_failure_free(self, poisson_medium):
        solver = JacobiSolver(poisson_medium.A, rtol=1e-4, max_iter=20000)
        baseline = run_failure_free(solver, poisson_medium.b)
        assert baseline.converged
        assert baseline.iterations > 10
        assert len(baseline.residual_norms) == baseline.iterations + 1


class TestRunnerWithoutFailures:
    def test_no_failures_means_zero_extra_iterations(self, runner_setup):
        problem, cluster, scale = runner_setup
        solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=20000)
        runner, baseline = _make_runner(
            problem, cluster, scale, solver, CheckpointingScheme.lossy(1e-4),
            mtti_seconds=None, checkpoint_interval_seconds=600.0,
        )
        report = runner.run()
        assert report.converged
        assert report.num_failures == 0
        assert report.extra_iterations == 0
        assert report.num_checkpoints > 0
        # Overhead is exactly the checkpointing time when there are no failures.
        assert report.fault_tolerance_overhead == pytest.approx(
            report.checkpoint_seconds, rel=1e-9
        )

    def test_young_interval_derivation(self, runner_setup):
        problem, cluster, scale = runner_setup
        solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=20000)
        runner, _ = _make_runner(
            problem, cluster, scale, solver, CheckpointingScheme.traditional(),
            estimated_checkpoint_seconds=115.0,
        )
        assert runner.checkpoint_interval_seconds == pytest.approx(
            np.sqrt(2 * 3600.0 * 115.0), rel=1e-9
        )

    def test_missing_interval_inputs_rejected(self, runner_setup):
        problem, cluster, scale = runner_setup
        solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=20000)
        with pytest.raises(ValueError):
            FaultTolerantRunner(
                solver, problem.b, CheckpointingScheme.traditional(),
                cluster=cluster, scale=scale, mtti_seconds=3600.0,
            )


class TestRunnerWithFailures:
    def test_exact_scheme_has_no_extra_iterations(self, runner_setup):
        problem, cluster, scale = runner_setup
        solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=20000)
        for seed in (1, 2, 3):
            runner, _ = _make_runner(
                problem, cluster, scale, solver, CheckpointingScheme.traditional(),
                estimated_checkpoint_seconds=115.0, seed=seed,
            )
            report = runner.run()
            assert report.converged
            assert report.extra_iterations == 0
            if report.num_failures:
                assert report.recovery_seconds > 0

    def test_lossy_scheme_jacobi_converges_with_failures(self, runner_setup):
        problem, cluster, scale = runner_setup
        solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=50000)
        runner, baseline = _make_runner(
            problem, cluster, scale, solver, CheckpointingScheme.lossy(1e-4),
            estimated_checkpoint_seconds=40.0, seed=5,
        )
        report = runner.run()
        assert report.converged
        # Theorem 2: Jacobi suffers essentially no delay at eb = 1e-4.
        assert report.extra_iterations <= max(3, 0.02 * baseline.iterations)

    def test_lossy_cg_reports_extra_iterations(self, runner_setup):
        problem, cluster, scale = runner_setup
        solver = CGSolver(problem.A, rtol=1e-7, max_iter=20000)
        extra_counts = []
        for seed in range(6):
            runner, baseline = _make_runner(
                problem, cluster, scale, solver, CheckpointingScheme.lossy(1e-4),
                estimated_checkpoint_seconds=40.0, seed=seed, method="cg",
            )
            report = runner.run()
            assert report.converged
            if report.num_failures > 0:
                extra_counts.append(report.extra_iterations)
        # At least one failing run must show the restarted-CG delay.
        assert extra_counts, "no failures were injected across seeds"
        assert max(extra_counts) >= 0

    def test_overhead_accounting_consistent(self, runner_setup):
        problem, cluster, scale = runner_setup
        solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=20000)
        runner, baseline = _make_runner(
            problem, cluster, scale, solver, CheckpointingScheme.lossless(),
            estimated_checkpoint_seconds=110.0, seed=9,
        )
        report = runner.run()
        assert report.total_seconds == pytest.approx(
            report.productive_seconds
            + report.fault_tolerance_overhead,
            rel=1e-9,
        )
        assert report.overhead_fraction >= 0.0

    def test_lossy_overhead_lower_than_traditional_on_average(self, runner_setup):
        problem, cluster, scale = runner_setup
        solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=50000)
        baseline = run_failure_free(solver, problem.b)

        def mean_overhead(scheme, est):
            values = []
            for seed in range(4):
                runner, _ = _make_runner(
                    problem, cluster, scale, solver, scheme,
                    estimated_checkpoint_seconds=est, seed=seed, baseline=baseline,
                )
                values.append(runner.run().overhead_fraction)
            return float(np.mean(values))

        lossy = mean_overhead(CheckpointingScheme.lossy(1e-4), 40.0)
        traditional = mean_overhead(CheckpointingScheme.traditional(), 115.0)
        assert lossy < traditional

    def test_gmres_lossy_with_failures_converges(self, runner_setup):
        problem, cluster, scale = runner_setup
        solver = GMRESSolver(problem.A, rtol=7e-5, max_iter=20000)
        runner, _ = _make_runner(
            problem, cluster, scale, solver,
            CheckpointingScheme.lossy(1e-4, adaptive=True),
            estimated_checkpoint_seconds=30.0, seed=11, method="gmres",
        )
        report = runner.run()
        assert report.converged

    def test_report_metadata(self, runner_setup):
        problem, cluster, scale = runner_setup
        solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=20000)
        runner, _ = _make_runner(
            problem, cluster, scale, solver, CheckpointingScheme.lossy(1e-4),
            estimated_checkpoint_seconds=40.0, seed=2,
        )
        report = runner.run()
        assert report.scheme == "lossy"
        assert report.info["num_processes"] == 2048
        assert report.checkpoint_interval_seconds > 0
        assert report.mean_compression_ratio >= 1.0
        assert len(report.residual_trace) >= report.baseline_iterations
