"""Cross-module integration tests: the full lossy-checkpointing pipeline."""

import numpy as np

from repro.checkpoint import CheckpointManager, VariableRole
from repro.cluster import ClusterModel, FailureInjector
from repro.compression import SZCompressor, ZlibCompressor, make_compressor
from repro.core import (
    CheckpointingScheme,
    FaultTolerantRunner,
    max_acceptable_extra_iterations,
    measure_extra_iterations,
    paper_scale,
    run_failure_free,
)
from repro.precond import IncompleteCholeskyPreconditioner
from repro.solvers import CGSolver, GMRESSolver, JacobiSolver
from repro.sparse import poisson_system


class TestSolverPlusCheckpointManager:
    def test_manual_checkpoint_restart_of_pcg(self):
        """Algorithm 1 end-to-end: protect (x, p, rho, i), snapshot mid-run,
        wipe the state, restore, and resume to the same solution."""
        problem = poisson_system(10, seed=0)
        solver = CGSolver(
            problem.A,
            preconditioner=IncompleteCholeskyPreconditioner(problem.A),
            rtol=1e-9,
            max_iter=2000,
        )
        full = solver.solve(problem.b)

        state = {"x": None, "p": None, "rho": None, "i": None}
        manager = CheckpointManager(ZlibCompressor())
        manager.protect("x", VariableRole.DYNAMIC, lambda: state["x"],
                        lambda v: state.__setitem__("x", v))
        manager.protect("p", VariableRole.DYNAMIC, lambda: state["p"],
                        lambda v: state.__setitem__("p", v))
        manager.protect("rho", VariableRole.DYNAMIC, lambda: state["rho"],
                        lambda v: state.__setitem__("rho", v), compressible=False)
        manager.protect("i", VariableRole.DYNAMIC, lambda: state["i"],
                        lambda v: state.__setitem__("i", v), compressible=False)

        checkpoint_at = full.iterations // 2

        def callback(it_state):
            if it_state.iteration == checkpoint_at:
                state.update(
                    x=it_state.x, p=it_state.extras["p"],
                    rho=it_state.extras["rho"], i=it_state.iteration,
                )
                manager.snapshot(iteration=it_state.iteration)

        solver.solve(problem.b, callback=callback)
        assert manager.has_checkpoint()

        # "Failure": wipe everything, then restore and resume.
        state.update(x=None, p=None, rho=None, i=None)
        manager.restore()
        resumed = solver.solve(
            problem.b, x0=state["x"], warm_start=(state["p"], state["rho"])
        )
        assert resumed.converged
        assert abs((state["i"] + resumed.iterations) - full.iterations) <= 1
        assert np.allclose(resumed.x, full.x, atol=1e-7)


class TestLossyCheckpointPipeline:
    def test_lossy_restart_respects_bound_and_converges(self):
        problem = poisson_system(12, seed=1)
        solver = GMRESSolver(problem.A, rtol=7e-5, max_iter=5000)
        baseline = run_failure_free(solver, problem.b)
        compressor = SZCompressor(1e-4)
        study = measure_extra_iterations(
            solver, problem.b, compressor, trials=4, seed=2
        )
        assert all(trial.converged for trial in study.trials)
        assert study.mean_extra_fraction < 1.0
        assert baseline.converged

    def test_theorem1_budget_consistent_with_runner(self):
        """The Theorem-1 budget for the measured configuration is far larger
        than the extra iterations the lossy runs actually incur for Jacobi."""
        problem = poisson_system(14, seed=3)
        solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=50000)
        baseline = run_failure_free(solver, problem.b)
        cluster = ClusterModel(num_processes=2048)
        scale = paper_scale(2048)
        iteration_seconds = cluster.calibrated_iteration_time("jacobi", baseline.iterations)

        budget = max_acceptable_extra_iterations(
            traditional_checkpoint_seconds=120.0,
            lossy_checkpoint_seconds=40.0,
            lam=1 / 3600.0,
            iteration_seconds=iteration_seconds,
        )
        report = FaultTolerantRunner(
            solver, problem.b, CheckpointingScheme.lossy(1e-4),
            cluster=cluster, scale=scale, mtti_seconds=3600.0,
            estimated_checkpoint_seconds=40.0, iteration_seconds=iteration_seconds,
            baseline=baseline, seed=4,
        ).run()
        assert report.converged
        if report.num_failures:
            assert report.extra_iterations / report.num_failures <= max(budget, 1)

    def test_registry_compressors_interchangeable_in_scheme(self):
        problem = poisson_system(8, seed=5)
        x = problem.x_true
        for name in ("sz", "zfp"):
            comp = make_compressor(name, error_bound=1e-4)
            recon = comp.decompress(comp.compress(x))
            nonzero = x != 0
            assert np.max(np.abs(recon[nonzero] - x[nonzero]) / np.abs(x[nonzero])) <= 1e-4 * (
                1 + 1e-8
            )


class TestFailureInjectionStatistics:
    def test_failure_count_scales_with_runtime(self):
        """Longer virtual runs see proportionally more failures."""
        counts = []
        for horizon in (3600.0, 14400.0):
            injector = FailureInjector(1800.0, seed=0)
            count = 0
            t = 0.0
            while True:
                nxt = injector.next_failure_time()
                if nxt > horizon:
                    break
                injector.consume(nxt)
                count += 1
                t = nxt
            counts.append(count)
        assert counts[1] > counts[0]
