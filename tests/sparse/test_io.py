"""Tests for sparse-matrix persistence."""

import numpy as np
import pytest

from repro.sparse.io import load_csr, save_csr
from repro.sparse.poisson import poisson_2d


class TestSaveLoadCSR:
    def test_roundtrip(self, tmp_path):
        A = poisson_2d(6)
        path = tmp_path / "matrix.npz"
        nbytes = save_csr(path, A)
        assert nbytes > 0
        B = load_csr(path)
        assert (A != B).nnz == 0

    def test_roundtrip_without_extension(self, tmp_path):
        A = poisson_2d(4)
        path = tmp_path / "matrix"
        save_csr(path, A)
        B = load_csr(path)
        assert np.allclose(A.toarray(), B.toarray())

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_csr(tmp_path / "absent.npz")
