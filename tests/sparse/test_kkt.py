"""Tests for the synthetic KKT (saddle-point) generator."""

import numpy as np
import pytest

from repro.sparse.analysis import is_symmetric
from repro.sparse.kkt import kkt_system


class TestKKTSystem:
    def test_sizes(self):
        prob = kkt_system(4, dims=2, seed=0)
        assert prob.n_primal == 16
        assert prob.size == prob.n_primal + prob.n_dual
        assert prob.K.shape == (prob.size, prob.size)

    def test_symmetric(self):
        prob = kkt_system(4, dims=2, seed=1)
        assert is_symmetric(prob.K, tol=1e-10)

    def test_indefinite(self):
        prob = kkt_system(5, dims=2, seed=2)
        eigs = np.linalg.eigvalsh(prob.K.toarray())
        assert eigs[0] < 0 < eigs[-1]

    def test_rhs_normalised(self):
        prob = kkt_system(4, dims=2, seed=3)
        assert np.isclose(np.linalg.norm(prob.b), 1.0)

    def test_constraint_fraction_controls_dual_size(self):
        small = kkt_system(4, dims=2, constraint_fraction=0.25, seed=0)
        large = kkt_system(4, dims=2, constraint_fraction=1.0, seed=0)
        assert small.n_dual < large.n_dual

    def test_reproducible(self):
        a = kkt_system(4, dims=2, seed=9)
        b = kkt_system(4, dims=2, seed=9)
        assert np.allclose(a.K.toarray(), b.K.toarray())
        assert np.allclose(a.b, b.b)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 1},
            {"n": 4, "dims": 4},
            {"n": 4, "regularization": -1.0},
            {"n": 4, "constraint_fraction": 0.0},
            {"n": 4, "constraint_fraction": 1.5},
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            kkt_system(**kwargs)

    def test_3d_variant(self):
        prob = kkt_system(3, dims=3, seed=0)
        assert prob.n_primal == 27
