"""Tests for the auxiliary sparse-matrix generators."""

import numpy as np
import pytest

from repro.sparse.analysis import is_diagonally_dominant, is_symmetric
from repro.sparse.matrices import (
    diagonally_dominant,
    random_sparse_system,
    random_spd,
    tridiagonal,
)


class TestTridiagonal:
    def test_pattern(self):
        A = tridiagonal(4, diag=5.0, off=-2.0).toarray()
        assert np.allclose(np.diag(A), 5.0)
        assert np.allclose(np.diag(A, 1), -2.0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            tridiagonal(0)


class TestRandomSPD:
    def test_symmetric_positive_definite(self):
        A = random_spd(40, density=0.1, seed=0)
        assert is_symmetric(A, tol=1e-10)
        eigs = np.linalg.eigvalsh(A.toarray())
        assert np.all(eigs > 0)

    def test_reproducible(self):
        a = random_spd(30, seed=5).toarray()
        b = random_spd(30, seed=5).toarray()
        assert np.allclose(a, b)

    @pytest.mark.parametrize("kwargs", [{"density": 0.0}, {"density": 1.5}, {"condition": 0.5}])
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            random_spd(10, **kwargs)


class TestDiagonallyDominant:
    def test_is_strictly_dominant(self):
        A = diagonally_dominant(50, density=0.05, seed=1)
        assert is_diagonally_dominant(A, strict=True)

    def test_symmetric_option(self):
        A = diagonally_dominant(30, symmetric=True, seed=2)
        assert is_symmetric(A, tol=1e-10)

    def test_dominance_must_exceed_one(self):
        with pytest.raises(ValueError):
            diagonally_dominant(10, dominance=1.0)


class TestRandomSparseSystem:
    def test_spd_kind_solution_consistent(self):
        sys = random_sparse_system(50, kind="spd", seed=3)
        assert np.allclose(sys.A @ sys.x_true, sys.b)
        assert sys.size == 50

    def test_dominant_kind(self):
        sys = random_sparse_system(40, kind="dominant", seed=4)
        assert is_diagonally_dominant(sys.A, strict=True)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            random_sparse_system(10, kind="weird")
