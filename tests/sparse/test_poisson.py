"""Tests for the Poisson problem generators (the paper's Eq. (15))."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.poisson import (
    PoissonProblem,
    poisson_1d,
    poisson_2d,
    poisson_3d,
    poisson_system,
)


class TestPoisson1D:
    def test_shape_and_pattern(self):
        A = poisson_1d(5)
        assert A.shape == (5, 5)
        assert A.nnz == 5 + 2 * 4

    def test_spd_sign_convention(self):
        A = poisson_1d(6).toarray()
        assert np.all(np.diag(A) == 2.0)
        eigs = np.linalg.eigvalsh(A)
        assert np.all(eigs > 0)

    def test_paper_sign_convention(self):
        A = poisson_1d(6, sign="paper").toarray()
        assert np.all(np.diag(A) == -2.0)

    def test_invalid_sign_raises(self):
        with pytest.raises(ValueError):
            poisson_1d(4, sign="bogus")

    def test_invalid_n_raises(self):
        with pytest.raises(ValueError):
            poisson_1d(0)


class TestPoisson3D:
    def test_shape(self):
        A = poisson_3d(4)
        assert A.shape == (64, 64)

    def test_diagonal_is_six(self):
        A = poisson_3d(4)
        assert np.allclose(A.diagonal(), 6.0)

    def test_paper_diagonal_is_minus_six(self):
        A = poisson_3d(4, sign="paper")
        assert np.allclose(A.diagonal(), -6.0)
        # Off-diagonal couplings are +1 as printed in Eq. (15).
        off = A - sp.diags(A.diagonal())
        assert np.allclose(off.data, 1.0)

    def test_symmetric(self):
        A = poisson_3d(5)
        assert (A - A.T).nnz == 0

    def test_interior_row_has_seven_entries(self):
        A = poisson_3d(5).tolil()
        # The centre point of the grid touches all 6 neighbours.
        center = 2 * 25 + 2 * 5 + 2
        assert len(A.rows[center]) == 7

    def test_positive_definite(self):
        A = poisson_3d(3).toarray()
        assert np.all(np.linalg.eigvalsh(A) > 0)


class TestPoisson2D:
    def test_five_point_stencil(self):
        A = poisson_2d(4)
        assert np.allclose(A.diagonal(), 4.0)
        assert A.shape == (16, 16)


class TestPoissonSystem:
    def test_returns_consistent_problem(self):
        prob = poisson_system(6)
        assert isinstance(prob, PoissonProblem)
        assert prob.size == 216
        assert prob.b.shape == (216,)
        assert np.allclose(prob.A @ prob.x_true, prob.b)

    def test_dims_one_and_two(self):
        assert poisson_system(10, dims=1).size == 10
        assert poisson_system(5, dims=2).size == 25

    def test_invalid_dims_raises(self):
        with pytest.raises(ValueError):
            poisson_system(4, dims=4)

    @pytest.mark.parametrize("field", ["sine", "gaussian", "random"])
    def test_fields(self, field):
        prob = poisson_system(5, field=field, seed=0)
        assert np.all(np.isfinite(prob.x_true))

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError):
            poisson_system(5, field="nope")

    def test_random_field_reproducible(self):
        a = poisson_system(5, field="random", seed=3).x_true
        b = poisson_system(5, field="random", seed=3).x_true
        assert np.array_equal(a, b)

    def test_nnz_property(self):
        prob = poisson_system(4)
        assert prob.nnz == prob.A.nnz
