"""Tests for iteration-matrix spectral analysis (inputs to Theorem 2)."""

import numpy as np
import pytest

from repro.sparse.analysis import (
    condition_number_estimate,
    estimate_spectral_radius_power,
    gauss_seidel_iteration_matrix,
    is_diagonally_dominant,
    is_symmetric,
    jacobi_iteration_matrix,
    sor_iteration_matrix,
    spectral_radius,
    spectral_radius_from_convergence,
)
from repro.sparse.poisson import poisson_1d, poisson_2d


class TestIterationMatrices:
    def test_jacobi_radius_known_for_1d_poisson(self):
        # For tridiag(-1, 2, -1) of size n, rho(G_J) = cos(pi/(n+1)).
        n = 10
        G = jacobi_iteration_matrix(poisson_1d(n))
        expected = np.cos(np.pi / (n + 1))
        assert spectral_radius(G) == pytest.approx(expected, rel=1e-10)

    def test_gauss_seidel_radius_is_jacobi_squared(self):
        # Classical result for consistently ordered matrices.
        n = 8
        A = poisson_1d(n)
        rho_j = spectral_radius(jacobi_iteration_matrix(A))
        rho_gs = spectral_radius(gauss_seidel_iteration_matrix(A))
        assert rho_gs == pytest.approx(rho_j**2, rel=1e-8)

    def test_sor_optimal_omega_beats_gauss_seidel(self):
        A = poisson_1d(12)
        rho_j = spectral_radius(jacobi_iteration_matrix(A))
        omega_opt = 2.0 / (1.0 + np.sqrt(1.0 - rho_j**2))
        rho_sor = spectral_radius(sor_iteration_matrix(A, omega_opt))
        rho_gs = spectral_radius(gauss_seidel_iteration_matrix(A))
        assert rho_sor < rho_gs

    def test_jacobi_requires_nonzero_diagonal(self):
        A = np.array([[0.0, 1.0], [1.0, 2.0]])
        with pytest.raises(ValueError):
            jacobi_iteration_matrix(A)

    def test_sor_omega_range(self):
        with pytest.raises(ValueError):
            sor_iteration_matrix(poisson_1d(5), omega=2.5)


class TestSpectralRadiusEstimators:
    def test_power_iteration_matches_dense(self):
        G = jacobi_iteration_matrix(poisson_2d(6))
        exact = spectral_radius(G)
        estimate = estimate_spectral_radius_power(G, seed=0, iterations=500)
        assert estimate == pytest.approx(exact, rel=1e-3)

    def test_power_iteration_zero_matrix(self):
        assert estimate_spectral_radius_power(np.zeros((4, 4)), seed=0) == 0.0

    def test_convergence_based_estimate(self):
        # If the error decays by 1e-4 over 100 iterations, R = (1e-4)^(1/100).
        R = spectral_radius_from_convergence(1.0, 1e-4, 100)
        assert R == pytest.approx(10 ** (-4 / 100))

    def test_convergence_estimate_caps_at_one(self):
        assert spectral_radius_from_convergence(1.0, 2.0, 10) == 1.0

    def test_convergence_estimate_validates(self):
        with pytest.raises(ValueError):
            spectral_radius_from_convergence(1.0, 0.5, 0)
        with pytest.raises(ValueError):
            spectral_radius_from_convergence(-1.0, 0.5, 5)

    def test_spectral_radius_requires_square(self):
        with pytest.raises(ValueError):
            spectral_radius(np.zeros((2, 3)))


class TestMatrixPredicates:
    def test_is_symmetric_true_and_false(self):
        assert is_symmetric(poisson_2d(4))
        asym = poisson_2d(4).tolil()
        asym[0, 1] = 99.0
        assert not is_symmetric(asym.tocsr())

    def test_is_diagonally_dominant(self):
        assert is_diagonally_dominant(poisson_1d(6))
        assert not is_diagonally_dominant(
            np.array([[1.0, 5.0], [5.0, 1.0]]), strict=True
        )

    def test_condition_estimate_poisson(self):
        cond = condition_number_estimate(poisson_1d(20))
        dense = np.linalg.cond(poisson_1d(20).toarray())
        assert cond == pytest.approx(dense, rel=1e-2)
