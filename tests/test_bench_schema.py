"""The benchmark-artifact schema checker must catch hollow uploads."""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "check_bench_schema.py"
_spec = importlib.util.spec_from_file_location("check_bench_schema", _MODULE_PATH)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def _valid_runner() -> dict:
    row = {
        "converged": True,
        "iterations_per_second": 1000.0,
        "total_iterations": 131,
        "events_processed": 90,
        "events_per_second": 2000.0,
        "num_failures": 3,
        "num_checkpoints": 5,
        "seconds": 0.1,
        "replay_hits": 4,
        "replay_iterations_saved": 120,
    }
    return {
        "baseline_iterations": 131,
        "scenarios": {"lossy-poisson": dict(row), "lossy-poisson-async": dict(row)},
    }


def _valid_pipeline() -> dict:
    def combo(scheme):
        return {
            "scheme": scheme,
            "method": "cg",
            "snapshot_mb_per_s": 150.0,
            "restore_mb_per_s": 140.0,
            "checkpoints_per_s": 200.0,
            "payload_bytes": 100000,
            "dynamic_bytes": 128016,
            "compress_threads": 1,
            "format_version": 2,
        }
    return {"combinations": {"lossless/cg": combo("lossless"), "lossy/cg": combo("lossy")}}


def _valid_codec() -> dict:
    row = {"ratio": 2.0, "encode_mbps": 100.0, "decode_mbps": 200.0}
    return {"workloads": {"solver": {"legacy": dict(row), "codec": dict(row)}}}


def _valid_store() -> dict:
    def backend(name, durability, modeled, dedup=1.0):
        return {
            "backend": name,
            "durability": durability,
            "write_mb_per_s": 500.0,
            "read_mb_per_s": 900.0,
            "modeled_write_seconds": modeled,
            "modeled_read_seconds": modeled,
            "modeled_drain_seconds": modeled * 1.2,
            "dedup_ratio": dedup,
        }
    return {
        "payload_bytes": 1 << 20,
        "num_checkpoints": 8,
        "backends": {
            "memory": backend("memory", "process", 0.2),
            "disk": backend("disk", "node", 2.0),
            "object": backend("object", "system", 28.6),
            "chunked": backend("object", "system", 28.5, dedup=4.6),
        },
    }


_VALID = {
    "BENCH_runner.json": _valid_runner,
    "BENCH_pipeline.json": _valid_pipeline,
    "BENCH_codec.json": _valid_codec,
    "BENCH_store.json": _valid_store,
}


@pytest.mark.parametrize("name", sorted(_VALID))
def test_valid_artifacts_pass(tmp_path, name):
    path = tmp_path / name
    path.write_text(json.dumps(_VALID[name]()))
    assert checker.check_file(path) == []


@pytest.mark.parametrize("name", sorted(_VALID))
def test_empty_sections_fail(tmp_path, name):
    data = _VALID[name]()
    (key,) = [k for k in data if isinstance(data[k], dict) and k != "baseline_iterations"]
    data[key] = {}
    path = tmp_path / name
    path.write_text(json.dumps(data))
    assert checker.check_file(path)


def test_runner_requires_both_write_modes(tmp_path):
    data = _valid_runner()
    del data["scenarios"]["lossy-poisson-async"]
    path = tmp_path / "BENCH_runner.json"
    path.write_text(json.dumps(data))
    errors = checker.check_file(path)
    assert any("async" in e for e in errors)


def test_runner_requires_events_per_second(tmp_path):
    data = _valid_runner()
    del data["scenarios"]["lossy-poisson"]["events_per_second"]
    path = tmp_path / "BENCH_runner.json"
    path.write_text(json.dumps(data))
    errors = checker.check_file(path)
    assert any("events_per_second" in e for e in errors)


@pytest.mark.parametrize("key", ["replay_hits", "replay_iterations_saved"])
def test_runner_requires_replay_counters(tmp_path, key):
    path = tmp_path / "BENCH_runner.json"

    # Missing entirely: the harness stopped reporting the cache.
    data = _valid_runner()
    del data["scenarios"]["lossy-poisson"][key]
    path.write_text(json.dumps(data))
    assert any(key in e for e in checker.check_file(path))

    # Negative or fractional counts are accounting bugs, not measurements.
    for bad in (-1, 2.5, True):
        data = _valid_runner()
        data["scenarios"]["lossy-poisson"][key] = bad
        path.write_text(json.dumps(data))
        assert any(key in e for e in checker.check_file(path)), bad

    # Zero is legal: the REPRO_REPLAY=off comparison artifact records none.
    data = _valid_runner()
    data["scenarios"]["lossy-poisson"][key] = 0
    path.write_text(json.dumps(data))
    assert checker.check_file(path) == []


@pytest.mark.parametrize(
    "name, rate, ok",
    [
        ("traditional-poisson", 4999.0, False),
        ("traditional-poisson", 5000.0, True),
        ("traditional-poisson-async", 3999.0, False),
        ("traditional-poisson-async", 4000.0, True),
        ("lossy-poisson", 999.0, False),
        ("lossy-weibull-fti", 999.0, False),
        ("lossy-weibull-fti", 1000.0, True),
        ("custom-series", 1.0, True),  # unknown series has no floor
    ],
)
def test_runner_events_per_second_floors(tmp_path, name, rate, ok):
    data = _valid_runner()
    row = data["scenarios"].pop("lossy-poisson")
    row["events_per_second"] = rate
    data["scenarios"][name] = row
    path = tmp_path / "BENCH_runner.json"
    path.write_text(json.dumps(data))
    errors = checker.check_file(path)
    floor_errors = [e for e in errors if "floor" in e]
    assert bool(floor_errors) != ok, errors


def test_variant_artifact_names_share_base_schema(tmp_path):
    """``BENCH_runner_replay_off.json`` (the replay-disabled comparison run
    the workflow uploads) must validate against the runner schema."""
    path = tmp_path / "BENCH_runner_replay_off.json"
    path.write_text(json.dumps(_valid_runner()))
    assert checker.check_file(path) == []

    data = _valid_runner()
    data["scenarios"] = {}
    path.write_text(json.dumps(data))
    assert checker.check_file(path)


def test_nonpositive_rate_fails(tmp_path):
    data = _valid_pipeline()
    data["combinations"]["lossless/cg"]["snapshot_mb_per_s"] = 0.0
    path = tmp_path / "BENCH_pipeline.json"
    path.write_text(json.dumps(data))
    errors = checker.check_file(path)
    assert any("snapshot_mb_per_s" in e for e in errors)


@pytest.mark.parametrize(
    "scheme, rate, ok",
    [
        ("lossless", 59.0, False),   # below the lossless floor
        ("lossless", 60.0, True),
        ("lossy", 99.0, False),      # below the lossy floor
        ("lossy", 100.0, True),
        ("lossy-adaptive", 80.0, False),
        ("traditional", 5.0, True),  # traditional has no floor
    ],
)
def test_pipeline_snapshot_rate_floors(tmp_path, scheme, rate, ok):
    data = _valid_pipeline()
    row = data["combinations"].pop("lossy/cg")
    row["scheme"] = scheme
    row["snapshot_mb_per_s"] = rate
    data["combinations"][f"{scheme}/cg"] = row
    path = tmp_path / "BENCH_pipeline.json"
    path.write_text(json.dumps(data))
    errors = checker.check_file(path)
    floor_errors = [e for e in errors if "floor" in e]
    assert bool(floor_errors) != ok


@pytest.mark.parametrize("key", ["compress_threads", "format_version"])
def test_pipeline_requires_compression_fields(tmp_path, key):
    data = _valid_pipeline()
    del data["combinations"]["lossy/cg"][key]
    path = tmp_path / "BENCH_pipeline.json"
    path.write_text(json.dumps(data))
    assert any(key in e for e in checker.check_file(path))

    data = _valid_pipeline()
    data["combinations"]["lossy/cg"][key] = -1
    path.write_text(json.dumps(data))
    assert any(key in e for e in checker.check_file(path))


def test_invalid_json_and_unknown_name(tmp_path):
    bad = tmp_path / "BENCH_codec.json"
    bad.write_text("{not json")
    assert any("JSON" in e for e in checker.check_file(bad))
    unknown = tmp_path / "BENCH_mystery.json"
    unknown.write_text("{}")
    assert any("no schema" in e for e in checker.check_file(unknown))


def test_store_requires_distinct_pricing_and_dedup(tmp_path):
    data = _valid_store()
    # Two backends priced identically: the artifact has lost its point.
    data["backends"]["disk"]["modeled_write_seconds"] = (
        data["backends"]["memory"]["modeled_write_seconds"]
    )
    path = tmp_path / "BENCH_store.json"
    path.write_text(json.dumps(data))
    assert any("distinct" in e for e in checker.check_file(path))

    data = _valid_store()
    data["backends"]["chunked"]["dedup_ratio"] = 1.0
    path.write_text(json.dumps(data))
    assert any("dedup_ratio" in e for e in checker.check_file(path))

    data = _valid_store()
    del data["backends"]["chunked"]
    path.write_text(json.dumps(data))
    assert any("chunked" in e for e in checker.check_file(path))


def test_main_exit_codes(tmp_path, capsys):
    good = tmp_path / "BENCH_codec.json"
    good.write_text(json.dumps(_valid_codec()))
    assert checker.main([str(good)]) == 0
    bad = tmp_path / "BENCH_runner.json"
    bad.write_text("{}")
    assert checker.main([str(good), str(bad)]) == 1
    assert checker.main([]) == 2
    out = capsys.readouterr().out
    assert "ok" in out and "FAIL" in out


def test_local_artifacts_are_valid():
    """Benchmark outputs in the workspace (gitignored) must satisfy the
    schemas the CI upload is gated on.

    Rate *floors* are excluded here on purpose: workspace artifacts are
    produced by whatever machine last ran the benchmark suite — often while
    busy with the rest of the test session — so absolute-MB/s checks would
    make this test flake on slow or loaded hosts.  The floors still gate the
    dedicated CLI run (``python benchmarks/check_bench_schema.py``) that CI
    executes against the artifact it uploads.
    """
    repo = _MODULE_PATH.parent.parent
    present = [repo / name for name in sorted(_VALID) if (repo / name).exists()]
    if not present:
        pytest.skip("no benchmark artifacts in the workspace")
    for artifact in present:
        errors = [e for e in checker.check_file(artifact) if " floor of " not in e]
        assert errors == [], artifact.name
