"""Executor tests: serial/parallel equality, cache hit behaviour, progress.

The acceptance demo lives here: a >= 24-cell failure-injected campaign runs
through the ``ProcessPoolExecutor`` path with 4 workers and must aggregate
byte-identically to the serial path; re-running it against the same cache
executes zero cells.
"""

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.executor import ParallelExecutor, run_campaign
from repro.campaign.report import CampaignReport
from repro.campaign.spec import CampaignSpec, RunSpec


def demo_spec() -> CampaignSpec:
    """A small-grid copy of the CLI demo campaign (24 ft cells)."""
    return CampaignSpec(
        name="demo-test",
        kind="ft",
        methods=("jacobi",),
        schemes=("traditional", "lossless", "lossy"),
        process_counts=(256, 2048),
        repetitions=4,
        grid_n=8,
    )


@pytest.fixture(scope="module")
def serial_result():
    return run_campaign(demo_spec(), n_workers=1)


class TestSerialExecution:
    def test_outcomes_are_ordered_and_complete(self, serial_result):
        spec = demo_spec()
        assert len(serial_result) == len(spec) == 24
        assert serial_result.cells() == spec.expand()
        assert serial_result.executed_count == 24
        assert serial_result.cached_count == 0

    def test_ft_results_have_reports(self, serial_result):
        for result in serial_result.results():
            assert "report" in result
            assert result["report"]["total_iterations"] >= 1
            assert result["interval_seconds"] > 0

    def test_rerun_is_identical(self, serial_result):
        again = run_campaign(demo_spec(), n_workers=1)
        assert CampaignReport(again).to_json() == CampaignReport(serial_result).to_json()

    def test_scenario_cells_execute(self):
        spec = CampaignSpec(
            name="scenario-test",
            kind="ft",
            methods=("jacobi",),
            schemes=("lossy",),
            failure_models=("weibull",),
            recovery_levels=("fti",),
            grid_n=8,
        )
        outcome = run_campaign(spec, n_workers=1)
        (result,) = outcome.results()
        assert result["failure_model"] == "weibull"
        assert result["recovery_levels"] == "fti"
        assert result["report"]["info"]["failure_model"] == "weibull"
        assert result["report"]["info"]["recovery_levels"] == "fti"
        # Same coordinates, default scenario -> a different report.
        default = run_campaign(
            spec.__class__.from_dict(
                {**spec.to_dict(), "failure_models": ["poisson"], "recovery_levels": ["pfs"]}
            ),
            n_workers=1,
        )
        (default_result,) = default.results()
        assert default_result["report"] != result["report"]


class TestParallelExecution:
    def test_parallel_matches_serial_byte_identically(self, serial_result):
        parallel = run_campaign(demo_spec(), n_workers=4)
        assert parallel.n_workers == 4
        assert CampaignReport(parallel).to_json() == CampaignReport(serial_result).to_json()

    def test_progress_callback_sees_every_cell(self):
        seen = []
        spec = CampaignSpec(
            name="model-grid",
            kind="model",
            cells=tuple(
                RunSpec(kind="model", params={"lam": 1e-4, "tckp": float(t)})
                for t in range(1, 9)
            ),
        )
        run_campaign(spec, n_workers=2, progress=lambda d, t, o: seen.append((d, t)))
        assert len(seen) == 8
        assert seen[-1][0] == 8
        assert all(total == 8 for _, total in seen)


class TestCacheIntegration:
    def test_second_run_executes_zero_cells(self, tmp_path, serial_result):
        cache = ResultCache(tmp_path / "cache")
        first = run_campaign(demo_spec(), n_workers=4, cache=cache)
        assert first.executed_count == 24
        second = run_campaign(demo_spec(), n_workers=4, cache=cache)
        assert second.executed_count == 0
        assert second.cached_count == 24
        # Cache-served results are byte-identical to the fresh serial run.
        assert CampaignReport(second).to_json() == CampaignReport(serial_result).to_json()

    def test_changed_cells_execute_only_the_delta(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = demo_spec()
        run_campaign(spec, n_workers=1, cache=cache)
        grown = CampaignSpec(
            name=spec.name,
            kind=spec.kind,
            methods=spec.methods,
            schemes=spec.schemes,
            process_counts=spec.process_counts,
            repetitions=spec.repetitions + 1,
            grid_n=spec.grid_n,
        )
        result = run_campaign(grown, n_workers=1, cache=cache)
        assert len(result) == 30
        assert result.cached_count == 24
        assert result.executed_count == 6

    def test_failing_cell_raises_but_other_chunks_still_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "partial")
        cells = [
            RunSpec(kind="model", params={"lam": 1e-4, "tckp": 10.0}),
            RunSpec(kind="model"),  # missing lam/tckp -> ValueError in worker
            RunSpec(kind="model", params={"lam": 1e-4, "tckp": 20.0}),
        ]
        with pytest.raises(ValueError, match="needs 'lam'"):
            run_campaign(cells, n_workers=2, cache=cache)
        # The chunk that did not contain the failing cell was still cached.
        assert len(cache) >= 1

    def test_executor_accepts_cache_path(self, tmp_path):
        cells = [RunSpec(kind="model", params={"lam": 1e-4, "tckp": 5.0})]
        executor = ParallelExecutor(1, cache=tmp_path / "bypath")
        executor.run(cells)
        assert (tmp_path / "bypath" / f"{cells[0].cache_key()}.json").exists()


class TestReport:
    def test_aggregate_groups_and_counts(self, serial_result):
        report = CampaignReport(serial_result)
        grouped = report.aggregate(by=("method", "scheme", "num_processes"))
        assert len(grouped) == 6  # 3 schemes x 2 scales
        for key, row in grouped.items():
            assert row["cells"] == 4.0  # repetitions
            assert "overhead_fraction" in row

    def test_lossy_beats_traditional_in_demo(self, serial_result):
        grouped = CampaignReport(serial_result).aggregate(by=("scheme",))
        assert (
            grouped[("lossy",)]["overhead_fraction"]
            < grouped[("traditional",)]["overhead_fraction"]
        )

    def test_table_renders(self, serial_result):
        table = CampaignReport(serial_result).table()
        assert "demo-test" in table
        assert "overhead_fraction" in table


class TestSchemeBuilding:
    def test_adaptive_upgrades_only_the_default_fixed_policy(self):
        """The paper's GMRES adaptive default must not clobber an explicitly
        swept error-bound policy (the cell would be mislabeled otherwise)."""
        from types import SimpleNamespace

        from repro.campaign.execute import _build_scheme

        def cell(policy):
            return SimpleNamespace(
                scheme="lossy",
                compressor="sz",
                error_bound=1e-4,
                adaptive=True,
                error_bound_policy=policy,
            )

        assert _build_scheme(cell("fixed")).bound_policy.name == "residual_adaptive"
        assert _build_scheme(cell("value_range")).bound_policy.name == "value_range"
        assert (
            _build_scheme(cell("residual_adaptive")).bound_policy.name
            == "residual_adaptive"
        )
