"""On-disk sub-result memos: byte-identity, reuse, and corruption handling.

The executor persists each configuration's failure-free baseline and each
scheme's payload characterization into ``<cache>/memos`` so that fresh worker
processes (and later campaign invocations) skip the solves entirely.  The
contract under test: a memo-served campaign is byte-identical to a cold one,
and the memo actually prevents recomputation.
"""

import json

import numpy as np
import pytest

import repro.campaign.execute as execute
from repro.campaign.cache import MemoStore
from repro.campaign.executor import run_campaign
from repro.campaign.report import CampaignReport
from repro.campaign.spec import CampaignSpec


def _clear_process_memos():
    """Drop the in-process lru layers so disk is the only warm cache."""
    execute._cached_setup.cache_clear()
    execute._cached_characterization.cache_clear()


@pytest.fixture(autouse=True)
def _isolated_memo_state():
    """Leave no memo configuration behind for other test modules."""
    _clear_process_memos()
    yield
    _clear_process_memos()
    execute.configure_memo_store(None)


def demo_spec() -> CampaignSpec:
    return CampaignSpec(
        name="memo-test",
        kind="ft",
        methods=("jacobi",),
        schemes=("traditional", "lossy"),
        process_counts=(256,),
        repetitions=2,
        grid_n=8,
    )


class TestMemoStore:
    def test_round_trip(self, tmp_path):
        store = MemoStore(tmp_path / "memos")
        payload = {"x": [0.1, 1.0 / 3.0, 1e-300], "n": 3}
        store.put("abc123", payload)
        assert "abc123" in store
        assert len(store) == 1
        restored = store.get("abc123")
        assert restored == payload
        # Bit-exact float round trip is what keeps memo-served cells
        # byte-identical to cold ones.
        for a, b in zip(restored["x"], payload["x"]):
            assert np.float64(a).tobytes() == np.float64(b).tobytes()

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = MemoStore(tmp_path)
        (tmp_path / "bad.json").write_text("{torn")
        assert store.get("bad") is None
        assert not (tmp_path / "bad.json").exists()
        (tmp_path / "list.json").write_text(json.dumps([1, 2]))
        assert store.get("list") is None

    def test_miss_returns_none(self, tmp_path):
        assert MemoStore(tmp_path).get("nope") is None


class TestBaselineAndCharacterizationMemos:
    def test_sub_results_round_trip_bit_exactly(self, tmp_path):
        execute.configure_memo_store(tmp_path / "memos")
        problem_key = ("jacobi", 8, 48, 42, None, 30, 100000)
        _, _, cold = execute._cached_setup(*problem_key)
        _clear_process_memos()
        _, _, warm = execute._cached_setup(*problem_key)
        assert warm.iterations == cold.iterations
        assert warm.converged == cold.converged
        assert warm.x.tobytes() == cold.x.tobytes()
        assert warm.residual_norms == cold.residual_norms
        assert warm.final_residual_norm == cold.final_residual_norm

        scheme_key = problem_key + ("lossy", "sz", 1e-4, False, "fixed")
        cold_char = execute._cached_characterization(*scheme_key)
        _clear_process_memos()
        warm_char = execute._cached_characterization(*scheme_key)
        assert execute._characterization_to_dict(
            warm_char
        ) == execute._characterization_to_dict(cold_char)

    def test_memo_prevents_recomputation(self, tmp_path, monkeypatch):
        execute.configure_memo_store(tmp_path / "memos")
        problem_key = ("jacobi", 8, 48, 42, None, 30, 100000)
        execute._cached_setup(*problem_key)
        _clear_process_memos()

        def boom(*args, **kwargs):  # pragma: no cover - failure is the point
            raise AssertionError("baseline was recomputed despite a disk memo")

        import repro.engine

        monkeypatch.setattr(repro.engine, "run_failure_free", boom)
        execute._cached_setup(*problem_key)


class TestExecutorMemoIntegration:
    def test_memo_dir_lands_next_to_cell_results(self, tmp_path):
        cold = run_campaign(demo_spec(), n_workers=1, cache=tmp_path / "cache")
        memos = tmp_path / "cache" / "memos"
        assert memos.is_dir()
        # One baseline for the shared jacobi configuration plus one
        # characterization per scheme.
        assert len(list(memos.glob("*.json"))) == 3

        # A fresh process would start with cold lru caches; simulate that and
        # force re-execution by clearing the *cell* cache but keeping memos.
        _clear_process_memos()
        for entry in (tmp_path / "cache").glob("*.json"):
            entry.unlink()
        warm = run_campaign(demo_spec(), n_workers=1, cache=tmp_path / "cache")
        assert warm.executed_count == len(demo_spec())
        assert CampaignReport(warm).to_json() == CampaignReport(cold).to_json()

    def test_no_cache_means_no_memo_dir(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_campaign(demo_spec(), n_workers=1, cache=None)
        assert execute._MEMO_STORE is None
