"""JSON round-trip of FTRunReport and serial/parallel figure equivalence."""

import numpy as np

from repro.campaign.execute import execute_cell
from repro.campaign.spec import RunSpec
from repro.core.runner import FTRunReport
from repro.experiments import SMALL_CONFIG, fig8_cells, run_fig8


def _demo_report() -> FTRunReport:
    cell = RunSpec(
        kind="ft",
        method="jacobi",
        scheme="lossy",
        num_processes=256,
        grid_n=8,
        seed=11,
    )
    return FTRunReport.from_dict(execute_cell(cell)["report"])


class TestFTRunReportRoundTrip:
    def test_to_from_json_is_stable(self):
        report = _demo_report()
        payload = report.to_json()
        rebuilt = FTRunReport.from_json(payload)
        assert rebuilt == report
        assert rebuilt.to_json() == payload

    def test_residual_trace_tuples_survive(self):
        report = _demo_report()
        rebuilt = FTRunReport.from_json(report.to_json())
        assert rebuilt.residual_trace == report.residual_trace
        assert all(isinstance(entry, tuple) for entry in rebuilt.residual_trace)

    def test_numpy_scalars_are_coerced(self):
        report = _demo_report()
        report.info["extra"] = np.float64(1.5)
        report.mean_compression_ratio = float(np.float64(report.mean_compression_ratio))
        data = report.to_dict()
        assert isinstance(data["info"]["extra"], float)
        FTRunReport.from_json(report.to_json())  # must not raise

    def test_derived_properties_survive(self):
        report = _demo_report()
        rebuilt = FTRunReport.from_json(report.to_json())
        assert rebuilt.extra_iterations == report.extra_iterations
        assert rebuilt.overhead_fraction == report.overhead_fraction


class TestFigureEquivalence:
    def test_fig8_serial_equals_parallel(self):
        config = SMALL_CONFIG.with_overrides(repetitions=2, process_counts=(256, 2048))
        serial = run_fig8(config, methods=("jacobi",), n_workers=1)
        parallel = run_fig8(config, methods=("jacobi",), n_workers=4)
        assert serial.baseline_iterations == parallel.baseline_iterations
        assert serial.lossy_iterations == parallel.lossy_iterations
        assert serial.num_failures == parallel.num_failures

    def test_fig8_cells_are_self_describing(self):
        config = SMALL_CONFIG.with_overrides(repetitions=2)
        cells = fig8_cells(config, methods=("jacobi", "cg"), process_counts=(256,))
        assert len(cells) == 4
        # Every cell round-trips through JSON to the same cache key.
        for cell in cells:
            assert RunSpec.from_dict(cell.to_dict()).cache_key() == cell.cache_key()
