"""Tests for CampaignSpec / RunSpec: grid expansion, determinism, round-trips."""

import pytest

from repro.campaign.spec import CampaignSpec, RunSpec


class TestRunSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown cell kind"):
            RunSpec(kind="nonsense")

    def test_params_are_normalised_and_sorted(self):
        a = RunSpec(params={"b": 2, "a": 1})
        b = RunSpec(params=(("a", 1), ("b", 2)))
        assert a == b
        assert a.param("a") == 1
        assert a.param("missing", 42) == 42

    def test_list_params_become_tuples(self):
        cell = RunSpec(params={"restart_fractions": [0.3, 0.65]})
        assert cell.param("restart_fractions") == (0.3, 0.65)

    def test_json_round_trip(self):
        cell = RunSpec(
            kind="ft",
            method="cg",
            scheme="lossy",
            compressor="zfp",
            error_bound=1e-5,
            adaptive=True,
            num_processes=1024,
            mtti_seconds=None,
            checkpoint_interval_seconds=123.0,
            params={"trials": 7},
        )
        rebuilt = RunSpec.from_dict(cell.to_dict())
        assert rebuilt == cell
        assert rebuilt.cache_key() == cell.cache_key()

    def test_cache_key_depends_on_spec(self):
        base = RunSpec()
        assert base.cache_key() == RunSpec().cache_key()
        assert base.cache_key() != base.with_overrides(seed=1).cache_key()
        assert base.cache_key() != base.with_overrides(scheme="lossless").cache_key()
        assert (
            base.cache_key()
            != base.with_overrides(params={"trials": 3}).cache_key()
        )


class TestCampaignSpec:
    def test_grid_expansion_size_and_len(self):
        spec = CampaignSpec(
            methods=("jacobi", "cg"),
            schemes=("traditional", "lossy"),
            error_bounds=(1e-4, 1e-6),
            process_counts=(256, 2048),
            repetitions=3,
        )
        cells = spec.expand()
        assert len(cells) == 2 * 2 * 2 * 2 * 3
        assert len(spec) == len(cells)
        assert len({cell.cache_key() for cell in cells}) == len(cells)

    def test_expansion_is_deterministic(self):
        spec = CampaignSpec(methods=("jacobi",), schemes=("lossy",), repetitions=4)
        assert spec.expand() == spec.expand()

    def test_cells_carry_grid_coordinates(self):
        spec = CampaignSpec(
            methods=("gmres",),
            schemes=("lossy",),
            process_counts=(512,),
            repetitions=2,
            grid_n=9,
            seed=7,
        )
        cells = spec.expand()
        for rep, cell in enumerate(cells):
            assert cell.method == "gmres"
            assert cell.scheme == "lossy"
            assert cell.adaptive  # lossy + gmres gets the Theorem-3 policy
            assert cell.num_processes == 512
            assert cell.repetition == rep
            assert cell.grid_n == 9
            assert cell.problem_seed == 7
        # Distinct repetitions get distinct failure seeds.
        assert cells[0].seed != cells[1].seed

    def test_explicit_cells_override_grid(self):
        explicit = (RunSpec(kind="model", params={"lam": 1e-4, "tckp": 10.0}),)
        spec = CampaignSpec(methods=("jacobi", "cg"), repetitions=5, cells=explicit)
        assert spec.expand() == list(explicit)
        assert len(spec) == 1

    def test_json_round_trip_with_cells(self):
        spec = CampaignSpec(
            name="rt",
            methods=("jacobi",),
            rtols=(("jacobi", 1e-5),),
            cells=(RunSpec(kind="characterize"), RunSpec(kind="solve", method="kkt")),
        )
        rebuilt = CampaignSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.expand() == spec.expand()

    def test_rtol_for(self):
        spec = CampaignSpec(rtols=(("cg", 1e-9),))
        assert spec.rtol_for("cg") == 1e-9
        assert spec.rtol_for("jacobi") is None


class TestScenarioAxis:
    def test_runspec_rejects_unknown_scenario_coordinates(self):
        with pytest.raises(ValueError, match="unknown failure model"):
            RunSpec(failure_model="lognormal")
        with pytest.raises(ValueError, match="unknown recovery levels"):
            RunSpec(recovery_levels="tape")

    def test_runspec_rejects_scripted_model(self):
        # A cell cannot carry scripted failure times, so accepting the model
        # name would silently cache failure-free runs as FT measurements.
        with pytest.raises(ValueError, match="unknown failure model"):
            RunSpec(failure_model="scripted")

    def test_scenario_changes_cache_key(self):
        base = RunSpec()
        assert base.failure_model == "poisson"
        assert base.recovery_levels == "pfs"
        assert base.cache_key() != base.with_overrides(failure_model="weibull").cache_key()
        assert base.cache_key() != base.with_overrides(recovery_levels="fti").cache_key()

    def test_runspec_dict_without_scenario_keys_loads_default(self):
        # Pre-scenario cached specs (CACHE_VERSION <= 2 era) still parse.
        data = RunSpec().to_dict()
        del data["failure_model"]
        del data["recovery_levels"]
        rebuilt = RunSpec.from_dict(data)
        assert rebuilt.failure_model == "poisson"
        assert rebuilt.recovery_levels == "pfs"

    def test_grid_expands_scenario_axes(self):
        spec = CampaignSpec(
            methods=("jacobi",),
            schemes=("lossy",),
            failure_models=("poisson", "weibull", "bursty"),
            recovery_levels=("pfs", "fti"),
            repetitions=2,
        )
        cells = spec.expand()
        assert len(cells) == 3 * 2 * 2
        assert len(spec) == len(cells)
        coords = {(c.failure_model, c.recovery_levels) for c in cells}
        assert len(coords) == 6
        assert len({cell.cache_key() for cell in cells}) == len(cells)

    def test_default_scenario_keeps_historical_seeds(self):
        # The scenario axis must not re-seed pre-scenario campaigns: a grid
        # that pins the default scenario expands to exactly the same cells.
        base = CampaignSpec(methods=("jacobi", "cg"), repetitions=3, seed=99)
        pinned = CampaignSpec(
            methods=("jacobi", "cg"),
            repetitions=3,
            seed=99,
            failure_models=("poisson",),
            recovery_levels=("pfs",),
        )
        assert base.expand() == pinned.expand()

    def test_non_default_scenarios_get_distinct_seeds(self):
        spec = CampaignSpec(
            methods=("jacobi",),
            failure_models=("poisson", "weibull"),
            recovery_levels=("pfs", "fti"),
        )
        cells = spec.expand()
        assert len({c.seed for c in cells}) == len(cells)

    def test_json_round_trip_with_scenario_axes(self):
        spec = CampaignSpec(
            methods=("jacobi",),
            failure_models=("weibull",),
            recovery_levels=("fti",),
        )
        rebuilt = CampaignSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.expand() == spec.expand()


class TestPolicyAndCostingAxes:
    def test_runspec_rejects_unknown_policy_and_costing(self):
        with pytest.raises(ValueError, match="unknown error-bound policy"):
            RunSpec(error_bound_policy="per_variable")
        with pytest.raises(ValueError, match="unknown checkpoint costing"):
            RunSpec(checkpoint_costing="guessed")

    def test_policy_and_costing_change_cache_key(self):
        base = RunSpec()
        assert base.error_bound_policy == "fixed"
        assert base.checkpoint_costing == "measured"
        assert base.cache_key() != base.with_overrides(
            error_bound_policy="value_range"
        ).cache_key()
        assert base.cache_key() != base.with_overrides(
            checkpoint_costing="modeled"
        ).cache_key()

    def test_pre_pipeline_dicts_load_defaults(self):
        data = RunSpec().to_dict()
        del data["error_bound_policy"]
        del data["checkpoint_costing"]
        rebuilt = RunSpec.from_dict(data)
        assert rebuilt.error_bound_policy == "fixed"
        assert rebuilt.checkpoint_costing == "measured"

    def test_grid_expands_policy_and_costing_axes(self):
        spec = CampaignSpec(
            methods=("jacobi",),
            schemes=("lossy",),
            error_bound_policies=("fixed", "value_range", "residual_adaptive"),
            checkpoint_costings=("measured", "modeled"),
        )
        cells = spec.expand()
        assert len(cells) == 3 * 2
        assert len(spec) == len(cells)
        coords = {(c.error_bound_policy, c.checkpoint_costing) for c in cells}
        assert len(coords) == 6
        assert len({cell.cache_key() for cell in cells}) == len(cells)

    def test_default_policy_and_costing_keep_historical_seeds(self):
        # The new axes must not re-seed pre-pipeline campaigns: pinning the
        # defaults expands to exactly the same cells as not mentioning them.
        base = CampaignSpec(methods=("jacobi", "cg"), repetitions=3, seed=99)
        pinned = CampaignSpec(
            methods=("jacobi", "cg"),
            repetitions=3,
            seed=99,
            error_bound_policies=("fixed",),
            checkpoint_costings=("measured",),
        )
        assert base.expand() == pinned.expand()
        # Non-default coordinates draw distinct seeds.
        varied = CampaignSpec(
            methods=("jacobi",),
            error_bound_policies=("fixed", "value_range"),
            checkpoint_costings=("measured", "modeled"),
        )
        cells = varied.expand()
        assert len({c.seed for c in cells}) == len(cells)


class TestWriteModeAxis:
    def test_runspec_rejects_unknown_write_mode(self):
        with pytest.raises(ValueError, match="unknown write mode"):
            RunSpec(write_mode="overlapped")

    def test_write_mode_changes_cache_key(self):
        base = RunSpec()
        assert base.write_mode == "blocking"
        assert base.cache_key() != base.with_overrides(write_mode="async").cache_key()

    def test_pre_write_mode_dicts_load_default(self):
        data = RunSpec().to_dict()
        del data["write_mode"]
        rebuilt = RunSpec.from_dict(data)
        assert rebuilt.write_mode == "blocking"

    def test_grid_expands_write_mode_axis(self):
        spec = CampaignSpec(
            methods=("jacobi",),
            schemes=("traditional", "lossy"),
            write_modes=("blocking", "async"),
            checkpoint_costings=("measured", "modeled"),
        )
        cells = spec.expand()
        assert len(cells) == 2 * 2 * 2
        assert len(spec) == len(cells)
        coords = {(c.scheme, c.write_mode, c.checkpoint_costing) for c in cells}
        assert len(coords) == 8
        assert len({cell.cache_key() for cell in cells}) == len(cells)

    def test_default_write_mode_keeps_historical_seeds(self):
        # The write-mode axis must not re-seed pre-async campaigns: pinning
        # blocking expands to exactly the same cells as not mentioning it.
        base = CampaignSpec(methods=("jacobi", "cg"), repetitions=3, seed=99)
        pinned = CampaignSpec(
            methods=("jacobi", "cg"),
            repetitions=3,
            seed=99,
            write_modes=("blocking",),
        )
        assert base.expand() == pinned.expand()
        varied = CampaignSpec(
            methods=("jacobi",), write_modes=("blocking", "async"), repetitions=2
        )
        cells = varied.expand()
        assert len({c.seed for c in cells}) == len(cells)

    def test_json_round_trip_with_write_mode(self):
        spec = CampaignSpec(methods=("jacobi",), write_modes=("blocking", "async"))
        rebuilt = CampaignSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.expand() == spec.expand()


class TestStoreBackendAxis:
    def test_runspec_rejects_unknown_store_backend(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            RunSpec(store_backend="tape")

    def test_store_backend_changes_cache_key(self):
        base = RunSpec()
        assert base.store_backend == "pfs"
        assert (
            base.cache_key() != base.with_overrides(store_backend="chunked").cache_key()
        )

    def test_pre_backend_dicts_load_default(self):
        data = RunSpec().to_dict()
        del data["store_backend"]
        rebuilt = RunSpec.from_dict(data)
        assert rebuilt.store_backend == "pfs"

    def test_grid_expands_store_backend_axis(self):
        spec = CampaignSpec(
            methods=("jacobi",),
            write_modes=("blocking", "async"),
            store_backends=("pfs", "memory", "disk", "object", "chunked"),
        )
        cells = spec.expand()
        assert len(cells) == 2 * 5
        assert len(spec) == len(cells)
        coords = {(c.write_mode, c.store_backend) for c in cells}
        assert len(coords) == 10
        assert len({cell.cache_key() for cell in cells}) == len(cells)

    def test_default_store_backend_keeps_historical_seeds(self):
        # Pinning pfs expands to exactly the same cells as not mentioning the
        # axis, so pre-backend campaign caches stay warm.
        base = CampaignSpec(methods=("jacobi", "cg"), repetitions=3, seed=99)
        pinned = CampaignSpec(
            methods=("jacobi", "cg"),
            repetitions=3,
            seed=99,
            store_backends=("pfs",),
        )
        assert base.expand() == pinned.expand()
        varied = CampaignSpec(
            methods=("jacobi",),
            store_backends=("pfs", "memory", "chunked"),
            repetitions=2,
        )
        cells = varied.expand()
        assert len({c.seed for c in cells}) == len(cells)

    def test_json_round_trip_with_store_backends(self):
        spec = CampaignSpec(methods=("jacobi",), store_backends=("pfs", "chunked"))
        rebuilt = CampaignSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.expand() == spec.expand()
