"""Tests for the ``REPRO_PROFILE`` / ``--profile`` cell-profiling hook."""

import pstats

import pytest

from repro.campaign.cli import main
from repro.campaign.execute import PROFILE_ENV, execute_cell
from repro.campaign.spec import CampaignSpec, RunSpec


def _model_cell(tckp=30.0):
    return RunSpec(kind="model", params={"lam": 1e-4, "tckp": float(tckp)})


class TestExecuteCellProfiling:
    def test_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        result = execute_cell(_model_cell())
        assert result["overhead_fraction"] > 0
        assert not list(tmp_path.glob("*.pstats"))

    def test_dumps_loadable_pstats_per_cell(self, tmp_path, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, str(tmp_path / "profiles"))
        unprofiled = execute_cell(_model_cell())
        monkeypatch.delenv(PROFILE_ENV)
        profiled = execute_cell(_model_cell())
        # Profiling must not change what the cell computes.
        assert profiled == unprofiled
        files = list((tmp_path / "profiles").glob("*.pstats"))
        assert len(files) == 1
        [path] = files
        assert path.name.startswith("model-")
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0

    def test_distinct_cells_get_distinct_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, str(tmp_path))
        execute_cell(_model_cell(10.0))
        execute_cell(_model_cell(20.0))
        assert len(list(tmp_path.glob("*.pstats"))) == 2

    def test_profile_dumped_even_when_handler_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, str(tmp_path))
        bad = RunSpec(kind="model", params={})  # missing lam/tckp
        with pytest.raises(ValueError, match="model"):
            execute_cell(bad)
        assert len(list(tmp_path.glob("*.pstats"))) == 1


class TestCliProfileFlag:
    def test_profile_flag_writes_artifacts(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        spec = CampaignSpec(
            name="cli-profile",
            cells=tuple(_model_cell(t) for t in (10.0, 20.0)),
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        profile_dir = tmp_path / "profiles"
        code = main(
            [
                "--spec", str(spec_path),
                "--no-cache",
                "--quiet",
                "--profile", str(profile_dir),
            ]
        )
        assert code == 0
        assert len(list(profile_dir.glob("*.pstats"))) == 2
        assert "2 cell profile(s)" in capsys.readouterr().out
