"""Tests for the content-addressed result cache."""

import json

from repro.campaign.cache import ResultCache
from repro.campaign.spec import RunSpec


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cell = RunSpec(kind="model", params={"lam": 1e-4, "tckp": 30.0})
        assert cache.get(cell) is None
        cache.put(cell, {"overhead_fraction": 0.25})
        assert cache.get(cell) == {"overhead_fraction": 0.25}
        assert cell in cache
        assert len(cache) == 1

    def test_key_isolation(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = RunSpec(kind="model", params={"lam": 1.0, "tckp": 1.0})
        b = RunSpec(kind="model", params={"lam": 2.0, "tckp": 1.0})
        cache.put(a, {"v": 1})
        assert cache.get(b) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = RunSpec(kind="model", params={"lam": 1.0, "tckp": 1.0})
        cache.put(cell, {"v": 1})
        path = next(tmp_path.glob("*.json"))
        path.write_text("{ not json")
        assert cache.get(cell) is None
        # The broken file was removed so a fresh put works.
        cache.put(cell, {"v": 2})
        assert cache.get(cell) == {"v": 2}

    def test_entry_stores_spec_alongside_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = RunSpec(kind="characterize", method="cg", scheme="lossless")
        cache.put(cell, {"mean_ratio": 1.3})
        payload = json.loads(next(tmp_path.glob("*.json")).read_text())
        assert payload["spec"] == cell.to_dict()
        assert payload["result"] == {"mean_ratio": 1.3}

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for tckp in (1.0, 2.0, 3.0):
            cache.put(RunSpec(kind="model", params={"lam": 1.0, "tckp": tckp}), {})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0
