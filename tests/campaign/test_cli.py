"""CLI smoke tests for ``python -m repro.campaign``."""

import json

from repro.campaign.cli import PRESETS, demo_campaign, main
from repro.campaign.spec import CampaignSpec, RunSpec


class TestPresets:
    def test_demo_campaign_has_at_least_24_cells(self):
        assert len(demo_campaign()) >= 24

    def test_all_presets_expand(self):
        for name, factory in PRESETS.items():
            spec = factory()
            assert isinstance(spec, CampaignSpec)
            assert len(spec.expand()) >= 1, name

    def test_list_presets_exits_cleanly(self, capsys):
        assert main(["--list-presets"]) == 0
        out = capsys.readouterr().out
        assert "demo" in out


class TestMain:
    def test_runs_spec_file_and_writes_json(self, tmp_path, capsys):
        spec = CampaignSpec(
            name="cli-model",
            cells=tuple(
                RunSpec(kind="model", params={"lam": 1e-4, "tckp": float(t)})
                for t in (10.0, 20.0)
            ),
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        out_path = tmp_path / "report.json"
        code = main(
            [
                "--spec", str(spec_path),
                "--cache-dir", str(tmp_path / "cache"),
                "--json", str(out_path),
                "--group-by", "kind",
                "--quiet",
            ]
        )
        assert code == 0
        assert "cli-model" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert len(payload["cells"]) == 2

    def test_cached_rerun_executes_nothing(self, tmp_path, capsys):
        spec = CampaignSpec(
            name="cli-cache",
            cells=(RunSpec(kind="model", params={"lam": 1e-4, "tckp": 5.0}),),
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        args = ["--spec", str(spec_path), "--cache-dir", str(tmp_path / "c"), "--quiet"]
        main(args)
        capsys.readouterr()
        main(args)
        assert "1 from cache" in capsys.readouterr().out
