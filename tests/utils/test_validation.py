"""Tests for repro.utils.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils.validation import (
    check_nonnegative,
    check_positive,
    check_probability,
    check_same_length,
    check_square_matrix,
    check_vector,
)


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative(-0.1, "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_probability_accepts(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_probability_rejects(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestVectorCheck:
    def test_converts_list(self):
        out = check_vector([1, 2, 3], "v")
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_vector(np.zeros((2, 2)), "v")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_vector([], "v")


class TestSquareMatrixCheck:
    def test_accepts_sparse(self):
        A = sp.identity(4, format="coo")
        out = check_square_matrix(A)
        assert sp.issparse(out) and out.format == "csr"

    def test_accepts_dense(self):
        out = check_square_matrix(np.eye(3))
        assert out.shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            check_square_matrix(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_square_matrix(sp.csr_matrix((0, 0)))


class TestSameLength:
    def test_accepts_equal(self):
        check_same_length([1, 2], [3, 4], "a", "b")

    def test_rejects_unequal(self):
        with pytest.raises(ValueError):
            check_same_length([1], [2, 3], "a", "b")
