"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import default_rng, derive_seed, spawn_rngs


class TestDefaultRng:
    def test_returns_generator_from_int(self):
        gen = default_rng(3)
        assert isinstance(gen, np.random.Generator)

    def test_same_seed_same_stream(self):
        a = default_rng(5).integers(0, 1000, size=10)
        b = default_rng(5).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert default_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_independent_streams(self):
        gens = spawn_rngs(0, 2)
        a = gens[0].random(100)
        b = gens[1].random(100)
        assert not np.allclose(a, b)

    def test_reproducible(self):
        a = spawn_rngs(7, 3)[1].random(5)
        b = spawn_rngs(7, 3)[1].random(5)
        assert np.array_equal(a, b)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        gens = spawn_rngs(np.random.default_rng(1), 3)
        assert len(gens) == 3


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_salt_changes_seed(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 2, 4)

    def test_order_sensitive(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)

    def test_none_seed_allowed(self):
        assert isinstance(derive_seed(None, 1), int)

    def test_nonnegative(self):
        for salt in range(20):
            assert derive_seed(123, salt) >= 0
