"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import Stopwatch, VirtualClock


class TestStopwatch:
    def test_context_manager_measures_time(self):
        with Stopwatch() as sw:
            sum(range(1000))
        assert sw.elapsed >= 0.0

    def test_start_stop(self):
        sw = Stopwatch()
        sw.start()
        elapsed = sw.stop()
        assert elapsed >= 0.0
        assert sw.elapsed == elapsed


class TestVirtualClock:
    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(10.0, "compute")
        clock.advance(5.0, "checkpoint")
        assert clock.now == pytest.approx(15.0)

    def test_breakdown_by_category(self):
        clock = VirtualClock()
        clock.advance(10.0, "compute")
        clock.advance(5.0, "compute")
        clock.advance(3.0, "recovery")
        assert clock.time_in("compute") == pytest.approx(15.0)
        assert clock.time_in("recovery") == pytest.approx(3.0)
        assert clock.time_in("unknown") == 0.0

    def test_negative_advance_raises(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(7.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.breakdown == {}

    def test_copy_is_independent(self):
        clock = VirtualClock()
        clock.advance(2.0, "compute")
        clone = clock.copy()
        clone.advance(3.0, "compute")
        assert clock.now == pytest.approx(2.0)
        assert clone.now == pytest.approx(5.0)

    def test_event_recording(self):
        clock = VirtualClock(record_events=True)
        clock.advance(1.0, "compute")
        clock.advance(2.0, "checkpoint")
        assert clock.events == [(1.0, "compute"), (3.0, "checkpoint")]
