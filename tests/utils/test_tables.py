"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, "x"]])
        assert "a" in out and "bb" in out
        assert "2.5" in out and "x" in out

    def test_title_rendered_first(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment_consistent_width(self):
        out = format_table(["col"], [[1], [100000]])
        lines = out.splitlines()
        assert len(lines[-1]) == len(lines[-2])

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456789]], float_fmt=".2f")
        assert "0.12" in out

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
