"""Structural and shape tests for the experiment harness (one per paper artefact)."""

import numpy as np
import pytest

from repro.experiments import (
    SMALL_CONFIG,
    fig1_table,
    fig2_table,
    fig3_table,
    fig456_table,
    fig7_table,
    fig8_table,
    fig9_table,
    fig10_table,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig456,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table3,
    table3_table,
)

CFG = SMALL_CONFIG


class TestFig1:
    def test_overhead_surface_shape_and_monotonicity(self):
        result = run_fig1()
        # The paper reads ~40% at hourly failures and Tckp = 120 s.
        assert 0.3 < result.at(1.0, 120.0) < 0.5
        # Overhead grows along both axes.
        row = result.overhead_fraction[2]
        assert all(np.diff(row) > 0)
        column = [r[3] for r in result.overhead_fraction]
        assert all(np.diff(column) > 0)

    def test_table_renders(self):
        assert "Figure 1" in fig1_table(run_fig1())


class TestFig2:
    def test_cg_delay_in_paper_range(self):
        result = run_fig2(CFG, trials=6)
        for eb in result.error_bounds:
            frac = result.mean_extra_fraction(eb)
            assert 0.0 <= frac <= 0.6
        # The 1e-3 bound cannot be better than the 1e-6 bound by a wide margin.
        assert result.mean_extra_fraction(1e-6) <= result.mean_extra_fraction(1e-3) + 0.1
        assert "Figure 2" in fig2_table(result)


class TestFig3:
    def test_kkt_scaling(self):
        result = run_fig3(CFG)
        assert result.converged
        assert result.iterations > 10
        times = [result.modeled_seconds[p] for p in result.process_counts]
        assert all(np.diff(times) < 0)  # strong scaling: more processes, less time
        assert "Figure 3" in fig3_table(result)


class TestTable3:
    def test_checkpoint_sizes(self):
        result = run_table3(CFG)
        for procs in result.process_counts:
            for method in result.methods:
                trad = result.size_mb(procs, method, "traditional")
                lossless = result.size_mb(procs, method, "lossless")
                lossy = result.size_mb(procs, method, "lossy")
                assert lossy < lossless <= trad * 1.01
        # CG checkpoints two vectors under exact schemes (twice the size).
        assert result.size_mb(2048, "cg", "traditional") == pytest.approx(
            2 * result.size_mb(2048, "gmres", "traditional"), rel=1e-6
        )
        # Traditional per-process size at 2048 processes ~ 38 MB (Table 3).
        assert 30 < result.size_mb(2048, "jacobi", "traditional") < 45
        assert "Table 3" in table3_table(result)

    def test_bicgstab_sizes_come_from_measured_payload(self):
        """BiCGSTAB-exact bytes price 5 per-variable vectors + scalars, not
        ``vector_bytes * dynamic_vector_count / ratio(x)``."""
        result = run_table3(CFG, methods=("bicgstab", "jacobi"))
        for scheme in ("traditional", "lossless"):
            ratios = result.variable_ratios[("bicgstab", scheme)]
            assert set(ratios) == {"x", "r", "r_hat", "p", "v"}
        # Five exactly-stored vectors ~ five single-vector Jacobi payloads.
        assert result.size_mb(2048, "bicgstab", "traditional") == pytest.approx(
            5 * result.size_mb(2048, "jacobi", "traditional"), rel=1e-3
        )
        # Under lossless compression the five vectors compress differently:
        # the measured payload diverges from the old single-ratio model.
        from repro.core.scale import paper_scale

        scale = paper_scale(2048)
        x_ratio = result.ratios[("bicgstab", "lossless")]
        modeled_mb = scale.vector_bytes * 5 / x_ratio / 2048 / 1024**2
        measured_mb = result.size_mb(2048, "bicgstab", "lossless")
        assert measured_mb != pytest.approx(modeled_mb, rel=1e-6)
        # Lossy stores only the iterate.
        assert set(result.variable_ratios[("bicgstab", "lossy")]) == {"x"}


class TestFig456:
    @pytest.mark.parametrize("method", ["jacobi", "gmres", "cg"])
    def test_checkpoint_recovery_times(self, method):
        result = run_fig456(CFG, method=method)
        for procs in result.process_counts:
            assert result.checkpoint(procs, "lossy") < result.checkpoint(procs, "traditional")
            assert result.recovery(procs, "lossy") < result.recovery(procs, "traditional")
        # Times grow with scale (weak scaling at constant PFS bandwidth).
        trad = [result.checkpoint(p, "traditional") for p in result.process_counts]
        assert all(np.diff(trad) > 0)
        assert "mean checkpoint/recovery" in fig456_table(result)

    def test_traditional_checkpoint_anchor_at_2048(self):
        result = run_fig456(CFG, method="jacobi", process_counts=[2048])
        assert result.checkpoint(2048, "traditional") == pytest.approx(120.0, rel=0.1)


class TestFig7:
    def test_expected_overheads(self):
        result = run_fig7(CFG)
        for procs in result.process_counts:
            # Jacobi and GMRES lossy always beat traditional in expectation.
            for method in ("jacobi", "gmres"):
                assert result.value(1.0, procs, method, "lossy") < result.value(
                    1.0, procs, method, "traditional"
                )
            # Lower failure rate means lower overhead.
            assert result.value(3.0, procs, "jacobi", "traditional") < result.value(
                1.0, procs, "jacobi", "traditional"
            )
        # The paper's N' inputs: ~6 for Jacobi, 0 for GMRES, 594 for CG.
        assert result.extra_iterations["gmres"] == 0.0
        assert 0 < result.extra_iterations["jacobi"] < 20
        assert result.extra_iterations["cg"] == pytest.approx(594, rel=0.01)
        assert "Figure 7" in fig7_table(result)


class TestFig8:
    def test_convergence_iterations(self):
        result = run_fig8(CFG.with_overrides(repetitions=2))
        for method in result.methods:
            for procs in result.process_counts:
                assert result.lossy_iterations[(method, procs)] >= 1
        # Jacobi shows (essentially) no delay under lossy checkpointing.
        for procs in result.process_counts:
            assert result.delay_fraction("jacobi", procs) <= 0.05
        assert "Figure 8" in fig8_table(result)


class TestFig9:
    def test_trajectories(self):
        result = run_fig9(CFG)
        assert set(result.traces) == {"no failure", "1 lossy restart", "2 lossy restarts"}
        # Jacobi recovers with essentially no extra iterations (paper's Fig. 9).
        assert abs(result.extra_iterations("1 lossy restart")) <= 3
        assert abs(result.extra_iterations("2 lossy restarts")) <= 5
        # All traces end below the failure-free final residual times a small factor.
        final_ff = result.traces["no failure"][-1][1]
        for label in ("1 lossy restart", "2 lossy restarts"):
            assert result.traces[label][-1][1] <= 2.0 * final_ff
        assert "Figure 9" in fig9_table(result)


class TestFig10:
    def test_structure_and_expected_model(self):
        result = run_fig10(CFG.with_overrides(repetitions=2))
        for method in result.methods:
            for scheme in ("traditional", "lossless", "lossy"):
                assert result.experimental[(method, scheme)] >= 0.0
                assert result.expected[(method, scheme)] >= 0.0
            # The model predicts lossy beating traditional for Jacobi (N' ~ 0).
            # GMRES and CG are excluded here because at the tiny SMALL_CONFIG
            # problem size the *measured* extra iterations per failure are a
            # large fraction of the short run; the full-size behaviour is
            # covered by the Fig. 7 test and the benchmarks.
            if method == "jacobi":
                assert result.expected[(method, "lossy")] < result.expected[
                    (method, "traditional")
                ]
            # Lossy checkpoints are much cheaper than traditional ones.
            assert result.checkpoint_seconds[(method, "lossy")] < result.checkpoint_seconds[
                (method, "traditional")
            ]
        assert "Figure 10" in fig10_table(result)


class TestAsyncOverlap:
    def test_reduction_positive_and_paired_seeds(self):
        from repro.experiments.async_overlap import (
            async_overlap_cells,
            async_overlap_table,
            run_async_overlap,
        )

        cells = async_overlap_cells(
            CFG, schemes=("traditional",), costings=("measured",), repetitions=2
        )
        # The async/blocking pair of one repetition shares its failure seed,
        # so the comparison is same-failure-stream.
        by_rep = {}
        for cell in cells:
            by_rep.setdefault(cell.repetition, set()).add(cell.seed)
        assert all(len(seeds) == 1 for seeds in by_rep.values())
        assert by_rep[0] != by_rep[1]

        result = run_async_overlap(
            CFG, schemes=("traditional",), costings=("measured",), repetitions=2
        )
        # Overlap must strictly reduce the stop-the-world write overhead.
        assert result.reduction("traditional") > 0.0
        assert result.overhead[("traditional", "async", "measured")] < (
            result.overhead[("traditional", "blocking", "measured")]
        )
        table = async_overlap_table(result)
        assert "traditional" in table and "reduction" in table
