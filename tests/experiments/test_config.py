"""Tests for the experiment configuration."""

import pytest

from repro.experiments.config import (
    DEFAULT_CONFIG,
    PAPER_RTOL,
    SMALL_CONFIG,
    kkt_problem,
    kkt_solver,
    method_problem,
    method_solver,
)
from repro.solvers import CGSolver, GMRESSolver, JacobiSolver


class TestConfig:
    def test_paper_tolerances(self):
        assert PAPER_RTOL == {"jacobi": 1e-4, "gmres": 7e-5, "cg": 1e-7}
        assert DEFAULT_CONFIG.rtol["cg"] == 1e-7

    def test_paper_process_counts(self):
        assert DEFAULT_CONFIG.process_counts == (256, 512, 768, 1024, 1280, 1536, 1792, 2048)

    def test_with_overrides(self):
        cfg = SMALL_CONFIG.with_overrides(repetitions=9)
        assert cfg.repetitions == 9
        assert SMALL_CONFIG.repetitions != 9

    def test_small_config_is_smaller(self):
        assert SMALL_CONFIG.grid_n < DEFAULT_CONFIG.grid_n


class TestFactories:
    @pytest.mark.parametrize(
        "method,cls", [("jacobi", JacobiSolver), ("gmres", GMRESSolver), ("cg", CGSolver)]
    )
    def test_method_solver_types_and_tolerances(self, method, cls):
        problem = method_problem(SMALL_CONFIG, method)
        solver = method_solver(SMALL_CONFIG, method, problem)
        assert isinstance(solver, cls)
        assert solver.criterion.rtol == PAPER_RTOL[method]

    def test_gmres_restart_is_30(self):
        problem = method_problem(SMALL_CONFIG, "gmres")
        solver = method_solver(SMALL_CONFIG, "gmres", problem)
        assert solver.restart == 30

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            method_problem(SMALL_CONFIG, "simplex")

    def test_kkt_problem_and_solver(self):
        problem = kkt_problem(SMALL_CONFIG)
        solver = kkt_solver(SMALL_CONFIG, problem)
        assert isinstance(solver, GMRESSolver)
        assert solver.criterion.rtol == 1e-6
        result = solver.solve(problem.b)
        assert result.converged
