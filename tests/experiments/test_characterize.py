"""Tests for the shared characterization helpers."""

import pytest

from repro.cluster.machine import ClusterModel
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.experiments.characterize import (
    measure_scheme_ratio,
    scheme_timings,
    standard_schemes,
)
from repro.experiments.config import SMALL_CONFIG, method_problem, method_solver


class TestMeasureSchemeRatio:
    def test_lossy_ratio_larger_than_lossless(self):
        problem = method_problem(SMALL_CONFIG, "jacobi")
        solver = method_solver(SMALL_CONFIG, "jacobi", problem)
        lossy = measure_scheme_ratio(solver, problem.b, CheckpointingScheme.lossy(1e-4))
        lossless = measure_scheme_ratio(solver, problem.b, CheckpointingScheme.lossless())
        traditional = measure_scheme_ratio(
            solver, problem.b, CheckpointingScheme.traditional()
        )
        assert lossy.mean_ratio > lossless.mean_ratio
        assert traditional.mean_ratio == pytest.approx(1.0, rel=0.05)
        assert lossy.min_ratio <= lossy.mean_ratio

    def test_adaptive_gmres_ratio_positive(self):
        problem = method_problem(SMALL_CONFIG, "gmres")
        solver = method_solver(SMALL_CONFIG, "gmres", problem)
        scheme = CheckpointingScheme.lossy(1e-4, adaptive=True)
        char = measure_scheme_ratio(solver, problem.b, scheme, method="gmres")
        assert char.mean_ratio > 1.0
        assert char.baseline_iterations > 1


class TestSchemeTimings:
    def test_lossy_cheaper_and_cg_doubles_exact_schemes(self):
        scale = paper_scale(2048)
        cluster = ClusterModel(num_processes=2048)
        trad_cg = scheme_timings(CheckpointingScheme.traditional(), "cg", 1.0, scale, cluster)
        trad_jacobi = scheme_timings(
            CheckpointingScheme.traditional(), "jacobi", 1.0, scale, cluster
        )
        lossy_cg = scheme_timings(CheckpointingScheme.lossy(1e-4), "cg", 20.0, scale, cluster)
        assert trad_cg.checkpoint_seconds > 1.8 * trad_jacobi.checkpoint_seconds
        assert lossy_cg.checkpoint_seconds < trad_cg.checkpoint_seconds / 3
        assert lossy_cg.recovery_seconds > 0

    def test_invalid_ratio(self):
        scale = paper_scale(256)
        cluster = ClusterModel(num_processes=256)
        with pytest.raises(ValueError):
            scheme_timings(CheckpointingScheme.lossless(), "cg", 0.0, scale, cluster)


class TestStandardSchemes:
    def test_three_schemes_in_paper_order(self):
        schemes = standard_schemes(1e-4, method="jacobi")
        assert [s.name for s in schemes] == ["traditional", "lossless", "lossy"]
        assert schemes[2].adaptive_policy is None

    def test_gmres_gets_adaptive_policy(self):
        schemes = standard_schemes(1e-4, method="gmres")
        assert schemes[2].adaptive_policy is not None
