"""Tests for the ILU(0) and IC(0) factorizations."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.precond.ichol import IncompleteCholeskyPreconditioner, ic0_factor
from repro.precond.ilu import ILU0Preconditioner, ilu0_factor
from repro.sparse.poisson import poisson_2d, poisson_3d
from repro.sparse.matrices import diagonally_dominant


class TestILU0Factor:
    def test_tridiagonal_ilu_is_exact_lu(self):
        # For a tridiagonal matrix the ILU(0) pattern suffers no fill, so the
        # incomplete factorization equals the exact LU: L@U == A.
        A = sp.diags([-1.0, 4.0, -1.0], offsets=[-1, 0, 1], shape=(12, 12), format="csr")
        factored = ilu0_factor(A)
        L = sp.tril(factored, k=-1) + sp.identity(12)
        U = sp.triu(factored, k=0)
        assert np.allclose((L @ U).toarray(), A.toarray(), atol=1e-12)

    def test_missing_diagonal_rejected(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            ilu0_factor(A)

    def test_preserves_sparsity_pattern(self):
        A = poisson_2d(6)
        factored = ilu0_factor(A)
        assert factored.nnz == A.nnz


class TestILU0Preconditioner:
    def test_reduces_cg_iterations(self):
        from repro.solvers import CGSolver

        A = poisson_3d(8)
        b = np.ones(A.shape[0])
        plain = CGSolver(A, rtol=1e-8, max_iter=2000).solve(b)
        ilu = CGSolver(
            A, preconditioner=ILU0Preconditioner(A), rtol=1e-8, max_iter=2000
        ).solve(b)
        assert ilu.iterations < plain.iterations

    def test_apply_approximates_inverse(self):
        A = diagonally_dominant(60, density=0.1, seed=0)
        M = ILU0Preconditioner(A)
        rng = np.random.default_rng(1)
        r = rng.standard_normal(60)
        z = M.solve(r)
        # The preconditioned residual should be much closer to r than A z = r
        # would be for a random z.
        assert np.linalg.norm(A @ z - r) < 0.5 * np.linalg.norm(r)


class TestIC0:
    def test_tridiagonal_ic_is_exact_cholesky(self):
        A = sp.diags([-1.0, 4.0, -1.0], offsets=[-1, 0, 1], shape=(10, 10), format="csr")
        L = ic0_factor(A)
        assert np.allclose((L @ L.T).toarray(), A.toarray(), atol=1e-12)

    def test_poisson_factor_is_lower_triangular(self):
        A = poisson_2d(5)
        L = ic0_factor(A)
        assert (sp.triu(L, k=1)).nnz == 0

    def test_breakdown_raises_or_shifts(self):
        # An indefinite matrix breaks plain IC(0)...
        A = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))
        with pytest.raises((np.linalg.LinAlgError, ZeroDivisionError)):
            ic0_factor(A)
        # ...but the preconditioner rescues it with a diagonal shift.
        M = IncompleteCholeskyPreconditioner(A)
        assert M.shift > 0

    def test_reduces_cg_iterations(self):
        from repro.solvers import CGSolver

        A = poisson_3d(8)
        b = np.ones(A.shape[0])
        plain = CGSolver(A, rtol=1e-8, max_iter=2000).solve(b)
        ic = CGSolver(
            A, preconditioner=IncompleteCholeskyPreconditioner(A), rtol=1e-8, max_iter=2000
        ).solve(b)
        assert ic.iterations < plain.iterations
