"""Tests for the preconditioners."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.precond import (
    BlockJacobiPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    SSORPreconditioner,
    make_preconditioner,
)
from repro.sparse.poisson import poisson_2d, poisson_3d


class TestIdentity:
    def test_returns_copy_of_input(self):
        A = poisson_2d(4)
        M = IdentityPreconditioner(A)
        r = np.arange(16, dtype=float)
        z = M.solve(r)
        assert np.array_equal(z, r)
        assert z is not r

    def test_length_validation(self):
        M = IdentityPreconditioner(poisson_2d(4))
        with pytest.raises(ValueError):
            M.solve(np.zeros(5))


class TestJacobi:
    def test_applies_inverse_diagonal(self):
        A = sp.diags([2.0, 4.0, 8.0], format="csr")
        M = JacobiPreconditioner(A)
        z = M.solve(np.array([2.0, 4.0, 8.0]))
        assert np.allclose(z, 1.0)

    def test_zero_diagonal_rejected(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            JacobiPreconditioner(A)


class TestBlockJacobi:
    def test_single_block_is_exact_solve(self):
        A = poisson_2d(5)
        M = BlockJacobiPreconditioner(A, num_blocks=1)
        rng = np.random.default_rng(0)
        r = rng.standard_normal(25)
        z = M.solve(r)
        assert np.allclose(A @ z, r, atol=1e-10)

    def test_more_blocks_than_rows_clamped(self):
        A = poisson_2d(3)
        M = BlockJacobiPreconditioner(A, num_blocks=100)
        assert M.num_blocks == 9

    def test_invalid_block_count(self):
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(poisson_2d(3), num_blocks=0)

    def test_improves_cg_iteration_count(self):
        from repro.solvers import CGSolver

        A = poisson_3d(8)
        b = np.ones(A.shape[0])
        plain = CGSolver(A, rtol=1e-8, max_iter=2000).solve(b)
        precond = CGSolver(
            A, preconditioner=BlockJacobiPreconditioner(A, 8), rtol=1e-8, max_iter=2000
        ).solve(b)
        assert precond.iterations < plain.iterations


class TestSSOR:
    def test_spd_system_preconditioning(self):
        A = poisson_2d(6)
        M = SSORPreconditioner(A, omega=1.2)
        r = np.ones(36)
        z = M.solve(r)
        assert np.all(np.isfinite(z))
        assert z @ r > 0  # SPD preconditioner keeps positivity of the form

    def test_omega_validation(self):
        with pytest.raises(ValueError):
            SSORPreconditioner(poisson_2d(4), omega=2.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["identity", "jacobi", "block_jacobi", "ilu0", "ic0", "ssor"]
    )
    def test_make_preconditioner(self, name):
        A = poisson_2d(5)
        M = make_preconditioner(name, A)
        z = M.solve(np.ones(25))
        assert z.shape == (25,)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_preconditioner("multigrid", poisson_2d(4))
