"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import poisson_system, kkt_system


@pytest.fixture(scope="session")
def poisson_small():
    """A small 3D Poisson problem (8^3 unknowns) shared across tests."""
    return poisson_system(8, seed=42)


@pytest.fixture(scope="session")
def poisson_medium():
    """A medium 3D Poisson problem (12^3 unknowns) for solver tests."""
    return poisson_system(12, seed=7)


@pytest.fixture(scope="session")
def kkt_small():
    """A small synthetic KKT (saddle-point) problem."""
    return kkt_system(5, dims=3, seed=11)


@pytest.fixture
def rng():
    """A deterministic NumPy random generator."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def smooth_vector():
    """A smooth, strictly nonzero vector typical of a converging solution."""
    t = np.linspace(0.0, 1.0, 20000)
    return np.sin(2 * np.pi * t) + 0.3 * np.cos(6 * np.pi * t) + 1.7


@pytest.fixture(scope="session")
def rough_vector():
    """A rough random vector (hard case for lossy compression)."""
    return np.random.default_rng(99).standard_normal(5000)
