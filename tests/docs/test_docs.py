"""Documentation integrity: the offline "docs build" run as a test.

The repository has no site generator dependency, so the docs build is
``docs/check_links.py`` — these tests execute it (plus a few structural
pins) so CI fails on a broken cross-reference the same way it fails on a
broken import.
"""

import importlib.util
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS = REPO_ROOT / "docs"


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", DOCS / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_markdown_links_resolve():
    checker = _load_checker()
    problems = checker.check_links()
    assert not problems, "\n".join(
        f"{doc.relative_to(REPO_ROOT)}: {link!r} ({reason})"
        for doc, link, reason in problems
    )


def test_checker_catches_broken_links(tmp_path, monkeypatch):
    """The checker is load-bearing: prove it actually flags breakage."""
    checker = _load_checker()
    docs = tmp_path / "docs"
    docs.mkdir()
    (tmp_path / "README.md").write_text(
        "[missing](docs/nope.md) and [bad anchor](docs/real.md#absent)\n"
    )
    (docs / "real.md").write_text("# Only Heading\n")
    monkeypatch.setattr(checker, "REPO_ROOT", tmp_path)
    reasons = sorted(reason for _, _, reason in checker.check_links())
    assert reasons == ["no heading for #absent", "target does not exist"]


def test_docs_tree_is_complete():
    for name in ("architecture.md", "payload-format.md", "performance.md"):
        assert (DOCS / name).is_file(), f"docs/{name} missing"
    readme = (REPO_ROOT / "README.md").read_text()
    for name in ("docs/architecture.md", "docs/payload-format.md"):
        assert name in readme, f"README does not link {name}"


def test_code_references_into_docs_resolve():
    """Source comments point at docs/ files; keep them honest."""
    pattern = re.compile(r"docs/([\w\-]+\.md)")
    for path in (REPO_ROOT / "src").rglob("*.py"):
        for name in pattern.findall(path.read_text()):
            assert (DOCS / name).is_file(), f"{path}: stale reference docs/{name}"
