"""Golden-report pins for the discrete-event engine.

The blocking+modeled axes are already byte-pinned against the frozen legacy
runner in ``test_equivalence.py``.  This suite extends the bit-identity net to
the axes the legacy runner never had — async write mode, FTI multilevel
recovery, bursty failure models, measured costing, chunked stores, and CG
resume-state payloads — by pinning ``FTRunReport.to_json()`` for a scenario
grid captured from the engine *before* the event-calendar refactor.

Regenerate (only when a behavior change is intentional) with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/engine/test_golden_reports.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cluster.machine import ClusterModel
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import FaultToleranceEngine, Scenario, run_failure_free
from repro.solvers import CGSolver, JacobiSolver

GOLDEN_PATH = Path(__file__).parent / "golden" / "reports.json"
_REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

# name -> (solver, scheme factory, scenario).  Every case runs at the bench
# configuration (2048 processes, MTTI 300 s, interval 120 s, seed 2018) so the
# grid exercises the same regimes the benchmark and anomaly suites watch.
_GRID = {
    "traditional-async": (
        "jacobi",
        lambda: CheckpointingScheme.traditional(),
        Scenario(write_mode="async"),
    ),
    "lossless-async": (
        "jacobi",
        lambda: CheckpointingScheme.lossless(),
        Scenario(write_mode="async"),
    ),
    "lossy-async": (
        "jacobi",
        lambda: CheckpointingScheme.lossy(1e-4),
        Scenario(write_mode="async"),
    ),
    "lossy-async-fti-weibull": (
        "jacobi",
        lambda: CheckpointingScheme.lossy(1e-4),
        Scenario(failure_model="weibull", recovery_levels="fti", write_mode="async"),
    ),
    "lossy-bursty-fti": (
        "jacobi",
        lambda: CheckpointingScheme.lossy(1e-4),
        Scenario(failure_model="bursty", recovery_levels="fti"),
    ),
    "traditional-async-bursty": (
        "jacobi",
        lambda: CheckpointingScheme.traditional(),
        Scenario(failure_model="bursty", write_mode="async"),
    ),
    "lossy-async-chunked": (
        "jacobi",
        lambda: CheckpointingScheme.lossy(1e-4),
        Scenario(write_mode="async", store_backend="chunked"),
    ),
    "lossy-modeled-async": (
        "jacobi",
        lambda: CheckpointingScheme.lossy(1e-4),
        Scenario(checkpoint_costing="modeled", write_mode="async"),
    ),
    "cg-lossy-async": (
        "cg",
        lambda: CheckpointingScheme.lossy(1e-4),
        Scenario(write_mode="async"),
    ),
}


@pytest.fixture(scope="module")
def golden_setup(poisson_small):
    solvers = {
        "jacobi": JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=100000),
        "cg": CGSolver(poisson_small.A, rtol=1e-8, max_iter=100000),
    }
    baselines = {
        name: run_failure_free(solver, poisson_small.b)
        for name, solver in solvers.items()
    }
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    return poisson_small, solvers, baselines, cluster, scale


def _run_case(golden_setup, name):
    problem, solvers, baselines, cluster, scale = golden_setup
    solver_name, scheme_factory, scenario = _GRID[name]
    solver = solvers[solver_name]
    baseline = baselines[solver_name]
    engine = FaultToleranceEngine(
        solver,
        problem.b,
        scheme_factory(),
        cluster=cluster,
        scale=scale,
        mtti_seconds=300.0,
        checkpoint_interval_seconds=120.0,
        iteration_seconds=cluster.calibrated_iteration_time(
            solver_name, baseline.iterations
        ),
        baseline=baseline,
        seed=2018,
        scenario=scenario,
    )
    return engine.run()


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.skip(f"golden fixture missing: {GOLDEN_PATH}")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.skipif(_REGEN, reason="regenerating fixture")
@pytest.mark.parametrize("name", sorted(_GRID))
def test_report_matches_golden(golden_setup, golden, name):
    report = _run_case(golden_setup, name)
    assert name in golden, f"{name} missing from fixture — regenerate"
    expected = golden[name]
    actual = json.loads(report.to_json())
    assert actual == expected, (
        f"{name}: FTRunReport drifted from the pre-refactor engine"
    )


@pytest.mark.skipif(not _REGEN, reason="set REPRO_REGEN_GOLDEN=1 to regenerate")
def test_regenerate_golden(golden_setup):
    payload = {
        name: json.loads(_run_case(golden_setup, name).to_json())
        for name in sorted(_GRID)
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
