"""Engine regression tests: give-up accounting, overdue checkpoints, retries."""

import pytest

from repro.cluster.failures import FailureInjector, ScriptedFailureModel
from repro.cluster.machine import ClusterModel
from repro.engine import FaultToleranceEngine as FaultTolerantRunner
from repro.engine import run_failure_free
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import Scenario
from repro.engine.events import (
    CheckpointTakenEvent,
    FailureHitEvent,
    GiveUpEvent,
    RecoveryEvent,
    RollbackEvent,
)
from repro.solvers import JacobiSolver
from repro.utils.timing import VirtualClock


@pytest.fixture(scope="module")
def jacobi_setup(poisson_small):
    solver = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=100000)
    baseline = run_failure_free(solver, poisson_small.b)
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    iteration_seconds = cluster.calibrated_iteration_time("jacobi", baseline.iterations)
    return poisson_small, solver, baseline, cluster, scale, iteration_seconds


def _engine(jacobi_setup, scheme, **kwargs):
    problem, solver, baseline, cluster, scale, iteration_seconds = jacobi_setup
    defaults = dict(
        cluster=cluster,
        scale=scale,
        iteration_seconds=iteration_seconds,
        baseline=baseline,
        seed=17,
    )
    defaults.update(kwargs)
    return FaultTolerantRunner(solver, problem.b, scheme, **defaults)


def _scripted(*times):
    return Scenario(failure_model="scripted", failure_params=(("times", tuple(times)),))


class TestGiveUpAccounting:
    def test_max_restarts_reports_progress_and_flag(self, jacobi_setup):
        _, _, baseline, _, _, iteration_seconds = jacobi_setup
        # One failure mid-run, zero permitted restarts: the run gives up at
        # the interrupted iteration instead of reporting zero progress.
        failure_time = 40.5 * iteration_seconds
        engine = _engine(
            jacobi_setup,
            CheckpointingScheme.lossy(1e-4),
            mtti_seconds=3600.0,
            checkpoint_interval_seconds=1e9,
            scenario=_scripted(failure_time),
            max_restarts=0,
            record_events=True,
        )
        report = engine.run()
        assert not report.converged
        assert report.gave_up
        assert report.info["gave_up"] is True
        assert report.info["give_up_reason"] == "max_restarts"
        # Progress is the iteration the failure interrupted (41), not 0.
        assert report.total_iterations == 41
        assert report.extra_iterations == 41 - baseline.iterations
        assert report.extra_iterations > -baseline.iterations
        give_ups = engine.events.of_type(GiveUpEvent)
        assert len(give_ups) == 1
        assert give_ups[0].iterations_reached == 41

    def test_max_total_iterations_reports_offset_and_nonnegative_extra(
        self, jacobi_setup
    ):
        _, _, baseline, _, _, iteration_seconds = jacobi_setup
        # Coarse lossy restarts + persistent failures: the checkpoint offset
        # marches past the cap, and the fixed accounting reports it (the old
        # code reported total_iterations=0, i.e. extra = -baseline).
        cap = baseline.iterations + 10
        interval = 40.0 * iteration_seconds
        times = tuple(100.0 * iteration_seconds * k for k in range(1, 400))
        engine = _engine(
            jacobi_setup,
            CheckpointingScheme.lossy(0.5),
            mtti_seconds=3600.0,
            checkpoint_interval_seconds=interval,
            scenario=_scripted(*times),
            max_total_iterations=cap,
        )
        report = engine.run()
        assert report.gave_up
        assert report.info["give_up_reason"] == "max_total_iterations"
        assert report.total_iterations >= cap
        assert report.extra_iterations >= 10

    def test_successful_run_has_no_gave_up_key(self, jacobi_setup):
        engine = _engine(
            jacobi_setup,
            CheckpointingScheme.lossy(1e-4),
            mtti_seconds=None,
            checkpoint_interval_seconds=600.0,
        )
        report = engine.run()
        assert report.converged
        assert not report.gave_up
        assert "gave_up" not in report.info


class TestOverdueCheckpoint:
    def test_due_checkpoint_retaken_immediately_after_rollback(self, jacobi_setup):
        _, _, _, _, _, iteration_seconds = jacobi_setup
        interval = 50.0 * iteration_seconds
        # The checkpoint comes due during iteration 51; land the failure in
        # the same iteration's compute window, before the checkpoint starts.
        failure_time = 50.6 * iteration_seconds
        engine = _engine(
            jacobi_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=3600.0,
            checkpoint_interval_seconds=interval,
            scenario=_scripted(failure_time),
            record_events=True,
        )
        report = engine.run()
        assert report.converged
        events = list(engine.events)
        (failure_index,) = [
            i for i, e in enumerate(events) if isinstance(e, FailureHitEvent)
        ]
        recovery = events[failure_index + 1]
        rollback = events[failure_index + 2]
        retaken = events[failure_index + 3]
        assert isinstance(recovery, RecoveryEvent)
        assert isinstance(rollback, RollbackEvent)
        # The overdue checkpoint is taken immediately after the rollback —
        # it is not pushed out a full interval.
        assert isinstance(retaken, CheckpointTakenEvent)
        assert retaken.iteration == 51
        assert retaken.time == pytest.approx(rollback.time + retaken.seconds)

    def test_not_yet_due_checkpoint_keeps_full_interval(self, jacobi_setup):
        _, _, _, _, _, iteration_seconds = jacobi_setup
        interval = 50.0 * iteration_seconds
        # Failure at iteration 11, well before the first due time.
        failure_time = 10.5 * iteration_seconds
        engine = _engine(
            jacobi_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=3600.0,
            checkpoint_interval_seconds=interval,
            scenario=_scripted(failure_time),
            record_events=True,
        )
        report = engine.run()
        assert report.converged
        rollbacks = engine.events.of_type(RollbackEvent)
        assert len(rollbacks) == 1
        first_checkpoint = engine.events.of_type(CheckpointTakenEvent)[0]
        # The first checkpoint starts a full interval after the rollback end.
        assert first_checkpoint.time - first_checkpoint.seconds >= (
            rollbacks[0].time + interval - 1.5 * iteration_seconds
        )


class TestRecoveryRetryBudget:
    def test_exhausted_budget_performs_final_uninterrupted_advance(self, jacobi_setup):
        engine = _engine(
            jacobi_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=3600.0,
            checkpoint_interval_seconds=600.0,
        )
        # A failure inside every one of the 16 retry windows of a 10 s phase.
        engine._clock = VirtualClock()
        engine._injector = FailureInjector(
            3600.0, model=ScriptedFailureModel([10.0 * k + 5.0 for k in range(16)])
        )
        engine._advance_with_failures(10.0, "recovery")
        # 16 interrupted attempts + one final uninterrupted advance.
        assert engine._injector.count == 16
        assert engine._clock.now == pytest.approx(170.0)
        assert engine._clock.time_in("recovery") == pytest.approx(170.0)

    def test_clean_phase_advances_once(self, jacobi_setup):
        engine = _engine(
            jacobi_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=3600.0,
            checkpoint_interval_seconds=600.0,
        )
        engine._clock = VirtualClock()
        engine._injector = FailureInjector(None)
        engine._advance_with_failures(12.0, "rollback")
        assert engine._clock.now == pytest.approx(12.0)


class TestEventLog:
    def test_events_off_by_default(self, jacobi_setup):
        engine = _engine(
            jacobi_setup,
            CheckpointingScheme.lossy(1e-4),
            mtti_seconds=None,
            checkpoint_interval_seconds=600.0,
        )
        engine.run()
        assert engine.events is None

    def test_compute_events_cover_all_iterations(self, jacobi_setup):
        from repro.engine.events import ComputeEvent

        engine = _engine(
            jacobi_setup,
            CheckpointingScheme.lossy(1e-4),
            mtti_seconds=None,
            checkpoint_interval_seconds=600.0,
            record_events=True,
        )
        report = engine.run()
        compute = engine.events.of_type(ComputeEvent)
        assert len(compute) == report.total_iterations
        times = [e.time for e in compute]
        assert times == sorted(times)
        checkpoints = engine.events.of_type(CheckpointTakenEvent)
        assert len(checkpoints) == report.num_checkpoints
