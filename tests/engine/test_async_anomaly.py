"""Regression tests for the traditional-poisson-async failure explosion.

An early ``BENCH_runner.json`` run recorded **2,455 failures** (vs 54 in
blocking mode) for the traditional scheme under the two-channel timeline.
The mechanism was a self-reinforcing cascade:

1. the traditional 80 GB payload drains slower than the checkpoint
   interval, so commits lag captures and failures discard in-flight drains
   — the rollback anchor goes stale and rollback spans grow past the MTTI;
2. interrupted recovery/rollback attempts are billed as whole phases while
   the failure process re-armed from the *stale arrival time*, so the
   injector accumulated a backlog of past-due ("latent") failures;
3. the backlog made every subsequent window — including each retaken
   checkpoint's capture — fail instantly, which pushed the checkpoint
   cadence away (+interval per failure) so no drain ever committed again.

The fixes under test: latent failures strike at the start of the window
that finds them in async mode (the process keeps pace with the billed
clock), an overdue checkpoint is retaken immediately after failure
handling, and captures respect the staging-slot backpressure cap
(``MachineSpec.async_staging_slots``).  Blocking-mode behavior is pinned
byte-identical to the legacy runner by ``test_equivalence.py`` and must not
change.
"""

from dataclasses import replace

import pytest

from repro.cluster.machine import BEBOP_LIKE, ClusterModel, MachineSpec
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import FaultToleranceEngine, Scenario, run_failure_free
from repro.engine.events import (
    CheckpointDeferredEvent,
    DrainStartedEvent,
    FailureHitEvent,
)
from repro.solvers import JacobiSolver

#: Expected failure-count ceiling per BENCH_runner series, ~1.5x headroom
#: over the observed post-fix counts (54 / 16 / 16 / 131 / 16 at seed 2018,
#: in the order below).  The pre-fix traditional-poisson-async run consumed
#: 2,455 failures — any regression of the cascade blows straight through
#: these bounds, while the tight headroom also catches slow drift.
#:
#: The one *expected* inflation: traditional-poisson-async sees ~2.4x the
#: blocking failure count (131 vs 54).  That ratio is inherent, not a bug:
#: the traditional 80 GB payload drains for ~157 s — longer than the 120 s
#: cadence — so staging backpressure defers captures and commits are rare.
#: Each failure therefore rolls back a long span and pays a long recovery,
#: stretching the virtual run length several-fold, and a Poisson process at
#: MTTI 300 s scores proportionally more arrivals over that longer exposure.
#: The latent-failure clamp then makes every backlogged arrival strike
#: (instead of silently rotting in the past), which is what keeps the count
#: at MTTI scale rather than the pre-fix thousands.
_FAILURE_CEILINGS = {
    "traditional-poisson": 80,
    "lossy-poisson": 25,
    "lossy-weibull-fti": 25,
    "traditional-poisson-async": 200,
    "lossy-poisson-async": 25,
}

_SERIES = {
    "traditional-poisson": (CheckpointingScheme.traditional, Scenario()),
    "lossy-poisson": (lambda: CheckpointingScheme.lossy(1e-4), Scenario()),
    "lossy-weibull-fti": (
        lambda: CheckpointingScheme.lossy(1e-4),
        Scenario(failure_model="weibull", recovery_levels="fti"),
    ),
    "traditional-poisson-async": (
        CheckpointingScheme.traditional,
        Scenario(write_mode="async"),
    ),
    "lossy-poisson-async": (
        lambda: CheckpointingScheme.lossy(1e-4),
        Scenario(write_mode="async"),
    ),
}


@pytest.fixture(scope="module")
def bench_setup(poisson_small):
    """The exact BENCH_runner configuration (paper scale, MTTI 300 s)."""
    solver = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=100000)
    baseline = run_failure_free(solver, poisson_small.b)
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    iteration_seconds = cluster.calibrated_iteration_time("jacobi", baseline.iterations)
    return poisson_small, solver, baseline, cluster, scale, iteration_seconds


def _run(bench_setup, scheme, scenario, *, cluster=None, record_events=False):
    problem, solver, baseline, default_cluster, scale, iteration_seconds = bench_setup
    engine = FaultToleranceEngine(
        solver,
        problem.b,
        scheme,
        cluster=cluster or default_cluster,
        scale=scale,
        mtti_seconds=300.0,
        checkpoint_interval_seconds=120.0,
        iteration_seconds=iteration_seconds,
        baseline=baseline,
        seed=2018,
        scenario=scenario,
        record_events=record_events,
    )
    return engine, engine.run()


class TestBenchSeriesFailureScale:
    @pytest.mark.parametrize("name", sorted(_SERIES))
    def test_failure_count_stays_at_mtti_scale(self, bench_setup, name):
        scheme_factory, scenario = _SERIES[name]
        _, report = _run(bench_setup, scheme_factory(), scenario)
        assert report.converged, name
        assert report.num_checkpoints > 0, name
        assert 0 < report.num_failures <= _FAILURE_CEILINGS[name], (
            f"{name}: {report.num_failures} failures — the async latent-"
            f"failure cascade may be back (2,455 failures pre-fix)"
        )

    def test_async_inflation_is_bounded(self, bench_setup):
        """The async/blocking failure ratio for the traditional scheme stays
        in the expected band (~2.4x at seed 2018; see _FAILURE_CEILINGS).

        More failures async than blocking is *expected* — the >interval
        drain time inflates the virtual run length — but the ratio blowing
        past ~3x would mean the cascade is creeping back."""
        _, blocking = _run(bench_setup, CheckpointingScheme.traditional(), Scenario())
        _, async_ = _run(
            bench_setup, CheckpointingScheme.traditional(), Scenario(write_mode="async")
        )
        assert async_.num_failures > blocking.num_failures
        assert async_.num_failures < 3 * blocking.num_failures

    def test_async_traditional_commits_checkpoints(self, bench_setup):
        """Pre-fix only 4 drains ever committed in the whole run."""
        _, report = _run(
            bench_setup, CheckpointingScheme.traditional(), Scenario(write_mode="async")
        )
        assert report.num_checkpoints >= 10


class TestLatentFailureClamp:
    def test_async_strike_times_are_monotone(self, bench_setup):
        """Latent failures strike inside the window that finds them, so the
        recorded failure times never run backwards on the async timeline."""
        engine, report = _run(
            bench_setup,
            CheckpointingScheme.traditional(),
            Scenario(write_mode="async"),
            record_events=True,
        )
        assert report.num_failures > 0
        hits = [e.time for e in engine.events.of_type(FailureHitEvent)]
        assert hits == sorted(hits)

    def test_blocking_mode_unchanged(self, bench_setup):
        """The clamp is async-only: blocking runs keep the legacy-pinned
        failure count (byte-identity is covered by test_equivalence.py)."""
        _, report = _run(bench_setup, CheckpointingScheme.traditional(), Scenario())
        assert report.num_failures == 54
        assert report.num_checkpoints == 15


class TestStagingBackpressure:
    def test_validation(self):
        with pytest.raises(ValueError, match="async_staging_slots"):
            MachineSpec(async_staging_slots=0)
        assert BEBOP_LIKE.async_staging_slots == 2

    def test_single_slot_serializes_captures(self, bench_setup):
        """With one staging buffer, a capture only happens when the channel
        is free: every drain starts the moment it is staged, and deferral
        events mark the backpressure episodes."""
        cluster = ClusterModel(
            num_processes=2048, spec=replace(BEBOP_LIKE, async_staging_slots=1)
        )
        engine, report = _run(
            bench_setup,
            CheckpointingScheme.traditional(),
            Scenario(write_mode="async"),
            cluster=cluster,
            record_events=True,
        )
        assert report.converged
        starts = list(engine.events.of_type(DrainStartedEvent))
        assert starts, "no drains were ever staged"
        for event in starts:
            assert event.drain_start == pytest.approx(event.time)
        deferrals = list(engine.events.of_type(CheckpointDeferredEvent))
        assert deferrals, "drain (~157 s) outlasts the interval (120 s): the"
        " single slot must defer at least one capture"
        assert all(d.pending == 1 for d in deferrals)

    def test_default_slots_allow_queueing(self, bench_setup):
        """Double buffering (the default) lets one drain queue behind
        another — the serialization semantics of test_async stay intact."""
        engine, report = _run(
            bench_setup,
            CheckpointingScheme.traditional(),
            Scenario(write_mode="async"),
            record_events=True,
        )
        starts = list(engine.events.of_type(DrainStartedEvent))
        assert any(e.drain_start > e.time + 1e-9 for e in starts)
