"""Frozen pre-refactor ``FaultTolerantRunner`` — the equivalence reference.

This is a verbatim copy of the dict-closure state machine that
``src/repro/core/runner.py`` contained before the discrete-event engine
refactor, with exactly the three accounting bugfixes of the same PR applied
(give-up paths report real progress + ``gave_up`` flag; an overdue
checkpoint is retaken after a failure's rollback instead of being pushed out
a full interval; an exhausted recovery-retry budget performs one final
uninterrupted advance).  It deliberately keeps the ``isinstance(...,
CGSolver)`` special cases and the mutable ``state`` dict that the engine
eliminated.

The engine-equivalence suite runs this implementation side by side with
:class:`repro.engine.core.FaultToleranceEngine` over a (scheme × solver ×
seed) grid and asserts byte-identical ``FTRunReport.to_json()`` output for
the default Poisson/PFS scenario.  Do not "improve" this file — its value is
that it does not change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.failures import FailureInjector
from repro.cluster.machine import ClusterModel
from repro.compression.base import CompressedBlob
from repro.core.model import young_interval
from repro.core.runner import BaselineRun, FTRunReport, run_failure_free
from repro.core.scale import ExperimentScale
from repro.core.schemes import CheckpointingScheme
from repro.solvers.base import IterationState, IterativeSolver, SolverInterrupt
from repro.solvers.cg import CGSolver
from repro.utils.rng import SeedLike
from repro.utils.timing import VirtualClock
from repro.utils.validation import check_positive

__all__ = ["LegacyFaultTolerantRunner"]


@dataclass
class _CheckpointState:
    """The runner's in-memory record of the last complete checkpoint."""

    iteration: int
    x_blob: CompressedBlob
    krylov_p: Optional[np.ndarray]
    krylov_rho: Optional[float]
    compression_ratio: float
    model_uncompressed_bytes: float
    model_compressed_bytes: float


class _FailureSignal(SolverInterrupt):
    """Internal interrupt raised by the runner's callback when a failure hits."""


class LegacyFaultTolerantRunner:
    """Pre-refactor runner: one solver, one scheme, injected failures."""

    def __init__(
        self,
        solver: IterativeSolver,
        b: np.ndarray,
        scheme: CheckpointingScheme,
        *,
        cluster: Optional[ClusterModel] = None,
        scale: Optional[ExperimentScale] = None,
        mtti_seconds: Optional[float] = 3600.0,
        checkpoint_interval_seconds: Optional[float] = None,
        estimated_checkpoint_seconds: Optional[float] = None,
        iteration_seconds: Optional[float] = None,
        method: Optional[str] = None,
        baseline: Optional[BaselineRun] = None,
        x0: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        max_restarts: int = 1000,
        max_total_iterations: Optional[int] = None,
    ) -> None:
        self.solver = solver
        self.b = np.asarray(b, dtype=np.float64)
        self.scheme = scheme
        self.cluster = cluster or ClusterModel()
        self.scale = scale or ExperimentScale(
            num_processes=self.cluster.num_processes, grid_n=2160
        )
        self.mtti_seconds = mtti_seconds
        self.method = method or solver.name
        self.iteration_seconds = (
            check_positive(iteration_seconds, "iteration_seconds")
            if iteration_seconds is not None
            else self.cluster.iteration_time(self.method)
        )
        if checkpoint_interval_seconds is None:
            if estimated_checkpoint_seconds is None:
                raise ValueError(
                    "provide either checkpoint_interval_seconds or "
                    "estimated_checkpoint_seconds (to apply Young's formula)"
                )
            if mtti_seconds is None:
                raise ValueError(
                    "Young's formula needs a finite MTTI; pass "
                    "checkpoint_interval_seconds explicitly for failure-free runs"
                )
            checkpoint_interval_seconds = young_interval(
                estimated_checkpoint_seconds, mtti_seconds
            )
        self.checkpoint_interval_seconds = check_positive(
            checkpoint_interval_seconds, "checkpoint_interval_seconds"
        )
        self.x0 = (
            np.zeros(self.solver.n, dtype=np.float64)
            if x0 is None
            else np.asarray(x0, dtype=np.float64).copy()
        )
        self.seed = seed
        self.baseline = baseline
        self.max_restarts = int(max_restarts)
        self.max_total_iterations = max_total_iterations
        self.b_norm = float(np.linalg.norm(self.b))

    # ------------------------------------------------------------------
    def run(self) -> FTRunReport:
        """Execute the failure-injected run and return its report."""
        if self.baseline is None:
            self.baseline = run_failure_free(self.solver, self.b, x0=self.x0)

        clock = VirtualClock()
        injector = FailureInjector(self.mtti_seconds, seed=self.seed)
        vectors = self.scheme.dynamic_vector_count(self.method)

        # Mutable loop state shared with the callback via a dict closure.
        state: Dict[str, object] = {
            "next_ckpt_time": self.checkpoint_interval_seconds,
            "last_checkpoint": None,
            "last_ckpt_completion_time": 0.0,
            "compute_since_ckpt": 0.0,
            "num_checkpoints": 0,
            "num_failures_handled_inline": 0,
            "ratios": [],
            "ckpt_times": [],
            "recovery_times": [],
            "residual_trace": [],
            "interrupted_at": None,
        }

        def handle_failure_inline(failure_time: float, phase: str) -> None:
            injector.consume(failure_time, phase)
            state["num_failures_handled_inline"] = (
                int(state["num_failures_handled_inline"]) + 1
            )
            # Bugfix: a checkpoint that was already due must be retaken after
            # the rollback, not rescheduled a full interval out.
            was_due = clock.now >= float(state["next_ckpt_time"])
            last: Optional[_CheckpointState] = state["last_checkpoint"]  # type: ignore[assignment]
            recovery_seconds = self._recovery_seconds(last, vectors)
            self._advance_with_failures(clock, injector, recovery_seconds, "recovery")
            state["recovery_times"].append(recovery_seconds)
            rollback_seconds = float(state["compute_since_ckpt"])
            self._advance_with_failures(clock, injector, rollback_seconds, "rollback")
            if was_due:
                state["next_ckpt_time"] = clock.now
            else:
                state["next_ckpt_time"] = clock.now + self.checkpoint_interval_seconds

        def callback(it_state: IterationState) -> None:
            start = clock.now
            clock.advance(self.iteration_seconds, "compute")
            state["compute_since_ckpt"] = (
                float(state["compute_since_ckpt"]) + self.iteration_seconds
            )
            state["residual_trace"].append(
                (it_state.iteration, it_state.residual_norm)
            )
            failure_time = injector.failure_in(start, clock.now)
            if failure_time is not None:
                if self.scheme.lossy:
                    injector.consume(failure_time, "compute")
                    state["interrupted_at"] = it_state.iteration
                    raise _FailureSignal(it_state.iteration, "failure during compute")
                handle_failure_inline(failure_time, "compute")
            if clock.now >= state["next_ckpt_time"] and self._checkpoint_allowed(
                it_state, overdue_seconds=clock.now - float(state["next_ckpt_time"])
            ):
                self._take_checkpoint(
                    it_state, clock, injector, state, vectors, handle_failure_inline
                )

        x_current = self.x0.copy()
        warm_start: Optional[Tuple[np.ndarray, float]] = None
        iteration_offset = 0
        restarts_from_scratch = 0
        converged = False
        total_iterations = 0
        restarts = 0
        gave_up = False
        give_up_reason: Optional[str] = None

        while True:
            interrupted = False
            try:
                result = self._solve_once(
                    x_current, warm_start, iteration_offset, callback
                )
            except _FailureSignal:
                interrupted = True
                result = None

            if not interrupted and result is not None:
                total_iterations = iteration_offset + result.iterations
                converged = result.converged
                if (
                    not converged
                    and self.max_total_iterations is not None
                    and total_iterations >= self.max_total_iterations
                ):
                    # Bugfix: the iteration budget ended the run — flag it.
                    gave_up = True
                    give_up_reason = "max_total_iterations"
                break

            # ---- failure path: recover from the last complete checkpoint ----
            restarts += 1
            if restarts > self.max_restarts:
                # Bugfix: report the progress actually made, not a stale zero.
                gave_up = True
                give_up_reason = "max_restarts"
                total_iterations = (
                    int(state["interrupted_at"])
                    if state["interrupted_at"] is not None
                    else iteration_offset
                )
                break
            last: Optional[_CheckpointState] = state["last_checkpoint"]  # type: ignore[assignment]
            recovery_seconds = self._recovery_seconds(last, vectors)
            self._advance_with_failures(clock, injector, recovery_seconds, "recovery")
            state["recovery_times"].append(recovery_seconds)

            if last is None:
                x_current = self.x0.copy()
                warm_start = None
                iteration_offset = 0
                restarts_from_scratch += 1
            else:
                compressor = self.scheme.compressor()
                x_current = np.asarray(
                    compressor.decompress(last.x_blob), dtype=np.float64
                )
                iteration_offset = last.iteration
                if (
                    self.scheme.checkpoint_krylov_state
                    and isinstance(self.solver, CGSolver)
                    and last.krylov_p is not None
                ):
                    warm_start = (last.krylov_p, float(last.krylov_rho))
                else:
                    warm_start = None
            if (
                self.max_total_iterations is not None
                and iteration_offset >= self.max_total_iterations
            ):
                gave_up = True
                give_up_reason = "max_total_iterations"
                total_iterations = iteration_offset
                break

        total_ckpt_seconds = clock.time_in("checkpoint")
        total_recovery_seconds = clock.time_in("recovery")
        productive_seconds = self.baseline.iterations * self.iteration_seconds
        ratios = state["ratios"] or [1.0]
        info: Dict[str, object] = {
            "iteration_seconds": self.iteration_seconds,
            "num_processes": self.cluster.num_processes,
            "mtti_seconds": self.mtti_seconds,
            "dynamic_vectors": vectors,
        }
        if gave_up:
            info["gave_up"] = True
            info["give_up_reason"] = give_up_reason
        return FTRunReport(
            scheme=self.scheme.name,
            method=self.method,
            converged=converged,
            total_iterations=total_iterations,
            baseline_iterations=self.baseline.iterations,
            num_failures=injector.count,
            num_checkpoints=int(state["num_checkpoints"]),
            num_restarts_from_scratch=restarts_from_scratch,
            total_seconds=clock.now,
            productive_seconds=productive_seconds,
            checkpoint_seconds=total_ckpt_seconds,
            recovery_seconds=total_recovery_seconds,
            checkpoint_interval_seconds=self.checkpoint_interval_seconds,
            mean_checkpoint_seconds=float(np.mean(state["ckpt_times"]))
            if state["ckpt_times"]
            else 0.0,
            mean_recovery_seconds=float(np.mean(state["recovery_times"]))
            if state["recovery_times"]
            else 0.0,
            mean_compression_ratio=float(np.mean(ratios)),
            residual_trace=list(state["residual_trace"]),
            info=info,
        )

    # -- internals -----------------------------------------------------------
    def _checkpoint_allowed(
        self, it_state: IterationState, *, overdue_seconds: float = 0.0
    ) -> bool:
        if not self.scheme.lossy:
            return True
        if "cycle_end" in it_state.extras:
            if bool(it_state.extras["cycle_end"]) or bool(
                it_state.extras.get("converged", False)
            ):
                return True
            return overdue_seconds > 0.25 * self.checkpoint_interval_seconds
        return True

    def _solve_once(self, x_current, warm_start, iteration_offset, callback):
        remaining = None
        if self.max_total_iterations is not None:
            remaining = max(1, self.max_total_iterations - iteration_offset)
        if isinstance(self.solver, CGSolver):
            return self.solver.solve(
                self.b,
                x0=x_current,
                callback=callback,
                iteration_offset=iteration_offset,
                warm_start=warm_start,
                max_iter=remaining,
            )
        return self.solver.solve(
            self.b,
            x0=x_current,
            callback=callback,
            iteration_offset=iteration_offset,
            max_iter=remaining,
        )

    def _take_checkpoint(
        self,
        it_state: IterationState,
        clock: VirtualClock,
        injector: FailureInjector,
        state: Dict[str, object],
        vectors: int,
        handle_failure_inline,
    ) -> None:
        compressor = self.scheme.checkpoint_compressor(
            residual_norm=it_state.residual_norm, b_norm=self.b_norm
        )
        x_blob = compressor.compress(it_state.x)
        ratio = x_blob.compression_ratio

        model_uncompressed = self.scale.vector_bytes * vectors
        model_compressed = model_uncompressed / max(ratio, 1e-12)
        ckpt_seconds = self.cluster.checkpoint_seconds(
            model_uncompressed,
            model_compressed,
            compressed=self.scheme.uses_compression,
        )

        start = clock.now
        clock.advance(ckpt_seconds, "checkpoint")
        state["ckpt_times"].append(ckpt_seconds)
        failure_time = injector.failure_in(start, clock.now)
        if failure_time is not None:
            # Incomplete checkpoint: do not update last_checkpoint.
            if self.scheme.lossy:
                injector.consume(failure_time, "checkpoint")
                state["interrupted_at"] = it_state.iteration
                state["next_ckpt_time"] = clock.now + self.checkpoint_interval_seconds
                raise _FailureSignal(it_state.iteration, "failure during checkpoint")
            handle_failure_inline(failure_time, "checkpoint")
            return

        krylov_p = None
        krylov_rho = None
        if self.scheme.checkpoint_krylov_state and "p" in it_state.extras:
            krylov_p = np.asarray(it_state.extras["p"], dtype=np.float64)
            krylov_rho = float(it_state.extras.get("rho", 0.0))
        state["last_checkpoint"] = _CheckpointState(
            iteration=it_state.iteration,
            x_blob=x_blob,
            krylov_p=krylov_p,
            krylov_rho=krylov_rho,
            compression_ratio=ratio,
            model_uncompressed_bytes=model_uncompressed,
            model_compressed_bytes=model_compressed,
        )
        state["num_checkpoints"] = int(state["num_checkpoints"]) + 1
        state["ratios"].append(ratio)
        state["last_ckpt_completion_time"] = clock.now
        state["compute_since_ckpt"] = 0.0
        state["next_ckpt_time"] = clock.now + self.checkpoint_interval_seconds

    def _recovery_seconds(self, last: Optional[_CheckpointState], vectors: int) -> float:
        if last is None:
            return self.cluster.recovery_seconds(
                0.0, 0.0, static_bytes=self.scale.static_bytes, compressed=False
            )
        return self.cluster.recovery_seconds(
            last.model_uncompressed_bytes,
            last.model_compressed_bytes,
            static_bytes=self.scale.static_bytes,
            compressed=self.scheme.uses_compression,
        )

    def _advance_with_failures(
        self,
        clock: VirtualClock,
        injector: FailureInjector,
        seconds: float,
        category: str,
    ) -> None:
        for _ in range(16):
            start = clock.now
            clock.advance(seconds, category)
            failure_time = injector.failure_in(start, clock.now)
            if failure_time is None:
                return
            injector.consume(failure_time, category)
        # Bugfix: budget exhausted — one final uninterrupted advance so the
        # phase genuinely completes.
        clock.advance(seconds, category)
