"""Trajectory-replay cache: byte-identity, caches, gates and counters.

The replay cache may change *when* solver numerics execute, never *what* the
engine reports: ``FTRunReport.to_json()`` must be byte-identical with replay
off, replay on against a cold cache, and replay on against a warm cache — the
hypothesis sweep drives that across scheme × failure-model × recovery-levels ×
write-mode (async cells exercise mid-drain failures, ``fti`` cells exercise
multilevel level-loss fallbacks).  The unit tests pin the cache mechanics
(LRU, byte caps, pinning), the ``REPRO_REPLAY`` escape hatch, the engine
kwarg override, the run counters the benchmark artifact reports, and the
checkpoint-payload memo that rides on the same switch.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.machine import ClusterModel
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import (
    FaultToleranceEngine,
    Scenario,
    clear_global_cache,
    get_global_cache,
    get_global_snapshot_memo,
    run_failure_free,
)
from repro.engine.replay import (
    REPLAY_ENV,
    ReplaySession,
    SnapshotMemo,
    TrajectoryCache,
    TrajectoryRecording,
    replay_enabled,
    scheme_fingerprint,
    solver_fingerprint,
)
from repro.solvers import CGSolver, GMRESSolver, JacobiSolver

SOLVER_FACTORIES = {
    "jacobi": lambda A: JacobiSolver(A, rtol=1e-4, max_iter=100000),
    "cg": lambda A: CGSolver(A, rtol=1e-6, max_iter=100000),
}

SCHEME_FACTORIES = {
    "traditional": CheckpointingScheme.traditional,
    "lossless": CheckpointingScheme.lossless,
    "lossy": lambda: CheckpointingScheme.lossy(1e-4),
}


@pytest.fixture(scope="module")
def setup(poisson_small):
    """Problem, cluster, scale and per-method baselines (computed once)."""
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    baselines = {}
    for name, factory in SOLVER_FACTORIES.items():
        solver = factory(poisson_small.A)
        baselines[name] = run_failure_free(solver, poisson_small.b)
    return poisson_small, cluster, scale, baselines


def _run(setup, method, scheme_name, scenario, seed, replay, solver=None):
    """One engine run under the failure-heavy bench configuration."""
    problem, cluster, scale, baselines = setup
    baseline = baselines[method]
    if solver is None:
        solver = SOLVER_FACTORIES[method](problem.A)
    # Without the calibrated per-iteration time the modeled timeline is too
    # fast for any failure to land — the replay paths would go untested.
    iteration_seconds = cluster.calibrated_iteration_time(
        "jacobi", baselines["jacobi"].iterations
    )
    engine = FaultToleranceEngine(
        solver,
        problem.b,
        SCHEME_FACTORIES[scheme_name](),
        cluster=cluster,
        scale=scale,
        mtti_seconds=300.0,
        checkpoint_interval_seconds=120.0,
        iteration_seconds=iteration_seconds,
        baseline=baseline,
        seed=seed,
        scenario=scenario,
        replay=replay,
    )
    report = engine.run()
    return report, engine


class TestByteIdentity:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        method=st.sampled_from(sorted(SOLVER_FACTORIES)),
        scheme_name=st.sampled_from(sorted(SCHEME_FACTORIES)),
        failure_model=st.sampled_from(["poisson", "weibull", "bursty"]),
        recovery_levels=st.sampled_from(["pfs", "fti"]),
        write_mode=st.sampled_from(["blocking", "async"]),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_reports_identical_off_cold_warm(
        self, setup, method, scheme_name, failure_model,
        recovery_levels, write_mode, seed,
    ):
        scenario = Scenario(
            failure_model=failure_model,
            recovery_levels=recovery_levels,
            write_mode=write_mode,
        )
        clear_global_cache()
        off, _ = _run(setup, method, scheme_name, scenario, seed, replay=False)
        solver = SOLVER_FACTORIES[method](setup[0].A)
        cold, _ = _run(
            setup, method, scheme_name, scenario, seed, replay=True, solver=solver
        )
        warm, _ = _run(
            setup, method, scheme_name, scenario, seed, replay=True, solver=solver
        )
        assert off.to_json() == cold.to_json() == warm.to_json()

    def test_async_mid_drain_failures_replay_identically(self, setup):
        """The heaviest async case: every failure lands mid-drain or deferred."""
        scenario = Scenario(write_mode="async")
        clear_global_cache()
        off, _ = _run(setup, "jacobi", "traditional", scenario, 2018, False)
        solver = SOLVER_FACTORIES["jacobi"](setup[0].A)
        cold, _ = _run(setup, "jacobi", "traditional", scenario, 2018, True, solver)
        warm, eng = _run(setup, "jacobi", "traditional", scenario, 2018, True, solver)
        assert off.num_failures > 0
        assert off.to_json() == cold.to_json() == warm.to_json()
        assert eng.replay_hits > 0
        assert eng.replay_iterations_saved > 0

    def test_fti_level_loss_fallbacks_replay_identically(self, setup):
        scenario = Scenario(failure_model="weibull", recovery_levels="fti")
        clear_global_cache()
        off, _ = _run(setup, "jacobi", "lossy", scenario, 2018, False)
        solver = SOLVER_FACTORIES["jacobi"](setup[0].A)
        cold, _ = _run(setup, "jacobi", "lossy", scenario, 2018, True, solver)
        warm, eng = _run(setup, "jacobi", "lossy", scenario, 2018, True, solver)
        assert off.to_json() == cold.to_json() == warm.to_json()
        assert eng.replay_hits > 0

    def test_cross_scenario_catchup_is_bitwise(self, setup):
        """A recording made under blocking writes serves the async schedule.

        The two scenarios checkpoint at different iterations, so the async
        replay must materialize boundary states the blocking recording never
        captured — via numeric catch-up, which has to be bit-exact.
        """
        blocking = Scenario()
        asynchronous = Scenario(write_mode="async")
        clear_global_cache()
        off, _ = _run(setup, "jacobi", "traditional", asynchronous, 2018, False)
        solver = SOLVER_FACTORIES["jacobi"](setup[0].A)
        _run(setup, "jacobi", "traditional", blocking, 2018, True, solver)
        replayed, eng = _run(
            setup, "jacobi", "traditional", asynchronous, 2018, True, solver
        )
        assert eng.replay_hits > 0
        assert off.to_json() == replayed.to_json()


class TestSwitches:
    def test_env_gate(self, monkeypatch):
        for value in ("0", "off", "false", "no", "disabled", " OFF "):
            monkeypatch.setenv(REPLAY_ENV, value)
            assert not replay_enabled()
        for value in ("", "1", "on", "yes"):
            monkeypatch.setenv(REPLAY_ENV, value)
            assert replay_enabled()
        monkeypatch.delenv(REPLAY_ENV)
        assert replay_enabled()

    def test_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv(REPLAY_ENV, "off")
        assert replay_enabled(True)
        monkeypatch.delenv(REPLAY_ENV)
        assert not replay_enabled(False)

    def test_disabled_engine_reports_zero_counters(self, setup):
        clear_global_cache()
        _, engine = _run(setup, "jacobi", "traditional", Scenario(), 2018, False)
        assert engine.replay_hits == 0
        assert engine.replay_iterations_saved == 0

    def test_warm_engine_reports_counters(self, setup):
        clear_global_cache()
        solver = SOLVER_FACTORIES["jacobi"](setup[0].A)
        _run(setup, "jacobi", "traditional", Scenario(), 2018, True, solver)
        _, engine = _run(setup, "jacobi", "traditional", Scenario(), 2018, True, solver)
        assert engine.replay_hits >= 1
        assert engine.replay_iterations_saved > 0


class TestTrajectoryCache:
    def _recording(self, key, nbytes):
        rec = TrajectoryRecording(
            key=key, limit=100, solver_name="t", start_x=np.zeros(1),
            start_resume=None,
        )
        rec.nbytes = nbytes
        return rec

    def test_lru_entry_cap(self):
        cache = TrajectoryCache(max_entries=2, max_bytes=1 << 30)
        a, b, c = (self._recording(bytes([i]), 10) for i in range(3))
        cache.put(a)
        cache.put(b)
        assert cache.get(a.key) is a  # refresh a: b is now oldest
        cache.put(c)
        assert cache.get(b.key) is None
        assert cache.get(a.key) is a
        assert cache.evictions == 1

    def test_byte_cap(self):
        cache = TrajectoryCache(max_entries=100, max_bytes=25)
        a, b, c = (self._recording(bytes([i]), 10) for i in range(3))
        for rec in (a, b, c):
            cache.put(rec)
        assert cache.get(a.key) is None
        assert cache.total_bytes <= 25

    def test_pinned_entries_survive_eviction(self):
        cache = TrajectoryCache(max_entries=1, max_bytes=1 << 30)
        a, b = (self._recording(bytes([i]), 10) for i in range(2))
        cache.put(a)
        cache.pin(a.key)
        cache.put(b)
        assert cache.get(a.key) is a  # pinned: b was evicted instead
        cache.unpin(a.key)
        cache.put(b)
        assert cache.get(a.key) is None


class TestSnapshotMemoAndFingerprints:
    def test_memo_lru_and_byte_cap(self):
        class Snap:
            def __init__(self, n):
                self.payload = b"x" * n
                self.reconstructions = {}

        memo = SnapshotMemo(max_entries=2, max_bytes=1 << 30)
        memo.put(b"a", Snap(1))
        memo.put(b"b", Snap(1))
        assert memo.get(b"a") is not None
        memo.put(b"c", Snap(1))
        assert memo.get(b"b") is None
        assert memo.evictions == 1

        small = SnapshotMemo(max_entries=100, max_bytes=600)
        for key in (b"a", b"b", b"c"):
            small.put(key, Snap(200))
        assert small.get(b"a") is None
        assert small.total_bytes <= 600

    def test_warm_run_serves_payloads_from_memo(self, setup):
        clear_global_cache()
        solver = SOLVER_FACTORIES["jacobi"](setup[0].A)
        memo = get_global_snapshot_memo()
        _run(setup, "jacobi", "lossless", Scenario(), 2018, True, solver)
        misses = memo.misses
        hits_before = memo.hits
        _run(setup, "jacobi", "lossless", Scenario(), 2018, True, solver)
        assert memo.misses == misses  # nothing recompressed
        assert memo.hits > hits_before

    def test_scheme_fingerprint_distinguishes_configurations(self):
        prints = {
            scheme_fingerprint(CheckpointingScheme.traditional()),
            scheme_fingerprint(CheckpointingScheme.lossless()),
            scheme_fingerprint(CheckpointingScheme.lossless(level=9)),
            scheme_fingerprint(CheckpointingScheme.lossy(1e-4)),
            scheme_fingerprint(CheckpointingScheme.lossy(1e-2)),
            scheme_fingerprint(CheckpointingScheme.lossy(1e-4, adaptive=True)),
        }
        assert len(prints) == 6
        # Equal configurations hash equal (the cross-run sharing contract).
        assert scheme_fingerprint(
            CheckpointingScheme.lossy(1e-4)
        ) == scheme_fingerprint(CheckpointingScheme.lossy(1e-4))

    def test_solver_fingerprint_covers_matrix_and_criterion(self, poisson_small):
        a = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=100)
        b = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=100)
        assert solver_fingerprint(a) == solver_fingerprint(b)
        assert solver_fingerprint(a) != solver_fingerprint(
            JacobiSolver(poisson_small.A, rtol=1e-5, max_iter=100)
        )
        other = poisson_small.A.copy()
        other = other.tolil()
        other[0, 0] = other[0, 0] * 1.5
        assert solver_fingerprint(a) != solver_fingerprint(
            JacobiSolver(other.tocsr(), rtol=1e-4, max_iter=100)
        )

    def test_restart_gmres_fingerprints_differ(self, poisson_small):
        a = GMRESSolver(poisson_small.A, rtol=1e-6, max_iter=100, restart=20)
        b = GMRESSolver(poisson_small.A, rtol=1e-6, max_iter=100, restart=30)
        assert solver_fingerprint(a) != solver_fingerprint(b)


class TestSessionInternals:
    def test_different_rhs_split_the_key_space(self, poisson_small):
        solver = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=100)
        one = ReplaySession(solver, poisson_small.b)
        other = ReplaySession(solver, poisson_small.b * 2.0)
        assert one.context != other.context

    def test_bitwise_resume_declarations(self, poisson_small):
        """The taxonomy the extension/catch-up logic relies on (see
        docs/architecture.md): stationary and BiCGSTAB resumes are bitwise,
        CG recomputes its residual on resume and must not be extended."""
        from repro.solvers import BiCGStabSolver

        assert JacobiSolver(poisson_small.A).checkpoint_spec.bitwise_resume
        assert BiCGStabSolver(poisson_small.A).checkpoint_spec.bitwise_resume
        assert not CGSolver(poisson_small.A).checkpoint_spec.bitwise_resume
        spec = GMRESSolver(poisson_small.A).checkpoint_spec
        assert spec.bitwise_resume and spec.restart_boundary_only
