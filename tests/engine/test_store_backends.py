"""Pluggable store backends: engine pricing, bitwise restores, campaign dedup."""

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointPipeline,
    ChunkedStore,
    FileCheckpointStore,
    MemoryCheckpointStore,
    SimulatedObjectStore,
)
from repro.cluster.machine import ClusterModel
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import FaultToleranceEngine, Scenario, run_failure_free
from repro.solvers import JacobiSolver


@pytest.fixture(scope="module")
def backend_setup(poisson_small):
    solver = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=100000)
    baseline = run_failure_free(solver, poisson_small.b)
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    iteration_seconds = cluster.calibrated_iteration_time("jacobi", baseline.iterations)
    return poisson_small, solver, baseline, cluster, scale, iteration_seconds


def _run(backend_setup, scenario, seed=11, **kwargs):
    problem, solver, baseline, cluster, scale, iteration_seconds = backend_setup
    defaults = dict(
        cluster=cluster,
        scale=scale,
        mtti_seconds=400.0,
        checkpoint_interval_seconds=150.0,
        iteration_seconds=iteration_seconds,
        baseline=baseline,
        seed=seed,
        scenario=scenario,
    )
    defaults.update(kwargs)
    engine = FaultToleranceEngine(
        solver, problem.b, CheckpointingScheme.lossy(1e-4), **defaults
    )
    return engine, engine.run()


def _backend_store(name, tmp_path):
    if name == "memory":
        return MemoryCheckpointStore()
    if name == "disk":
        return FileCheckpointStore(tmp_path / "ckpts")
    return ChunkedStore(SimulatedObjectStore(), chunk_size=4096)


class TestBitwiseRestores:
    @pytest.mark.parametrize("scheme_name", ["traditional", "lossless"])
    def test_restore_identical_across_backends(
        self, poisson_small, tmp_path, scheme_name
    ):
        """The same snapshot restores bitwise-identically from every backend."""
        solver = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=100000)
        states = []
        solver.solve(poisson_small.b, callback=lambda s: states.append(s), max_iter=9)
        state = states[-1]
        scheme = getattr(CheckpointingScheme, scheme_name)()

        restored = {}
        for name in ("memory", "disk", "chunked"):
            store = _backend_store(name, tmp_path / name)
            pipeline = CheckpointPipeline(scheme, solver=solver, store=store)
            snap = pipeline.snapshot(
                state.x,
                iteration=state.iteration,
                resume_state=solver.capture_resume_state(state),
                residual_norm=state.residual_norm,
                b_norm=1.0,
            )
            pipeline.commit(snap)
            restored[name] = pipeline.restore(snap.checkpoint_id)

        reference = restored["memory"]
        for name in ("disk", "chunked"):
            assert np.array_equal(restored[name].x, reference.x)
            assert restored[name].iteration == reference.iteration
            if reference.resume_state is not None:
                for key, vec in reference.resume_state.vectors.items():
                    assert np.array_equal(restored[name].resume_state.vectors[key], vec)


class TestEngineBackends:
    @pytest.mark.parametrize("backend", ["memory", "disk", "object", "chunked"])
    def test_run_converges_and_reports_backend(self, backend_setup, backend):
        scenario = Scenario(
            failure_model="scripted",
            failure_params=(("times", (200.0, 900.0)),),
            store_backend=backend,
        )
        _, report = _run(backend_setup, scenario)
        assert report.converged
        assert report.num_failures == 2
        assert report.info["store_backend"] == backend

    def test_default_backend_reports_no_store_keys(self, backend_setup):
        scenario = Scenario(
            failure_model="scripted", failure_params=(("times", (200.0,)),)
        )
        _, report = _run(backend_setup, scenario)
        assert "store_backend" not in report.info
        assert "dedup_ratio" not in report.info

    def test_backend_pricing_is_distinct(self, backend_setup):
        """Each profile prices the same write traffic differently."""
        times = {}
        for backend in ("pfs", "memory", "disk", "object"):
            scenario = Scenario(
                failure_model="scripted",
                failure_params=(("times", (200.0,)),),
                store_backend=backend,
            )
            _, report = _run(backend_setup, scenario)
            times[backend] = report.checkpoint_seconds
        assert len(set(times.values())) == 4
        assert times["memory"] < times["disk"] < times["pfs"] < times["object"]

    def test_backend_runs_are_deterministic(self, backend_setup):
        """The same cell on the same backend reproduces its report exactly."""
        scenario_kwargs = dict(
            failure_model="scripted", failure_params=(("times", (200.0,)),)
        )
        _, first = _run(
            backend_setup, Scenario(store_backend="chunked", **scenario_kwargs)
        )
        _, second = _run(
            backend_setup, Scenario(store_backend="chunked", **scenario_kwargs)
        )
        assert first.to_dict() == second.to_dict()

    def test_chunked_backend_reports_dedup(self, backend_setup):
        scenario = Scenario(
            failure_model="scripted",
            failure_params=(("times", (200.0,)),),
            recovery_levels="fti",
            store_backend="chunked",
        )
        _, report = _run(backend_setup, scenario)
        info = report.info
        assert info["store_backend"] == "chunked"
        assert info["unique_bytes"] > 0
        assert info["logical_bytes"] >= info["unique_bytes"]
        # PARTNER-level replicas share the chunk pool with the checkpoints
        # they replicate, so dedup is guaranteed, not incidental.
        assert info["dedup_ratio"] is None or info["dedup_ratio"] > 1.0
        assert info["logical_bytes"] > info["unique_bytes"]

    def test_chunked_backend_cheaper_than_object(self, backend_setup):
        """Dedup prices writes at the unique-bytes fraction of the object store."""
        kwargs = dict(
            failure_model="scripted",
            failure_params=(("times", (200.0,)),),
            recovery_levels="fti",
        )
        _, chunked = _run(backend_setup, Scenario(store_backend="chunked", **kwargs))
        _, plain = _run(backend_setup, Scenario(store_backend="object", **kwargs))
        assert chunked.checkpoint_seconds <= plain.checkpoint_seconds

    def test_async_drain_priced_through_profile(self, backend_setup):
        kwargs = dict(
            failure_model="scripted",
            failure_params=(("times", (500.0,)),),
            write_mode="async",
        )
        _, memory = _run(backend_setup, Scenario(store_backend="memory", **kwargs))
        _, obj = _run(backend_setup, Scenario(store_backend="object", **kwargs))
        assert memory.info["io_drain_seconds"] < obj.info["io_drain_seconds"]


class TestCampaignBackendCell:
    def test_chunked_delta_cell_reports_dedup_ratio(self):
        """Acceptance: async (delta) + chunked campaign cell has dedup_ratio > 1."""
        from repro.campaign.execute import execute_cell
        from repro.campaign.spec import RunSpec

        cell = RunSpec(
            kind="ft",
            method="jacobi",
            scheme="lossy",
            write_mode="async",
            recovery_levels="fti",
            store_backend="chunked",
            num_processes=256,
            mtti_seconds=3600.0,
            grid_n=10,
        )
        result = execute_cell(cell)
        assert result["store_backend"] == "chunked"
        info = result["report"]["info"]
        assert info["store_backend"] == "chunked"
        assert info["dedup_ratio"] is None or info["dedup_ratio"] > 1.0
        assert info["logical_bytes"] > info["unique_bytes"] > 0

    def test_pfs_cell_result_unchanged_shape(self):
        from repro.campaign.execute import execute_cell
        from repro.campaign.spec import RunSpec

        cell = RunSpec(kind="ft", num_processes=256, grid_n=10)
        result = execute_cell(cell)
        assert result["store_backend"] == "pfs"
        assert "store_backend" not in result["report"]["info"]
