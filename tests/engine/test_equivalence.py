"""Engine ↔ pre-refactor runner equivalence (byte-identical reports).

For the modeled-cost paper regime (Poisson failure arrivals, PFS-only
recovery, ``checkpoint_costing="modeled"``) the discrete-event engine must
reproduce the pre-refactor runner's ``FTRunReport.to_json()`` byte for byte
across a (scheme × solver × seed) grid — the checkpoint-pipeline refactor
moves the machinery, not the physics.  The reference implementation is the
frozen copy in ``_legacy_runner.py``.  (The *default* scenario now prices
checkpoints from measured pipeline payloads; its divergence from modeled
costing is covered by the measured-costing engine tests.)
"""

import numpy as np
import pytest

from _legacy_runner import LegacyFaultTolerantRunner

from repro.cluster.machine import ClusterModel
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import FaultToleranceEngine, Scenario, run_failure_free
from repro.engine.core import FaultToleranceEngine as FaultTolerantRunner
from repro.solvers import BiCGStabSolver, CGSolver, GMRESSolver, JacobiSolver

SEEDS = (0, 1, 2)

#: The frozen legacy runner priced checkpoints from the modeled estimate.
MODELED = Scenario(checkpoint_costing="modeled")

SOLVER_FACTORIES = {
    "jacobi": lambda A: JacobiSolver(A, rtol=1e-4, max_iter=50000),
    "cg": lambda A: CGSolver(A, rtol=1e-7, max_iter=50000),
    "gmres": lambda A: GMRESSolver(A, rtol=7e-5, max_iter=50000),
    "bicgstab": lambda A: BiCGStabSolver(A, rtol=1e-7, max_iter=50000),
}

SCHEME_FACTORIES = {
    "traditional": CheckpointingScheme.traditional,
    "lossless": CheckpointingScheme.lossless,
    "lossy": lambda: CheckpointingScheme.lossy(1e-4),
}


@pytest.fixture(scope="module")
def grid_setup(poisson_small):
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    baselines = {}
    solvers = {}
    for name, factory in SOLVER_FACTORIES.items():
        solver = factory(poisson_small.A)
        solvers[name] = solver
        baselines[name] = run_failure_free(solver, poisson_small.b)
    return poisson_small, cluster, scale, solvers, baselines


def _common_kwargs(problem, cluster, scale, method, baseline, seed):
    iteration_seconds = cluster.calibrated_iteration_time(method, baseline.iterations)
    return dict(
        cluster=cluster,
        scale=scale,
        mtti_seconds=600.0,
        estimated_checkpoint_seconds=40.0,
        iteration_seconds=iteration_seconds,
        method=method,
        baseline=baseline,
        seed=seed,
    )


def _engine_kwargs(kwargs):
    """The legacy runner has no scenario parameter; the engine pins modeled."""
    return dict(kwargs, scenario=MODELED)


@pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
@pytest.mark.parametrize("method", sorted(SOLVER_FACTORIES))
def test_reports_byte_identical(grid_setup, scheme_name, method):
    problem, cluster, scale, solvers, baselines = grid_setup
    failures_seen = 0
    for seed in SEEDS:
        kwargs = _common_kwargs(
            problem, cluster, scale, method, baselines[method], seed
        )
        legacy_report = LegacyFaultTolerantRunner(
            solvers[method], problem.b, SCHEME_FACTORIES[scheme_name](), **kwargs
        ).run()
        engine_report = FaultTolerantRunner(
            solvers[method],
            problem.b,
            SCHEME_FACTORIES[scheme_name](),
            **_engine_kwargs(kwargs),
        ).run()
        assert engine_report.to_json() == legacy_report.to_json()
        failures_seen += engine_report.num_failures
    # The grid must actually exercise the failure paths, not just agree on
    # failure-free runs.
    assert failures_seen > 0


def test_failure_free_runs_identical(grid_setup):
    problem, cluster, scale, solvers, baselines = grid_setup
    kwargs = _common_kwargs(problem, cluster, scale, "jacobi", baselines["jacobi"], 3)
    kwargs.update(mtti_seconds=None, checkpoint_interval_seconds=600.0)
    kwargs.pop("estimated_checkpoint_seconds", None)
    legacy = LegacyFaultTolerantRunner(
        solvers["jacobi"], problem.b, CheckpointingScheme.lossy(1e-4), **kwargs
    ).run()
    engine = FaultTolerantRunner(
        solvers["jacobi"],
        problem.b,
        CheckpointingScheme.lossy(1e-4),
        **_engine_kwargs(kwargs),
    ).run()
    assert engine.to_json() == legacy.to_json()
    assert engine.num_failures == 0


def test_give_up_paths_identical(grid_setup):
    """Both give-up paths agree byte-for-byte between engine and reference."""
    problem, cluster, scale, solvers, baselines = grid_setup
    baseline = baselines["jacobi"]
    for extra in (
        {"max_restarts": 0},
        {"max_total_iterations": max(2, baseline.iterations // 2)},
    ):
        for seed in SEEDS:
            kwargs = _common_kwargs(problem, cluster, scale, "jacobi", baseline, seed)
            kwargs["mtti_seconds"] = 120.0
            kwargs.update(extra)
            legacy = LegacyFaultTolerantRunner(
                solvers["jacobi"], problem.b, CheckpointingScheme.lossy(1e-4), **kwargs
            ).run()
            engine = FaultTolerantRunner(
                solvers["jacobi"],
                problem.b,
                CheckpointingScheme.lossy(1e-4),
                **_engine_kwargs(kwargs),
            ).run()
            assert engine.to_json() == legacy.to_json()


def test_no_cg_isinstance_in_engine_or_runner_shim():
    """The engine is solver-agnostic: no CGSolver special cases remain."""
    import inspect

    import repro.core.runner as runner_module
    import repro.engine.core as engine_module

    for module in (engine_module, runner_module):
        source = inspect.getsource(module)
        assert "isinstance(self.solver, CGSolver)" not in source
        assert "CGSolver" not in source


def test_engine_is_the_runner():
    """The deprecated compat shim still resolves to the engine (and warns)."""
    import repro.core.runner as runner_module

    with pytest.warns(DeprecationWarning, match="repro.engine"):
        shim = runner_module.FaultTolerantRunner
    assert shim is FaultToleranceEngine


def test_protocol_capture_matches_legacy_krylov_checkpoint(grid_setup):
    """The generic capture stores exactly what the legacy CG path stored."""
    problem, _, _, solvers, _ = grid_setup
    solver = solvers["cg"]
    captured = []
    solver.solve(problem.b, callback=lambda s: captured.append(s), max_iter=5)
    state = captured[-1]
    resume = solver.capture_resume_state(state)
    assert resume is not None
    np.testing.assert_array_equal(resume.vectors["p"], np.asarray(state.extras["p"]))
    assert resume.scalars["rho"] == float(state.extras["rho"])
