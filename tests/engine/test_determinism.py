"""Property-based determinism tests for the event-calendar engine.

The calendar's contract is that a run is a pure function of its inputs:
two engines built from the same configuration and seed must narrate the
*identical* event sequence — same events, same times, same global sequence
numbers (including every ``(time, seq)`` tie-break).  Hypothesis drives the
configuration space (seed, MTTI, cadence, write mode, failure model) so the
guarantee is exercised well beyond the handful of pinned fixtures.

A second suite drives :class:`~repro.engine.calendar.EventCalendar`
directly: whatever mix of times (duplicates included) is posted, events pop
in ``(time, seq)`` order, i.e. simultaneous events resolve in posting
order.

Note that a recorded :class:`~repro.engine.events.EventLog` is *not*
globally timestamp-sorted — async drain completions are recorded at the
next settle point, later than their completion times — but its ``seq``
stamps are strictly increasing: recording order is dispatch order.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machine import ClusterModel
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import FaultToleranceEngine, Scenario, run_failure_free
from repro.engine.calendar import EventCalendar, EventKind
from repro.solvers import JacobiSolver


@st.composite
def engine_configs(draw):
    return {
        "seed": draw(st.integers(min_value=0, max_value=10_000)),
        "mtti": draw(st.sampled_from([200.0, 300.0, 900.0])),
        "interval": draw(st.sampled_from([60.0, 120.0])),
        "write_mode": draw(st.sampled_from(["blocking", "async"])),
        "failure_model": draw(st.sampled_from(["poisson", "weibull", "bursty"])),
    }


class TestSameSeedSameTimeline:
    @classmethod
    def setup_class(cls):
        from repro.sparse import poisson_system

        cls.problem = poisson_system(8, seed=42)
        cls.solver = JacobiSolver(cls.problem.A, rtol=1e-4, max_iter=100000)
        cls.baseline = run_failure_free(cls.solver, cls.problem.b)
        cls.cluster = ClusterModel(num_processes=2048)
        cls.scale = paper_scale(2048)
        cls.iteration_seconds = cls.cluster.calibrated_iteration_time(
            "jacobi", cls.baseline.iterations
        )

    def _run(self, config):
        engine = FaultToleranceEngine(
            self.solver,
            self.problem.b,
            CheckpointingScheme.lossy(1e-4),
            cluster=self.cluster,
            scale=self.scale,
            mtti_seconds=config["mtti"],
            checkpoint_interval_seconds=config["interval"],
            iteration_seconds=self.iteration_seconds,
            baseline=self.baseline,
            seed=config["seed"],
            scenario=Scenario(
                write_mode=config["write_mode"],
                failure_model=config["failure_model"],
            ),
            record_events=True,
        )
        report = engine.run()
        return engine, report

    @given(config=engine_configs())
    @settings(max_examples=12, deadline=None)
    def test_same_seed_runs_are_identical(self, config):
        engine_a, report_a = self._run(config)
        engine_b, report_b = self._run(config)
        log_a, log_b = list(engine_a.events), list(engine_b.events)
        assert len(log_a) == len(log_b)
        for event_a, event_b in zip(log_a, log_b):
            # Dataclass equality ignores ``seq`` (compare=False); the seq
            # stamps — and with them every tie-break — must match too.
            assert event_a == event_b
            assert event_a.seq == event_b.seq
        assert engine_a.events_processed == engine_b.events_processed
        assert report_a.to_json() == report_b.to_json()

    @given(config=engine_configs())
    @settings(max_examples=8, deadline=None)
    def test_seq_stamps_strictly_increase(self, config):
        """Recording order is dispatch order: seq stamps strictly increase
        (the log itself need not be timestamp-sorted — async drains are
        recorded at the settle point, after later compute events)."""
        engine, _ = self._run(config)
        seqs = [event.seq for event in engine.events]
        assert all(seq >= 0 for seq in seqs)
        assert all(a < b for a, b in zip(seqs, seqs[1:]))
        assert engine.events_processed > max(seqs)


class TestCalendarOrdering:
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pops_in_time_seq_order(self, times):
        calendar = EventCalendar()
        posted = [
            calendar.post(time, EventKind.COMPUTE_PHASE_END, payload=index)
            for index, time in enumerate(times)
        ]
        drained = list(calendar.pop_due(math.inf))
        assert len(drained) == len(posted)
        keys = [(event.time, event.seq) for event in drained]
        assert keys == sorted(keys)
        # Ties resolve in posting order: payload index tracks posting.
        for earlier, later in zip(drained, drained[1:]):
            if earlier.time == later.time:
                assert earlier.payload < later.payload

    @given(
        times=st.lists(
            st.sampled_from([0.0, 1.0, 2.0, 3.0]), min_size=2, max_size=40
        ),
        cancel_every=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_cancelled_events_never_surface(self, times, cancel_every):
        calendar = EventCalendar()
        live = []
        for index, time in enumerate(times):
            event = calendar.post(time, EventKind.CHECKPOINT_DUE, payload=index)
            if index % cancel_every == 0:
                event.cancel()
            else:
                live.append(event)
        drained = list(calendar.pop_due(math.inf))
        assert [event.payload for event in drained] == sorted(
            (event.payload for event in live),
            key=lambda payload: (times[payload], payload),
        )
        assert len(calendar) == 0
