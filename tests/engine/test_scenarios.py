"""Scenario tests: pluggable failure models and multilevel recovery costing."""

import numpy as np
import pytest

from repro.checkpoint.multilevel import (
    CheckpointLevel,
    MultilevelPolicy,
)
from repro.cluster.failures import (
    BurstyFailureModel,
    FailureInjector,
    PoissonFailureModel,
    ScriptedFailureModel,
    WeibullFailureModel,
    make_failure_model,
)
from repro.cluster.machine import ClusterModel
from repro.engine import FaultToleranceEngine as FaultTolerantRunner
from repro.engine import run_failure_free
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import Scenario
from repro.engine.events import CheckpointTakenEvent, RecoveryEvent
from repro.utils.rng import default_rng
from repro.solvers import JacobiSolver


class TestFailureModels:
    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown failure model"):
            make_failure_model("lognormal", 3600.0)

    @pytest.mark.parametrize("name", ["poisson", "weibull", "bursty"])
    def test_mean_interarrival_matches_mtti(self, name):
        model = make_failure_model(name, 500.0)
        rng = default_rng(7)
        gaps = [
            model.next_gap(rng, failure_index=i, last_time=0.0) for i in range(40000)
        ]
        assert model.mean_interarrival == 500.0
        assert np.mean(gaps) == pytest.approx(500.0, rel=0.05)

    def test_weibull_is_burstier_than_poisson(self):
        rng_p, rng_w = default_rng(1), default_rng(1)
        poisson = PoissonFailureModel(100.0)
        weibull = WeibullFailureModel(100.0, shape=0.6)
        gp = [poisson.next_gap(rng_p, failure_index=i, last_time=0.0) for i in range(20000)]
        gw = [weibull.next_gap(rng_w, failure_index=i, last_time=0.0) for i in range(20000)]
        # Infant-mortality inter-arrivals have a heavier small-gap mass.
        assert np.median(gw) < np.median(gp)
        assert np.std(gw) > np.std(gp)

    def test_bursty_mixture_shapes(self):
        model = BurstyFailureModel(1000.0, burst_prob=0.3, burst_fraction=0.02)
        rng = default_rng(3)
        gaps = np.array(
            [model.next_gap(rng, failure_index=i, last_time=0.0) for i in range(30000)]
        )
        assert np.mean(gaps) == pytest.approx(1000.0, rel=0.05)
        # Roughly burst_prob of the gaps come from the short scale.
        assert 0.2 < np.mean(gaps < 100.0) < 0.45

    def test_scripted_model_places_exact_times(self):
        injector = FailureInjector(model=ScriptedFailureModel([10.0, 25.0]))
        assert injector.next_failure_time() == 10.0
        assert injector.failure_in(0.0, 50.0) == 10.0
        injector.consume(10.0, "compute")
        assert injector.next_failure_time() == 25.0
        injector.consume(25.0, "compute")
        assert injector.next_failure_time() == float("inf")
        assert injector.failure_in(0.0, 1e12) is None

    def test_scripted_validation(self):
        with pytest.raises(ValueError):
            ScriptedFailureModel([5.0, 5.0])
        with pytest.raises(ValueError):
            ScriptedFailureModel([0.0])

    def test_default_injector_stream_unchanged(self):
        """An explicit Poisson model draws the same stream as the default."""
        a = FailureInjector(700.0, seed=5)
        b = FailureInjector(700.0, seed=5, model=PoissonFailureModel(700.0))
        for _ in range(50):
            assert a.next_failure_time() == b.next_failure_time()
            a.consume(a.next_failure_time())
            b.consume(b.next_failure_time())


@pytest.fixture(scope="module")
def scenario_setup(poisson_small):
    solver = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=100000)
    baseline = run_failure_free(solver, poisson_small.b)
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    iteration_seconds = cluster.calibrated_iteration_time("jacobi", baseline.iterations)
    return poisson_small, solver, baseline, cluster, scale, iteration_seconds


def _run(scenario_setup, scheme, scenario, seed=11, **kwargs):
    problem, solver, baseline, cluster, scale, iteration_seconds = scenario_setup
    defaults = dict(
        cluster=cluster,
        scale=scale,
        mtti_seconds=400.0,
        checkpoint_interval_seconds=150.0,
        iteration_seconds=iteration_seconds,
        baseline=baseline,
        seed=seed,
        scenario=scenario,
    )
    defaults.update(kwargs)
    engine = FaultTolerantRunner(solver, problem.b, scheme, **defaults)
    return engine, engine.run()


class TestScenarioRuns:
    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            Scenario(failure_model="lognormal")
        with pytest.raises(ValueError):
            Scenario(recovery_levels="tape")
        assert Scenario().is_default
        assert not Scenario(failure_model="weibull").is_default

    def test_scenario_round_trip(self):
        scenario = Scenario(
            failure_model="weibull",
            recovery_levels="fti",
            failure_params=(("shape", 0.5),),
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    @pytest.mark.parametrize("model", ["weibull", "bursty"])
    def test_alternative_models_deterministic_and_distinct(self, scenario_setup, model):
        scheme = CheckpointingScheme.lossy(1e-4)
        _, first = _run(scenario_setup, scheme, Scenario(failure_model=model))
        _, again = _run(scenario_setup, scheme, Scenario(failure_model=model))
        assert first.to_json() == again.to_json()
        assert first.info["failure_model"] == model
        _, poisson = _run(scenario_setup, scheme, Scenario())
        assert first.to_json() != poisson.to_json()
        assert "failure_model" not in poisson.info

    def test_fti_recovery_prices_levels(self, scenario_setup):
        scheme = CheckpointingScheme.lossy(1e-4)
        engine, report = _run(
            scenario_setup, scheme, Scenario(recovery_levels="fti"), record_events=True
        )
        assert report.info["recovery_levels"] == "fti"
        checkpoints = engine.events.of_type(CheckpointTakenEvent)
        levels = {c.level for c in checkpoints}
        # The FTI default cycle writes mostly non-PFS checkpoints.
        assert levels - {int(CheckpointLevel.PFS)}
        _, pfs_report = _run(scenario_setup, scheme, Scenario())
        assert pfs_report.num_failures > 0
        # Same failure stream, different recovery/checkpoint pricing.
        assert report.to_json() != pfs_report.to_json()

    def test_fti_cheap_levels_write_faster(self, scenario_setup):
        scheme = CheckpointingScheme.traditional()
        engine, report = _run(
            scenario_setup,
            scheme,
            Scenario(recovery_levels="fti"),
            mtti_seconds=None,
            record_events=True,
        )
        checkpoints = engine.events.of_type(CheckpointTakenEvent)
        by_level = {}
        for c in checkpoints:
            by_level.setdefault(c.level, set()).add(round(c.seconds, 9))
        local = int(CheckpointLevel.LOCAL)
        pfs = int(CheckpointLevel.PFS)
        if local in by_level and pfs in by_level:
            assert max(by_level[local]) < min(by_level[pfs])

    def test_fti_survival_fallback_to_scratch(self, scenario_setup):
        # All-local cycle with zero survival: every failure destroys every
        # checkpoint, so each recovery falls back to a from-scratch restart.
        policy = MultilevelPolicy(
            cycle=[CheckpointLevel.LOCAL],
            survival_probability={
                CheckpointLevel.LOCAL: 0.0,
                CheckpointLevel.PARTNER: 1.0,
                CheckpointLevel.REED_SOLOMON: 1.0,
                CheckpointLevel.PFS: 1.0,
            },
        )
        # A generous MTTI keeps the from-scratch loop survivable (losing
        # every checkpoint on every failure is brutal by construction).
        engine, report = _run(
            scenario_setup,
            CheckpointingScheme.lossy(1e-4),
            Scenario(recovery_levels="fti"),
            multilevel_policy=policy,
            mtti_seconds=1500.0,
            record_events=True,
        )
        assert report.num_failures > 0
        recoveries = engine.events.of_type(RecoveryEvent)
        assert recoveries
        assert all(r.from_scratch for r in recoveries)
        assert report.converged

    def test_fti_store_seed_distinct_per_run_seed(self):
        import numpy as np

        scenario = Scenario(recovery_levels="fti")
        # np.integer seeds must not collapse to one shared survival stream.
        store_a = scenario.build_multilevel_store(np.int64(1))
        store_b = scenario.build_multilevel_store(np.int64(2))
        draws_a = [store_a._rng.random() for _ in range(8)]
        draws_b = [store_b._rng.random() for _ in range(8)]
        assert draws_a != draws_b
        # ...and a plain int and its np.integer twin agree.
        store_c = scenario.build_multilevel_store(2)
        assert draws_b == [store_c._rng.random() for _ in range(8)]
        assert scenario.build_multilevel_store(None) is not None
        assert Scenario().build_multilevel_store(1) is None

    def test_fti_retention_bounded_and_deterministic(self, scenario_setup):
        scenario = Scenario(recovery_levels="fti")
        engine, report = _run(
            scenario_setup, CheckpointingScheme.lossy(1e-4), scenario, seed=23
        )
        # Records older than the newest certain-survival (PFS) checkpoint are
        # unreachable fallbacks and get pruned, bounding retention at one
        # level cycle.
        cycle_length = len(engine._store.policy.cycle)
        assert report.num_checkpoints > cycle_length
        assert len(engine._state.records) <= cycle_length
        assert len(engine._store.ids()) <= cycle_length
        _, again = _run(
            scenario_setup, CheckpointingScheme.lossy(1e-4), scenario, seed=23
        )
        assert again.to_json() == report.to_json()

    def test_fti_survival_keeps_pfs_checkpoints(self, scenario_setup):
        # All-PFS cycle: survival is certain, so recoveries never fall back.
        policy = MultilevelPolicy(cycle=[CheckpointLevel.PFS])
        engine, report = _run(
            scenario_setup,
            CheckpointingScheme.lossy(1e-4),
            Scenario(recovery_levels="fti"),
            multilevel_policy=policy,
            record_events=True,
        )
        assert report.num_failures > 0
        recoveries = engine.events.of_type(RecoveryEvent)
        post_checkpoint = [r for r in recoveries if r.from_iteration > 0]
        # Once a checkpoint exists, every recovery restores it.
        if engine.events.of_type(CheckpointTakenEvent):
            assert post_checkpoint
        assert report.converged
