"""Measured-payload checkpoint costing (the pipeline-unification contract).

The default scenario prices every checkpoint from the measured serialized
:class:`~repro.checkpoint.pipeline.CheckpointPipeline` payload — each
full-length vector scaled to paper size by its *own* compression ratio —
while ``checkpoint_costing="modeled"`` retains the historical
``vector_bytes × dynamic_vector_count / ratio(x)`` estimate.  The two must
diverge exactly when per-variable compression ratios diverge.
"""

import numpy as np
import pytest

from repro.cluster.machine import ClusterModel
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import (
    FaultToleranceEngine,
    Scenario,
    run_failure_free,
)
from repro.solvers import BiCGStabSolver, CGSolver, JacobiSolver

MEASURED = Scenario()
MODELED = Scenario(checkpoint_costing="modeled")


@pytest.fixture(scope="module")
def setup(poisson_medium):
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    return poisson_medium, cluster, scale


def _run(setup, solver, scheme, method, scenario, **kwargs):
    problem, cluster, scale = setup
    baseline = run_failure_free(solver, problem.b)
    defaults = dict(
        cluster=cluster,
        scale=scale,
        mtti_seconds=None,
        checkpoint_interval_seconds=300.0,
        iteration_seconds=cluster.calibrated_iteration_time(
            method, baseline.iterations
        ),
        method=method,
        baseline=baseline,
        seed=7,
        scenario=scenario,
    )
    defaults.update(kwargs)
    engine = FaultToleranceEngine(solver, problem.b, scheme, **defaults)
    return engine, engine.run()


def test_measured_is_the_default_scenario():
    assert Scenario().checkpoint_costing == "measured"
    assert Scenario().is_default
    assert not MODELED.is_default
    assert MODELED.is_paper_regime
    with pytest.raises(ValueError, match="unknown checkpoint costing"):
        Scenario(checkpoint_costing="guessed")
    assert Scenario.from_dict(MODELED.to_dict()) == MODELED
    # Pre-costing serialized scenarios load as the new default.
    legacy = {"failure_model": "poisson", "recovery_levels": "pfs"}
    assert Scenario.from_dict(legacy).checkpoint_costing == "measured"


def test_measured_differs_from_modeled_when_variable_ratios_diverge(setup):
    """Lossless CG stores x and p with different ratios: the modeled estimate
    (two copies of x's ratio) cannot match the measured payload pricing."""
    problem, _, _ = setup
    solver = CGSolver(problem.A, rtol=1e-7, max_iter=20000)
    scheme = CheckpointingScheme.lossless()
    _, measured = _run(setup, solver, scheme, "cg", MEASURED)
    _, modeled = _run(setup, solver, scheme, "cg", MODELED)
    assert measured.converged and modeled.converged
    assert measured.num_checkpoints == modeled.num_checkpoints
    assert measured.mean_checkpoint_seconds != pytest.approx(
        modeled.mean_checkpoint_seconds, rel=1e-6
    )
    # Same solve either way: only the checkpoint pricing moved.
    assert measured.total_iterations == modeled.total_iterations
    assert measured.info["checkpoint_costing"] == "measured"
    assert "checkpoint_costing" not in modeled.info


def test_measured_prices_every_declared_vector(setup):
    """A BiCGSTAB-exact checkpoint is priced as five per-variable vectors."""
    problem, _, scale = setup
    solver = BiCGStabSolver(problem.A, rtol=1e-7, max_iter=20000)
    engine, report = _run(
        setup,
        solver,
        CheckpointingScheme.traditional(),
        "bicgstab",
        MEASURED,
    )
    assert report.converged
    record = engine._state.last_checkpoint
    assert record is not None
    names = {m.name for m in record.snapshot.vector_measurements}
    assert names == {"x", "r", "r_hat", "p", "v"}
    # Uncompressed pricing is five full vectors (plus absolute scalar bytes).
    assert record.model_uncompressed_bytes == pytest.approx(
        5 * scale.vector_bytes, rel=1e-6
    )
    # The serialized payload really holds the recurrence scalars too.
    restored = engine._pipeline.restore(payload=record.snapshot.payload)
    assert restored.resume_state is not None
    assert set(restored.resume_state.scalars) == {"rho_old", "alpha", "omega"}


def test_measured_recovery_priced_from_measured_bytes(setup):
    """Recovery reads flow through the same measured record bytes."""
    problem, cluster, scale = setup
    solver = JacobiSolver(problem.A, rtol=1e-4, max_iter=20000)
    scheme = CheckpointingScheme.lossy(1e-4)
    engine, report = _run(
        setup,
        solver,
        scheme,
        "jacobi",
        MEASURED,
        mtti_seconds=2000.0,
        seed=3,
    )
    assert report.converged
    record = engine._state.last_checkpoint
    expected = cluster.recovery_seconds(
        record.model_uncompressed_bytes,
        record.model_compressed_bytes,
        static_bytes=scale.static_bytes,
        compressed=True,
    )
    assert engine._recovery_seconds(record) == pytest.approx(expected, rel=1e-12)


def test_modeled_and_measured_agree_numerically_not_in_time(setup):
    """Costing changes when checkpoints happen in *time*, never the math:
    with a fixed interval and no failures the residual traces coincide."""
    problem, _, _ = setup
    solver = CGSolver(problem.A, rtol=1e-7, max_iter=20000)
    scheme = CheckpointingScheme.lossless()
    _, measured = _run(setup, solver, scheme, "cg", MEASURED)
    _, modeled = _run(setup, solver, scheme, "cg", MODELED)
    assert measured.residual_trace == modeled.residual_trace
