"""Two-channel timeline tests: overlapped drains, dirty writes, fallback."""

import pytest

from repro.cluster.machine import ClusterModel
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.engine import FaultToleranceEngine, Scenario, run_failure_free
from repro.engine.events import (
    CheckpointDiscardedEvent,
    CheckpointTakenEvent,
    DrainCompletedEvent,
    DrainStartedEvent,
    RecoveryEvent,
)
from repro.solvers import JacobiSolver

ASYNC = Scenario(write_mode="async")


@pytest.fixture(scope="module")
def async_setup(poisson_small):
    solver = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=100000)
    baseline = run_failure_free(solver, poisson_small.b)
    cluster = ClusterModel(num_processes=2048)
    scale = paper_scale(2048)
    iteration_seconds = cluster.calibrated_iteration_time("jacobi", baseline.iterations)
    return poisson_small, solver, baseline, cluster, scale, iteration_seconds


def _engine(async_setup, scheme, **kwargs):
    problem, solver, baseline, cluster, scale, iteration_seconds = async_setup
    defaults = dict(
        cluster=cluster,
        scale=scale,
        iteration_seconds=iteration_seconds,
        baseline=baseline,
        seed=29,
    )
    defaults.update(kwargs)
    return FaultToleranceEngine(solver, problem.b, scheme, **defaults)


def _scripted(*times, write_mode="async"):
    return Scenario(
        failure_model="scripted",
        failure_params=(("times", tuple(times)),),
        write_mode=write_mode,
    )


class TestScenarioWriteMode:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown write mode"):
            Scenario(write_mode="overlapped")

    def test_round_trip(self):
        scenario = Scenario(write_mode="async", recovery_levels="fti")
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario
        assert rebuilt.asynchronous
        # Pre-write-mode dicts default to blocking.
        legacy = {k: v for k, v in scenario.to_dict().items() if k != "write_mode"}
        assert Scenario.from_dict(legacy).write_mode == "blocking"

    def test_async_is_not_the_paper_regime(self):
        assert not ASYNC.is_paper_regime
        assert not ASYNC.is_default
        assert Scenario().write_mode == "blocking"
        assert Scenario().is_paper_regime


class TestOverheadReduction:
    @pytest.mark.parametrize(
        "scheme_factory, interval",
        [
            (CheckpointingScheme.traditional, 300.0),
            (lambda: CheckpointingScheme.lossy(1e-4), 150.0),
        ],
        ids=["traditional", "lossy"],
    )
    def test_async_strictly_cheaper_failure_free(
        self, async_setup, scheme_factory, interval
    ):
        """With checkpoint cost a nontrivial fraction of the interval, the
        overlapped timeline yields strictly lower wall-clock overhead."""
        reports = {}
        for mode in ("blocking", "async"):
            reports[mode] = _engine(
                async_setup,
                scheme_factory(),
                mtti_seconds=None,
                checkpoint_interval_seconds=interval,
                scenario=Scenario(write_mode=mode),
            ).run()
        blocking, asynchronous = reports["blocking"], reports["async"]
        assert blocking.converged and asynchronous.converged
        # The blocking write is a large fraction of the interval here.
        assert blocking.mean_checkpoint_seconds > 0.2 * interval
        assert (
            asynchronous.fault_tolerance_overhead
            < blocking.fault_tolerance_overhead
        )
        # The drain moved to the I/O channel instead of vanishing.
        assert asynchronous.io_drain_seconds > 0.0
        assert asynchronous.info["write_mode"] == "async"

    def test_async_cheaper_under_poisson_failures(self, async_setup):
        reports = {}
        for mode in ("blocking", "async"):
            reports[mode] = _engine(
                async_setup,
                CheckpointingScheme.traditional(),
                mtti_seconds=1500.0,
                checkpoint_interval_seconds=300.0,
                scenario=Scenario(write_mode=mode),
            ).run()
        assert reports["blocking"].num_failures > 0
        assert (
            reports["async"].fault_tolerance_overhead
            < reports["blocking"].fault_tolerance_overhead
        )

    def test_blocking_reports_carry_no_async_keys(self, async_setup):
        report = _engine(
            async_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=500.0,
            checkpoint_interval_seconds=150.0,
        ).run()
        assert report.write_mode == "blocking"
        assert report.io_drain_seconds == 0.0
        for key in ("write_mode", "io_drain_seconds", "num_dirty_checkpoints"):
            assert key not in report.info


class TestDrainSemantics:
    def test_failure_free_run_completes_every_drain(self, async_setup):
        engine = _engine(
            async_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=None,
            checkpoint_interval_seconds=300.0,
            scenario=ASYNC,
            record_events=True,
        )
        report = engine.run()
        started = engine.events.of_type(DrainStartedEvent)
        completed = engine.events.of_type(DrainCompletedEvent)
        taken = engine.events.of_type(CheckpointTakenEvent)
        assert report.num_checkpoints == len(started) == len(completed) == len(taken)
        assert report.info["num_dirty_checkpoints"] == 0
        # Inline capture is much cheaper than the blocking write would be.
        assert report.mean_checkpoint_seconds < report.info["mean_drain_seconds"]

    def test_drains_serialize_on_the_io_channel(self, async_setup):
        # Interval far shorter than one drain: captures outpace the channel.
        engine = _engine(
            async_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=None,
            checkpoint_interval_seconds=100.0,
            scenario=ASYNC,
            record_events=True,
        )
        engine.run()
        started = engine.events.of_type(DrainStartedEvent)
        assert len(started) >= 3
        for earlier, later in zip(started, started[1:]):
            assert later.drain_start >= earlier.drain_start + earlier.seconds - 1e-9
        # At least one drain had to queue behind the one before it.
        assert any(e.drain_start > e.time + 1e-9 for e in started)

    def test_mid_drain_failure_falls_back_to_previous_completed(self, async_setup):
        """A failure while checkpoint k drains recovers from checkpoint k-1."""
        # Probe run: find the drain intervals without failures.
        probe = _engine(
            async_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=None,
            checkpoint_interval_seconds=300.0,
            scenario=ASYNC,
            record_events=True,
        )
        probe.run()
        drains = probe.events.of_type(DrainStartedEvent)
        completions = {e.checkpoint_id: e.time for e in probe.events.of_type(DrainCompletedEvent)}
        assert len(drains) >= 2
        first, second = drains[0], drains[1]
        # Land the failure squarely inside the second drain, after the first
        # completed.
        failure_time = second.drain_start + 0.5 * second.seconds
        assert completions[first.checkpoint_id] < failure_time

        engine = _engine(
            async_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=3600.0,
            checkpoint_interval_seconds=300.0,
            scenario=_scripted(failure_time),
            record_events=True,
        )
        report = engine.run()
        assert report.converged
        assert report.info["num_dirty_checkpoints"] == 1
        discarded = engine.events.of_type(CheckpointDiscardedEvent)
        assert [e.iteration for e in discarded] == [second.iteration]
        (recovery,) = engine.events.of_type(RecoveryEvent)
        assert not recovery.from_scratch
        assert recovery.from_iteration == first.iteration

    def test_failure_before_any_drain_completes_restarts_from_scratch(
        self, async_setup
    ):
        probe = _engine(
            async_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=None,
            checkpoint_interval_seconds=300.0,
            scenario=ASYNC,
            record_events=True,
        )
        probe.run()
        first = probe.events.of_type(DrainStartedEvent)[0]
        failure_time = first.drain_start + 0.5 * first.seconds
        engine = _engine(
            async_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=3600.0,
            checkpoint_interval_seconds=300.0,
            scenario=_scripted(failure_time),
            record_events=True,
        )
        report = engine.run()
        assert report.converged
        recoveries = engine.events.of_type(RecoveryEvent)
        assert recoveries[0].from_scratch
        assert report.num_restarts_from_scratch == 0  # exact scheme: inline

    def test_async_runs_are_deterministic(self, async_setup):
        kwargs = dict(
            mtti_seconds=400.0,
            checkpoint_interval_seconds=150.0,
            scenario=Scenario(write_mode="async", recovery_levels="fti"),
            seed=23,
        )
        first = _engine(async_setup, CheckpointingScheme.lossy(1e-4), **kwargs).run()
        again = _engine(async_setup, CheckpointingScheme.lossy(1e-4), **kwargs).run()
        assert first.to_json() == again.to_json()
        assert first.num_failures > 0

    def test_async_multilevel_prices_level_of_pending_queue(self, async_setup):
        """Committed levels follow the FTI cycle even with queued drains."""
        engine = _engine(
            async_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=None,
            checkpoint_interval_seconds=150.0,
            scenario=Scenario(write_mode="async", recovery_levels="fti"),
            record_events=True,
        )
        engine.run()
        taken = engine.events.of_type(CheckpointTakenEvent)
        cycle = engine._store.policy.cycle
        assert len(taken) > len(cycle)
        for index, event in enumerate(taken):
            assert event.level == int(cycle[index % len(cycle)])


class TestDeltaChainRecoveryPricing:
    def test_recovery_reads_the_chain_not_just_the_delta(self, async_setup):
        """Restoring a delta payload is priced at keyframe + deltas bytes."""
        from repro.checkpoint.pipeline import PipelineSnapshot
        from repro.engine import CheckpointRecord

        engine = _engine(
            async_setup,
            CheckpointingScheme.lossless(),
            mtti_seconds=None,
            checkpoint_interval_seconds=300.0,
            scenario=ASYNC,
        )
        engine.run()
        snapshot = PipelineSnapshot(checkpoint_id=9, iteration=9, payload=b"")
        common = dict(
            checkpoint_id=9,
            iteration=9,
            snapshot=snapshot,
            compression_ratio=1.0,
            model_uncompressed_bytes=1e9,
            model_compressed_bytes=5e8,
            compute_seconds_at_completion=0.0,
        )
        full = CheckpointRecord(**common)
        delta = CheckpointRecord(
            **common,
            restore_uncompressed_bytes=3e9,
            restore_compressed_bytes=1.5e9,
        )
        assert engine._recovery_seconds(delta) > engine._recovery_seconds(full)

    def test_records_carry_monotone_chain_bytes(self, async_setup):
        engine = _engine(
            async_setup,
            CheckpointingScheme.lossless(),
            mtti_seconds=None,
            checkpoint_interval_seconds=60.0,
            scenario=ASYNC,
        )
        engine.run()
        chain = engine._state.restore_chain
        assert chain
        last = engine._state.last_checkpoint
        assert last.restore_compressed_bytes >= last.model_compressed_bytes
        delta_ids = [
            cid
            for cid, (_, compressed) in chain.items()
            if compressed > 1.5 * last.model_compressed_bytes
        ]
        keyframe_like = [
            cid
            for cid, (_, compressed) in chain.items()
            if compressed <= 1.5 * last.model_compressed_bytes
        ]
        # A lossless run at this interval ships some deltas near convergence;
        # their restore chains must exceed any single full payload.
        assert keyframe_like  # keyframes price only themselves
        if delta_ids:
            for cid in delta_ids:
                assert chain[cid][1] > max(
                    chain[k][1] for k in keyframe_like
                ) or chain[cid][1] > last.model_compressed_bytes


class TestInterference:
    def test_interference_charged_only_while_draining(self, async_setup):
        engine = _engine(
            async_setup,
            CheckpointingScheme.traditional(),
            mtti_seconds=None,
            checkpoint_interval_seconds=300.0,
            scenario=ASYNC,
        )
        report = engine.run()
        interference = report.info["io_interference_seconds"]
        assert interference > 0.0
        # Bounded by the surcharge over the drain-busy windows.
        rate = engine.cluster.async_interference
        assert interference <= rate * report.io_drain_seconds + rate * 10.0
