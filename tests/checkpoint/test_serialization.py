"""Tests for checkpoint payload serialization."""

import numpy as np
import pytest

from repro.checkpoint.serialization import (
    CheckpointPayload,
    deserialize_checkpoint,
    serialize_checkpoint,
)
from repro.compression.sz import SZCompressor


class TestSerialization:
    def test_roundtrip_mixed_entries(self, smooth_vector):
        blob = SZCompressor(1e-4).compress(smooth_vector)
        payload = CheckpointPayload(
            entries={
                "x": blob,
                "iteration": 42,
                "rho": 3.14,
                "raw": np.arange(10, dtype=np.int32),
            },
            meta={"tag": {"iteration": 42}},
        )
        restored = deserialize_checkpoint(serialize_checkpoint(payload))
        assert restored.entries["iteration"] == 42
        assert restored.entries["rho"] == pytest.approx(3.14)
        assert np.array_equal(restored.entries["raw"], np.arange(10, dtype=np.int32))
        restored_blob = restored.entries["x"]
        assert restored_blob.compressor == "sz"
        recon = SZCompressor(1e-4).decompress(restored_blob)
        assert recon.shape == smooth_vector.shape

    def test_blob_payload_identical(self, smooth_vector):
        blob = SZCompressor(1e-4).compress(smooth_vector)
        payload = CheckpointPayload(entries={"x": blob})
        restored = deserialize_checkpoint(serialize_checkpoint(payload))
        assert restored.entries["x"].payload == blob.payload

    def test_meta_preserved(self):
        payload = CheckpointPayload(entries={"i": 1}, meta={"kind": "dynamic"})
        restored = deserialize_checkpoint(serialize_checkpoint(payload))
        assert restored.meta["kind"] == "dynamic"

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_checkpoint(b"not a checkpoint at all")

    def test_unsupported_entry_type_rejected(self):
        payload = CheckpointPayload(entries={"bad": object()})
        with pytest.raises(TypeError):
            serialize_checkpoint(payload)

    def test_nbytes_is_exact_serialized_size(self, smooth_vector):
        blob = SZCompressor(1e-4).compress(smooth_vector)
        payloads = [
            CheckpointPayload(entries={"x": np.zeros(100), "i": 5}),
            CheckpointPayload(entries={"i": 1}, meta={"kind": "dynamic"}),
            CheckpointPayload(
                entries={
                    "x": blob,
                    "iteration": 42,
                    "rho": 3.14,
                    "raw": np.arange(10, dtype=np.int32),
                },
                meta={"tag": {"iteration": 42}},
            ),
        ]
        for payload in payloads:
            assert payload.nbytes() == len(serialize_checkpoint(payload))

    def test_truncated_index_rejected(self):
        raw = serialize_checkpoint(
            CheckpointPayload(entries={"i": 1}, meta={"kind": "dynamic"})
        )
        # Cut inside the JSON index: the declared index length overruns.
        with pytest.raises(ValueError, match="truncated checkpoint payload"):
            deserialize_checkpoint(raw[:20])

    def test_truncated_body_rejected(self):
        raw = serialize_checkpoint(
            CheckpointPayload(entries={"x": np.zeros(100)})
        )
        # Cut inside the entry bodies: the index parses, the body is short.
        with pytest.raises(ValueError, match="truncated checkpoint payload"):
            deserialize_checkpoint(raw[:-100])

    def test_multidimensional_array_entry(self):
        data = np.random.default_rng(0).random((4, 6))
        payload = CheckpointPayload(entries={"grid": data})
        restored = deserialize_checkpoint(serialize_checkpoint(payload))
        assert np.array_equal(restored.entries["grid"], data)
