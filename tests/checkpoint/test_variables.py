"""Tests for variable classification and registration."""

import numpy as np
import pytest

from repro.checkpoint.variables import ProtectedVariable, VariableRegistry, VariableRole


class TestProtectedVariable:
    def test_current_value_and_restore(self):
        holder = {"x": 1.0}
        var = ProtectedVariable(
            "x", VariableRole.DYNAMIC,
            getter=lambda: holder["x"],
            setter=lambda v: holder.__setitem__("x", v),
        )
        assert var.current_value() == 1.0
        var.restore(2.0)
        assert holder["x"] == 2.0

    def test_restore_without_setter_raises(self):
        var = ProtectedVariable("A", VariableRole.STATIC, getter=lambda: 1)
        with pytest.raises(ValueError):
            var.restore(5)


class TestVariableRegistry:
    def test_protect_and_lookup(self):
        reg = VariableRegistry()
        reg.protect("x", VariableRole.DYNAMIC, getter=lambda: 1)
        assert "x" in reg
        assert len(reg) == 1

    def test_duplicate_name_rejected(self):
        reg = VariableRegistry()
        reg.protect("x", VariableRole.DYNAMIC, getter=lambda: 1)
        with pytest.raises(ValueError):
            reg.protect("x", VariableRole.STATIC, getter=lambda: 2)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            VariableRegistry().protect("", VariableRole.DYNAMIC, getter=lambda: 1)

    def test_by_role_and_names(self):
        reg = VariableRegistry()
        reg.protect("A", VariableRole.STATIC, getter=lambda: 1)
        reg.protect("x", VariableRole.DYNAMIC, getter=lambda: 2)
        reg.protect("r", VariableRole.RECOMPUTED, getter=lambda: 3)
        assert [v.name for v in reg.by_role(VariableRole.DYNAMIC)] == ["x"]
        assert reg.names() == ["A", "x", "r"]
        assert reg.names([VariableRole.STATIC, VariableRole.DYNAMIC]) == ["A", "x"]

    def test_protect_value_dict_slot(self):
        reg = VariableRegistry()
        holder = {"x": np.ones(3)}
        var = reg.protect_value("x", VariableRole.DYNAMIC, holder)
        assert np.array_equal(var.current_value(), np.ones(3))
        var.restore(np.zeros(3))
        assert np.array_equal(holder["x"], np.zeros(3))

    def test_unprotect(self):
        reg = VariableRegistry()
        reg.protect("x", VariableRole.DYNAMIC, getter=lambda: 1)
        reg.unprotect("x")
        assert "x" not in reg
        reg.unprotect("x")  # idempotent

    def test_dynamic_nbytes(self):
        reg = VariableRegistry()
        reg.protect("x", VariableRole.DYNAMIC, getter=lambda: np.zeros(100))
        reg.protect("i", VariableRole.DYNAMIC, getter=lambda: 7)
        reg.protect("A", VariableRole.STATIC, getter=lambda: np.zeros(1000))
        assert reg.dynamic_nbytes() == 100 * 8 + 8

    def test_role_string_coercion(self):
        reg = VariableRegistry()
        var = reg.protect("x", "dynamic", getter=lambda: 1)
        assert var.role is VariableRole.DYNAMIC
