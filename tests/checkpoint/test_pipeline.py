"""CheckpointPipeline: bitwise round trips, per-variable bounds, measurement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.checkpoint import CheckpointPipeline, MemoryCheckpointStore
from repro.compression.errorbounds import (
    FixedBoundPolicy,
    PerVariableBoundPolicy,
    ResidualAdaptiveBoundPolicy,
    ValueRangeBoundPolicy,
)
from repro.core.scale import paper_scale
from repro.core.schemes import CheckpointingScheme
from repro.solvers import BiCGStabSolver, CGSolver, GMRESSolver, JacobiSolver
from repro.solvers.base import ResumeState

SOLVER_FACTORIES = {
    "jacobi": lambda A: JacobiSolver(A, rtol=1e-4, max_iter=50000),
    "cg": lambda A: CGSolver(A, rtol=1e-7, max_iter=50000),
    "gmres": lambda A: GMRESSolver(A, rtol=7e-5, max_iter=50000),
    "bicgstab": lambda A: BiCGStabSolver(A, rtol=1e-7, max_iter=50000),
}

EXACT_SCHEMES = {
    "traditional": CheckpointingScheme.traditional,
    "lossless": CheckpointingScheme.lossless,
}


def _mid_run_state(solver, b, iterations=12):
    states = []
    solver.solve(b, callback=lambda s: states.append(s), max_iter=iterations)
    # Prefer a state whose full resume declaration is capturable (GMRES only
    # exposes one at restart-cycle boundaries / convergence).
    for state in reversed(states):
        if solver.capture_resume_state(state) is not None:
            return state
    return states[-1]


class TestExactRoundTrip:
    @pytest.mark.parametrize("scheme_name", sorted(EXACT_SCHEMES))
    @pytest.mark.parametrize("method", sorted(SOLVER_FACTORIES))
    def test_bitwise_round_trip_all_solvers(self, poisson_small, scheme_name, method):
        """Exact schemes round-trip x, resume vectors and scalars bitwise."""
        solver = SOLVER_FACTORIES[method](poisson_small.A)
        state = _mid_run_state(solver, poisson_small.b)
        resume = solver.capture_resume_state(state)
        scheme = EXACT_SCHEMES[scheme_name]()
        pipeline = CheckpointPipeline(scheme, solver=solver)
        snap = pipeline.snapshot(
            state.x,
            iteration=state.iteration,
            resume_state=resume,
            residual_norm=state.residual_norm,
            b_norm=1.0,
        )
        restored = pipeline.restore(payload=snap.payload)
        assert restored.iteration == state.iteration
        assert restored.x.tobytes() == state.x.tobytes()
        if resume is not None and pipeline.stores_resume_state:
            assert restored.resume_state is not None
            for name, vec in resume.vectors.items():
                assert restored.resume_state.vectors[name].tobytes() == vec.tobytes()
            for name, value in resume.scalars.items():
                stored = restored.resume_state.scalars[name]
                assert stored == value or (np.isnan(stored) and np.isnan(value))

    def test_store_round_trip_through_commit(self, poisson_small):
        solver = CGSolver(poisson_small.A, rtol=1e-7, max_iter=1000)
        state = _mid_run_state(solver, poisson_small.b)
        resume = solver.capture_resume_state(state)
        pipeline = CheckpointPipeline(
            CheckpointingScheme.lossless(),
            solver=solver,
            store=MemoryCheckpointStore(),
        )
        snap = pipeline.snapshot(state.x, iteration=state.iteration, resume_state=resume)
        pipeline.commit(snap)
        restored = pipeline.restore()  # latest from the store
        assert restored.x.tobytes() == state.x.tobytes()
        assert restored.resume_state.vectors["p"].tobytes() == resume.vectors["p"].tobytes()

    def test_static_snapshot_round_trip(self, poisson_small):
        solver = JacobiSolver(poisson_small.A, rtol=1e-4)
        A = poisson_small.A.tocsr()
        pipeline = CheckpointPipeline(
            CheckpointingScheme.traditional(),
            solver=solver,
            store=MemoryCheckpointStore(),
            static={
                "A_data": A.data,
                "A_indices": A.indices,
                "A_indptr": A.indptr,
                "b": poisson_small.b,
            },
        )
        snap = pipeline.snapshot_static()
        assert snap is not None and snap.checkpoint_id == -1
        restored = pipeline.restore_static()
        assert restored["b"].tobytes() == poisson_small.b.tobytes()
        assert restored["A_data"].tobytes() == A.data.tobytes()


# Hypothesis: arbitrary (finite) state round-trips bitwise through the full
# payload for exact schemes — including denormals, negative zeros and huge
# magnitudes that a codec bug would corrupt first.
finite_vectors = arrays(
    np.float64,
    st.shared(st.integers(min_value=2, max_value=64), key="n"),
    elements=st.floats(
        min_value=-1e300, max_value=1e300, allow_nan=False, width=64
    ),
)
finite_scalars = st.floats(min_value=-1e300, max_value=1e300, allow_nan=False)


class TestPropertyRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        x=finite_vectors,
        r=finite_vectors,
        r_hat=finite_vectors,
        p=finite_vectors,
        v=finite_vectors,
        rho_old=finite_scalars,
        alpha=finite_scalars,
        omega=finite_scalars,
        scheme_name=st.sampled_from(sorted(EXACT_SCHEMES)),
    )
    def test_full_payload_bitwise(
        self, x, r, r_hat, p, v, rho_old, alpha, omega, scheme_name
    ):
        """The five-vector BiCGSTAB payload survives serialization bitwise."""
        resume = ResumeState(
            iteration=7,
            vectors={"r": r, "r_hat": r_hat, "p": p, "v": v},
            scalars={"rho_old": rho_old, "alpha": alpha, "omega": omega},
        )
        pipeline = CheckpointPipeline(
            EXACT_SCHEMES[scheme_name](),
            spec=BiCGStabSolver.checkpoint_spec,
        )
        snap = pipeline.snapshot(x, iteration=7, resume_state=resume)
        restored = pipeline.restore(payload=snap.payload)
        assert restored.x.tobytes() == np.ascontiguousarray(x).tobytes()
        for name, vec in resume.vectors.items():
            assert (
                restored.resume_state.vectors[name].tobytes()
                == np.ascontiguousarray(vec).tobytes()
            )
        for name, value in resume.scalars.items():
            assert restored.resume_state.scalars[name] == value

    @settings(max_examples=25, deadline=None)
    @given(
        x=arrays(
            np.float64,
            st.integers(min_value=8, max_value=128),
            elements=st.floats(
                min_value=-1e12, max_value=1e12, allow_nan=False, width=64
            ),
        ),
        eb=st.sampled_from([1e-2, 1e-4, 1e-6]),
        mode=st.sampled_from(["fixed", "value_range"]),
    )
    def test_lossy_respects_resolved_bound(self, x, eb, mode):
        """Lossy payloads respect the policy-resolved bound per element."""
        policy = (
            FixedBoundPolicy(eb) if mode == "fixed" else ValueRangeBoundPolicy(eb)
        )
        scheme = CheckpointingScheme.lossy(eb, bound_policy=policy)
        pipeline = CheckpointPipeline(scheme, spec=JacobiSolver.checkpoint_spec)
        snap = pipeline.snapshot(x, iteration=1)
        restored = pipeline.restore(payload=snap.payload)
        bound = policy.resolve(variable="x")
        tolerance = bound.per_element(x)
        assert np.all(np.abs(restored.x - x) <= tolerance + 1e-300)


class TestPerVariablePolicy:
    def test_lossy_x_exact_recurrence_per_variable_bounds(self, poisson_small):
        """A lossy scheme that *does* keep Krylov state stores it exactly
        while x honours its per-variable resolved bound."""
        solver = BiCGStabSolver(poisson_small.A, rtol=1e-7, max_iter=1000)
        state = _mid_run_state(solver, poisson_small.b)
        resume = solver.capture_resume_state(state)
        policy = PerVariableBoundPolicy(
            policies={"x": FixedBoundPolicy(1e-3)},
            default=FixedBoundPolicy(1e-8),
        )
        scheme = CheckpointingScheme.lossy(1e-3, bound_policy=policy)
        # Force the (non-paper) hybrid: lossy x + declared recurrence state.
        scheme.checkpoint_krylov_state = True
        pipeline = CheckpointPipeline(scheme, solver=solver)
        snap = pipeline.snapshot(
            state.x, iteration=state.iteration, resume_state=resume
        )
        restored = pipeline.restore(payload=snap.payload)
        # x is lossy within its resolved per-variable bound...
        assert np.all(
            np.abs(restored.x - state.x) <= 1e-3 * np.abs(state.x) + 1e-300
        )
        # ...but every recurrence vector round-trips bitwise (DEFLATE path).
        for name, vec in resume.vectors.items():
            assert restored.resume_state.vectors[name].tobytes() == vec.tobytes()

    def test_residual_adaptive_abstains_without_residual(self):
        policy = ResidualAdaptiveBoundPolicy()
        assert policy.resolve(variable="x") is None
        assert policy.resolve(residual_norm=1e-2, b_norm=1.0).value == pytest.approx(
            1e-2
        )


class TestMeasurement:
    def test_scaled_bytes_prices_each_vector_by_its_own_ratio(self, poisson_small):
        solver = CGSolver(poisson_small.A, rtol=1e-7, max_iter=1000)
        state = _mid_run_state(solver, poisson_small.b)
        resume = solver.capture_resume_state(state)
        pipeline = CheckpointPipeline(CheckpointingScheme.lossless(), solver=solver)
        snap = pipeline.snapshot(
            state.x, iteration=state.iteration, resume_state=resume
        )
        scale = paper_scale(2048)
        uncompressed, compressed = snap.scaled_bytes(scale)
        ratios = snap.variable_ratios()
        assert set(ratios) == {"x", "p"}
        expected = (
            sum(scale.vector_bytes / r for r in ratios.values())
            + snap.overhead_bytes
        )
        assert compressed == pytest.approx(expected)
        # Two vectors plus the exactly-stored iteration counter and rho.
        assert uncompressed == pytest.approx(2 * scale.vector_bytes + 16)

    def test_snapshot_measures_every_entry(self, poisson_small):
        solver = BiCGStabSolver(poisson_small.A, rtol=1e-7, max_iter=1000)
        state = _mid_run_state(solver, poisson_small.b)
        resume = solver.capture_resume_state(state)
        pipeline = CheckpointPipeline(
            CheckpointingScheme.traditional(), solver=solver
        )
        snap = pipeline.snapshot(
            state.x, iteration=state.iteration, resume_state=resume
        )
        names = {m.name for m in snap.variables}
        assert names == {
            "iteration", "x", "r", "r_hat", "p", "v", "rho_old", "alpha", "omega",
        }
        assert snap.ratio_of("x") == pytest.approx(1.0)
        with pytest.raises(KeyError):
            snap.ratio_of("nope")

    def test_partial_resume_stores_just_x(self, poisson_small):
        """A GMRES-style missing resume state degrades to an x-only payload."""
        solver = BiCGStabSolver(poisson_small.A, rtol=1e-7, max_iter=1000)
        pipeline = CheckpointPipeline(
            CheckpointingScheme.lossless(), solver=solver
        )
        snap = pipeline.snapshot(np.ones(solver.n), iteration=3, resume_state=None)
        assert {m.name for m in snap.vector_measurements} == {"x"}
        restored = pipeline.restore(payload=snap.payload)
        assert restored.resume_state is None
