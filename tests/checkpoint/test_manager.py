"""Tests for the CheckpointManager (Protect/Snapshot/restore)."""

import numpy as np
import pytest

from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.store import FileCheckpointStore
from repro.checkpoint.variables import VariableRole
from repro.compression.base import CompressionRecord
from repro.compression.identity import IdentityCompressor
from repro.compression.lossless import ZlibCompressor
from repro.compression.sz import SZCompressor


@pytest.fixture
def solver_like_state(smooth_vector):
    return {"x": smooth_vector.copy(), "p": smooth_vector * 0.5, "i": 10, "rho": 0.123}


def _manager_for(state, compressor=None):
    mgr = CheckpointManager(compressor)
    mgr.protect("x", VariableRole.DYNAMIC, lambda: state["x"],
                lambda v: state.__setitem__("x", v))
    mgr.protect("i", VariableRole.DYNAMIC, lambda: state["i"],
                lambda v: state.__setitem__("i", v), compressible=False)
    mgr.protect("rho", VariableRole.DYNAMIC, lambda: state["rho"],
                lambda v: state.__setitem__("rho", v), compressible=False)
    return mgr


class TestSnapshotRestore:
    def test_lossy_snapshot_restores_within_bound(self, solver_like_state):
        mgr = _manager_for(solver_like_state, SZCompressor(1e-4))
        original = solver_like_state["x"].copy()
        record = mgr.snapshot(iteration=10)
        assert record.compression_ratio > 1.0
        solver_like_state["x"] = np.zeros_like(original)
        solver_like_state["i"] = -1
        restored = mgr.restore()
        assert solver_like_state["i"] == 10
        rel = np.abs(solver_like_state["x"] - original) / np.abs(original)
        assert np.max(rel) <= 1e-4 * (1 + 1e-9)
        assert restored["__tag__"] == {"iteration": 10}

    def test_lossless_snapshot_exact(self, solver_like_state):
        mgr = _manager_for(solver_like_state, ZlibCompressor())
        original = solver_like_state["x"].copy()
        mgr.snapshot()
        solver_like_state["x"] = np.zeros_like(original)
        mgr.restore()
        assert np.array_equal(solver_like_state["x"], original)

    def test_default_compressor_is_identity(self, solver_like_state):
        mgr = _manager_for(solver_like_state)
        record = mgr.snapshot()
        assert record.compression_ratio <= 1.05

    def test_restore_specific_checkpoint(self, solver_like_state):
        mgr = _manager_for(solver_like_state, ZlibCompressor())
        mgr.snapshot(iteration=1)
        solver_like_state["i"] = 2
        mgr.snapshot(iteration=2)
        restored = mgr.restore(0)
        assert restored["__tag__"] == {"iteration": 1}

    def test_restore_without_apply(self, solver_like_state):
        mgr = _manager_for(solver_like_state, ZlibCompressor())
        mgr.snapshot()
        solver_like_state["i"] = 99
        mgr.restore(apply=False)
        assert solver_like_state["i"] == 99

    def test_no_dynamic_variables_raises(self):
        mgr = CheckpointManager()
        with pytest.raises(RuntimeError):
            mgr.snapshot()

    def test_restore_without_checkpoint_raises(self, solver_like_state):
        mgr = _manager_for(solver_like_state)
        with pytest.raises(KeyError):
            mgr.restore()

    def test_keep_last_prunes_old_checkpoints(self, solver_like_state):
        mgr = _manager_for(solver_like_state, ZlibCompressor())
        mgr.keep_last = 2
        for i in range(5):
            mgr.snapshot(iteration=i)
        dynamic_ids = [i for i in mgr.store.ids() if i >= 0]
        assert len(dynamic_ids) == 2

    def test_has_checkpoint_and_records(self, solver_like_state):
        mgr = _manager_for(solver_like_state, SZCompressor(1e-3))
        assert not mgr.has_checkpoint()
        mgr.snapshot()
        assert mgr.has_checkpoint()
        assert mgr.latest_record() is not None
        assert mgr.mean_compression_ratio() > 1.0


class _SharedCompressor(IdentityCompressor):
    """Simulates an instance shared with another manager: every compress is
    immediately followed by a foreign record landing in ``records``, so
    ``records[-1]`` no longer belongs to the caller's own call."""

    def compress_with_record(self, data):
        blob, record = super().compress_with_record(data)
        self.records.append(CompressionRecord("compress", 1, 1, 999.0))
        return blob, record


class TestTimingAttribution:
    def test_compress_with_record_returns_per_call_record(self, smooth_vector):
        comp = SZCompressor(1e-4)
        blob_a, rec_a = comp.compress_with_record(smooth_vector)
        blob_b, rec_b = comp.compress_with_record(smooth_vector[: 100])
        assert rec_a is not rec_b
        assert rec_a.compressed_bytes == len(blob_a.payload)
        assert rec_b.compressed_bytes == len(blob_b.payload)
        assert rec_a.original_bytes == smooth_vector.nbytes
        assert comp.last_record is rec_b

    def test_snapshot_uses_per_call_record_not_records_tail(self, solver_like_state):
        # Regression: snapshot read compressor.records[-1].seconds, which
        # mis-attributes timing when the compressor instance is shared.
        mgr = _manager_for(solver_like_state, _SharedCompressor())
        record = mgr.snapshot(iteration=1)
        assert record.compress_seconds < 999.0

    def test_reset_records_clears_last_record(self, smooth_vector):
        comp = ZlibCompressor()
        comp.compress(smooth_vector)
        assert comp.last_record is not None
        comp.reset_records()
        assert comp.last_record is None


class TestStaticVariables:
    def test_static_snapshot_and_restore(self, solver_like_state):
        mgr = _manager_for(solver_like_state, ZlibCompressor())
        static_value = {"A": np.arange(50, dtype=np.float64)}
        mgr.protect("A", VariableRole.STATIC, lambda: static_value["A"],
                    lambda v: static_value.__setitem__("A", v))
        record = mgr.snapshot_static()
        assert record is not None
        static_value["A"] = np.zeros(50)
        mgr.restore_static()
        assert np.array_equal(static_value["A"], np.arange(50, dtype=np.float64))

    def test_static_snapshot_none_when_no_statics(self, solver_like_state):
        mgr = _manager_for(solver_like_state)
        assert mgr.snapshot_static() is None


class TestFileBackedManager:
    def test_file_store_integration(self, solver_like_state, tmp_path):
        mgr = CheckpointManager(
            SZCompressor(1e-4), FileCheckpointStore(tmp_path / "ck")
        )
        mgr.protect("x", VariableRole.DYNAMIC, lambda: solver_like_state["x"],
                    lambda v: solver_like_state.__setitem__("x", v))
        mgr.snapshot(iteration=3)
        original = solver_like_state["x"].copy()
        solver_like_state["x"] = np.zeros_like(original)
        mgr.restore()
        assert np.allclose(solver_like_state["x"], original, rtol=1e-3)

    def test_invalid_keep_last(self):
        with pytest.raises(ValueError):
            CheckpointManager(keep_last=0)
