"""Tests for checkpoint stores."""

import os

import pytest

from repro.checkpoint.store import (
    DISK_PROFILE,
    FAILURE_SCOPES,
    MEMORY_PROFILE,
    OBJECT_PROFILE,
    PFS_PROFILE,
    STORE_PROFILES,
    FileCheckpointStore,
    MemoryCheckpointStore,
    SimulatedObjectStore,
    StoreProfile,
)
from repro.cluster.pfs import PFSModel


@pytest.fixture(params=["memory", "file", "object"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryCheckpointStore()
    if request.param == "object":
        return SimulatedObjectStore()
    return FileCheckpointStore(tmp_path / "ckpts")


class TestCheckpointStores:
    def test_write_read_roundtrip(self, store):
        receipt = store.write(3, b"hello world")
        assert receipt.nbytes == 11
        assert store.read(3) == b"hello world"

    def test_overwrite(self, store):
        store.write(1, b"aaa")
        store.write(1, b"bbbb")
        assert store.read(1) == b"bbbb"

    def test_missing_id_raises(self, store):
        with pytest.raises(KeyError):
            store.read(99)

    def test_ids_sorted(self, store):
        for i in (5, 1, 3):
            store.write(i, b"x")
        assert store.ids() == [1, 3, 5]

    def test_latest_id(self, store):
        assert store.latest_id() is None
        store.write(2, b"x")
        store.write(7, b"y")
        assert store.latest_id() == 7

    def test_delete_and_prune(self, store):
        for i in range(5):
            store.write(i, b"x")
        store.delete(2)
        assert store.ids() == [0, 1, 3, 4]
        store.prune(keep_last=2)
        assert store.ids() == [3, 4]

    def test_prune_validation(self, store):
        with pytest.raises(ValueError):
            store.prune(keep_last=-1)

    def test_stat(self, store):
        store.write(4, b"payload!")
        stat = store.stat(4)
        assert stat.checkpoint_id == 4
        assert stat.nbytes == 8
        assert stat.backend == store.profile.name
        with pytest.raises(KeyError):
            store.stat(99)

    def test_receipt_seconds_is_wall_clock_diagnostic(self, store):
        # perf_counter delta: tiny, non-negative, never a modeled time.
        receipt = store.write(0, b"x" * 1024)
        assert 0.0 <= receipt.seconds < 5.0

    def test_blob_roundtrip(self, store):
        store.put_blob("chunk/abc123", b"blob-bytes")
        assert store.has_blob("chunk/abc123")
        assert store.get_blob("chunk/abc123") == b"blob-bytes"
        assert store.blob_keys() == ["chunk/abc123"]
        store.delete_blob("chunk/abc123")
        assert not store.has_blob("chunk/abc123")
        assert store.blob_keys() == []
        with pytest.raises(KeyError):
            store.get_blob("chunk/abc123")

    def test_blobs_do_not_collide_with_checkpoints(self, store):
        store.write(1, b"checkpoint")
        store.put_blob("1", b"blob")
        assert store.read(1) == b"checkpoint"
        assert store.get_blob("1") == b"blob"
        store.delete_blob("1")
        assert store.read(1) == b"checkpoint"


class TestStoreProfile:
    def test_pfs_profile_matches_pfs_model(self):
        model = PFSModel()
        nbytes = 3.5e9
        for procs in (1, 256, 2048):
            assert PFS_PROFILE.write_seconds(nbytes, procs) == pytest.approx(
                model.write_seconds(nbytes, num_processes=procs), rel=0, abs=0
            )
            assert PFS_PROFILE.read_seconds(nbytes, procs) == pytest.approx(
                model.read_seconds(nbytes, num_processes=procs), rel=0, abs=0
            )

    def test_profiles_are_distinct(self):
        nbytes = 1e9
        costs = {
            name: profile.write_seconds(nbytes, 256)
            for name, profile in STORE_PROFILES.items()
        }
        assert len(set(costs.values())) == len(costs)
        assert costs["memory"] < costs["disk"] < costs["pfs"] < costs["object"]

    def test_drain_slower_than_write(self):
        for profile in STORE_PROFILES.values():
            if profile.async_bandwidth_fraction < 1.0:
                assert profile.drain_seconds(1e9) > profile.write_seconds(1e9)

    def test_survives_rank_order(self):
        assert MEMORY_PROFILE.survives("process")
        assert not MEMORY_PROFILE.survives("node")
        assert DISK_PROFILE.survives("node")
        assert not DISK_PROFILE.survives("system")
        for scope in FAILURE_SCOPES:
            assert PFS_PROFILE.survives(scope)
            assert OBJECT_PROFILE.survives(scope)
        with pytest.raises(ValueError):
            PFS_PROFILE.survives("universe")

    def test_scaled_multiplies_cost_exactly(self):
        base = PFS_PROFILE
        scaled = base.scaled(7.0, name="pfs/L1")
        assert scaled.name == "pfs/L1"
        for procs in (1, 512):
            assert scaled.write_seconds(2e9, procs) == pytest.approx(
                7.0 * base.write_seconds(2e9, procs), rel=1e-12
            )
            assert scaled.read_seconds(2e9, procs) == pytest.approx(
                7.0 * base.read_seconds(2e9, procs), rel=1e-12
            )
        with pytest.raises(ValueError):
            base.scaled(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StoreProfile(name="bad", write_bandwidth=0.0, read_bandwidth=1.0)
        with pytest.raises(ValueError):
            StoreProfile(name="bad", write_bandwidth=1.0, read_bandwidth=1.0, latency=-1)
        with pytest.raises(ValueError):
            StoreProfile(
                name="bad", write_bandwidth=1.0, read_bandwidth=1.0, durability="nope"
            )

    def test_store_survives_delegates_to_profile(self, tmp_path):
        assert not MemoryCheckpointStore().survives("node")
        disk = FileCheckpointStore(tmp_path / "d")
        assert disk.survives("node") and not disk.survives("system")
        assert SimulatedObjectStore().survives("system")


class TestSimulatedObjectStore:
    def test_op_counts(self):
        store = SimulatedObjectStore()
        store.write(1, b"a")
        store.write(2, b"b")
        store.read(1)
        store.delete(2)
        store.put_blob("k", b"v")
        store.get_blob("k")
        store.delete_blob("k")
        assert store.op_counts == {"put": 3, "get": 2, "delete": 2}


class TestMemorySpecific:
    def test_total_bytes(self):
        store = MemoryCheckpointStore()
        store.write(0, b"abc")
        store.write(1, b"defg")
        assert store.total_bytes() == 7


class TestFileSpecific:
    def test_files_on_disk(self, tmp_path):
        store = FileCheckpointStore(tmp_path / "dir")
        store.write(12, b"data")
        files = list((tmp_path / "dir").iterdir())
        assert len(files) == 1
        assert files[0].name == "ckpt_00000012.bin"

    def test_ignores_foreign_files(self, tmp_path):
        directory = tmp_path / "dir"
        store = FileCheckpointStore(directory)
        store.write(1, b"x")
        (directory / "notes.txt").write_text("hi")
        (directory / "ckpt_bad.bin").write_text("hi")
        assert store.ids() == [1]

    def test_blob_keys_escape_roundtrip(self, tmp_path):
        store = FileCheckpointStore(tmp_path / "dir")
        keys = ["chunk/deadbeef", "manifest/replica/L2/7", "odd%name"]
        for key in keys:
            store.put_blob(key, key.encode())
        assert store.blob_keys() == sorted(keys)
        for key in keys:
            assert store.get_blob(key) == key.encode()

    def test_kill_mid_write_preserves_previous_checkpoint(self, tmp_path, monkeypatch):
        """A crash before the atomic rename must leave the old payload intact."""
        directory = tmp_path / "dir"
        store = FileCheckpointStore(directory)
        store.write(5, b"old-complete-checkpoint")

        real_replace = os.replace

        def killed_replace(src, dst):
            raise OSError("simulated power loss before rename")

        monkeypatch.setattr(os, "replace", killed_replace)
        with pytest.raises(OSError):
            store.write(5, b"new-payload-that-never-lands")
        monkeypatch.setattr(os, "replace", real_replace)

        # Old payload is still fully readable; the torn write left only a
        # temp file that neither ids() nor read() pick up.
        assert store.read(5) == b"old-complete-checkpoint"
        assert store.ids() == [5]
        leftovers = [p.name for p in directory.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == ["ckpt_00000005.bin.tmp"]

        # A fresh store over the same directory sees only the good payload,
        # and the next write republishes cleanly over the leftover.
        reopened = FileCheckpointStore(directory)
        assert reopened.ids() == [5]
        assert reopened.read(5) == b"old-complete-checkpoint"
        reopened.write(5, b"recovered")
        assert reopened.read(5) == b"recovered"

    def test_kill_mid_write_first_checkpoint_never_visible(self, tmp_path, monkeypatch):
        directory = tmp_path / "dir"
        store = FileCheckpointStore(directory)

        def killed_replace(src, dst):
            raise OSError("simulated power loss before rename")

        monkeypatch.setattr(os, "replace", killed_replace)
        with pytest.raises(OSError):
            store.write(0, b"half-written")
        monkeypatch.undo()
        assert store.ids() == []
        with pytest.raises(KeyError):
            store.read(0)
