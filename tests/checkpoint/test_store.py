"""Tests for checkpoint stores."""

import pytest

from repro.checkpoint.store import FileCheckpointStore, MemoryCheckpointStore


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryCheckpointStore()
    return FileCheckpointStore(tmp_path / "ckpts")


class TestCheckpointStores:
    def test_write_read_roundtrip(self, store):
        receipt = store.write(3, b"hello world")
        assert receipt.nbytes == 11
        assert store.read(3) == b"hello world"

    def test_overwrite(self, store):
        store.write(1, b"aaa")
        store.write(1, b"bbbb")
        assert store.read(1) == b"bbbb"

    def test_missing_id_raises(self, store):
        with pytest.raises(KeyError):
            store.read(99)

    def test_ids_sorted(self, store):
        for i in (5, 1, 3):
            store.write(i, b"x")
        assert store.ids() == [1, 3, 5]

    def test_latest_id(self, store):
        assert store.latest_id() is None
        store.write(2, b"x")
        store.write(7, b"y")
        assert store.latest_id() == 7

    def test_delete_and_prune(self, store):
        for i in range(5):
            store.write(i, b"x")
        store.delete(2)
        assert store.ids() == [0, 1, 3, 4]
        store.prune(keep_last=2)
        assert store.ids() == [3, 4]

    def test_prune_validation(self, store):
        with pytest.raises(ValueError):
            store.prune(keep_last=-1)


class TestMemorySpecific:
    def test_total_bytes(self):
        store = MemoryCheckpointStore()
        store.write(0, b"abc")
        store.write(1, b"defg")
        assert store.total_bytes() == 7


class TestFileSpecific:
    def test_files_on_disk(self, tmp_path):
        store = FileCheckpointStore(tmp_path / "dir")
        store.write(12, b"data")
        files = list((tmp_path / "dir").iterdir())
        assert len(files) == 1
        assert files[0].name == "ckpt_00000012.bin"

    def test_ignores_foreign_files(self, tmp_path):
        directory = tmp_path / "dir"
        store = FileCheckpointStore(directory)
        store.write(1, b"x")
        (directory / "notes.txt").write_text("hi")
        (directory / "ckpt_bad.bin").write_text("hi")
        assert store.ids() == [1]
