"""Delta codec + incremental pipeline: keyframes, chains, bound preservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.checkpoint import CheckpointPipeline, MemoryCheckpointStore
from repro.checkpoint.delta import (
    DELTA_COMPRESSOR,
    delta_decode,
    delta_encode,
    is_delta_blob,
)
from repro.core.schemes import CheckpointingScheme
from repro.solvers import CGSolver, JacobiSolver

finite_vectors = arrays(
    np.float64,
    st.shared(st.integers(min_value=2, max_value=128), key="n"),
    elements=st.floats(
        min_value=-1e300, max_value=1e300, allow_nan=False, width=64
    ),
)


class TestDeltaCodec:
    @settings(max_examples=40, deadline=None)
    @given(value=finite_vectors, base=finite_vectors)
    def test_round_trip_bitwise_any_base(self, value, base):
        """Deltas reproduce the value bit-for-bit, even against a far base
        (denormals, sign flips, huge magnitudes ride the escape channel)."""
        blob = delta_encode(value, base, base_id=3)
        assert is_delta_blob(blob)
        assert blob.meta["base_id"] == 3
        restored = delta_decode(blob, base)
        assert restored.tobytes() == np.ascontiguousarray(value).tobytes()

    def test_near_base_deltas_are_small(self, rng):
        base = rng.standard_normal(4096)
        value = base * (1.0 + 1e-12 * rng.standard_normal(4096))
        blob = delta_encode(value, base, base_id=0)
        assert blob.nbytes < value.nbytes / 3
        assert delta_decode(blob, base).tobytes() == value.tobytes()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            delta_encode(np.ones(4), np.ones(5), base_id=0)
        blob = delta_encode(np.ones(4), np.zeros(4), base_id=0)
        with pytest.raises(ValueError, match="elements"):
            delta_decode(blob, np.zeros(5))

    def test_wrong_compressor_rejected(self):
        blob = delta_encode(np.ones(4), np.zeros(4), base_id=0)
        blob.compressor = "zlib"
        with pytest.raises(ValueError, match="delta64"):
            delta_decode(blob, np.zeros(4))


def _drifting_states(n=256, steps=12, seed=5):
    """A converging-iterate-like sequence: successive states stay close
    (relative drift small enough that bit residuals pack well)."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    states = [x.copy()]
    for step in range(1, steps):
        x = x + rng.standard_normal(n) * 10.0 ** (-6.0 - 0.4 * step)
        states.append(x.copy())
    return states


class TestIncrementalPipeline:
    def test_lossless_chain_restores_bitwise_after_n_deltas(self):
        """Every payload of a committed delta chain restores bit-for-bit."""
        pipeline = CheckpointPipeline(
            CheckpointingScheme.lossless(),
            spec=JacobiSolver.checkpoint_spec,
            incremental=True,
            keyframe_interval=4,
        )
        states = _drifting_states()
        snaps = []
        for i, x in enumerate(states):
            snap = pipeline.snapshot(x, iteration=i, checkpoint_id=i)
            pipeline.commit(snap)
            snaps.append(snap)
        shipped = [s.variables[-1].compressor for s in snaps]
        assert DELTA_COMPRESSOR in shipped  # deltas actually won somewhere
        for i, (x, snap) in enumerate(zip(states, snaps)):
            restored = pipeline.restore(payload=snap.payload)
            assert restored.x.tobytes() == x.tobytes(), f"checkpoint {i}"

    def test_keyframe_cadence(self):
        pipeline = CheckpointPipeline(
            CheckpointingScheme.lossless(),
            spec=JacobiSolver.checkpoint_spec,
            incremental=True,
            keyframe_interval=4,
        )
        states = _drifting_states(steps=9)
        for i, x in enumerate(states):
            snap = pipeline.snapshot(x, iteration=i, checkpoint_id=i)
            pipeline.commit(snap)
            if i % 4 == 0:
                # Keyframes never reference a base, whatever the history.
                assert snap.base_id is None
            elif i > 0:
                assert snap.base_id == i - 1

    def test_lossy_chain_respects_bound_after_n_deltas(self, poisson_small):
        """Restores along a lossy delta chain honour the pointwise bound with
        zero accumulation (deltas ride the bound-respecting reconstruction)."""
        eb = 1e-4
        solver = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=50000)
        pipeline = CheckpointPipeline(
            CheckpointingScheme.lossy(eb),
            solver=solver,
            incremental=True,
            keyframe_interval=4,
        )
        captured = []
        solver.solve(poisson_small.b, callback=lambda s: captured.append(s.x.copy()))
        states = captured[:: max(1, len(captured) // 10)][:10]
        for i, x in enumerate(states):
            snap = pipeline.snapshot(x, iteration=i, checkpoint_id=i)
            pipeline.commit(snap)
            restored = pipeline.restore(payload=snap.payload)
            assert np.all(
                np.abs(restored.x - x) <= eb * np.abs(x) + 1e-300
            ), f"bound violated at delta-chain position {i}"

    def test_exact_resume_vectors_survive_the_chain(self, poisson_small):
        solver = CGSolver(poisson_small.A, rtol=1e-7, max_iter=1000)
        states = []
        solver.solve(poisson_small.b, callback=lambda s: states.append(s))
        pipeline = CheckpointPipeline(
            CheckpointingScheme.lossless(),
            solver=solver,
            store=MemoryCheckpointStore(),
            incremental=True,
        )
        picks = states[2:8]
        for i, state in enumerate(picks):
            resume = solver.capture_resume_state(state)
            snap = pipeline.snapshot(
                state.x, iteration=state.iteration, resume_state=resume,
                checkpoint_id=i,
            )
            pipeline.commit(snap)
            restored = pipeline.restore(i)
            assert restored.x.tobytes() == state.x.tobytes()
            assert (
                restored.resume_state.vectors["p"].tobytes()
                == resume.vectors["p"].tobytes()
            )

    def test_restore_without_base_raises(self):
        pipeline = CheckpointPipeline(
            CheckpointingScheme.lossless(),
            spec=JacobiSolver.checkpoint_spec,
            incremental=True,
        )
        states = _drifting_states(steps=3)
        delta_snap = None
        for i, x in enumerate(states):
            snap = pipeline.snapshot(x, iteration=i, checkpoint_id=i)
            pipeline.commit(snap)
            if snap.base_id is not None:
                delta_snap = snap
        assert delta_snap is not None
        fresh = CheckpointPipeline(
            CheckpointingScheme.lossless(),
            spec=JacobiSolver.checkpoint_spec,
            incremental=True,
        )
        with pytest.raises(KeyError, match="base checkpoint"):
            fresh.restore(payload=delta_snap.payload)

    def test_uncommitted_snapshot_is_not_a_base(self):
        """Deltas reference the last *committed* payload, not the last taken."""
        pipeline = CheckpointPipeline(
            CheckpointingScheme.lossless(),
            spec=JacobiSolver.checkpoint_spec,
            incremental=True,
            keyframe_interval=100,
        )
        states = _drifting_states(steps=4)
        first = pipeline.snapshot(states[0], iteration=0, checkpoint_id=1)
        pipeline.commit(first)
        discarded = pipeline.snapshot(states[1], iteration=1, checkpoint_id=2)
        assert discarded.base_id == 1
        # The dirty write never commits; the next snapshot still bases on 1.
        third = pipeline.snapshot(states[2], iteration=2, checkpoint_id=3)
        assert third.base_id == 1
        pipeline.commit(third)
        restored = pipeline.restore(payload=third.payload)
        assert restored.x.tobytes() == states[2].tobytes()

    def test_delta_base_survives_in_place_mutation_of_source(self):
        """The committed base must be frozen even if the caller keeps
        mutating the snapshotted buffer (solvers update x in place)."""
        pipeline = CheckpointPipeline(
            CheckpointingScheme.traditional(),
            spec=JacobiSolver.checkpoint_spec,
            incremental=True,
            keyframe_interval=100,
        )
        live = np.linspace(1.0, 2.0, 256)
        pipeline.commit(pipeline.snapshot(live, iteration=0, checkpoint_id=1))
        second = live * (1.0 + 1e-12)
        snap = pipeline.snapshot(second, iteration=1, checkpoint_id=2)
        pipeline.commit(snap)
        live *= -3.0  # the solver moves on; the frozen base must not follow
        restored = pipeline.restore(payload=snap.payload)
        assert restored.x.tobytes() == second.tobytes()

    def test_non_incremental_payloads_carry_no_deltas(self):
        pipeline = CheckpointPipeline(
            CheckpointingScheme.lossless(), spec=JacobiSolver.checkpoint_spec
        )
        states = _drifting_states(steps=4)
        for i, x in enumerate(states):
            snap = pipeline.snapshot(x, iteration=i, checkpoint_id=i)
            pipeline.commit(snap)
            assert snap.base_id is None
            assert all(m.compressor != DELTA_COMPRESSOR for m in snap.variables)

    def test_delta_ships_only_when_smaller(self, rng):
        """Uncorrelated successive states fall back to the full payload."""
        pipeline = CheckpointPipeline(
            CheckpointingScheme.traditional(),
            spec=JacobiSolver.checkpoint_spec,
            incremental=True,
            keyframe_interval=100,
        )
        a = rng.standard_normal(256)
        b = rng.standard_normal(256) * 1e17  # nothing in common with a
        pipeline.commit(pipeline.snapshot(a, iteration=0, checkpoint_id=1))
        snap = pipeline.snapshot(b, iteration=1, checkpoint_id=2)
        (x_meas,) = [m for m in snap.variables if m.name == "x"]
        assert x_meas.compressor != DELTA_COMPRESSOR
        restored = pipeline.restore(payload=snap.payload)
        assert restored.x.tobytes() == b.tobytes()
