"""Tests for content-addressed chunk dedup (:class:`ChunkedStore`)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.chunked import ChunkedStore, chunk_digest
from repro.checkpoint.store import (
    FileCheckpointStore,
    MemoryCheckpointStore,
    SimulatedObjectStore,
)

CHUNK = 64  # small chunk size so tests exercise multi-chunk payloads cheaply


@pytest.fixture(params=["memory", "file", "object"])
def store(request, tmp_path):
    if request.param == "memory":
        base = MemoryCheckpointStore()
    elif request.param == "object":
        base = SimulatedObjectStore()
    else:
        base = FileCheckpointStore(tmp_path / "ckpts")
    return ChunkedStore(base, chunk_size=CHUNK)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "size",
        [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK - 1, 3 * CHUNK, 3 * CHUNK + 1],
    )
    def test_boundary_sizes(self, store, size):
        payload = bytes(range(256)) * (size // 256 + 1)
        payload = payload[:size]
        receipt = store.write(0, payload)
        assert receipt.nbytes == size
        assert store.read(0) == payload

    def test_overwrite_replaces_manifest(self, store):
        store.write(1, b"a" * CHUNK * 2)
        store.write(1, b"b" * CHUNK * 3)
        assert store.read(1) == b"b" * CHUNK * 3
        assert store.ids() == [1]

    def test_missing_id_raises(self, store):
        with pytest.raises(KeyError):
            store.read(42)

    def test_stat_reports_logical_size(self, store):
        store.write(3, b"z" * (2 * CHUNK + 5))
        stat = store.stat(3)
        assert stat.nbytes == 2 * CHUNK + 5
        assert stat.backend.startswith("chunked(")


class TestDedup:
    def test_duplicate_payload_adds_zero_unique_bytes(self, store):
        payload = b"d" * (4 * CHUNK)
        first = store.write(0, payload)
        assert first.unique_bytes == CHUNK  # all four chunks identical
        second = store.write(1, payload)
        assert second.unique_bytes == 0
        assert second.dedup_ratio == float("inf")
        assert store.read(0) == store.read(1) == payload

    def test_near_duplicate_ships_only_changed_chunks(self, store):
        base = bytes(range(256)) * (8 * CHUNK // 256 + 1)
        base = base[: 8 * CHUNK]
        store.write(0, base)
        mutated = bytearray(base)
        mutated[3 * CHUNK] ^= 0xFF  # flip one byte in chunk 3
        receipt = store.write(1, bytes(mutated))
        assert receipt.unique_bytes == CHUNK
        assert receipt.chunks_new == 1
        assert receipt.chunks_total == 8
        assert receipt.dedup_ratio == pytest.approx(8.0)
        assert store.read(1) == bytes(mutated)

    def test_preview_write_matches_receipt(self, store):
        payload = b"p" * (3 * CHUNK) + b"q" * CHUNK
        nbytes, unique = store.preview_write(payload)
        receipt = store.write(0, payload)
        assert (nbytes, unique) == (receipt.nbytes, receipt.unique_bytes)
        # After commit, the same payload previews at zero new bytes.
        assert store.preview_write(payload) == (len(payload), 0)

    def test_dedup_stats_cumulative(self, store):
        payload = b"s" * (2 * CHUNK)
        store.write(0, payload)
        store.write(1, payload)
        stats = store.dedup_stats()
        assert stats["logical_bytes"] == 4 * CHUNK
        assert stats["unique_bytes"] == CHUNK
        assert stats["dedup_ratio"] == pytest.approx(4.0)
        # Deletes do not roll back traffic counters.
        store.delete(0)
        store.delete(1)
        assert store.dedup_stats()["logical_bytes"] == 4 * CHUNK


class TestRefcounts:
    def test_delete_never_drops_live_chunk(self, store):
        payload = b"r" * (2 * CHUNK)
        store.write(0, payload)
        store.write(1, payload)
        digest = chunk_digest(b"r" * CHUNK)
        assert store.refcount(digest) == 4  # 2 chunks x 2 manifests
        store.delete(0)
        assert store.refcount(digest) == 2
        assert store.read(1) == payload  # survivor still fully readable
        store.delete(1)
        assert store.refcount(digest) == 0
        assert store.live_chunk_count() == 0

    def test_delete_absent_id_is_noop(self, store):
        store.write(0, b"x" * CHUNK)
        before = store.live_chunk_count()
        store.delete(99)
        assert store.live_chunk_count() == before

    def test_reopen_rebuilds_refcounts(self, tmp_path):
        directory = tmp_path / "pool"
        store = ChunkedStore(FileCheckpointStore(directory), chunk_size=CHUNK)
        payload = b"m" * (3 * CHUNK)
        store.write(0, payload)
        store.write(1, payload)
        store.put_chunked_blob("replica/L2/1", payload)

        reopened = ChunkedStore(FileCheckpointStore(directory), chunk_size=CHUNK)
        digest = chunk_digest(b"m" * CHUNK)
        assert reopened.refcount(digest) == 9  # 3 chunks x 3 manifests
        assert reopened.read(0) == payload
        assert reopened.get_chunked_blob("replica/L2/1") == payload
        # Deleting two of three owners must keep the chunk alive.
        reopened.delete(0)
        reopened.delete_chunked_blob("replica/L2/1")
        assert reopened.read(1) == payload


class TestChunkedBlobs:
    def test_replica_of_pooled_payload_is_free(self, store):
        payload = bytes(range(256)) * (4 * CHUNK // 256 + 1)
        payload = payload[: 4 * CHUNK]
        store.write(0, payload)
        receipt = store.put_chunked_blob("replica/L2/0", payload)
        assert receipt.unique_bytes == 0
        assert store.get_chunked_blob("replica/L2/0") == payload
        # Deleting the checkpoint keeps the replica readable (chunks live).
        store.delete(0)
        assert store.get_chunked_blob("replica/L2/0") == payload
        store.delete_chunked_blob("replica/L2/0")
        assert not store.has_chunked_blob("replica/L2/0")
        assert store.live_chunk_count() == 0

    def test_overwrite_blob_releases_old_chunks(self, store):
        store.put_chunked_blob("k", b"a" * CHUNK)
        store.put_chunked_blob("k", b"b" * CHUNK)
        assert store.get_chunked_blob("k") == b"b" * CHUNK
        assert store.refcount(chunk_digest(b"a" * CHUNK)) == 0


class TestManifestFormat:
    def test_manifest_is_documented_json(self, store):
        store.write(7, b"f" * (CHUNK + 1))
        raw = store.base.read(7)
        manifest = json.loads(raw.decode("utf-8"))
        assert manifest["magic"] == "repro-chunk-manifest"
        assert manifest["version"] == 1
        assert manifest["length"] == CHUNK + 1
        assert manifest["chunk_size"] == CHUNK
        assert len(manifest["chunks"]) == 2
        for digest in manifest["chunks"]:
            assert store.base.has_blob(f"chunk/{digest}")

    def test_non_manifest_payload_rejected(self, store):
        store.base.write(0, b"not json at all")
        with pytest.raises((ValueError, json.JSONDecodeError)):
            store.read(0)

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            ChunkedStore(MemoryCheckpointStore(), chunk_size=0)


class TestHypothesisRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(payload=st.binary(min_size=0, max_size=5 * CHUNK + 3))
    def test_single_payload_roundtrip_bitwise(self, payload):
        store = ChunkedStore(MemoryCheckpointStore(), chunk_size=CHUNK)
        store.write(0, payload)
        assert store.read(0) == payload

    @settings(max_examples=40, deadline=None)
    @given(
        payloads=st.lists(
            st.binary(min_size=0, max_size=3 * CHUNK + 1), min_size=1, max_size=6
        )
    )
    def test_many_payloads_with_duplicates(self, payloads):
        store = ChunkedStore(MemoryCheckpointStore(), chunk_size=CHUNK)
        # Interleave duplicates to stress refcounting.
        everything = payloads + payloads[::2]
        for i, payload in enumerate(everything):
            store.write(i, payload)
        for i, payload in enumerate(everything):
            assert store.read(i) == payload
        stats = store.dedup_stats()
        assert stats["unique_bytes"] <= stats["logical_bytes"] or not payloads

    @settings(max_examples=40, deadline=None)
    @given(
        payload=st.binary(min_size=1, max_size=4 * CHUNK),
        copies=st.integers(min_value=2, max_value=5),
        drop=st.integers(min_value=0, max_value=4),
    )
    def test_partial_delete_keeps_survivors_bitwise(self, payload, copies, drop):
        store = ChunkedStore(MemoryCheckpointStore(), chunk_size=CHUNK)
        for i in range(copies):
            store.write(i, payload)
        for i in range(min(drop, copies - 1)):
            store.delete(i)
        for i in range(min(drop, copies - 1), copies):
            assert store.read(i) == payload

    @settings(max_examples=25, deadline=None)
    @given(payload=st.binary(min_size=0, max_size=4 * CHUNK + 7))
    def test_manifest_restore_bitwise_after_reopen(self, payload, tmp_path_factory):
        directory = tmp_path_factory.mktemp("pool")
        ChunkedStore(FileCheckpointStore(directory), chunk_size=CHUNK).write(0, payload)
        reopened = ChunkedStore(FileCheckpointStore(directory), chunk_size=CHUNK)
        assert reopened.read(0) == payload
