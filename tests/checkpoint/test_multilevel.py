"""Tests for the FTI-style multilevel checkpoint store."""

import pytest

from repro.checkpoint.multilevel import (
    CheckpointLevel,
    MultilevelCheckpointStore,
    MultilevelPolicy,
)


class TestMultilevelPolicy:
    def test_default_cycle_ends_with_pfs(self):
        policy = MultilevelPolicy()
        assert CheckpointLevel.PFS in policy.cycle

    def test_level_for_cycles(self):
        policy = MultilevelPolicy(cycle=[CheckpointLevel.LOCAL, CheckpointLevel.PFS])
        assert policy.level_for(0) is CheckpointLevel.LOCAL
        assert policy.level_for(1) is CheckpointLevel.PFS
        assert policy.level_for(2) is CheckpointLevel.LOCAL

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            MultilevelPolicy(cycle=[])

    def test_invalid_probability_rejected(self):
        survival = {level: 1.0 for level in CheckpointLevel}
        survival[CheckpointLevel.LOCAL] = 1.5
        with pytest.raises(ValueError):
            MultilevelPolicy(survival_probability=survival)

    def test_cheaper_levels_cost_less(self):
        policy = MultilevelPolicy()
        assert (
            policy.cost_multiplier[CheckpointLevel.LOCAL]
            < policy.cost_multiplier[CheckpointLevel.PFS]
        )


class TestMultilevelStore:
    def test_write_assigns_levels_from_cycle(self):
        policy = MultilevelPolicy(cycle=[CheckpointLevel.LOCAL, CheckpointLevel.PFS])
        store = MultilevelCheckpointStore(policy, seed=0)
        store.write(0, b"a")
        store.write(1, b"b")
        assert store.level_of(0) is CheckpointLevel.LOCAL
        assert store.level_of(1) is CheckpointLevel.PFS

    def test_read_delete_roundtrip(self):
        store = MultilevelCheckpointStore(seed=0)
        store.write(0, b"payload")
        assert store.read(0) == b"payload"
        store.delete(0)
        assert store.ids() == []

    def test_cost_multiplier_of(self):
        policy = MultilevelPolicy(cycle=[CheckpointLevel.LOCAL])
        store = MultilevelCheckpointStore(policy, seed=0)
        store.write(0, b"x")
        assert store.cost_multiplier_of(0) == policy.cost_multiplier[CheckpointLevel.LOCAL]

    def test_pfs_checkpoint_always_survives(self):
        policy = MultilevelPolicy(cycle=[CheckpointLevel.PFS])
        store = MultilevelCheckpointStore(policy, seed=1)
        store.write(0, b"x")
        store.write(1, b"y")
        assert store.surviving_id() == 1

    def test_local_checkpoints_sometimes_lost(self):
        survival = {level: 1.0 for level in CheckpointLevel}
        survival[CheckpointLevel.LOCAL] = 0.0
        policy = MultilevelPolicy(
            cycle=[CheckpointLevel.PFS, CheckpointLevel.LOCAL],
            survival_probability=survival,
        )
        store = MultilevelCheckpointStore(policy, seed=2)
        store.write(0, b"pfs")
        store.write(1, b"local")
        # The newest (local) checkpoint never survives; recovery falls back to PFS.
        assert store.surviving_id() == 0

    def test_no_checkpoints_returns_none(self):
        store = MultilevelCheckpointStore(seed=0)
        assert store.surviving_id() is None
