"""Tests for the FTI-style multilevel checkpoint store."""

import numpy as np
import pytest

from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.multilevel import (
    CheckpointLevel,
    MultilevelCheckpointStore,
    MultilevelPolicy,
)
from repro.checkpoint.variables import VariableRole


class TestMultilevelPolicy:
    def test_default_cycle_ends_with_pfs(self):
        policy = MultilevelPolicy()
        assert CheckpointLevel.PFS in policy.cycle

    def test_level_for_cycles(self):
        policy = MultilevelPolicy(cycle=[CheckpointLevel.LOCAL, CheckpointLevel.PFS])
        assert policy.level_for(0) is CheckpointLevel.LOCAL
        assert policy.level_for(1) is CheckpointLevel.PFS
        assert policy.level_for(2) is CheckpointLevel.LOCAL

    def test_empty_cycle_rejected(self):
        with pytest.raises(ValueError):
            MultilevelPolicy(cycle=[])

    def test_invalid_probability_rejected(self):
        survival = {level: 1.0 for level in CheckpointLevel}
        survival[CheckpointLevel.LOCAL] = 1.5
        with pytest.raises(ValueError):
            MultilevelPolicy(survival_probability=survival)

    def test_cheaper_levels_cost_less(self):
        policy = MultilevelPolicy()
        assert (
            policy.cost_multiplier[CheckpointLevel.LOCAL]
            < policy.cost_multiplier[CheckpointLevel.PFS]
        )


class TestMultilevelStore:
    def test_write_assigns_levels_from_cycle(self):
        policy = MultilevelPolicy(cycle=[CheckpointLevel.LOCAL, CheckpointLevel.PFS])
        store = MultilevelCheckpointStore(policy, seed=0)
        store.write(0, b"a")
        store.write(1, b"b")
        assert store.level_of(0) is CheckpointLevel.LOCAL
        assert store.level_of(1) is CheckpointLevel.PFS

    def test_read_delete_roundtrip(self):
        store = MultilevelCheckpointStore(seed=0)
        store.write(0, b"payload")
        assert store.read(0) == b"payload"
        store.delete(0)
        assert store.ids() == []

    def test_cost_multiplier_of(self):
        policy = MultilevelPolicy(cycle=[CheckpointLevel.LOCAL])
        store = MultilevelCheckpointStore(policy, seed=0)
        store.write(0, b"x")
        assert store.cost_multiplier_of(0) == policy.cost_multiplier[CheckpointLevel.LOCAL]

    def test_pfs_checkpoint_always_survives(self):
        policy = MultilevelPolicy(cycle=[CheckpointLevel.PFS])
        store = MultilevelCheckpointStore(policy, seed=1)
        store.write(0, b"x")
        store.write(1, b"y")
        assert store.surviving_id() == 1

    def test_local_checkpoints_sometimes_lost(self):
        survival = {level: 1.0 for level in CheckpointLevel}
        survival[CheckpointLevel.LOCAL] = 0.0
        policy = MultilevelPolicy(
            cycle=[CheckpointLevel.PFS, CheckpointLevel.LOCAL],
            survival_probability=survival,
        )
        store = MultilevelCheckpointStore(policy, seed=2)
        store.write(0, b"pfs")
        store.write(1, b"local")
        # The newest (local) checkpoint never survives; recovery falls back to PFS.
        assert store.surviving_id() == 0

    def test_no_checkpoints_returns_none(self):
        store = MultilevelCheckpointStore(seed=0)
        assert store.surviving_id() is None


_CYCLE = [CheckpointLevel.LOCAL, CheckpointLevel.PARTNER, CheckpointLevel.PFS]


class TestDynamicOnlyCycle:
    """The policy cycle must be keyed on new dynamic checkpoints only.

    Regression: ``write`` used to advance the cycle for *every* write —
    including the static checkpoint (id ``-1``) and overwrites — so a
    ``snapshot_static()`` call silently shifted the level of every later
    dynamic checkpoint.
    """

    def test_static_writes_do_not_shift_cycle(self):
        store = MultilevelCheckpointStore(MultilevelPolicy(cycle=list(_CYCLE)), seed=0)
        store.write(-1, b"static")
        store.write(0, b"a")
        store.write(-1, b"static again")
        store.write(1, b"b")
        store.write(2, b"c")
        assert [store.level_of(i) for i in (0, 1, 2)] == _CYCLE

    def test_static_checkpoint_pinned_to_pfs(self):
        store = MultilevelCheckpointStore(MultilevelPolicy(cycle=list(_CYCLE)), seed=0)
        store.write(-1, b"static")
        assert store.level_of(-1) is CheckpointLevel.PFS

    def test_overwrite_keeps_level_and_cycle_position(self):
        store = MultilevelCheckpointStore(MultilevelPolicy(cycle=list(_CYCLE)), seed=0)
        store.write(0, b"a")
        store.write(0, b"a v2")
        store.write(1, b"b")
        assert store.level_of(0) is CheckpointLevel.LOCAL
        assert store.level_of(1) is CheckpointLevel.PARTNER

    def test_interleaved_snapshots_keep_level_sequence(self):
        """Pin via the manager: snapshot_static() between snapshots is inert."""
        store = MultilevelCheckpointStore(MultilevelPolicy(cycle=list(_CYCLE)), seed=0)
        state = {"x": np.linspace(1.0, 2.0, 256), "A": np.eye(4)}
        mgr = CheckpointManager(store=store, keep_last=10)
        mgr.protect("x", VariableRole.DYNAMIC, lambda: state["x"],
                    lambda v: state.__setitem__("x", v))
        mgr.protect("A", VariableRole.STATIC, lambda: state["A"],
                    lambda v: state.__setitem__("A", v))
        mgr.snapshot_static()
        mgr.snapshot(iteration=0)
        mgr.snapshot_static()  # re-write static mid-run: must not drift levels
        mgr.snapshot(iteration=1)
        mgr.snapshot(iteration=2)
        mgr.snapshot_static()
        mgr.snapshot(iteration=3)
        levels = [store.level_of(i) for i in (0, 1, 2, 3)]
        assert levels == _CYCLE + [_CYCLE[0]]
        assert store.level_of(-1) is CheckpointLevel.PFS
