"""Tests for the cluster time model."""

import pytest

from repro.cluster.machine import (
    BEBOP_LIKE,
    ClusterModel,
    MachineSpec,
    PAPER_BASELINE_ITERATIONS,
    PAPER_BASELINE_SECONDS,
    PAPER_ITERATION_SECONDS,
)

_GIB = 1024.0**3


class TestCalibrationTables:
    def test_iteration_seconds_consistent_with_baselines(self):
        for method in ("jacobi", "gmres", "cg"):
            assert PAPER_ITERATION_SECONDS[method] == pytest.approx(
                PAPER_BASELINE_SECONDS[method] / PAPER_BASELINE_ITERATIONS[method]
            )

    def test_gmres_iteration_about_1_2_seconds(self):
        # The paper's worked Theorem-1 example quotes Tit ~ 1.2 s for GMRES.
        assert PAPER_ITERATION_SECONDS["gmres"] == pytest.approx(1.2, abs=0.1)


class TestMachineSpec:
    def test_total_cores(self):
        assert BEBOP_LIKE.total_cores == 64 * 32

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(nodes=0)
        with pytest.raises(ValueError):
            MachineSpec(compress_bandwidth_per_core=0.0)


class TestClusterModel:
    def test_traditional_checkpoint_matches_anchor(self):
        cluster = ClusterModel(num_processes=2048)
        unc = 78.8 * _GIB
        assert cluster.checkpoint_seconds(unc, unc, compressed=False) == pytest.approx(
            120.0, rel=0.05
        )

    def test_compression_stage_adds_modest_time(self):
        cluster = ClusterModel(num_processes=2048)
        unc = 78.8 * _GIB
        with_compression = cluster.checkpoint_seconds(unc, unc / 30.0)
        without = cluster.checkpoint_seconds(unc, unc / 30.0, compressed=False)
        # Compressing ~80 GB on 2,048 cores takes about half a second.
        assert 0.0 < with_compression - without < 2.0

    def test_lossy_checkpoint_much_cheaper_than_traditional(self):
        cluster = ClusterModel(num_processes=2048)
        unc = 78.8 * _GIB
        lossy = cluster.checkpoint_seconds(unc, unc / 30.0)
        traditional = cluster.checkpoint_seconds(unc, unc, compressed=False)
        assert lossy < 0.3 * traditional

    def test_checkpoint_time_grows_with_scale_weak_scaling(self):
        times = []
        for procs in (256, 1024, 2048):
            cluster = ClusterModel(num_processes=procs)
            unc = 78.8 * _GIB * procs / 2048.0
            times.append(cluster.checkpoint_seconds(unc, unc, compressed=False))
        assert times[0] < times[1] < times[2]

    def test_recovery_includes_static_rebuild(self):
        cluster = ClusterModel(num_processes=2048)
        unc = 78.8 * _GIB
        base = cluster.recovery_seconds(unc, unc / 30.0)
        with_static = cluster.recovery_seconds(unc, unc / 30.0, static_bytes=unc * 10)
        assert with_static > base

    def test_iteration_time_lookup(self):
        cluster = ClusterModel()
        assert cluster.iteration_time("gmres") == PAPER_ITERATION_SECONDS["gmres"]
        assert cluster.iteration_time("gmres", override=2.5) == 2.5
        with pytest.raises(KeyError):
            cluster.iteration_time("unknown-method")

    def test_calibrated_iteration_time(self):
        cluster = ClusterModel()
        # A local run with 100 iterations stretches to the paper's 3,000 s Jacobi baseline.
        assert cluster.calibrated_iteration_time("jacobi", 100) == pytest.approx(30.0)
        with pytest.raises(ValueError):
            cluster.calibrated_iteration_time("jacobi", 0)
        with pytest.raises(KeyError):
            cluster.calibrated_iteration_time("nope", 10)

    def test_with_processes_copy(self):
        cluster = ClusterModel(num_processes=256)
        other = cluster.with_processes(2048)
        assert other.num_processes == 2048
        assert cluster.num_processes == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterModel(num_processes=0)
