"""Tests for the exponential failure injector."""

import numpy as np
import pytest

from repro.cluster.failures import FailureInjector


class TestFailureInjector:
    def test_disabled_injector_never_fails(self):
        injector = FailureInjector(None)
        assert injector.next_failure_time() == float("inf")
        assert injector.failure_in(0.0, 1e12) is None
        assert injector.failure_rate == 0.0

    def test_failure_rate(self):
        assert FailureInjector(3600.0).failure_rate == pytest.approx(1.0 / 3600.0)

    def test_reproducible_with_seed(self):
        a = FailureInjector(3600.0, seed=5).next_failure_time()
        b = FailureInjector(3600.0, seed=5).next_failure_time()
        assert a == b

    def test_failure_in_window_detection(self):
        injector = FailureInjector(100.0, seed=0)
        t = injector.next_failure_time()
        assert injector.failure_in(t - 1.0, t + 1.0) == t
        # A pending failure at or before the window start is latent — it
        # strikes in the first window that checks rather than sitting in the
        # past forever.
        assert injector.failure_in(t + 1.0, t + 2.0) == t
        assert injector.failure_in(0.0, t - 1.0) is None

    def test_consume_rearms(self):
        injector = FailureInjector(100.0, seed=1)
        first = injector.next_failure_time()
        event = injector.consume(first, "compute")
        assert event.time == first
        assert event.phase == "compute"
        assert injector.next_failure_time() > first
        assert injector.count == 1

    def test_consume_disabled_raises(self):
        with pytest.raises(RuntimeError):
            FailureInjector(None).consume(1.0)

    def test_mean_interarrival_close_to_mtti(self):
        injector = FailureInjector(100.0, seed=42)
        times = []
        t = 0.0
        for _ in range(2000):
            nxt = injector.next_failure_time()
            times.append(nxt - t)
            t = nxt
            injector.consume(nxt)
        assert np.mean(times) == pytest.approx(100.0, rel=0.1)

    def test_invalid_mtti(self):
        with pytest.raises(ValueError):
            FailureInjector(-1.0)

    def test_latent_failure_strikes_in_next_window(self):
        # A consume() can re-arm the next failure *inside* a phase whose full
        # cost was already charged to the clock (interrupted attempts are
        # billed whole).  Such a latent failure must strike in the next
        # window that checks — the old strict `start < t` test left it in
        # the past forever, silently disabling injection for the rest of
        # the run.
        from repro.cluster.failures import ScriptedFailureModel

        injector = FailureInjector(model=ScriptedFailureModel([5.0, 7.0, 300.0]))
        assert injector.failure_in(0.0, 10.0) == 5.0
        injector.consume(5.0, "recovery")
        # Re-armed at t=7, but the clock already sits at 10.
        assert injector.next_failure_time() == 7.0
        assert injector.failure_in(10.0, 20.0) == 7.0
        injector.consume(7.0, "recovery")
        assert injector.failure_in(20.0, 30.0) is None
        assert injector.failure_in(250.0, 350.0) == 300.0
