"""Tests for 1-D block partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.partition import block_partition, local_sizes


class TestBlockPartition:
    def test_even_split(self):
        part = block_partition(100, 4)
        assert part.counts == (25, 25, 25, 25)

    def test_remainder_distributed_to_first_ranks(self):
        part = block_partition(10, 3)
        assert part.counts == (4, 3, 3)

    def test_owner(self):
        part = block_partition(10, 3)
        assert part.owner(0) == 0
        assert part.owner(3) == 0
        assert part.owner(4) == 1
        assert part.owner(9) == 2
        with pytest.raises(IndexError):
            part.owner(10)

    def test_local_slice(self):
        part = block_partition(10, 3)
        assert part.local_slice(1) == slice(4, 7)
        with pytest.raises(IndexError):
            part.local_slice(3)

    def test_scatter_gather_roundtrip(self):
        part = block_partition(23, 5)
        vec = np.arange(23.0)
        pieces = part.scatter(vec)
        assert len(pieces) == 5
        assert np.array_equal(part.gather(pieces), vec)

    def test_scatter_wrong_length(self):
        part = block_partition(10, 2)
        with pytest.raises(ValueError):
            part.scatter(np.zeros(11))

    def test_gather_wrong_piece_count(self):
        part = block_partition(10, 2)
        with pytest.raises(ValueError):
            part.gather([np.zeros(10)])

    def test_local_sizes_helper(self):
        assert local_sizes(7, 2) == [4, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            block_partition(-1, 2)
        with pytest.raises(ValueError):
            block_partition(10, 0)

    @given(n=st.integers(min_value=0, max_value=5000), ranks=st.integers(min_value=1, max_value=64))
    @settings(max_examples=80, deadline=None)
    def test_counts_sum_to_n_property(self, n, ranks):
        part = block_partition(n, ranks)
        assert sum(part.counts) == n
        assert max(part.counts) - min(part.counts) <= 1
