"""Tests for the PFS I/O time model."""

import pytest

from repro.cluster.pfs import PFSModel

_GIB = 1024.0**3


class TestPFSModel:
    def test_paper_anchor_point(self):
        """One 78.8 GiB traditional checkpoint from 2,048 processes ~ 120 s."""
        pfs = PFSModel()
        seconds = pfs.write_seconds(78.8 * _GIB, num_processes=2048)
        assert seconds == pytest.approx(120.0, rel=0.05)

    def test_write_time_scales_with_bytes(self):
        pfs = PFSModel()
        assert pfs.write_seconds(2 * _GIB) > pfs.write_seconds(1 * _GIB)

    def test_contention_grows_with_processes(self):
        pfs = PFSModel()
        assert pfs.write_seconds(_GIB, num_processes=2048) > pfs.write_seconds(
            _GIB, num_processes=256
        )

    def test_read_faster_or_equal_bandwidth(self):
        pfs = PFSModel()
        assert pfs.read_seconds(10 * _GIB) <= pfs.write_seconds(10 * _GIB)

    def test_zero_bytes_costs_latency_only(self):
        pfs = PFSModel(latency=0.5, per_process_overhead=0.0)
        assert pfs.write_seconds(0.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PFSModel(write_bandwidth=0.0)
        with pytest.raises(ValueError):
            PFSModel().write_seconds(-1.0)
        with pytest.raises(ValueError):
            PFSModel().write_seconds(1.0, num_processes=0)
