"""Tests for the pointwise-relative log transform."""

import numpy as np
import pytest

from repro.compression.relative import PointwiseRelativeTransform


class TestPointwiseRelativeTransform:
    def test_exact_roundtrip_without_loss(self):
        values = np.array([1.0, -2.5, 0.0, 1e-8, -3e4])
        transform = PointwiseRelativeTransform.forward(values, 1e-4)
        out = transform.backward(transform.log_values)
        nonzero = values != 0
        assert np.allclose(out[nonzero], values[nonzero], rtol=1e-12)
        assert np.all(out[~nonzero] == 0.0)

    def test_log_bound_guarantee(self):
        values = np.array([0.5, 5.0, -50.0])
        eb = 1e-3
        transform = PointwiseRelativeTransform.forward(values, eb)
        # Perturb the logs by exactly the log bound: relative error must stay <= eb.
        perturbed = transform.log_values + transform.log_bound
        out = transform.backward(perturbed)
        rel = np.abs(out - values) / np.abs(values)
        assert np.all(rel <= eb * (1 + 1e-9))

    def test_signs_preserved(self):
        values = np.array([-1.0, 2.0, -3.0])
        transform = PointwiseRelativeTransform.forward(values, 1e-2)
        out = transform.backward(transform.log_values)
        assert np.all(np.sign(out) == np.sign(values))

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            PointwiseRelativeTransform.forward(np.array([np.inf]), 1e-3)

    def test_rejects_bad_eb(self):
        with pytest.raises(ValueError):
            PointwiseRelativeTransform.forward(np.array([1.0]), 0.0)

    def test_backward_shape_mismatch_raises(self):
        transform = PointwiseRelativeTransform.forward(np.array([1.0, 2.0]), 1e-3)
        with pytest.raises(ValueError):
            transform.backward(np.zeros(3))
