"""Tests for error-bound specifications."""

import numpy as np
import pytest

from repro.compression.errorbounds import ErrorBound, ErrorBoundMode


class TestConstruction:
    def test_constructors_set_modes(self):
        assert ErrorBound.absolute(1e-3).mode is ErrorBoundMode.ABSOLUTE
        assert ErrorBound.value_range_relative(1e-3).mode is ErrorBoundMode.VALUE_RANGE_RELATIVE
        assert ErrorBound.pointwise_relative(1e-3).mode is ErrorBoundMode.POINTWISE_RELATIVE

    def test_string_mode_coerced(self):
        eb = ErrorBound("abs", 0.5)
        assert eb.mode is ErrorBoundMode.ABSOLUTE

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_value_rejected(self, value):
        with pytest.raises(ValueError):
            ErrorBound.absolute(value)

    def test_describe(self):
        assert "abs=0.001" in ErrorBound.absolute(1e-3).describe()


class TestResolution:
    def test_absolute_is_constant(self):
        data = np.array([1.0, 100.0])
        assert ErrorBound.absolute(0.25).absolute_for(data) == 0.25

    def test_value_range_relative_scales_with_range(self):
        data = np.array([0.0, 10.0])
        assert ErrorBound.value_range_relative(0.01).absolute_for(data) == pytest.approx(0.1)

    def test_value_range_relative_constant_data(self):
        data = np.full(5, 3.0)
        out = ErrorBound.value_range_relative(0.01).absolute_for(data)
        assert out > 0

    def test_pointwise_uses_min_magnitude(self):
        data = np.array([0.0, 0.5, -2.0])
        assert ErrorBound.pointwise_relative(0.1).absolute_for(data) == pytest.approx(0.05)

    def test_per_element_pointwise(self):
        data = np.array([1.0, -4.0, 0.0])
        per = ErrorBound.pointwise_relative(0.1).per_element(data)
        assert np.allclose(per, [0.1, 0.4, 0.0])

    def test_per_element_absolute(self):
        data = np.array([1.0, -4.0])
        per = ErrorBound.absolute(0.2).per_element(data)
        assert np.allclose(per, 0.2)
