"""Tests for error-bounded quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.quantization import (
    QuantizationOverflow,
    dequantize_absolute,
    quantization_error,
    quantize_absolute,
)


class TestQuantizeAbsolute:
    def test_error_within_bound(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(1000) * 50
        bound = 1e-3
        q = quantize_absolute(values, bound)
        recon = dequantize_absolute(q)
        assert np.max(np.abs(values - recon)) <= bound + 1e-15

    def test_integer_codes(self):
        q = quantize_absolute(np.array([0.0, 1.0, 2.0]), 0.5)
        assert q.codes.dtype == np.int64

    def test_overflow_raises(self):
        with pytest.raises(QuantizationOverflow):
            quantize_absolute(np.array([1e40]), 1e-30)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            quantize_absolute(np.array([np.nan]), 0.1)

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            quantize_absolute(np.array([1.0]), 0.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            quantize_absolute(np.zeros((2, 2)), 0.1)

    def test_quantization_error_helper(self):
        values = np.linspace(0, 1, 100)
        q = quantize_absolute(values, 0.01)
        max_err, mean_err = quantization_error(values, q)
        assert 0 <= mean_err <= max_err <= 0.01 + 1e-15

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=300,
        ),
        st.floats(min_value=1e-6, max_value=10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_bound_respected_property(self, values, bound):
        arr = np.asarray(values, dtype=np.float64)
        q = quantize_absolute(arr, bound)
        recon = dequantize_absolute(q)
        # The reconstruction multiply rounds to the nearest double, so the
        # guarantee necessarily carries a half-ulp-of-the-value slack.
        slack = 2e-16 * max(1.0, float(np.max(np.abs(arr))))
        assert np.max(np.abs(arr - recon)) <= bound * (1 + 1e-12) + slack

    def test_bound_respected_at_large_magnitude_regression(self):
        # Found by hypothesis: rint(999999.0 / 1.2) lands on the wrong grid
        # neighbour and the error exceeded the bound by ~9e-11 before the
        # correction step in quantize_absolute.
        arr = np.asarray([999999.0])
        q = quantize_absolute(arr, 0.6)
        recon = dequantize_absolute(q)
        assert np.max(np.abs(arr - recon)) <= 0.6 * (1 + 1e-12) + 2e-16 * 999999.0
