"""Tests for the SZ-like prediction-based lossy compressor."""

import numpy as np
import pytest

from repro.compression.errorbounds import ErrorBound
from repro.compression.metrics import max_abs_error, max_pointwise_relative_error
from repro.compression.sz import SZCompressor


class TestPointwiseRelativeMode:
    def test_bound_respected_on_smooth_data(self, smooth_vector):
        comp = SZCompressor(1e-4)
        recon, blob = comp.roundtrip(smooth_vector)
        assert max_pointwise_relative_error(smooth_vector, recon) <= 1e-4 * (1 + 1e-9)
        assert blob.compression_ratio > 10

    def test_bound_respected_on_rough_data(self, rough_vector):
        comp = SZCompressor(1e-3)
        recon, _ = comp.roundtrip(rough_vector)
        assert max_pointwise_relative_error(rough_vector, recon) <= 1e-3 * (1 + 1e-9)

    def test_zeros_reconstructed_exactly(self):
        rng = np.random.default_rng(0)
        data = np.where(rng.random(2000) < 0.3, 0.0, rng.standard_normal(2000))
        recon, _ = SZCompressor(1e-3).roundtrip(data)
        assert np.all(recon[data == 0.0] == 0.0)

    def test_negative_values_keep_sign(self):
        data = np.linspace(-5, -1, 1000)
        recon, _ = SZCompressor(1e-4).roundtrip(data)
        assert np.all(recon < 0)

    def test_tighter_bound_lower_ratio(self, smooth_vector):
        loose = SZCompressor(1e-2).compress(smooth_vector)
        tight = SZCompressor(1e-8).compress(smooth_vector)
        assert loose.nbytes < tight.nbytes


class TestOtherModes:
    def test_absolute_mode(self, smooth_vector):
        comp = SZCompressor(ErrorBound.absolute(1e-5))
        recon, _ = comp.roundtrip(smooth_vector)
        assert max_abs_error(smooth_vector, recon) <= 1e-5 * (1 + 1e-12)

    def test_value_range_relative_mode(self, smooth_vector):
        comp = SZCompressor(ErrorBound.value_range_relative(1e-4))
        recon, _ = comp.roundtrip(smooth_vector)
        value_range = smooth_vector.max() - smooth_vector.min()
        assert max_abs_error(smooth_vector, recon) <= 1e-4 * value_range * (1 + 1e-12)

    def test_raw_fallback_on_impossible_bound(self):
        # Bound so tight that 63-bit codes overflow: falls back to lossless.
        data = np.array([1e30, -1e30, 5e29, 1.0])
        comp = SZCompressor(ErrorBound.absolute(1e-300))
        recon, blob = comp.roundtrip(data)
        assert blob.meta["scheme"] == "raw"
        assert np.array_equal(recon, data)


class TestConfiguration:
    def test_shape_and_dtype_restored(self):
        data = np.arange(60, dtype=np.float32).reshape(3, 20) + 1.0
        recon, _ = SZCompressor(1e-3).roundtrip(data)
        assert recon.shape == (3, 20)
        assert recon.dtype == np.float32

    def test_linear_predictor_roundtrip(self, smooth_vector):
        comp = SZCompressor(1e-4, predictor="linear")
        recon, _ = comp.roundtrip(smooth_vector)
        assert max_pointwise_relative_error(smooth_vector, recon) <= 1e-4 * (1 + 1e-9)

    def test_invalid_predictor(self):
        with pytest.raises(ValueError):
            SZCompressor(1e-4, predictor="cubic")

    def test_invalid_zlib_level(self):
        with pytest.raises(ValueError):
            SZCompressor(1e-4, zlib_level=17)

    def test_with_error_bound_returns_new_instance(self):
        comp = SZCompressor(1e-4, predictor="linear")
        tighter = comp.with_error_bound(1e-6)
        assert tighter is not comp
        assert tighter.predictor == "linear"
        assert tighter.error_bound.value == 1e-6

    def test_records_timing(self, smooth_vector):
        comp = SZCompressor(1e-4)
        comp.roundtrip(smooth_vector)
        assert comp.mean_seconds("compress") > 0
        assert comp.mean_seconds("decompress") > 0

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            SZCompressor(1e-4).compress(np.array([]))

    def test_wrong_blob_compressor_rejected(self, smooth_vector):
        from repro.compression.identity import IdentityCompressor

        blob = IdentityCompressor().compress(smooth_vector)
        with pytest.raises(ValueError):
            SZCompressor(1e-4).decompress(blob)
