"""Tests for the identity (traditional) and lossless compressors and the registry."""

import numpy as np
import pytest

from repro.compression import (
    IdentityCompressor,
    LzmaCompressor,
    ZlibCompressor,
    available_compressors,
    make_compressor,
)


class TestIdentityCompressor:
    def test_bitwise_roundtrip(self, rough_vector):
        recon, blob = IdentityCompressor().roundtrip(rough_vector)
        assert np.array_equal(recon, rough_vector)
        assert blob.compression_ratio == pytest.approx(1.0)

    def test_integer_arrays(self):
        data = np.arange(100, dtype=np.int32)
        recon, _ = IdentityCompressor().roundtrip(data)
        assert np.array_equal(recon, data)
        assert recon.dtype == np.int32

    def test_multidimensional(self):
        data = np.random.default_rng(0).random((4, 5, 6))
        recon, _ = IdentityCompressor().roundtrip(data)
        assert recon.shape == (4, 5, 6)
        assert np.array_equal(recon, data)


class TestLosslessCompressors:
    @pytest.mark.parametrize("cls", [ZlibCompressor, LzmaCompressor])
    def test_bitwise_roundtrip(self, cls, smooth_vector):
        recon, blob = cls().roundtrip(smooth_vector)
        assert np.array_equal(recon, smooth_vector)
        assert blob.compression_ratio >= 1.0

    def test_zlib_level_validation(self):
        with pytest.raises(ValueError):
            ZlibCompressor(level=11)

    def test_lzma_preset_validation(self):
        with pytest.raises(ValueError):
            LzmaCompressor(preset=-1)

    def test_repeated_data_compresses_well(self):
        data = np.tile(np.array([1.0, 2.0, 3.0, 4.0]), 5000)
        blob = ZlibCompressor().compress(data)
        assert blob.compression_ratio > 10

    def test_lossless_flag(self):
        assert ZlibCompressor.lossless is True
        assert LzmaCompressor.lossless is True
        assert IdentityCompressor.lossless is True


class TestRegistry:
    def test_expected_names_registered(self):
        names = available_compressors()
        for expected in ("none", "identity", "zlib", "gzip", "lzma", "sz", "zfp"):
            assert expected in names

    def test_make_compressor_with_kwargs(self):
        comp = make_compressor("zlib", level=9)
        assert comp.level == 9

    def test_make_sz_with_bound(self):
        comp = make_compressor("sz", error_bound=1e-5)
        assert comp.error_bound.value == 1e-5

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_compressor("definitely-not-registered")
