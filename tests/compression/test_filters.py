"""Property tests for the byte-shuffle filter and the code-plane codec.

The shuffle is the first stage of every v2 payload, so its round trip must
be *bitwise* exact for every float64 bit pattern — denormals, NaN payloads,
negative zero, infinities — not merely value-equal.  Comparisons therefore
happen on the raw bit patterns (``view(np.uint64)``), where NaN != NaN
cannot hide a corrupted byte.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.filters import (
    assemble_planes,
    byte_shuffle,
    byte_unshuffle,
    code_planes,
    codes_from_planes,
    plane_entropy,
)


def _bits(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr).view(np.uint64)


_SPECIAL_VALUES = [
    0.0,
    -0.0,
    np.nan,
    np.nan,  # replaced with a payload-carrying NaN in the test
    np.inf,
    -np.inf,
    5e-324,          # smallest subnormal
    -5e-324,
    2.2250738585072014e-308,   # smallest normal
    1.7976931348623157e308,    # largest finite
    1.0,
    -1.0,
]


class TestByteShuffleRoundTrip:
    @given(
        data=st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            min_size=0,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_float64_bitwise_roundtrip(self, data):
        arr = np.array(data, dtype=np.float64)
        planes = byte_shuffle(arr)
        out = byte_unshuffle(planes, arr.dtype, arr.shape)
        assert np.array_equal(_bits(out), _bits(arr))

    def test_special_values_bitwise(self):
        # NaN payloads survive: build one explicitly from its bit pattern.
        arr = np.array(_SPECIAL_VALUES, dtype=np.float64)
        arr[3] = np.uint64(0x7FF8DEADBEEF1234).view(np.float64)
        planes = byte_shuffle(arr)
        out = byte_unshuffle(planes, arr.dtype, arr.shape)
        assert np.array_equal(_bits(out), _bits(arr))
        # Negative zero keeps its sign bit.
        assert np.signbit(out[1]) and not np.signbit(out[0])

    @given(
        dtype=st.sampled_from([np.float32, np.int32, np.uint16, np.uint8]),
        n=st.integers(min_value=0, max_value=64),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_other_dtypes_roundtrip(self, dtype, n, seed):
        rng = np.random.default_rng(seed)
        arr = rng.integers(0, 255, size=n).astype(dtype)
        planes = byte_shuffle(arr)
        assert planes.shape == (np.dtype(dtype).itemsize, n)
        out = byte_unshuffle(planes, arr.dtype, arr.shape)
        assert np.array_equal(out.view(np.uint8), arr.view(np.uint8))

    def test_multidimensional_shape_restored(self):
        arr = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        out = byte_unshuffle(byte_shuffle(arr), arr.dtype, arr.shape)
        assert out.shape == (2, 3, 4)
        assert np.array_equal(out, arr)

    def test_assemble_planes_matches_unshuffle(self):
        rng = np.random.default_rng(7)
        arr = rng.standard_normal(100)
        planes = byte_shuffle(arr)
        via_buffers = assemble_planes(
            [plane.tobytes() for plane in planes], arr.dtype, arr.shape
        )
        assert np.array_equal(_bits(via_buffers), _bits(arr))
        assert via_buffers.flags.writeable

    def test_assemble_planes_wrong_count_rejected(self):
        with pytest.raises(ValueError, match="byte planes"):
            assemble_planes([b"\x00"] * 3, np.float64, (1,))


class TestCodePlanes:
    @given(
        codes=st.lists(
            st.integers(min_value=0, max_value=2**64 - 1), min_size=0, max_size=100
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, codes):
        arr = np.array(codes, dtype=np.uint64)
        planes = code_planes(arr)
        out = codes_from_planes(planes, arr.size)
        assert np.array_equal(out, arr)

    def test_trailing_zero_planes_dropped(self):
        # Codes below 2**16 need exactly two little-endian planes.
        planes = code_planes(np.array([1, 255, 65535], dtype=np.uint64))
        assert len(planes) == 2

    def test_plane_count_mismatch_rejected(self):
        planes = code_planes(np.array([7], dtype=np.uint64))
        with pytest.raises(ValueError, match="code plane"):
            codes_from_planes(planes, 2)


class TestPlaneEntropy:
    def test_bounds(self):
        assert plane_entropy(np.zeros(1000, dtype=np.uint8)) == 0.0
        assert plane_entropy(np.zeros(0, dtype=np.uint8)) == 0.0
        uniform = np.arange(256, dtype=np.uint8).repeat(4)
        assert plane_entropy(uniform) == pytest.approx(8.0)

    def test_accepts_bytes(self):
        assert plane_entropy(b"\x00" * 64) == 0.0
