"""Tests for the versioned block codec (format v1).

The codec must round-trip *exactly* at the code-stream level (it is a
lossless integer coder) and, composed into the SZ/ZFP compressors, keep the
error-bound guarantees on adversarial shapes: empty, scalar-size, constant,
all-zero, denormal and outlier-heavy arrays, plus codes at the 63-bit
quantizer edge where the zigzag mapping needs the full 64-bit width.
"""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.codec import (
    DEFAULT_BLOCK_SIZE,
    FORMAT_VERSION,
    CodecFormatError,
    decode_frame,
    decode_signed,
    encode_frame,
    encode_signed,
)
from repro.compression.encoding import pack_unsigned, zigzag_encode
from repro.compression.errorbounds import ErrorBound
from repro.compression.sharded import SHARDED_FORMAT_VERSION
from repro.compression.metrics import max_abs_error, max_pointwise_relative_error
from repro.compression.quantization import _MAX_CODE
from repro.compression.sz import SZCompressor
from repro.compression.zfp import ZFPCompressor


def _roundtrip(codes, **kwargs):
    codes = np.asarray(codes, dtype=np.int64)
    decoded = decode_signed(encode_signed(codes, **kwargs))
    assert decoded.dtype == np.int64
    assert np.array_equal(decoded, codes)
    return decoded


class TestBlockStreamRoundTrip:
    def test_empty(self):
        assert _roundtrip([]).size == 0

    def test_single_code(self):
        _roundtrip([-42])

    def test_constant(self):
        _roundtrip(np.full(3000, -13))

    def test_all_zero_blocks_cost_no_bits(self):
        payload = encode_signed(np.zeros(4 * DEFAULT_BLOCK_SIZE, dtype=np.int64))
        # header + one width byte per block, nothing else
        assert len(payload) == struct.calcsize("<QIIQ") + 4
        _roundtrip(np.zeros(4 * DEFAULT_BLOCK_SIZE, dtype=np.int64))

    def test_block_boundary_sizes(self):
        rng = np.random.default_rng(3)
        for n in (DEFAULT_BLOCK_SIZE - 1, DEFAULT_BLOCK_SIZE, DEFAULT_BLOCK_SIZE + 1):
            _roundtrip(rng.integers(-100, 100, n))

    def test_63_bit_zigzag_edge(self):
        # +-2**62 is the quantizer's admissible extreme; zigzag maps 2**62 to
        # 2**63, which needs the full 64-bit width.
        edge = int(_MAX_CODE)
        _roundtrip([edge, -edge, edge - 1, -edge + 1, 0])
        _roundtrip([edge], width_cap=64)

    def test_outliers_use_escape_channel(self):
        rng = np.random.default_rng(5)
        codes = rng.integers(-8, 8, 50000).astype(np.int64)
        positions = rng.choice(codes.size, 40, replace=False)
        codes[positions] = rng.integers(2**40, 2**50, 40)
        payload = encode_signed(codes, width_cap=16)
        _, _, _, n_escapes = struct.unpack_from("<QIIQ", payload, 0)
        assert n_escapes == 40
        assert np.array_equal(decode_signed(payload), codes)

    def test_outlier_heavy_beats_global_width(self):
        # The legacy whole-stream encoder pays the outlier's width for every
        # element; blockwise widths plus escapes must not.
        rng = np.random.default_rng(7)
        codes = rng.integers(-10, 10, 50000).astype(np.int64)
        codes[rng.choice(codes.size, 50, replace=False)] = 2**40
        legacy = zlib.compress(pack_unsigned(zigzag_encode(codes)), 6)
        blocked = zlib.compress(encode_signed(codes), 6)
        assert len(blocked) < len(legacy)

    def test_width_cap_extremes(self):
        rng = np.random.default_rng(11)
        codes = rng.integers(-(2**30), 2**30, 5000).astype(np.int64)
        for cap in (1, 64):
            assert np.array_equal(decode_signed(encode_signed(codes, width_cap=cap)), codes)

    def test_corrupt_stream_header_rejected(self):
        with pytest.raises(CodecFormatError):
            decode_signed(struct.pack("<QIIQ", 5, 0, 32, 0))  # zero block size
        with pytest.raises(CodecFormatError):
            decode_signed(struct.pack("<QIIQ", 5, 1024, 65, 0))  # bad width cap

    def test_corrupt_escape_positions_rejected(self):
        codes = np.zeros(10, dtype=np.int64)
        codes[3] = 2**40  # forces one escape
        payload = bytearray(encode_signed(codes, width_cap=16))
        # overwrite the escape position (last 16 bytes = position + value)
        payload[-16:-8] = np.asarray([999999], dtype=np.uint64).tobytes()
        with pytest.raises(CodecFormatError):
            decode_signed(bytes(payload))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            encode_signed(np.zeros(4, dtype=np.int64), block_size=0)
        with pytest.raises(ValueError):
            encode_signed(np.zeros(4, dtype=np.int64), width_cap=0)
        with pytest.raises(ValueError):
            encode_signed(np.zeros(4, dtype=np.int64), width_cap=65)

    @given(
        codes=st.lists(
            st.integers(min_value=-int(_MAX_CODE), max_value=int(_MAX_CODE)),
            min_size=0,
            max_size=300,
        ),
        block_size=st.sampled_from([1, 3, 64, 1024]),
        width_cap=st.sampled_from([1, 8, 32, 64]),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_identity(self, codes, block_size, width_cap):
        arr = np.asarray(codes, dtype=np.int64)
        decoded = decode_signed(
            encode_signed(arr, block_size=block_size, width_cap=width_cap)
        )
        assert np.array_equal(decoded, arr)


class TestFrame:
    def test_roundtrip(self):
        sections = [b"", b"abc", bytes(range(256))]
        assert decode_frame(encode_frame(sections)) == sections

    def test_single_entropy_pass(self):
        payload = encode_frame([b"x" * 1000])
        # after the 6-byte header the body is exactly one DEFLATE stream
        zlib.decompress(payload[6:])

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecFormatError):
            decode_frame(b"XXXX\x01\x00" + zlib.compress(b""))

    def test_unknown_version_rejected(self):
        good = encode_frame([b"abc"])
        bad = good[:4] + struct.pack("<H", FORMAT_VERSION + 1) + good[6:]
        with pytest.raises(CodecFormatError):
            decode_frame(bad)

    def test_truncated_rejected(self):
        with pytest.raises(CodecFormatError):
            decode_frame(b"RB")


def _special_arrays(rng):
    outlier_heavy = np.sin(np.linspace(0, 8 * np.pi, 6000)) + 2.0
    outlier_heavy[rng.choice(6000, 12, replace=False)] *= 1e9
    return {
        "scalar_size": np.array([3.7]),
        "constant": np.full(5000, 2.5),
        "all_zero": np.zeros(5000),
        "denormal": np.array([5e-324, -5e-324, 1.5e-323, -2.5e-323, 5e-324]),
        "outlier_heavy": outlier_heavy,
    }


_BOUNDS = [
    ErrorBound.absolute(1e-6),
    ErrorBound.value_range_relative(1e-4),
    ErrorBound.pointwise_relative(1e-4),
]


def _assert_within_bound(data, recon, bound):
    if bound.mode.value == "pw_rel":
        assert max_pointwise_relative_error(data, recon) <= bound.value * (1 + 1e-8)
    else:
        tolerance = float(bound.per_element(data).max()) if data.size else 0.0
        assert max_abs_error(data, recon) <= tolerance * (1 + 1e-8)
    assert np.all(recon[data == 0.0] == 0.0)


class TestCompressorsOnSpecialArrays:
    @pytest.mark.parametrize("predictor", ["lorenzo", "linear"])
    @pytest.mark.parametrize("bound", _BOUNDS, ids=lambda b: b.mode.value)
    def test_sz_special_arrays(self, predictor, bound, rng):
        comp = SZCompressor(bound, predictor=predictor)
        for name, data in _special_arrays(rng).items():
            recon, blob = comp.roundtrip(data)
            # SZ stamps sharded v2 frames since the shuffle-filtered stage.
            assert blob.format_version == SHARDED_FORMAT_VERSION, name
            _assert_within_bound(data, recon, bound)

    @pytest.mark.parametrize("bound", _BOUNDS, ids=lambda b: b.mode.value)
    def test_zfp_special_arrays(self, bound, rng):
        comp = ZFPCompressor(bound)
        for name, data in _special_arrays(rng).items():
            recon, blob = comp.roundtrip(data)
            assert blob.format_version == FORMAT_VERSION, name
            _assert_within_bound(data, recon, bound)

    @pytest.mark.parametrize("predictor", ["lorenzo", "linear"])
    def test_sz_codes_at_quantizer_edge(self, predictor):
        # Values chosen so the first quantization code lands next to the
        # +-2**62 limit: the zigzag-mapped residual needs (almost) 64 bits
        # and must travel through the escape channel unharmed.
        bound = 0.5
        data = np.array([(2.0**62 - 2**12), -(2.0**62 - 2**12), 0.0, 1.0, 2.0])
        comp = SZCompressor(ErrorBound.absolute(bound), predictor=predictor)
        recon, blob = comp.roundtrip(data)
        assert blob.meta["scheme"] == "abs"
        assert max_abs_error(data, recon) <= bound * (1 + 1e-8)

    @given(eb=st.sampled_from([1e-2, 1e-4, 1e-6]))
    @settings(max_examples=10, deadline=None)
    def test_sz_denormal_magnitudes_roundtrip(self, eb):
        # Smallest subnormals snap back exactly after the log round trip.
        data = np.array([5e-324, -1e-323, 2e-323, -5e-324])
        recon, _ = SZCompressor(eb).roundtrip(data)
        assert np.array_equal(recon, data)
