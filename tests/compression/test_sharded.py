"""Tests for the RSF2 sharded, entropy-gated compression frame.

The load-bearing guarantee is *determinism*: frame bytes must be
bit-identical for any shard-worker count, because checkpoint payloads feed
content-addressed stores and byte-level golden tests.  Thread count is an
execution detail, never a format input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import sharded
from repro.compression.sharded import (
    SHARD_SIZE,
    SHARDED_FORMAT_VERSION,
    ShardedFormatError,
    compress_sections,
    decompress_sections,
    resolve_threads,
)


def _sections(seed, sizes):
    rng = np.random.default_rng(seed)
    out = []
    for kind, size in sizes:
        if kind == "zero":
            out.append(np.zeros(size, dtype=np.uint8))
        elif kind == "noise":
            out.append(rng.integers(0, 256, size).astype(np.uint8))
        elif kind == "runs":
            out.append(np.repeat(rng.integers(0, 4, max(1, size // 64)), 64)[:size].astype(np.uint8))
        else:
            raise AssertionError(kind)
    return out


_MIX = [("runs", 9000), ("noise", 8192), ("zero", 5000), ("runs", 100), ("noise", 10)]


class TestRoundTrip:
    @pytest.mark.parametrize("codec", ["deflate", "lzma"])
    def test_mixed_sections(self, codec):
        sections = _sections(1, _MIX)
        payload = compress_sections(sections, codec=codec, threads=1)
        out = decompress_sections(payload)
        assert len(out) == len(sections)
        for got, want in zip(out, sections):
            assert np.array_equal(got, want)
            assert got.flags.writeable

    def test_empty_and_tiny_sections(self):
        sections = [np.zeros(0, dtype=np.uint8), np.frombuffer(b"\x07", dtype=np.uint8)]
        out = decompress_sections(compress_sections(sections, threads=1))
        assert out[0].size == 0
        assert bytes(out[1]) == b"\x07"

    def test_accepts_bytes_and_memoryview_sections(self):
        payload = compress_sections([b"abc" * 100, memoryview(b"\x00" * 64)], threads=1)
        out = decompress_sections(payload)
        assert bytes(out[0]) == b"abc" * 100
        assert bytes(out[1]) == b"\x00" * 64

    def test_multi_shard_sections(self, monkeypatch):
        # Shrink the shard size so one section spans many shards, including a
        # ragged tail and an interior all-zero shard.
        monkeypatch.setattr(sharded, "SHARD_SIZE", 1024)
        rng = np.random.default_rng(3)
        section = rng.integers(0, 256, 5000).astype(np.uint8)
        section[1024:2048] = 0  # exactly the second shard
        payload = compress_sections([section], threads=1)
        out = decompress_sections(payload)
        assert np.array_equal(out[0], section)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_sections_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        sections = [
            rng.integers(0, int(rng.integers(1, 256)), int(rng.integers(0, 3000))).astype(np.uint8)
            for _ in range(int(rng.integers(1, 5)))
        ]
        out = decompress_sections(compress_sections(sections, threads=1))
        for got, want in zip(out, sections):
            assert np.array_equal(got, want)


class TestThreadDeterminism:
    def test_payload_identical_across_thread_counts(self, monkeypatch):
        monkeypatch.setattr(sharded, "SHARD_SIZE", 512)  # force real fan-out
        sections = _sections(11, _MIX)
        reference = compress_sections(sections, threads=1)
        for threads in (2, 8):
            assert compress_sections(sections, threads=threads) == reference
        # The environment variable is an equivalent control surface.
        for env_threads in ("1", "2", "8"):
            monkeypatch.setenv("REPRO_COMPRESS_THREADS", env_threads)
            assert compress_sections(sections) == reference

    def test_lzma_payload_identical_across_thread_counts(self, monkeypatch):
        monkeypatch.setattr(sharded, "SHARD_SIZE", 512)
        sections = _sections(12, _MIX)
        reference = compress_sections(sections, codec="lzma", threads=1)
        for threads in (2, 8):
            assert compress_sections(sections, codec="lzma", threads=threads) == reference

    def test_resolve_threads_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPRESS_THREADS", "3")
        assert resolve_threads(5) == 5          # explicit argument wins
        assert resolve_threads() == 3           # then the environment
        monkeypatch.setenv("REPRO_COMPRESS_THREADS", "not-a-number")
        assert resolve_threads() >= 1           # junk falls back to CPU count
        monkeypatch.delenv("REPRO_COMPRESS_THREADS")
        assert 1 <= resolve_threads() <= 8
        assert resolve_threads(0) == 1          # clamped to at least one


class TestFormatErrors:
    def _frame(self):
        return bytearray(compress_sections(_sections(2, _MIX), threads=1))

    def test_unknown_codec_name_rejected(self):
        with pytest.raises(ValueError, match="codec"):
            compress_sections([b"x"], codec="zstd")

    def test_bad_magic(self):
        frame = self._frame()
        frame[:4] = b"JUNK"
        with pytest.raises(ShardedFormatError, match="magic"):
            decompress_sections(bytes(frame))

    def test_bad_version(self):
        frame = self._frame()
        frame[4] = SHARDED_FORMAT_VERSION + 1
        with pytest.raises(ShardedFormatError, match="version"):
            decompress_sections(bytes(frame))

    def test_short_header(self):
        with pytest.raises(ShardedFormatError, match="shorter than its header"):
            decompress_sections(b"RSF2")

    def test_truncated_tables_and_body(self):
        frame = bytes(self._frame())
        # Every prefix must fail loudly, never return wrong data.
        for cut in (17, 40, len(frame) - 7):
            with pytest.raises(ShardedFormatError):
                decompress_sections(frame[:cut])

    def test_trailing_bytes_rejected(self):
        frame = bytes(self._frame())
        with pytest.raises(ShardedFormatError, match="trailing"):
            decompress_sections(frame + b"\x00")

    def test_corrupt_coded_shard_rejected(self):
        sections = [np.repeat(np.arange(32, dtype=np.uint8), 200)]
        frame = bytearray(compress_sections(sections, threads=1))
        frame[-1] ^= 0xFF
        with pytest.raises((ShardedFormatError, Exception)):
            decompress_sections(bytes(frame))


class TestDefaults:
    def test_format_constants(self):
        assert SHARDED_FORMAT_VERSION == 2
        assert SHARD_SIZE == 1 << 20

    def test_zero_section_costs_nothing_but_tables(self):
        quiet = compress_sections([np.zeros(1 << 16, dtype=np.uint8)], threads=1)
        # header + one section entry + one shard entry, no body bytes
        assert len(quiet) == 16 + 12 + 5

    def test_incompressible_section_ships_raw(self):
        rng = np.random.default_rng(9)
        noise = rng.integers(0, 256, 1 << 14).astype(np.uint8)
        payload = compress_sections([noise], threads=1)
        # Raw shard: frame overhead only, no DEFLATE expansion.
        assert len(payload) == 16 + 12 + 5 + noise.size
