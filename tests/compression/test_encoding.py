"""Tests for the low-level bit-packing encoders."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.encoding import (
    pack_sections,
    pack_unsigned,
    unpack_sections,
    unpack_unsigned,
    zigzag_decode,
    zigzag_encode,
)


class TestZigzag:
    def test_small_magnitudes_get_small_codes(self):
        values = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        codes = zigzag_encode(values)
        assert list(codes) == [0, 1, 2, 3, 4]

    def test_roundtrip_extremes(self):
        values = np.array([0, 1, -1, 2**40, -(2**40)], dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)

    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(arr)), arr)


class TestPackUnsigned:
    def test_roundtrip(self):
        codes = np.array([0, 1, 5, 1023, 7], dtype=np.uint64)
        packed = pack_unsigned(codes)
        out, consumed = unpack_unsigned(packed)
        assert np.array_equal(out, codes)
        assert consumed == len(packed)

    def test_empty(self):
        out, consumed = unpack_unsigned(pack_unsigned(np.array([], dtype=np.uint64)))
        assert out.size == 0 and consumed == 12

    def test_minimal_width_used(self):
        small = pack_unsigned(np.ones(1000, dtype=np.uint64))
        large = pack_unsigned(np.full(1000, 2**30, dtype=np.uint64))
        assert len(small) < len(large)

    @given(st.lists(st.integers(min_value=0, max_value=2**63 - 1), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        out, _ = unpack_unsigned(pack_unsigned(arr))
        assert np.array_equal(out, arr)


class TestSections:
    def test_roundtrip(self):
        sections = [b"", b"abc", b"\x00\x01\x02" * 10]
        assert unpack_sections(pack_sections(sections)) == sections

    def test_single_section(self):
        assert unpack_sections(pack_sections([b"hello"])) == [b"hello"]

    @given(st.lists(st.binary(max_size=64), max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, sections):
        assert unpack_sections(pack_sections(sections)) == sections
