"""Property-based tests: every lossy compressor honours its error bound.

These are the guarantees the paper's Theorems 2 and 3 rely on, so they are
tested over adversarial inputs with Hypothesis rather than just on smooth
vectors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.errorbounds import ErrorBound
from repro.compression.lossless import ZlibCompressor
from repro.compression.metrics import max_abs_error, max_pointwise_relative_error
from repro.compression.sz import SZCompressor
from repro.compression.zfp import ZFPCompressor

_float_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=400),
    elements=st.floats(
        min_value=-1e8, max_value=1e8, allow_nan=False, allow_infinity=False
    ),
)

_bounds = st.sampled_from([1e-2, 1e-3, 1e-4, 1e-5])


class TestSZProperties:
    @given(data=_float_arrays, eb=_bounds)
    @settings(max_examples=60, deadline=None)
    def test_pointwise_relative_bound(self, data, eb):
        recon, blob = SZCompressor(eb).roundtrip(data)
        assert recon.shape == data.shape
        assert max_pointwise_relative_error(data, recon) <= eb * (1 + 1e-8)

    @given(data=_float_arrays, eb=_bounds)
    @settings(max_examples=60, deadline=None)
    def test_absolute_bound(self, data, eb):
        recon, _ = SZCompressor(ErrorBound.absolute(eb)).roundtrip(data)
        assert max_abs_error(data, recon) <= eb * (1 + 1e-8)

    @given(data=_float_arrays, eb=_bounds)
    @settings(max_examples=40, deadline=None)
    def test_zeros_always_exact(self, data, eb):
        data = data.copy()
        data[:: max(1, data.size // 7)] = 0.0
        recon, _ = SZCompressor(eb).roundtrip(data)
        assert np.all(recon[data == 0.0] == 0.0)


class TestZFPProperties:
    @given(data=_float_arrays, eb=_bounds)
    @settings(max_examples=60, deadline=None)
    def test_absolute_bound(self, data, eb):
        recon, _ = ZFPCompressor(ErrorBound.absolute(eb)).roundtrip(data)
        assert max_abs_error(data, recon) <= eb * (1 + 1e-8)

    @given(data=_float_arrays, eb=_bounds)
    @settings(max_examples=40, deadline=None)
    def test_pointwise_relative_bound(self, data, eb):
        recon, _ = ZFPCompressor(eb).roundtrip(data)
        assert max_pointwise_relative_error(data, recon) <= eb * (1 + 1e-8)


class TestLosslessProperties:
    @given(data=_float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_bitwise_exact(self, data):
        recon, _ = ZlibCompressor().roundtrip(data)
        assert np.array_equal(recon, data, equal_nan=True)
