"""Tests for the ZFP-like transform-based lossy compressor."""

import numpy as np
import pytest

from repro.compression.errorbounds import ErrorBound
from repro.compression.metrics import max_abs_error, max_pointwise_relative_error
from repro.compression.zfp import ZFPCompressor


class TestZFPCompressor:
    def test_absolute_bound_respected(self, smooth_vector):
        comp = ZFPCompressor(ErrorBound.absolute(1e-4))
        recon, blob = comp.roundtrip(smooth_vector)
        assert max_abs_error(smooth_vector, recon) <= 1e-4 * (1 + 1e-12)
        assert blob.compression_ratio > 5

    def test_pointwise_relative_bound_respected(self, smooth_vector):
        comp = ZFPCompressor(1e-4)
        recon, _ = comp.roundtrip(smooth_vector)
        assert max_pointwise_relative_error(smooth_vector, recon) <= 1e-4 * (1 + 1e-9)

    def test_rough_data_bound_respected(self, rough_vector):
        comp = ZFPCompressor(ErrorBound.absolute(1e-3))
        recon, _ = comp.roundtrip(rough_vector)
        assert max_abs_error(rough_vector, recon) <= 1e-3 * (1 + 1e-12)

    def test_non_multiple_of_block_size(self):
        data = np.sin(np.linspace(0, 5, 1000)) + 2.0  # 1000 % 64 != 0
        recon, _ = ZFPCompressor(ErrorBound.absolute(1e-5)).roundtrip(data)
        assert recon.shape == data.shape
        assert max_abs_error(data, recon) <= 1e-5 * (1 + 1e-12)

    def test_block_size_configurable(self, smooth_vector):
        comp = ZFPCompressor(ErrorBound.absolute(1e-5), block_size=16)
        recon, _ = comp.roundtrip(smooth_vector)
        assert max_abs_error(smooth_vector, recon) <= 1e-5 * (1 + 1e-12)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            ZFPCompressor(1e-4, block_size=1)

    def test_shape_and_dtype_restored(self):
        data = (np.arange(128, dtype=np.float32) + 1.0).reshape(2, 64)
        recon, _ = ZFPCompressor(1e-3).roundtrip(data)
        assert recon.shape == (2, 64)
        assert recon.dtype == np.float32

    def test_raw_fallback(self):
        data = np.array([1e30, -1e30, 1.0, 2.0] * 32)
        comp = ZFPCompressor(ErrorBound.absolute(1e-300))
        recon, blob = comp.roundtrip(data)
        assert blob.meta["scheme"] == "raw"
        assert np.array_equal(recon, data)

    def test_with_error_bound(self):
        comp = ZFPCompressor(1e-4, block_size=32)
        other = comp.with_error_bound(1e-6)
        assert other.block_size == 32
        assert other.error_bound.value == 1e-6

    def test_smooth_data_compresses_better_than_rough(self, smooth_vector, rough_vector):
        comp = ZFPCompressor(ErrorBound.absolute(1e-4))
        smooth_blob = comp.compress(smooth_vector)
        rough_blob = comp.compress(rough_vector)
        assert smooth_blob.compression_ratio > rough_blob.compression_ratio
