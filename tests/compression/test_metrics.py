"""Tests for compression metrics."""

import numpy as np
import pytest

from repro.compression.metrics import (
    compression_ratio,
    evaluate_compressor,
    max_abs_error,
    max_pointwise_relative_error,
    psnr,
    value_range_relative_error,
)
from repro.compression.sz import SZCompressor
from repro.compression.identity import IdentityCompressor


class TestScalarMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(100, 10) == 10.0
        assert compression_ratio(100, 0) == float("inf")
        with pytest.raises(ValueError):
            compression_ratio(-1, 10)

    def test_max_abs_error(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.5, 3.0])
        assert max_abs_error(a, b) == 0.5
        assert max_abs_error(a, a) == 0.0

    def test_max_abs_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(2), np.zeros(3))

    def test_pointwise_relative_error(self):
        a = np.array([2.0, 4.0])
        b = np.array([2.2, 4.0])
        assert max_pointwise_relative_error(a, b) == pytest.approx(0.1)

    def test_pointwise_relative_error_zero_violation(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.1, 1.0])
        assert max_pointwise_relative_error(a, b) == float("inf")

    def test_value_range_relative_error(self):
        a = np.array([0.0, 10.0])
        b = np.array([0.5, 10.0])
        assert value_range_relative_error(a, b) == pytest.approx(0.05)

    def test_psnr_infinite_for_exact(self):
        a = np.linspace(0, 1, 10)
        assert psnr(a, a) == float("inf")

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        a = np.linspace(0, 1, 1000)
        small = psnr(a, a + 1e-6 * rng.standard_normal(1000))
        large = psnr(a, a + 1e-2 * rng.standard_normal(1000))
        assert small > large


class TestEvaluateCompressor:
    def test_lossy_evaluation(self, smooth_vector):
        ev = evaluate_compressor(SZCompressor(1e-4), smooth_vector)
        assert ev.compressor == "sz"
        assert ev.ratio > 1.0
        assert ev.max_pointwise_relative_error <= 1e-4 * (1 + 1e-9)
        assert ev.compress_seconds > 0

    def test_identity_evaluation(self, smooth_vector):
        ev = evaluate_compressor(IdentityCompressor(), smooth_vector)
        assert ev.ratio == pytest.approx(1.0)
        assert ev.max_abs_error == 0.0
        assert ev.psnr_db == float("inf")
