"""Backend equivalence: every codec backend writes the *same bytes*.

``docs/payload-format.md`` declares the three bit-packing backends
(``vector``, ``scalar``, ``numba``) to be alternative implementations of
one wire format, with the pure-Python ``scalar`` backend as the executable
specification.  These tests pin that contract:

* **byte identity** — for identical inputs, every available backend must
  produce payloads identical to the scalar reference, across hypothesis
  workloads, solver-shaped quantization codes, denormal-derived residuals,
  the 63-bit zigzag edge and all-escape blocks;
* **cross decode** — a stream written by one backend decodes identically
  through every other;
* **dispatch** — ``REPRO_CODEC`` and the ``backend=`` keyword select
  backends, unknown names raise, and requesting numba without the package
  falls back to ``vector`` with a warning rather than failing;
* **throughput sanity** — the default vectorized encoder must never lose
  to the pure-Python reference (the real margin is ~three orders of
  magnitude; the assertion is deliberately loose for CI noise).

The numba cases run only where numba imports (CI's dedicated job); the
development container intentionally ships without it.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression._codec_numba import HAVE_NUMBA
from repro.compression.codec import (
    CODEC_BACKEND_ENV,
    available_backends,
    decode_signed,
    encode_signed,
    resolve_backend,
)
from repro.compression.quantization import _MAX_CODE

_EDGE = int(_MAX_CODE)

#: Backends that can actually execute in this environment.
_RUNNABLE = [b for b in available_backends() if b != "numba" or HAVE_NUMBA]


def _solver_codes(n=6000, seed=11):
    """Quantization-code-shaped data: mostly tiny, a few rough regions."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(-3, 4, n).astype(np.int64)
    rough = rng.choice(n, n // 50, replace=False)
    codes[rough] = rng.integers(-(2**20), 2**20, rough.size)
    return codes


def _denormal_residuals(n=4096):
    """Bit-pattern deltas of denormal float64s — tiny word residuals that
    exercise 1-2 bit blocks next to sign-flip escapes."""
    tiny = np.ldexp(np.arange(1, n + 1, dtype=np.float64), -1074)
    tiny[::7] *= -1.0
    words = tiny.view(np.uint64)
    return (words[1:] - words[:-1]).view(np.int64)


_CASES = {
    "empty": np.empty(0, dtype=np.int64),
    "single": np.asarray([-42], dtype=np.int64),
    "all_zero": np.zeros(3 * 1024, dtype=np.int64),
    "solver": _solver_codes(),
    "denormals": _denormal_residuals(),
    "zigzag_edge": np.asarray([_EDGE, -_EDGE, _EDGE - 1, 1 - _EDGE, 0], dtype=np.int64),
    "all_escape": np.full(2048, 2**40, dtype=np.int64),
    "partial_block": np.arange(-700, 701, dtype=np.int64),
}


@pytest.mark.parametrize("backend", _RUNNABLE)
class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(_CASES))
    def test_matches_scalar_reference(self, backend, name):
        codes = _CASES[name]
        reference = encode_signed(codes, backend="scalar")
        assert encode_signed(codes, backend=backend) == reference
        assert np.array_equal(decode_signed(reference, backend=backend), codes)

    @pytest.mark.parametrize("width_cap", [1, 16, 64])
    def test_width_cap_sweep(self, backend, width_cap):
        codes = _solver_codes(seed=width_cap)
        kwargs = {"width_cap": width_cap, "block_size": 256}
        reference = encode_signed(codes, backend="scalar", **kwargs)
        assert encode_signed(codes, backend=backend, **kwargs) == reference

    def test_cross_decode(self, backend):
        """A stream from any backend decodes through any other."""
        codes = _CASES["solver"]
        payload = encode_signed(codes, backend=backend)
        for other in _RUNNABLE:
            assert np.array_equal(decode_signed(payload, backend=other), codes)


@given(
    codes=st.lists(
        st.integers(min_value=-_EDGE, max_value=_EDGE), min_size=0, max_size=300
    ),
    block_size=st.sampled_from([1, 3, 64, 1024]),
    width_cap=st.sampled_from([1, 8, 32, 64]),
)
@settings(max_examples=60, deadline=None)
def test_backends_agree_on_hypothesis_workloads(codes, block_size, width_cap):
    codes = np.asarray(codes, dtype=np.int64)
    kwargs = {"block_size": block_size, "width_cap": width_cap}
    reference = encode_signed(codes, backend="scalar", **kwargs)
    for backend in _RUNNABLE:
        assert encode_signed(codes, backend=backend, **kwargs) == reference
        assert np.array_equal(decode_signed(reference, backend=backend), codes)


class TestDispatch:
    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(CODEC_BACKEND_ENV, "scalar")
        assert resolve_backend(None) == "scalar"
        monkeypatch.delenv(CODEC_BACKEND_ENV)
        assert resolve_backend(None) == "vector"

    def test_keyword_overrides_env(self, monkeypatch):
        monkeypatch.setenv(CODEC_BACKEND_ENV, "scalar")
        assert resolve_backend("vector") == "vector"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("simd")
        with pytest.raises(ValueError, match="backend"):
            encode_signed(np.asarray([1], dtype=np.int64), backend="simd")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_numba_absent_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="numba"):
            assert resolve_backend("numba") == "vector"

    @pytest.mark.skipif(not HAVE_NUMBA, reason="needs numba")
    def test_numba_present_resolves(self):
        assert resolve_backend("numba") == "numba"


def test_vector_encode_not_slower_than_scalar():
    """Benchmark-threshold smoke test (the honest ratio is ~1000x; asserting
    >= 1x keeps it immune to CI timer noise while catching a dispatch bug
    that silently routes the default path through the reference loops)."""
    codes = _solver_codes(n=20000)
    start = time.perf_counter()
    payload = encode_signed(codes, backend="scalar")
    scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    assert encode_signed(codes, backend="vector") == payload
    vector_s = time.perf_counter() - start
    assert vector_s <= scalar_s
