"""Payload-format regression tests.

Two format guarantees are pinned here:

1. **No nested DEFLATE.**  The pre-codec SZ/ZFP pointwise-relative paths
   DEFLATEd an already-DEFLATEd inner section — wasted CPU, worse ratio.
   v1 payloads must contain exactly one entropy stage: the frame body
   inflates once and none of the inner sections is itself a zlib stream.

2. **Legacy payloads still decode.**  Blobs without ``format_version`` in
   their metadata predate the block codec; the compressors must route them
   through the legacy decode paths (global-width packing, nested DEFLATE).
   The legacy encoders are reconstructed here, independently of the source
   tree, so the on-disk format stays pinned even though no production code
   writes it anymore.
"""

import zlib

import numpy as np
import pytest

from repro.compression.base import CompressedBlob
from repro.compression.codec import decode_frame
from repro.compression.encoding import pack_sections, pack_unsigned, zigzag_encode
from repro.compression.errorbounds import ErrorBound
from repro.compression.metrics import max_abs_error, max_pointwise_relative_error
from repro.compression.quantization import quantize_absolute
from repro.compression.relative import PointwiseRelativeTransform
from repro.compression.sharded import SHARDED_FORMAT_VERSION, decompress_sections
from repro.compression.sz import SZCompressor, _predict_codes
from repro.compression.zfp import ZFPCompressor

from scipy.fft import dct


def _assert_sections_not_deflate(sections):
    for index, section in enumerate(sections):
        if len(section) < 8:
            continue
        with pytest.raises(zlib.error):
            zlib.decompress(section)
            pytest.fail(f"section {index} is a nested zlib stream")


class TestNoNestedDeflate:
    @pytest.mark.parametrize("predictor", ["lorenzo", "linear"])
    def test_sz_pw_rel_single_entropy_stage(self, smooth_vector, predictor):
        # SZ writes sharded v2 frames: the shard layer is the only entropy
        # stage, so the inflated sections must not be zlib streams themselves.
        blob = SZCompressor(1e-4, predictor=predictor).compress(smooth_vector)
        assert blob.meta["scheme"] == "pw_rel"
        assert blob.format_version == SHARDED_FORMAT_VERSION
        _assert_sections_not_deflate(decompress_sections(blob.payload))

    def test_sz_abs_single_entropy_stage(self, smooth_vector):
        blob = SZCompressor(ErrorBound.absolute(1e-5)).compress(smooth_vector)
        assert blob.meta["scheme"] == "abs"
        assert blob.format_version == SHARDED_FORMAT_VERSION
        _assert_sections_not_deflate(decompress_sections(blob.payload))

    def test_zfp_pw_rel_single_entropy_stage(self, smooth_vector):
        blob = ZFPCompressor(1e-4).compress(smooth_vector)
        assert blob.meta["scheme"] == "pw_rel"
        _assert_sections_not_deflate(decode_frame(blob.payload))

    def test_zfp_abs_single_entropy_stage(self, smooth_vector):
        blob = ZFPCompressor(ErrorBound.absolute(1e-5)).compress(smooth_vector)
        assert blob.meta["scheme"] == "zfp"
        _assert_sections_not_deflate(decode_frame(blob.payload))

    def test_pw_rel_payload_shrinks_vs_legacy(self, smooth_vector):
        # Dropping the nested DEFLATE (plus blockwise widths) must not cost
        # ratio on the bread-and-butter workload.
        new = SZCompressor(1e-4).compress(smooth_vector)
        legacy = _legacy_sz_pw_rel_blob(smooth_vector, 1e-4)
        assert new.nbytes <= legacy.nbytes * 1.02


# ----------------------------------------------------------------------
# legacy (format version 0) payload builders — mirror the old encoders
# ----------------------------------------------------------------------
def _legacy_quantized_section(values, bound, order, level=6):
    quantized = quantize_absolute(values, bound)
    residuals = _predict_codes(quantized.codes, order)
    packed = pack_unsigned(zigzag_encode(residuals))
    header = np.asarray([quantized.quantum], dtype=np.float64).tobytes()
    order_bytes = np.asarray([order], dtype=np.int64).tobytes()
    return zlib.compress(pack_sections([header, order_bytes, packed]), level)


def _legacy_sz_abs_blob(data, bound, predictor="lorenzo"):
    flat = np.asarray(data, dtype=np.float64).reshape(-1)
    order = 1 if predictor == "lorenzo" else 2
    payload = _legacy_quantized_section(flat, bound, order)
    return CompressedBlob(
        payload=payload,
        shape=np.asarray(data).shape,
        dtype=np.asarray(data).dtype.str,
        compressor="sz",
        meta={"error_bound": f"abs={bound:g}", "predictor": predictor, "scheme": "abs"},
    )


def _legacy_sz_pw_rel_blob(data, eb, predictor="lorenzo"):
    flat = np.asarray(data, dtype=np.float64).reshape(-1)
    transform = PointwiseRelativeTransform.forward(flat, eb)
    order = 1 if predictor == "lorenzo" else 2
    log_section = _legacy_quantized_section(transform.log_values, transform.log_bound, order)
    neg = np.packbits(transform.negative_mask.astype(np.uint8)).tobytes()
    zero = np.packbits(transform.zero_mask.astype(np.uint8)).tobytes()
    count = np.asarray([flat.size], dtype=np.int64).tobytes()
    payload = zlib.compress(pack_sections([count, log_section, neg, zero]), 6)
    return CompressedBlob(
        payload=payload,
        shape=np.asarray(data).shape,
        dtype=np.asarray(data).dtype.str,
        compressor="sz",
        meta={"error_bound": f"pw_rel={eb:g}", "predictor": predictor, "scheme": "pw_rel"},
    )


def _legacy_zfp_values_section(values, bound, block, level=6):
    n = values.size
    pad = (-n) % block
    padded = np.pad(values, (0, pad), mode="edge") if pad else values
    coeffs = dct(padded.reshape(-1, block), axis=1, norm="ortho")
    quantized = quantize_absolute(coeffs.reshape(-1), bound / np.sqrt(block))
    packed = pack_unsigned(zigzag_encode(quantized.codes))
    header = np.asarray([quantized.quantum], dtype=np.float64).tobytes()
    sizes = np.asarray([n, block], dtype=np.int64).tobytes()
    return zlib.compress(pack_sections([header, sizes, packed]), level)


def _legacy_zfp_blob(data, bound, *, pw_rel, block=64):
    flat = np.asarray(data, dtype=np.float64).reshape(-1)
    if pw_rel:
        transform = PointwiseRelativeTransform.forward(flat, bound)
        inner = _legacy_zfp_values_section(transform.log_values, transform.log_bound, block)
        neg = np.packbits(transform.negative_mask.astype(np.uint8)).tobytes()
        zero = np.packbits(transform.zero_mask.astype(np.uint8)).tobytes()
        count = np.asarray([flat.size], dtype=np.int64).tobytes()
        payload = zlib.compress(pack_sections([count, inner, neg, zero]), 6)
        scheme = "pw_rel"
    else:
        payload = _legacy_zfp_values_section(flat, bound, block)
        scheme = "zfp"
    return CompressedBlob(
        payload=payload,
        shape=np.asarray(data).shape,
        dtype=np.asarray(data).dtype.str,
        compressor="zfp",
        meta={"error_bound": "legacy", "block_size": block, "scheme": scheme},
    )


class TestLegacyPayloadsDecode:
    def test_legacy_blob_reports_version_zero(self, smooth_vector):
        blob = _legacy_sz_abs_blob(smooth_vector, 1e-5)
        assert blob.format_version == 0

    @pytest.mark.parametrize("predictor", ["lorenzo", "linear"])
    def test_sz_abs_legacy(self, smooth_vector, predictor):
        blob = _legacy_sz_abs_blob(smooth_vector, 1e-5, predictor)
        recon = SZCompressor(ErrorBound.absolute(1e-5), predictor=predictor).decompress(blob)
        assert max_abs_error(smooth_vector, recon) <= 1e-5 * (1 + 1e-8)

    @pytest.mark.parametrize("predictor", ["lorenzo", "linear"])
    def test_sz_pw_rel_legacy(self, smooth_vector, predictor):
        blob = _legacy_sz_pw_rel_blob(smooth_vector, 1e-4, predictor)
        recon = SZCompressor(1e-4, predictor=predictor).decompress(blob)
        assert max_pointwise_relative_error(smooth_vector, recon) <= 1e-4 * (1 + 1e-8)

    def test_zfp_abs_legacy(self, smooth_vector):
        blob = _legacy_zfp_blob(smooth_vector, 1e-5, pw_rel=False)
        recon = ZFPCompressor(ErrorBound.absolute(1e-5)).decompress(blob)
        assert max_abs_error(smooth_vector, recon) <= 1e-5 * (1 + 1e-8)

    def test_zfp_pw_rel_legacy(self, smooth_vector):
        blob = _legacy_zfp_blob(smooth_vector, 1e-4, pw_rel=True)
        recon = ZFPCompressor(1e-4).decompress(blob)
        assert max_pointwise_relative_error(smooth_vector, recon) <= 1e-4 * (1 + 1e-8)

    def test_raw_scheme_decodes_without_version(self):
        data = np.array([1e30, -1e30, 5e29, 1.0])
        payload = zlib.compress(data.tobytes(), 6)
        blob = CompressedBlob(
            payload=payload,
            shape=data.shape,
            dtype=data.dtype.str,
            compressor="sz",
            meta={"scheme": "raw"},
        )
        assert np.array_equal(SZCompressor(1e-4).decompress(blob), data)
