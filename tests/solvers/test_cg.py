"""Tests for the (preconditioned) conjugate gradient solver."""

import numpy as np
import pytest

from repro.precond import IncompleteCholeskyPreconditioner
from repro.solvers import CGSolver
from repro.sparse.matrices import random_spd


class TestConvergence:
    def test_converges_to_manufactured_solution(self, poisson_medium):
        result = CGSolver(poisson_medium.A, rtol=1e-10, max_iter=5000).solve(
            poisson_medium.b
        )
        assert result.converged
        assert np.allclose(result.x, poisson_medium.x_true, atol=1e-6)

    def test_exact_in_n_iterations(self):
        # CG converges in at most n iterations in exact arithmetic.
        A = random_spd(30, density=0.3, condition=50, seed=0)
        b = np.ones(30)
        result = CGSolver(A, rtol=1e-12, max_iter=60).solve(b)
        assert result.converged
        assert result.iterations <= 35

    def test_preconditioning_reduces_iterations(self, poisson_medium):
        plain = CGSolver(poisson_medium.A, rtol=1e-9, max_iter=5000).solve(poisson_medium.b)
        ic = CGSolver(
            poisson_medium.A,
            preconditioner=IncompleteCholeskyPreconditioner(poisson_medium.A),
            rtol=1e-9,
            max_iter=5000,
        ).solve(poisson_medium.b)
        assert ic.converged and plain.converged
        assert ic.iterations < plain.iterations

    def test_non_spd_detected_as_breakdown(self, kkt_small):
        result = CGSolver(kkt_small.K, rtol=1e-10, max_iter=500).solve(kkt_small.b)
        assert result.info["breakdown"] or not result.converged


class TestWarmStart:
    def test_warm_start_resumes_identical_trajectory(self, poisson_medium):
        """Checkpointing (x, p, rho) and resuming matches the uninterrupted run."""
        solver = CGSolver(poisson_medium.A, rtol=1e-11, max_iter=5000)
        full = solver.solve(poisson_medium.b)

        captured = {}
        checkpoint_at = full.iterations // 2

        def capture(state):
            if state.iteration == checkpoint_at:
                captured["x"] = state.x
                captured["p"] = state.extras["p"]
                captured["rho"] = state.extras["rho"]

        solver.solve(poisson_medium.b, callback=capture)
        resumed = solver.solve(
            poisson_medium.b,
            x0=captured["x"],
            warm_start=(captured["p"], captured["rho"]),
        )
        # Same remaining number of iterations (up to one) and same solution.
        assert abs((checkpoint_at + resumed.iterations) - full.iterations) <= 1
        assert np.allclose(resumed.x, full.x, atol=1e-8)

    def test_cold_restart_needs_more_iterations_than_warm(self, poisson_medium):
        """Restarting from x alone (restarted CG) pays extra iterations."""
        solver = CGSolver(poisson_medium.A, rtol=1e-11, max_iter=5000)
        full = solver.solve(poisson_medium.b)
        captured = {}
        checkpoint_at = full.iterations // 2

        def capture(state):
            if state.iteration == checkpoint_at:
                captured["x"] = state.x
                captured["p"] = state.extras["p"]
                captured["rho"] = state.extras["rho"]

        solver.solve(poisson_medium.b, callback=capture)
        warm = solver.solve(
            poisson_medium.b, x0=captured["x"], warm_start=(captured["p"], captured["rho"])
        )
        cold = solver.solve(poisson_medium.b, x0=captured["x"])
        assert cold.iterations >= warm.iterations

    def test_warm_start_wrong_shape_rejected(self, poisson_medium):
        solver = CGSolver(poisson_medium.A)
        with pytest.raises(ValueError):
            solver.solve(poisson_medium.b, warm_start=(np.ones(3), 1.0))


class TestInterface:
    def test_callback_extras_contain_krylov_state(self, poisson_medium):
        extras_seen = []
        solver = CGSolver(poisson_medium.A, rtol=1e-6, max_iter=100)
        solver.solve(poisson_medium.b, callback=lambda s: extras_seen.append(set(s.extras)))
        assert all({"p", "rho"} <= keys for keys in extras_seen)

    def test_residual_matches_true_residual(self, poisson_medium):
        solver = CGSolver(poisson_medium.A, rtol=1e-8, max_iter=5000)
        result = solver.solve(poisson_medium.b)
        true_res = np.linalg.norm(poisson_medium.b - poisson_medium.A @ result.x)
        assert result.final_residual_norm == pytest.approx(true_res, rel=1e-6, abs=1e-12)

    def test_zero_rhs_converges_immediately(self, poisson_medium):
        result = CGSolver(poisson_medium.A, rtol=1e-8).solve(
            np.zeros(poisson_medium.size) + 1e-300
        )
        assert result.iterations == 0

    def test_max_iter_zero_allowed(self, poisson_medium):
        result = CGSolver(poisson_medium.A).solve(poisson_medium.b, max_iter=0)
        assert result.iterations == 0
        assert not result.converged
