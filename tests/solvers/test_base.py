"""Tests for the solver base infrastructure."""

import numpy as np
import pytest

from repro.solvers import available_solvers, make_solver
from repro.solvers.base import ConvergenceCriterion, SolveResult


class TestConvergenceCriterion:
    def test_threshold_uses_max_of_rtol_and_atol(self):
        crit = ConvergenceCriterion(rtol=1e-3, atol=1e-6)
        assert crit.threshold(10.0) == pytest.approx(1e-2)
        assert crit.threshold(1e-5) == pytest.approx(1e-6)

    def test_has_converged(self):
        crit = ConvergenceCriterion(rtol=1e-2)
        assert crit.has_converged(0.005, 1.0)
        assert not crit.has_converged(0.02, 1.0)

    def test_has_diverged(self):
        crit = ConvergenceCriterion(rtol=1e-2, divtol=100)
        assert crit.has_diverged(1e4, 1.0)
        assert crit.has_diverged(float("nan"), 1.0)
        assert not crit.has_diverged(50.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceCriterion(rtol=0.0)
        with pytest.raises(ValueError):
            ConvergenceCriterion(rtol=1e-3, atol=-1.0)


class TestSolveResult:
    def test_properties(self):
        result = SolveResult(
            x=np.zeros(3),
            converged=True,
            iterations=4,
            residual_norms=[1.0, 0.1, 0.01],
            solver="test",
            b_norm=2.0,
        )
        assert result.final_residual_norm == 0.01
        assert result.relative_residual == pytest.approx(0.005)

    def test_empty_history(self):
        result = SolveResult(
            x=np.zeros(3), converged=False, iterations=0,
            residual_norms=[], solver="test", b_norm=0.0,
        )
        assert np.isnan(result.final_residual_norm)


class TestSolverRegistry:
    def test_all_expected_names(self):
        names = available_solvers()
        for expected in ("jacobi", "gauss_seidel", "sor", "ssor", "cg", "gmres", "bicgstab"):
            assert expected in names

    def test_make_solver(self, poisson_small):
        solver = make_solver("cg", poisson_small.A, rtol=1e-6)
        result = solver.solve(poisson_small.b)
        assert result.converged

    def test_unknown_solver(self, poisson_small):
        with pytest.raises(KeyError):
            make_solver("multigrid", poisson_small.A)

    def test_validation_of_parameters(self, poisson_small):
        with pytest.raises(ValueError):
            make_solver("cg", poisson_small.A, max_iter=0)

    def test_preconditioner_size_mismatch(self, poisson_small, poisson_medium):
        from repro.precond import JacobiPreconditioner

        M = JacobiPreconditioner(poisson_medium.A)
        with pytest.raises(ValueError):
            make_solver("cg", poisson_small.A, preconditioner=M)
