"""CheckpointableState protocol: per-solver declarations and exact resume."""

import numpy as np
import pytest

from repro.solvers import (
    BiCGStabSolver,
    CGSolver,
    GMRESSolver,
    JacobiSolver,
    checkpoint_spec_for,
)
from repro.solvers.base import CheckpointSpec, ResumeState, SolveResult


class TestDeclarations:
    def test_registered_specs(self):
        assert checkpoint_spec_for("cg").extra_vectors == ("p",)
        assert checkpoint_spec_for("cg").vector_count == 2
        assert checkpoint_spec_for("bicgstab").extra_vectors == ("r", "r_hat", "p", "v")
        assert checkpoint_spec_for("bicgstab").vector_count == 5
        assert checkpoint_spec_for("gmres").vector_count == 1
        assert checkpoint_spec_for("gmres").restart_boundary_only
        assert checkpoint_spec_for("jacobi").vector_count == 1
        assert checkpoint_spec_for("jacobi").exact_resume

    def test_unknown_method_gets_default_spec(self):
        spec = checkpoint_spec_for("not-a-solver")
        assert spec == CheckpointSpec()
        assert not spec.exact_resume

    def test_unsupported_solver_rejects_resume_state(self, poisson_small):
        class NoResumeSolver(JacobiSolver):
            checkpoint_spec = CheckpointSpec()

        solver = NoResumeSolver(poisson_small.A, rtol=1e-4, max_iter=100)
        with pytest.raises(ValueError, match="exact resume"):
            solver.solve(poisson_small.b, resume_state=ResumeState(iteration=0))


def _capture_all(solver, b, **kwargs):
    states = []
    result = solver.solve(b, callback=states.append, **kwargs)
    return result, states


class TestBiCGStabExactResume:
    def test_resume_reproduces_uninterrupted_sequence_bitwise(self, poisson_medium):
        solver = BiCGStabSolver(poisson_medium.A, rtol=1e-8, max_iter=500)
        full, states = _capture_all(solver, poisson_medium.b)
        assert full.converged
        k = min(4, len(states) - 2)
        snapshot = states[k]
        resume = solver.capture_resume_state(snapshot)
        assert resume is not None
        assert set(resume.vectors) == {"r", "r_hat", "p", "v"}
        assert set(resume.scalars) == {"rho_old", "alpha", "omega"}

        resumed = solver.solve(
            poisson_medium.b,
            x0=snapshot.x,
            resume_state=resume,
            iteration_offset=snapshot.iteration,
        )
        assert resumed.converged
        # The continued sequence is bitwise identical to the uninterrupted
        # run: same residuals, same final iterate.  states[k] is iteration
        # k+1, so the continuation covers residual_norms[k+2:].
        tail = full.residual_norms[k + 2 :]
        assert resumed.residual_norms[1:] == tail
        np.testing.assert_array_equal(resumed.x, full.x)
        assert snapshot.iteration + resumed.iterations == full.iterations

    def test_restart_without_state_differs(self, poisson_medium):
        solver = BiCGStabSolver(poisson_medium.A, rtol=1e-8, max_iter=500)
        full, states = _capture_all(solver, poisson_medium.b)
        k = min(4, len(states) - 2)
        snapshot = states[k]
        restarted = solver.solve(poisson_medium.b, x0=snapshot.x)
        tail = full.residual_norms[k + 2 :]
        # A cold restart rebuilds the Krylov space — not the same sequence.
        assert restarted.residual_norms[1:] != tail


class TestCGResume:
    def test_resume_state_equals_warm_start(self, poisson_medium):
        solver = CGSolver(poisson_medium.A, rtol=1e-9, max_iter=2000)
        full, states = _capture_all(solver, poisson_medium.b)
        k = min(5, len(states) - 2)
        snapshot = states[k]
        resume = solver.capture_resume_state(snapshot)
        assert resume is not None

        via_protocol = solver.solve(
            poisson_medium.b, x0=snapshot.x, resume_state=resume
        )
        via_warm_start = solver.solve(
            poisson_medium.b,
            x0=snapshot.x,
            warm_start=(resume.vectors["p"], resume.scalars["rho"]),
        )
        assert via_protocol.residual_norms == via_warm_start.residual_norms
        np.testing.assert_array_equal(via_protocol.x, via_warm_start.x)

    def test_warm_start_and_resume_state_together_rejected(self, poisson_medium):
        solver = CGSolver(poisson_medium.A, rtol=1e-9, max_iter=2000)
        with pytest.raises(ValueError, match="not both"):
            solver.solve(
                poisson_medium.b,
                warm_start=(np.zeros(solver.n), 1.0),
                resume_state=ResumeState(iteration=0),
            )


class TestBoundaryOnlyAndMemoryless:
    def test_gmres_captures_only_at_cycle_end(self, poisson_medium):
        solver = GMRESSolver(poisson_medium.A, rtol=1e-10, restart=5, max_iter=200)
        _, states = _capture_all(solver, poisson_medium.b)
        mid_cycle = [s for s in states if not s.extras.get("cycle_end", False)]
        boundary = [
            s
            for s in states
            if s.extras.get("cycle_end", False) or s.extras.get("converged", False)
        ]
        assert boundary, "expected at least one completed GMRES cycle"
        assert solver.capture_resume_state(boundary[0]) is not None
        if mid_cycle:
            assert solver.capture_resume_state(mid_cycle[0]) is None

    def test_gmres_accepts_resume_state_as_restart(self, poisson_medium):
        solver = GMRESSolver(poisson_medium.A, rtol=1e-10, restart=5, max_iter=200)
        _, states = _capture_all(solver, poisson_medium.b)
        boundary = next(s for s in states if s.extras.get("cycle_end", False))
        resume = solver.capture_resume_state(boundary)
        resumed = solver.solve(poisson_medium.b, x0=boundary.x, resume_state=resume)
        restarted = solver.solve(poisson_medium.b, x0=boundary.x)
        # At a restart boundary, "resume" and "restart from x" coincide.
        assert resumed.residual_norms == restarted.residual_norms

    def test_stationary_capture_is_bare_x(self, poisson_small):
        solver = JacobiSolver(poisson_small.A, rtol=1e-4, max_iter=10000)
        _, states = _capture_all(solver, poisson_small.b)
        resume = solver.capture_resume_state(states[0])
        assert resume is not None
        assert resume.vectors == {}
        assert resume.scalars == {}
        resumed = solver.solve(poisson_small.b, x0=states[0].x, resume_state=resume)
        assert isinstance(resumed, SolveResult)
        assert resumed.converged
