"""Tests for the restarted GMRES solver."""

import numpy as np
import pytest

from repro.precond import ILU0Preconditioner, JacobiPreconditioner
from repro.solvers import GMRESSolver
from repro.sparse.matrices import diagonally_dominant


class TestConvergence:
    def test_converges_on_spd_poisson(self, poisson_medium):
        result = GMRESSolver(poisson_medium.A, rtol=1e-8, max_iter=5000).solve(
            poisson_medium.b
        )
        assert result.converged
        assert np.allclose(result.x, poisson_medium.x_true, atol=1e-4)

    def test_converges_on_indefinite_kkt(self, kkt_small):
        solver = GMRESSolver(
            kkt_small.K,
            preconditioner=JacobiPreconditioner(kkt_small.K),
            rtol=1e-6,
            max_iter=5000,
        )
        result = solver.solve(kkt_small.b)
        assert result.converged
        # Left preconditioning: convergence is tested on the preconditioned
        # residual, so the true residual can be a couple of orders larger when
        # the Jacobi diagonal has small entries (the -C regularisation block).
        true_res = np.linalg.norm(kkt_small.b - kkt_small.K @ result.x)
        assert true_res / np.linalg.norm(kkt_small.b) < 1e-3

    def test_converges_on_nonsymmetric_system(self):
        A = diagonally_dominant(100, density=0.05, symmetric=False, seed=3)
        x_true = np.cos(np.arange(100) / 7.0)
        b = A @ x_true
        result = GMRESSolver(A, rtol=1e-10, max_iter=2000).solve(b)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-6)

    def test_preconditioning_reduces_iterations(self, poisson_medium):
        plain = GMRESSolver(poisson_medium.A, rtol=1e-8, max_iter=5000).solve(
            poisson_medium.b
        )
        ilu = GMRESSolver(
            poisson_medium.A,
            preconditioner=ILU0Preconditioner(poisson_medium.A),
            rtol=1e-8,
            max_iter=5000,
        ).solve(poisson_medium.b)
        assert ilu.iterations < plain.iterations

    def test_smaller_restart_never_faster_than_full(self, poisson_medium):
        small = GMRESSolver(poisson_medium.A, restart=5, rtol=1e-8, max_iter=20000).solve(
            poisson_medium.b
        )
        large = GMRESSolver(poisson_medium.A, restart=60, rtol=1e-8, max_iter=20000).solve(
            poisson_medium.b
        )
        assert large.iterations <= small.iterations


class TestInterface:
    def test_restart_validation(self, poisson_medium):
        with pytest.raises(ValueError):
            GMRESSolver(poisson_medium.A, restart=0)

    def test_callback_reports_cycle_end(self, poisson_medium):
        flags = []
        solver = GMRESSolver(poisson_medium.A, restart=10, rtol=1e-9, max_iter=200)
        solver.solve(
            poisson_medium.b, callback=lambda s: flags.append(s.extras["cycle_end"])
        )
        # Every 10th inner iteration is a cycle end.
        assert flags[9] is True
        assert flags[0] is False

    def test_callback_x_matches_final_solution(self, poisson_medium):
        xs = []
        solver = GMRESSolver(poisson_medium.A, rtol=1e-8, max_iter=5000)
        result = solver.solve(poisson_medium.b, callback=lambda s: xs.append(s.x))
        assert np.allclose(xs[-1], result.x)

    def test_residual_history_decreasing_within_cycle(self, poisson_medium):
        result = GMRESSolver(poisson_medium.A, restart=30, rtol=1e-8, max_iter=5000).solve(
            poisson_medium.b
        )
        norms = np.asarray(result.residual_norms)
        # GMRES minimises the residual over a growing subspace: within the
        # first cycle the residual norm is non-increasing.
        first_cycle = norms[: min(31, norms.size)]
        assert np.all(np.diff(first_cycle) <= 1e-10)

    def test_restart_from_own_iterate_converges(self, poisson_medium):
        """Restarting GMRES from a mid-run iterate reaches the same answer."""
        solver = GMRESSolver(poisson_medium.A, rtol=1e-8, max_iter=5000)
        full = solver.solve(poisson_medium.b)
        captured = {}
        target = max(1, full.iterations // 2)

        def capture(state):
            if state.iteration == target:
                captured["x"] = state.x

        solver.solve(poisson_medium.b, callback=capture)
        resumed = solver.solve(poisson_medium.b, x0=captured["x"])
        assert resumed.converged
        assert np.allclose(resumed.x, full.x, atol=1e-4)

    def test_already_converged_initial_guess(self, poisson_medium):
        solver = GMRESSolver(poisson_medium.A, rtol=1e-6, max_iter=100)
        result = solver.solve(poisson_medium.b, x0=poisson_medium.x_true)
        assert result.converged
        assert result.iterations == 0
