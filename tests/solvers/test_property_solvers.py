"""Property-based tests for solver invariants.

Hypothesis generates random diagonally dominant / SPD systems and checks the
invariants the checkpoint/restart layer relies on: solvers converge to the
true solution, residual histories are consistent, and restarting from any
intermediate iterate still converges to the same solution.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers import CGSolver, GaussSeidelSolver, GMRESSolver, JacobiSolver
from repro.sparse.matrices import diagonally_dominant, random_spd


@st.composite
def dominant_systems(draw):
    n = draw(st.integers(min_value=5, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    A = diagonally_dominant(n, density=0.2, dominance=2.0, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x_true = rng.uniform(-1.0, 1.0, n)
    return A, x_true, A @ x_true


@st.composite
def spd_systems(draw):
    n = draw(st.integers(min_value=5, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    A = random_spd(n, density=0.3, condition=100.0, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x_true = rng.uniform(-1.0, 1.0, n)
    return A, x_true, A @ x_true


class TestStationaryProperties:
    @given(system=dominant_systems())
    @settings(max_examples=25, deadline=None)
    def test_jacobi_converges_on_dominant_systems(self, system):
        A, x_true, b = system
        result = JacobiSolver(A, rtol=1e-9, max_iter=10000).solve(b)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-5)

    @given(system=dominant_systems())
    @settings(max_examples=20, deadline=None)
    def test_gauss_seidel_converges_on_dominant_systems(self, system):
        A, x_true, b = system
        result = GaussSeidelSolver(A, rtol=1e-9, max_iter=10000).solve(b)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-5)


class TestKrylovProperties:
    @given(system=spd_systems())
    @settings(max_examples=25, deadline=None)
    def test_cg_converges_on_spd(self, system):
        A, x_true, b = system
        result = CGSolver(A, rtol=1e-10, max_iter=500).solve(b)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-4)

    @given(system=spd_systems())
    @settings(max_examples=20, deadline=None)
    def test_gmres_converges_on_spd(self, system):
        A, x_true, b = system
        result = GMRESSolver(A, rtol=1e-10, max_iter=2000).solve(b)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-4)

    @given(system=spd_systems(), fraction=st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_cg_restart_from_any_iterate_converges(self, system, fraction):
        """The restarted-CG invariant behind lossy checkpointing."""
        A, x_true, b = system
        solver = CGSolver(A, rtol=1e-10, max_iter=500)
        full = solver.solve(b)
        if full.iterations < 2:
            return
        target = max(1, int(fraction * full.iterations))
        captured = {}

        def capture(state):
            if state.iteration == target:
                captured["x"] = state.x

        solver.solve(b, callback=capture)
        resumed = solver.solve(b, x0=captured["x"])
        assert resumed.converged
        assert np.allclose(resumed.x, x_true, atol=1e-4)

    @given(system=spd_systems())
    @settings(max_examples=20, deadline=None)
    def test_residual_history_matches_final_norm(self, system):
        A, _, b = system
        result = CGSolver(A, rtol=1e-8, max_iter=500).solve(b)
        true_res = np.linalg.norm(b - A @ result.x)
        assert abs(result.final_residual_norm - true_res) <= 1e-6 * max(1.0, true_res) + 1e-9
