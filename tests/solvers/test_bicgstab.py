"""Tests for BiCGSTAB."""

import numpy as np

from repro.precond import JacobiPreconditioner
from repro.solvers import BiCGStabSolver
from repro.sparse.matrices import diagonally_dominant


class TestBiCGStab:
    def test_converges_on_spd(self, poisson_medium):
        result = BiCGStabSolver(poisson_medium.A, rtol=1e-9, max_iter=5000).solve(
            poisson_medium.b
        )
        assert result.converged
        assert np.allclose(result.x, poisson_medium.x_true, atol=1e-5)

    def test_converges_on_nonsymmetric(self):
        A = diagonally_dominant(80, density=0.06, symmetric=False, seed=5)
        x_true = np.linspace(-1, 1, 80)
        b = A @ x_true
        result = BiCGStabSolver(A, rtol=1e-10, max_iter=2000).solve(b)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-6)

    def test_preconditioned_variant(self, poisson_medium):
        result = BiCGStabSolver(
            poisson_medium.A,
            preconditioner=JacobiPreconditioner(poisson_medium.A),
            rtol=1e-9,
            max_iter=5000,
        ).solve(poisson_medium.b)
        assert result.converged

    def test_callback_invoked(self, poisson_medium):
        calls = []
        BiCGStabSolver(poisson_medium.A, rtol=1e-6, max_iter=500).solve(
            poisson_medium.b, callback=lambda s: calls.append(s.iteration)
        )
        assert len(calls) > 0

    def test_restart_from_iterate_converges(self, poisson_medium):
        solver = BiCGStabSolver(poisson_medium.A, rtol=1e-8, max_iter=5000)
        full = solver.solve(poisson_medium.b)
        captured = {}

        def capture(state):
            if state.iteration == max(1, full.iterations // 2):
                captured["x"] = state.x

        solver.solve(poisson_medium.b, callback=capture)
        resumed = solver.solve(poisson_medium.b, x0=captured["x"])
        assert resumed.converged
