"""Tests for the stationary iterative methods."""

import numpy as np
import pytest

from repro.solvers import GaussSeidelSolver, JacobiSolver, SORSolver, SSORSolver
from repro.solvers.base import SolverInterrupt
from repro.sparse.matrices import diagonally_dominant


ALL_STATIONARY = [JacobiSolver, GaussSeidelSolver, SORSolver, SSORSolver]


class TestConvergence:
    @pytest.mark.parametrize("cls", ALL_STATIONARY)
    def test_converges_on_poisson(self, cls, poisson_medium):
        solver = cls(poisson_medium.A, rtol=1e-6, max_iter=20000)
        result = solver.solve(poisson_medium.b)
        assert result.converged
        rel_err = np.linalg.norm(result.x - poisson_medium.x_true) / np.linalg.norm(
            poisson_medium.x_true
        )
        assert rel_err < 1e-4

    @pytest.mark.parametrize("cls", ALL_STATIONARY)
    def test_converges_on_diagonally_dominant(self, cls):
        A = diagonally_dominant(80, density=0.08, seed=0)
        x_true = np.sin(np.arange(80) / 5.0)
        b = A @ x_true
        result = cls(A, rtol=1e-8, max_iter=5000).solve(b)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-5)

    def test_gauss_seidel_faster_than_jacobi(self, poisson_medium):
        jacobi = JacobiSolver(poisson_medium.A, rtol=1e-5, max_iter=20000).solve(
            poisson_medium.b
        )
        gs = GaussSeidelSolver(poisson_medium.A, rtol=1e-5, max_iter=20000).solve(
            poisson_medium.b
        )
        assert gs.iterations < jacobi.iterations

    def test_residual_history_monotone_overall(self, poisson_medium):
        result = JacobiSolver(poisson_medium.A, rtol=1e-5, max_iter=20000).solve(
            poisson_medium.b
        )
        norms = np.asarray(result.residual_norms)
        assert norms[-1] < norms[0]
        # Jacobi on SPD diagonally dominant systems decreases monotonically.
        assert np.all(np.diff(norms) <= 1e-12)


class TestInterface:
    def test_initial_guess_respected(self, poisson_medium):
        solver = JacobiSolver(poisson_medium.A, rtol=1e-6, max_iter=20000)
        result = solver.solve(poisson_medium.b, x0=poisson_medium.x_true.copy())
        assert result.iterations == 0
        assert result.converged

    def test_max_iter_limits(self, poisson_medium):
        solver = JacobiSolver(poisson_medium.A, rtol=1e-12, max_iter=5)
        result = solver.solve(poisson_medium.b)
        assert result.iterations == 5
        assert not result.converged

    def test_callback_receives_states(self, poisson_medium):
        seen = []
        solver = JacobiSolver(poisson_medium.A, rtol=1e-3, max_iter=1000)
        solver.solve(poisson_medium.b, callback=lambda s: seen.append(s.iteration))
        assert seen == list(range(1, len(seen) + 1))

    def test_callback_interrupt_propagates(self, poisson_medium):
        def boom(state):
            if state.iteration == 3:
                raise SolverInterrupt(state.iteration)

        solver = JacobiSolver(poisson_medium.A, rtol=1e-8, max_iter=1000)
        with pytest.raises(SolverInterrupt):
            solver.solve(poisson_medium.b, callback=boom)

    def test_iteration_offset_shifts_callback_indices(self, poisson_medium):
        seen = []
        solver = JacobiSolver(poisson_medium.A, rtol=1e-3, max_iter=1000)
        solver.solve(
            poisson_medium.b,
            callback=lambda s: seen.append(s.iteration),
            iteration_offset=100,
        )
        assert seen[0] == 101

    def test_rejects_preconditioner(self, poisson_medium):
        from repro.precond import JacobiPreconditioner

        with pytest.raises(ValueError):
            JacobiSolver(
                poisson_medium.A, preconditioner=JacobiPreconditioner(poisson_medium.A)
            )

    def test_zero_diagonal_rejected(self):
        A = np.array([[0.0, 1.0], [1.0, 2.0]])
        with pytest.raises(ValueError):
            JacobiSolver(A)

    def test_sor_omega_validation(self, poisson_medium):
        with pytest.raises(ValueError):
            SORSolver(poisson_medium.A, omega=2.5)

    def test_wrong_rhs_length(self, poisson_medium):
        solver = JacobiSolver(poisson_medium.A)
        with pytest.raises(ValueError):
            solver.solve(np.ones(3))


class TestRestartBehaviour:
    def test_restart_from_perturbed_iterate_still_converges(self, poisson_medium):
        """A (lossy) restart of a stationary method converges to the same solution."""
        solver = JacobiSolver(poisson_medium.A, rtol=1e-6, max_iter=20000)
        full = solver.solve(poisson_medium.b)
        # Take the iterate halfway, perturb it within a relative bound, restart.
        snapshots = {}
        half = full.iterations // 2

        def capture(state):
            if state.iteration == half:
                snapshots["x"] = state.x

        solver.solve(poisson_medium.b, callback=capture)
        rng = np.random.default_rng(0)
        perturbed = snapshots["x"] * (1 + 1e-4 * rng.uniform(-1, 1, snapshots["x"].size))
        resumed = solver.solve(poisson_medium.b, x0=perturbed)
        assert resumed.converged
        assert np.allclose(resumed.x, full.x, atol=1e-3)
