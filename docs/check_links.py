#!/usr/bin/env python
"""Offline link checker for the repository's markdown documentation.

The docs build intentionally has no site-generator dependency (the
development container ships no mkdocs/sphinx), so this script is the
"docs build": it validates every markdown cross-reference without touching
the network and exits non-zero on the first broken set.

Checked per markdown file (README.md plus everything under ``docs/``):

* relative links resolve to an existing file or directory in the repo;
* fragment links into markdown targets (``file.md#some-heading``) match a
  real heading, using GitHub's anchor slug rules;
* bare intra-document fragments (``#section``) match a heading in the
  same file;
* absolute URLs are only syntax-checked (``http://``/``https://``) —
  offline by design.

Run it directly (``python docs/check_links.py``) or through the test
suite (``tests/docs/test_docs.py``), which CI executes on every push.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target).  Images share the syntax with a
#: leading ``!`` which needs no special casing for resolution purposes.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings, used to build the per-file anchor table.
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

_URL_SCHEMES = ("http://", "https://", "mailto:")


def _doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def _slugify(heading: str) -> str:
    """GitHub's markdown heading → anchor id rule."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    return {_slugify(m.group(1)) for m in _HEADING.finditer(path.read_text())}


def _iter_links(path: Path) -> Iterator[str]:
    text = path.read_text()
    # Fenced code blocks may contain pseudo-links (e.g. shell snippets);
    # they are not navigable and are skipped.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in _LINK.finditer(text):
        yield match.group(1)


def check_links() -> List[Tuple[Path, str, str]]:
    """Return ``(file, link, reason)`` for every broken reference."""
    problems: List[Tuple[Path, str, str]] = []
    for doc in _doc_files():
        for link in _iter_links(doc):
            if link.startswith(_URL_SCHEMES):
                continue
            target, _, fragment = link.partition("#")
            if target:
                resolved = (doc.parent / target).resolve()
                if not resolved.exists():
                    problems.append((doc, link, "target does not exist"))
                    continue
            else:
                resolved = doc
            if fragment:
                if resolved.suffix != ".md" or not resolved.is_file():
                    continue  # anchors into non-markdown targets: not checked
                if fragment not in _anchors(resolved):
                    problems.append((doc, link, f"no heading for #{fragment}"))
    return problems


def main() -> int:
    problems = check_links()
    for doc, link, reason in problems:
        print(f"{doc.relative_to(REPO_ROOT)}: broken link {link!r} ({reason})")
    checked = len(_doc_files())
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} file(s)")
        return 1
    print(f"all links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
