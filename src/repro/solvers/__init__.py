"""Iterative linear solvers (the paper's PETSc substitute).

Implemented from scratch on NumPy/SciPy sparse primitives:

* stationary methods: Jacobi, Gauss-Seidel, SOR, SSOR
  (:mod:`repro.solvers.stationary`),
* Krylov methods: (preconditioned) conjugate gradient, restarted GMRES(k),
  BiCGSTAB (:mod:`repro.solvers.cg`, :mod:`repro.solvers.gmres`,
  :mod:`repro.solvers.bicgstab`).

All solvers share the :class:`~repro.solvers.base.IterativeSolver` interface:
they are configured once with the matrix/preconditioner/tolerances and expose
``solve(b, x0=..., callback=...)``; the per-iteration callback is the hook the
fault-tolerance layer uses to take checkpoints and to inject failures.
"""

from repro.solvers.base import (
    IterativeSolver,
    SolveResult,
    IterationState,
    ConvergenceCriterion,
    SolverInterrupt,
    CheckpointSpec,
    ResumeState,
    checkpoint_spec_for,
    make_solver,
    register_solver,
    available_solvers,
)
from repro.solvers.stationary import (
    JacobiSolver,
    GaussSeidelSolver,
    SORSolver,
    SSORSolver,
)
from repro.solvers.cg import CGSolver
from repro.solvers.gmres import GMRESSolver
from repro.solvers.bicgstab import BiCGStabSolver

__all__ = [
    "IterativeSolver",
    "SolveResult",
    "IterationState",
    "ConvergenceCriterion",
    "SolverInterrupt",
    "CheckpointSpec",
    "ResumeState",
    "checkpoint_spec_for",
    "make_solver",
    "register_solver",
    "available_solvers",
    "JacobiSolver",
    "GaussSeidelSolver",
    "SORSolver",
    "SSORSolver",
    "CGSolver",
    "GMRESSolver",
    "BiCGStabSolver",
]
