"""Common solver infrastructure: results, convergence tests, callbacks.

Design notes
------------
The fault-tolerance layer (``repro.core``) drives solvers through a
*per-iteration callback*: the callback receives an :class:`IterationState`
(iteration index, a copy of the current approximate solution and the current
residual norm) and may raise :class:`SolverInterrupt` to stop the solve —
that is how an injected failure "kills" the execution.  After a (possibly
lossy) recovery the runner simply calls ``solve`` again with the recovered
vector as the new initial guess, which is exactly the restarted-CG /
restarted-GMRES scheme the paper adopts (Section 4.2).
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Tuple

import numpy as np

from repro.precond.base import IdentityPreconditioner, Preconditioner
from repro.utils.validation import check_positive, check_square_matrix, check_vector

__all__ = [
    "ConvergenceCriterion",
    "IterationState",
    "SolveResult",
    "SolverInterrupt",
    "IterativeSolver",
    "CheckpointSpec",
    "ResumeState",
    "checkpoint_spec_for",
    "register_solver",
    "make_solver",
    "available_solvers",
]


class SolverInterrupt(Exception):
    """Raised from a callback to stop a solve (e.g. an injected failure).

    Attributes
    ----------
    iteration:
        The iteration index at which the solve was interrupted.
    """

    def __init__(self, iteration: int, message: str = "solver interrupted") -> None:
        super().__init__(message)
        self.iteration = int(iteration)


@dataclass(frozen=True)
class ConvergenceCriterion:
    """PETSc-style convergence test ``||r|| <= max(rtol * ||b||, atol)``.

    ``rtol`` is the relative tolerance the paper quotes per method
    (1e-4 Jacobi, 7e-5 GMRES, 1e-7 CG); ``atol`` is an absolute floor;
    ``divtol`` flags divergence when the residual grows by that factor over
    the reference norm.
    """

    rtol: float = 1e-5
    atol: float = 0.0
    divtol: float = 1e8

    def __post_init__(self) -> None:
        check_positive(self.rtol, "rtol")
        if self.atol < 0:
            raise ValueError(f"atol must be non-negative, got {self.atol}")
        check_positive(self.divtol, "divtol")

    def threshold(self, b_norm: float) -> float:
        """Absolute residual-norm threshold for right-hand-side norm ``b_norm``."""
        return max(self.rtol * b_norm, self.atol)

    def has_converged(self, residual_norm: float, b_norm: float) -> bool:
        """True when the residual satisfies the tolerance."""
        return residual_norm <= self.threshold(b_norm)

    def has_diverged(self, residual_norm: float, b_norm: float) -> bool:
        """True when the residual exceeds the divergence guard."""
        reference = b_norm if b_norm > 0 else 1.0
        return not np.isfinite(residual_norm) or residual_norm > self.divtol * reference


@dataclass
class IterationState:
    """Snapshot handed to per-iteration callbacks."""

    iteration: int
    x: np.ndarray
    residual_norm: float
    extras: Dict[str, object] = field(default_factory=dict)


Callback = Callable[[IterationState], None]


@dataclass
class SolveResult:
    """Outcome of one ``solve`` call."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: List[float]
    solver: str
    b_norm: float
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def final_residual_norm(self) -> float:
        """Residual norm at the last recorded iteration."""
        return self.residual_norms[-1] if self.residual_norms else float("nan")

    @property
    def relative_residual(self) -> float:
        """Final residual norm divided by ``||b||`` (or itself if ``b`` is 0)."""
        if self.b_norm == 0:
            return self.final_residual_norm
        return self.final_residual_norm / self.b_norm


@dataclass(frozen=True)
class CheckpointSpec:
    """What a solver declares about its checkpointable state.

    This is the ``CheckpointableState`` protocol of the fault-tolerance
    engine: instead of the engine special-casing solver classes, every solver
    declares

    * which full-length *extra* vectors (beyond the iterate ``x``) an exact
      checkpoint must capture so the same Krylov sequence can be resumed
      (CG: ``p``; BiCGSTAB: ``r``, ``r_hat``, ``p``, ``v``),
    * which scalars ride along (CG: ``rho``; BiCGSTAB: ``rho_old``,
      ``alpha``, ``omega``),
    * whether the method can be resumed exactly at all, and
    * whether exact resume is only available at restart-cycle boundaries
      (GMRES(k): restarting from ``x`` at a cycle end *is* the exact
      continuation, so no extra vectors are needed).

    Stationary methods are memoryless (``x`` is the entire dynamic state), so
    they declare exact resume with no extra vectors.  The modeled checkpoint
    footprint of a scheme is derived from this declaration
    (:meth:`repro.core.schemes.CheckpointingScheme.dynamic_vector_count`), so
    Table 3's sizes always match what an exact checkpoint actually stores.
    """

    extra_vectors: Tuple[str, ...] = ()
    scalars: Tuple[str, ...] = ()
    exact_resume: bool = False
    restart_boundary_only: bool = False
    #: True when resuming from a captured state reproduces the uninterrupted
    #: iteration sequence *bit for bit* — not merely up to rounding.  The
    #: trajectory-replay cache (:mod:`repro.engine.replay`) only uses
    #: mid-phase snapshots as numeric catch-up bases for solvers that declare
    #: this; everything else falls back to re-executing from the phase start,
    #: which is always bitwise (same call, same arguments).  CG declares
    #: ``False``: its resume recomputes ``r = b - A x`` from the restored
    #: iterate, which perturbs the recurrence residual in the last bits.
    bitwise_resume: bool = False

    @property
    def vector_count(self) -> int:
        """Full-length vectors an exact checkpoint stores (``x`` included)."""
        return 1 + len(self.extra_vectors)


@dataclass
class ResumeState:
    """Exact-resume payload captured at a checkpoint.

    ``vectors``/``scalars`` hold the entries named by the solver's
    :class:`CheckpointSpec`; passing the state back to :meth:`IterativeSolver.
    solve` via ``resume_state`` continues the interrupted Krylov sequence
    (together with ``x0`` set to the checkpointed iterate).
    """

    iteration: int
    vectors: Dict[str, np.ndarray] = field(default_factory=dict)
    scalars: Dict[str, float] = field(default_factory=dict)


class IterativeSolver(abc.ABC):
    """Base class for all iterative solvers.

    Parameters
    ----------
    A:
        Square sparse system matrix.
    preconditioner:
        Optional :class:`~repro.precond.base.Preconditioner`; identity if None.
    rtol, atol, max_iter:
        Convergence controls (see :class:`ConvergenceCriterion`).
    """

    name: str = "abstract"
    #: The solver's ``CheckpointableState`` declaration (see
    #: :class:`CheckpointSpec`).  Subclasses override the class attribute.
    checkpoint_spec: ClassVar[CheckpointSpec] = CheckpointSpec()
    #: Trajectory recorder installed by :meth:`recording`; when set, every
    #: state ``_emit`` produces flows through ``recorder.on_iteration`` before
    #: the caller's callback, and a completed ``_solve`` reports its
    #: :class:`SolveResult` via ``recorder.on_result``.  This is the recording
    #: hook of the trajectory-replay cache (:mod:`repro.engine.replay`).
    _trajectory_recorder = None

    def __init__(
        self,
        A,
        *,
        preconditioner: Optional[Preconditioner] = None,
        rtol: float = 1e-5,
        atol: float = 0.0,
        max_iter: int = 10000,
    ) -> None:
        self.A = check_square_matrix(A)
        self.n = self.A.shape[0]
        self.matvec = self._bind_matvec()
        self.preconditioner = preconditioner or IdentityPreconditioner(self.A)
        if self.preconditioner.n != self.n:
            raise ValueError("preconditioner size does not match the matrix")
        self.criterion = ConvergenceCriterion(rtol=rtol, atol=atol)
        max_iter = int(max_iter)
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.max_iter = max_iter

    # -- public API --------------------------------------------------------
    def solve(
        self,
        b: np.ndarray,
        *,
        x0: Optional[np.ndarray] = None,
        callback: Optional[Callback] = None,
        max_iter: Optional[int] = None,
        iteration_offset: int = 0,
        resume_state: Optional[ResumeState] = None,
    ) -> SolveResult:
        """Solve ``A x = b`` starting from ``x0`` (zero vector by default).

        ``iteration_offset`` shifts the iteration indices reported to the
        callback and in the result — used by the fault-tolerance runner so a
        restarted solve keeps counting from where the failed one stopped.

        ``resume_state`` (captured earlier by :meth:`capture_resume_state`)
        continues the exact iteration sequence from a checkpoint; solvers
        whose :attr:`checkpoint_spec` declares no extra state treat it as a
        plain (re)start from ``x0``, which for them *is* the exact
        continuation.  Solvers that do not support exact resume reject it.
        """
        if resume_state is not None and not self.checkpoint_spec.exact_resume:
            raise ValueError(
                f"{type(self).__name__} does not support exact resume; its "
                "checkpoint_spec declares exact_resume=False"
            )
        b = check_vector(b, "b")
        if b.size != self.n:
            raise ValueError(f"b has length {b.size}, expected {self.n}")
        if x0 is None:
            x0 = np.zeros(self.n, dtype=np.float64)
        else:
            x0 = check_vector(x0, "x0").copy()
            if x0.size != self.n:
                raise ValueError(f"x0 has length {x0.size}, expected {self.n}")
        limit = self.max_iter if max_iter is None else int(max_iter)
        if limit < 0:
            raise ValueError(f"max_iter must be >= 0, got {limit}")
        recorder = self._trajectory_recorder
        if recorder is not None:
            # The recorder observes each emitted state *before* the caller's
            # callback runs (a callback may raise SolverInterrupt — the
            # interrupted iteration still belongs to the recorded prefix).
            # A non-None wrapped callback also keeps solvers that only
            # materialize callback-visible state when a callback is present
            # (GMRES) on the exact execution path the recording replays.
            inner = callback

            def callback(state, _inner=inner, _recorder=recorder):
                _recorder.on_iteration(state)
                if _inner is not None:
                    _inner(state)

        self._resume_state = resume_state
        try:
            result = self._solve(
                b,
                x0,
                callback=callback,
                max_iter=limit,
                iteration_offset=int(iteration_offset),
            )
        finally:
            self._resume_state = None
        if recorder is not None:
            recorder.on_result(result)
        return result

    @contextmanager
    def recording(self, recorder):
        """Install ``recorder`` as this solver's trajectory recorder.

        ``recorder`` needs two methods: ``on_iteration(it_state)``, invoked
        for every emitted :class:`IterationState` ahead of the user callback,
        and ``on_result(result)``, invoked when ``_solve`` returns normally
        (an interrupted solve never reaches it — the caller sees the
        :class:`SolverInterrupt` instead).  Recorders do not nest; the replay
        session never re-enters a recorded solve.
        """
        if self._trajectory_recorder is not None:
            raise RuntimeError("a trajectory recorder is already installed")
        self._trajectory_recorder = recorder
        try:
            yield self
        finally:
            self._trajectory_recorder = None

    def capture_resume_state(self, it_state: IterationState) -> Optional[ResumeState]:
        """Capture the exact-resume state visible in one iteration snapshot.

        Returns ``None`` when the solver does not support exact resume or the
        snapshot is missing a declared entry (e.g. a GMRES iteration that is
        not at a restart boundary).  Vector entries are defensively copied —
        the returned state stays valid however long the checkpoint lives.
        """
        spec = self.checkpoint_spec
        if not spec.exact_resume:
            return None
        if spec.restart_boundary_only and not bool(
            it_state.extras.get("cycle_end", False)
            or it_state.extras.get("converged", False)
        ):
            return None
        vectors: Dict[str, np.ndarray] = {}
        for name in spec.extra_vectors:
            if name not in it_state.extras:
                return None
            vectors[name] = np.array(it_state.extras[name], dtype=np.float64, copy=True)
        scalars: Dict[str, float] = {}
        for name in spec.scalars:
            if name not in it_state.extras:
                return None
            scalars[name] = float(it_state.extras[name])  # type: ignore[arg-type]
        return ResumeState(
            iteration=int(it_state.iteration), vectors=vectors, scalars=scalars
        )

    def residual_norm(self, b: np.ndarray, x: np.ndarray) -> float:
        """True residual norm ``||b - A x||_2``."""
        return float(np.linalg.norm(b - self.matvec(x)))

    def _bind_matvec(self):
        """Bind the lowest-overhead exact ``A @ x`` available.

        ``A @ x`` on a small CSR matrix spends about half its time in
        scipy's ``__matmul__`` dispatch before reaching the C kernel.  The
        kernel (``csr_matvec``) computes ``y += A x`` over a zeroed output,
        which is exactly what the operator does internally, so binding it
        directly is bitwise-identical — iterates, residual histories, and
        therefore every downstream checkpoint payload are unchanged.  Any
        input the kernel binding cannot guarantee that equivalence for
        (non-float64, non-contiguous) falls back to the operator.
        """
        A = self.A
        if A.dtype != np.float64:
            return A.__matmul__
        try:
            from scipy.sparse._sparsetools import csr_matvec
        except ImportError:  # pragma: no cover - scipy internals moved
            return A.__matmul__
        n_row, n_col = A.shape
        indptr, indices, data = A.indptr, A.indices, A.data

        def matvec(x: np.ndarray) -> np.ndarray:
            if x.dtype != np.float64 or x.ndim != 1 or not x.flags.c_contiguous:
                return A @ x
            y = np.zeros(n_row, dtype=np.float64)
            csr_matvec(n_row, n_col, indptr, indices, data, x, y)
            return y

        return matvec

    # -- subclass hook -------------------------------------------------------
    @abc.abstractmethod
    def _solve(
        self,
        b: np.ndarray,
        x0: np.ndarray,
        *,
        callback: Optional[Callback],
        max_iter: int,
        iteration_offset: int,
    ) -> SolveResult:
        """Run the iteration; inputs are validated."""

    # -- helpers for subclasses ----------------------------------------------
    def _emit(
        self,
        callback: Optional[Callback],
        iteration: int,
        x: np.ndarray,
        residual_norm: float,
        **extras,
    ) -> None:
        """Invoke the callback (if any) with a defensive copy of ``x``."""
        if callback is None:
            return
        callback(
            IterationState(
                iteration=iteration,
                x=x.copy(),
                residual_norm=float(residual_norm),
                extras=dict(extras),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, rtol={self.criterion.rtol}, "
            f"max_iter={self.max_iter})"
        )


_REGISTRY: Dict[str, Callable[..., IterativeSolver]] = {}


def register_solver(name: str, factory: Callable[..., IterativeSolver]) -> None:
    """Register a solver factory under ``name`` for :func:`make_solver`."""
    _REGISTRY[name] = factory


def make_solver(name: str, A, **kwargs) -> IterativeSolver:
    """Instantiate a registered solver for matrix ``A``.

    Registered names: ``"jacobi"``, ``"gauss_seidel"``, ``"sor"``, ``"ssor"``,
    ``"cg"``, ``"gmres"``, ``"bicgstab"``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown solver {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(A, **kwargs)


def available_solvers() -> List[str]:
    """Names of all registered solvers."""
    return sorted(_REGISTRY)


def checkpoint_spec_for(method: str) -> CheckpointSpec:
    """The :class:`CheckpointSpec` declared by the solver registered as ``method``.

    Unknown names (or factories that are not solver classes) fall back to the
    default spec — one vector (``x``), no exact resume — which matches how the
    engine treats a solver with no declaration.
    """
    if method not in _REGISTRY:
        # The registry fills as solver modules are imported; pull in the
        # built-in ones so a name lookup does not depend on import order.
        import repro.solvers  # noqa: F401

    factory = _REGISTRY.get(method)
    spec = getattr(factory, "checkpoint_spec", None)
    return spec if isinstance(spec, CheckpointSpec) else CheckpointSpec()
