"""Restarted GMRES(k) — Saad & Schultz, with left preconditioning.

The paper runs PETSc's GMRES with the recommended restart length 30
(GMRES(30)).  This implementation uses the Arnoldi process with modified
Gram-Schmidt and Givens rotations, so the (preconditioned) residual norm is
available at every inner iteration without forming the iterate; the iterate is
reconstructed at the end of each restart cycle (or when the callback needs it,
i.e. every iteration, since the checkpointing layer snapshots ``x``).

GMRES is naturally a *restarted* method, which is why the paper's lossy
checkpointing is such a good fit: a recovery is just another restart whose
initial guess happens to be the decompressed checkpoint (Theorem 3 chooses the
error bound so the restart residual stays on the order of the current one).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solvers.base import (
    Callback,
    CheckpointSpec,
    IterativeSolver,
    SolveResult,
    register_solver,
)

__all__ = ["GMRESSolver"]


class GMRESSolver(IterativeSolver):
    """Restarted GMRES(k) with optional left preconditioning.

    Parameters
    ----------
    restart:
        Restart length ``k`` (default 30, the paper's setting).
    """

    name = "gmres"
    #: GMRES(k) is naturally restarted: at a cycle boundary the entire
    #: dynamic state is the iterate ``x`` — restarting from a checkpointed
    #: ``x`` *is* the exact continuation, so no extra vectors are declared
    #: and exact resume is only meaningful at restart boundaries (the engine
    #: aligns lossy checkpoints to ``cycle_end`` for the same reason).
    #: Restarting from a cycle-end iterate *is* the algorithm's own next
    #: cycle (fresh ``r = b - A x``, fresh Arnoldi basis), so resume at a
    #: declared boundary is a bitwise continuation.
    checkpoint_spec = CheckpointSpec(
        exact_resume=True, restart_boundary_only=True, bitwise_resume=True
    )

    def __init__(self, A, *, restart: int = 30, **kwargs) -> None:
        super().__init__(A, **kwargs)
        restart = int(restart)
        if restart < 1:
            raise ValueError(f"restart must be >= 1, got {restart}")
        self.restart = restart

    def _solve(
        self,
        b: np.ndarray,
        x0: np.ndarray,
        *,
        callback: Optional[Callback],
        max_iter: int,
        iteration_offset: int,
    ) -> SolveResult:
        matvec = self.matvec
        M = self.preconditioner
        n = self.n
        k = self.restart
        x = x0

        # Convergence is tested on the preconditioned residual norm, against
        # the preconditioned right-hand side norm (PETSc's default left-PC
        # behaviour).
        b_prec = M.solve(b)
        b_norm = float(np.linalg.norm(b_prec))
        if b_norm == 0.0:
            b_norm = 1.0

        residual_norms = []
        iterations = 0
        converged = False

        r = M.solve(b - matvec(x))
        beta = float(np.linalg.norm(r))
        residual_norms.append(beta)
        if self.criterion.has_converged(beta, b_norm):
            return SolveResult(
                x=x,
                converged=True,
                iterations=0,
                residual_norms=residual_norms,
                solver=self.name,
                b_norm=b_norm,
            )

        while iterations < max_iter and not converged:
            r = M.solve(b - matvec(x))
            beta = float(np.linalg.norm(r))
            if beta == 0.0:
                converged = True
                break
            V = np.zeros((k + 1, n), dtype=np.float64)
            H = np.zeros((k + 1, k), dtype=np.float64)
            cs = np.zeros(k, dtype=np.float64)
            sn = np.zeros(k, dtype=np.float64)
            g = np.zeros(k + 1, dtype=np.float64)
            V[0] = r / beta
            g[0] = beta

            inner = 0
            for j in range(k):
                if iterations >= max_iter:
                    break
                w = M.solve(matvec(V[j]))
                # Modified Gram-Schmidt orthogonalisation.
                for i in range(j + 1):
                    H[i, j] = float(w @ V[i])
                    w -= H[i, j] * V[i]
                H[j + 1, j] = float(np.linalg.norm(w))
                if H[j + 1, j] > 0.0:
                    V[j + 1] = w / H[j + 1, j]
                # Apply previous Givens rotations to the new column.
                for i in range(j):
                    temp = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                    H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                    H[i, j] = temp
                # New rotation annihilating H[j+1, j].
                denom = float(np.hypot(H[j, j], H[j + 1, j]))
                if denom == 0.0:
                    cs[j], sn[j] = 1.0, 0.0
                else:
                    cs[j] = H[j, j] / denom
                    sn[j] = H[j + 1, j] / denom
                H[j, j] = cs[j] * H[j, j] + sn[j] * H[j + 1, j]
                H[j + 1, j] = 0.0
                g[j + 1] = -sn[j] * g[j]
                g[j] = cs[j] * g[j]

                inner = j + 1
                iterations += 1
                res = abs(float(g[j + 1]))
                residual_norms.append(res)
                converged = self.criterion.has_converged(res, b_norm)

                if callback is not None or converged:
                    x_current = self._form_iterate(x, V, H, g, inner)
                else:
                    x_current = None
                if callback is not None and x_current is not None:
                    self._emit(
                        callback,
                        iteration_offset + iterations,
                        x_current,
                        res,
                        cycle_end=(inner == k),
                        converged=converged,
                    )
                if converged:
                    x = x_current if x_current is not None else x
                    break
                if H[j + 1, j] == 0.0 and denom == 0.0:
                    break
            if not converged and inner > 0:
                x = self._form_iterate(x, V, H, g, inner)
                true_res = float(np.linalg.norm(M.solve(b - matvec(x))))
                if self.criterion.has_diverged(true_res, b_norm):
                    break
            if inner == 0:
                break
        return SolveResult(
            x=x,
            converged=converged,
            iterations=iterations,
            residual_norms=residual_norms,
            solver=self.name,
            b_norm=b_norm,
            info={"restart": self.restart},
        )

    @staticmethod
    def _form_iterate(
        x: np.ndarray, V: np.ndarray, H: np.ndarray, g: np.ndarray, inner: int
    ) -> np.ndarray:
        """Reconstruct the iterate from the Arnoldi basis after ``inner`` steps."""
        if inner == 0:
            return x.copy()
        try:
            y = np.linalg.solve(H[:inner, :inner], g[:inner])
        except np.linalg.LinAlgError:
            y = np.linalg.lstsq(H[:inner, :inner], g[:inner], rcond=None)[0]
        return x + V[:inner].T @ y


register_solver("gmres", GMRESSolver)
