"""BiCGSTAB — stabilised bi-conjugate gradients (van der Vorst).

Not evaluated in the paper; included as an extension so the lossy
checkpointing scheme can be exercised on a short-recurrence nonsymmetric
Krylov method (see the ablation benchmarks).  Like restarted CG, a lossy
recovery simply restarts BiCGSTAB from the decompressed iterate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solvers.base import (
    Callback,
    IterativeSolver,
    SolveResult,
    register_solver,
)

__all__ = ["BiCGStabSolver"]


class BiCGStabSolver(IterativeSolver):
    """Preconditioned BiCGSTAB for general (nonsymmetric) systems."""

    name = "bicgstab"

    def _solve(
        self,
        b: np.ndarray,
        x0: np.ndarray,
        *,
        callback: Optional[Callback],
        max_iter: int,
        iteration_offset: int,
    ) -> SolveResult:
        A = self.A
        M = self.preconditioner
        x = x0
        b_norm = float(np.linalg.norm(b))

        r = b - A @ x
        r_hat = r.copy()
        res = float(np.linalg.norm(r))
        residual_norms = [res]
        converged = self.criterion.has_converged(res, b_norm)

        rho_old = 1.0
        alpha = 1.0
        omega = 1.0
        v = np.zeros_like(r)
        p = np.zeros_like(r)
        iterations = 0
        breakdown = False

        for local_iter in range(1, max_iter + 1):
            if converged:
                break
            rho = float(r_hat @ r)
            if rho == 0.0 or omega == 0.0:
                breakdown = True
                break
            beta = (rho / rho_old) * (alpha / omega)
            p = r + beta * (p - omega * v)
            p_hat = M.solve(p)
            v = A @ p_hat
            denom = float(r_hat @ v)
            if denom == 0.0:
                breakdown = True
                break
            alpha = rho / denom
            s = r - alpha * v
            s_norm = float(np.linalg.norm(s))
            if self.criterion.has_converged(s_norm, b_norm):
                x = x + alpha * p_hat
                res = s_norm
                residual_norms.append(res)
                iterations = local_iter
                converged = True
                self._emit(callback, iteration_offset + local_iter, x, res, converged=True)
                break
            s_hat = M.solve(s)
            t = A @ s_hat
            t_dot = float(t @ t)
            if t_dot == 0.0:
                breakdown = True
                break
            omega = float(t @ s) / t_dot
            x = x + alpha * p_hat + omega * s_hat
            r = s - omega * t
            res = float(np.linalg.norm(r))
            residual_norms.append(res)
            iterations = local_iter
            converged = self.criterion.has_converged(res, b_norm)
            self._emit(callback, iteration_offset + local_iter, x, res, converged=converged)
            if self.criterion.has_diverged(res, b_norm):
                break
            rho_old = rho
        return SolveResult(
            x=x,
            converged=converged,
            iterations=iterations,
            residual_norms=residual_norms,
            solver=self.name,
            b_norm=b_norm,
            info={"breakdown": breakdown},
        )


register_solver("bicgstab", BiCGStabSolver)
