"""BiCGSTAB — stabilised bi-conjugate gradients (van der Vorst).

Not evaluated in the paper; included as an extension so the lossy
checkpointing scheme can be exercised on a short-recurrence nonsymmetric
Krylov method (see the ablation benchmarks).  Like restarted CG, a lossy
recovery simply restarts BiCGSTAB from the decompressed iterate.

Under the exact (traditional/lossless) schemes the solver declares its full
recurrence state through the ``CheckpointableState`` protocol: checkpointing
``x`` plus ``r``, ``r_hat``, ``p``, ``v`` and the scalars ``rho_old``,
``alpha``, ``omega`` allows :meth:`IterativeSolver.solve` to resume the
*bitwise identical* Krylov sequence via ``resume_state`` — the analogue of
CG's Algorithm-1 ``(x, p, rho)`` checkpoint.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solvers.base import (
    Callback,
    CheckpointSpec,
    IterativeSolver,
    SolveResult,
    register_solver,
)

__all__ = ["BiCGStabSolver"]


class BiCGStabSolver(IterativeSolver):
    """Preconditioned BiCGSTAB for general (nonsymmetric) systems."""

    name = "bicgstab"
    #: Exact resume needs the full recurrence state at the top of the loop:
    #: the recurrence residual ``r`` (checkpointed explicitly — recomputing it
    #: from ``x`` would perturb the sequence), the shadow residual ``r_hat``,
    #: the search direction ``p`` and ``v = A M^{-1} p``, plus the scalars
    #: carried across iterations.
    checkpoint_spec = CheckpointSpec(
        extra_vectors=("r", "r_hat", "p", "v"),
        scalars=("rho_old", "alpha", "omega"),
        exact_resume=True,
        # The full recurrence is checkpointed (nothing is recomputed on
        # resume), so continuation from a captured state is bit-exact —
        # pinned by tests/solvers/test_resume.py.
        bitwise_resume=True,
    )

    def _solve(
        self,
        b: np.ndarray,
        x0: np.ndarray,
        *,
        callback: Optional[Callback],
        max_iter: int,
        iteration_offset: int,
    ) -> SolveResult:
        matvec = self.matvec
        M = self.preconditioner
        x = x0
        b_norm = float(np.linalg.norm(b))

        resume = getattr(self, "_resume_state", None)
        if resume is not None and resume.vectors:
            # Continue the exact recurrence captured at a checkpoint.
            r = np.array(resume.vectors["r"], dtype=np.float64, copy=True)
            r_hat = np.array(resume.vectors["r_hat"], dtype=np.float64, copy=True)
            p = np.array(resume.vectors["p"], dtype=np.float64, copy=True)
            v = np.array(resume.vectors["v"], dtype=np.float64, copy=True)
            if r.shape != x.shape:
                raise ValueError("resume-state vectors have the wrong shape")
            rho_old = float(resume.scalars["rho_old"])
            alpha = float(resume.scalars["alpha"])
            omega = float(resume.scalars["omega"])
        else:
            r = b - matvec(x)
            r_hat = r.copy()
            rho_old = 1.0
            alpha = 1.0
            omega = 1.0
            v = np.zeros_like(r)
            p = np.zeros_like(r)
        res = float(np.linalg.norm(r))
        residual_norms = [res]
        converged = self.criterion.has_converged(res, b_norm)

        iterations = 0
        breakdown = False

        for local_iter in range(1, max_iter + 1):
            if converged:
                break
            rho = float(r_hat @ r)
            if rho == 0.0 or omega == 0.0:
                breakdown = True
                break
            beta = (rho / rho_old) * (alpha / omega)
            p = r + beta * (p - omega * v)
            p_hat = M.solve(p)
            v = matvec(p_hat)
            denom = float(r_hat @ v)
            if denom == 0.0:
                breakdown = True
                break
            alpha = rho / denom
            s = r - alpha * v
            s_norm = float(np.linalg.norm(s))
            if self.criterion.has_converged(s_norm, b_norm):
                x = x + alpha * p_hat
                res = s_norm
                residual_norms.append(res)
                iterations = local_iter
                converged = True
                self._emit(callback, iteration_offset + local_iter, x, res, converged=True)
                break
            s_hat = M.solve(s)
            t = matvec(s_hat)
            t_dot = float(t @ t)
            if t_dot == 0.0:
                breakdown = True
                break
            omega = float(t @ s) / t_dot
            x = x + alpha * p_hat + omega * s_hat
            r = s - omega * t
            res = float(np.linalg.norm(r))
            residual_norms.append(res)
            iterations = local_iter
            converged = self.criterion.has_converged(res, b_norm)
            # The emitted extras are the loop-top state of the *next*
            # iteration (rho of this iteration becomes rho_old), exactly what
            # capture_resume_state() must store for a bitwise-exact resume.
            self._emit(
                callback,
                iteration_offset + local_iter,
                x,
                res,
                r=r,
                r_hat=r_hat,
                p=p,
                v=v,
                rho_old=rho,
                alpha=alpha,
                omega=omega,
                converged=converged,
            )
            if self.criterion.has_diverged(res, b_norm):
                break
            rho_old = rho
        return SolveResult(
            x=x,
            converged=converged,
            iterations=iterations,
            residual_norms=residual_norms,
            solver=self.name,
            b_norm=b_norm,
            info={"breakdown": breakdown},
        )


register_solver("bicgstab", BiCGStabSolver)
