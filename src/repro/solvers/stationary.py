"""Stationary iterative methods: Jacobi, Gauss-Seidel, SOR, SSOR.

These are the ``x^(i) = G x^(i-1) + c`` methods of Section 4.4.1.  Their
convergence rate is governed by the spectral radius of the iteration matrix
``G`` (see :mod:`repro.sparse.analysis`), which is what Theorem 2's
extra-iteration bound is phrased in terms of.

Only the approximate solution vector ``x`` is dynamic state, so lossy
checkpointing of stationary methods is the simplest case: restart from the
decompressed ``x`` and keep iterating.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.solvers.base import (
    Callback,
    CheckpointSpec,
    IterativeSolver,
    SolveResult,
    register_solver,
)

__all__ = ["JacobiSolver", "GaussSeidelSolver", "SORSolver", "SSORSolver"]


class _StationarySolver(IterativeSolver):
    """Shared driver for all stationary methods.

    Subclasses implement :meth:`_sweep`, producing ``x_{i+1}`` from ``x_i``.
    """

    #: Stationary methods are memoryless — the iterate ``x`` is the entire
    #: dynamic state, so restarting from a checkpointed ``x`` is always the
    #: exact continuation and no extra vectors are declared.  The residual is
    #: a pure function of ``x`` (``||b - A x||``), so the continuation is
    #: bitwise, which is what lets the replay cache catch up from any
    #: recorded snapshot.
    checkpoint_spec = CheckpointSpec(exact_resume=True, bitwise_resume=True)

    def __init__(self, A, **kwargs) -> None:
        # Stationary methods do not use a preconditioner; reject one if passed.
        if kwargs.pop("preconditioner", None) is not None:
            raise ValueError(f"{type(self).__name__} does not accept a preconditioner")
        super().__init__(A, **kwargs)
        diag = self.A.diagonal()
        if np.any(diag == 0.0):
            raise ValueError(f"{type(self).__name__} requires a nonzero diagonal")
        self._diag = diag

    def _sweep(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _solve(
        self,
        b: np.ndarray,
        x0: np.ndarray,
        *,
        callback: Optional[Callback],
        max_iter: int,
        iteration_offset: int,
    ) -> SolveResult:
        x = x0
        b_norm = float(np.linalg.norm(b))
        residual_norms = [self.residual_norm(b, x)]
        converged = self.criterion.has_converged(residual_norms[-1], b_norm)
        iterations = 0
        for local_iter in range(1, max_iter + 1):
            if converged:
                break
            x = self._sweep(x, b)
            res = self.residual_norm(b, x)
            residual_norms.append(res)
            iterations = local_iter
            converged = self.criterion.has_converged(res, b_norm)
            self._emit(
                callback, iteration_offset + local_iter, x, res, converged=converged
            )
            if self.criterion.has_diverged(res, b_norm):
                break
        return SolveResult(
            x=x,
            converged=converged,
            iterations=iterations,
            residual_norms=residual_norms,
            solver=self.name,
            b_norm=b_norm,
        )


class JacobiSolver(_StationarySolver):
    """Point Jacobi iteration ``x <- x + D^{-1}(b - A x)``."""

    name = "jacobi"

    def _sweep(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        return x + (b - self.matvec(x)) / self._diag


class GaussSeidelSolver(_StationarySolver):
    """Forward Gauss-Seidel sweep ``(D + L) x_{i+1} = b - U x_i``."""

    name = "gauss_seidel"

    def __init__(self, A, **kwargs) -> None:
        super().__init__(A, **kwargs)
        self._lower = sp.tril(self.A, k=0).tocsr()
        self._upper = sp.triu(self.A, k=1).tocsr()

    def _sweep(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        rhs = b - self._upper @ x
        return spla.spsolve_triangular(self._lower, rhs, lower=True)


class SORSolver(_StationarySolver):
    """Successive over-relaxation with factor ``omega``."""

    name = "sor"

    def __init__(self, A, *, omega: float = 1.5, **kwargs) -> None:
        super().__init__(A, **kwargs)
        omega = float(omega)
        if not (0.0 < omega < 2.0):
            raise ValueError(f"omega must be in (0, 2), got {omega}")
        self.omega = omega
        diag_matrix = sp.diags(self._diag, format="csr")
        strict_lower = sp.tril(self.A, k=-1).tocsr()
        self._upper = sp.triu(self.A, k=1).tocsr()
        self._lhs = (diag_matrix + omega * strict_lower).tocsr()
        self._diag_matrix = diag_matrix

    def _sweep(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        rhs = self.omega * (b - self._upper @ x) + (1.0 - self.omega) * (self._diag * x)
        return spla.spsolve_triangular(self._lhs, rhs, lower=True)


class SSORSolver(_StationarySolver):
    """Symmetric SOR: one forward SOR sweep followed by one backward sweep."""

    name = "ssor"

    def __init__(self, A, *, omega: float = 1.5, **kwargs) -> None:
        super().__init__(A, **kwargs)
        omega = float(omega)
        if not (0.0 < omega < 2.0):
            raise ValueError(f"omega must be in (0, 2), got {omega}")
        self.omega = omega
        diag_matrix = sp.diags(self._diag, format="csr")
        strict_lower = sp.tril(self.A, k=-1).tocsr()
        strict_upper = sp.triu(self.A, k=1).tocsr()
        self._lower = strict_lower
        self._upper = strict_upper
        self._forward_lhs = (diag_matrix + omega * strict_lower).tocsr()
        self._backward_lhs = (diag_matrix + omega * strict_upper).tocsr()

    def _sweep(self, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        omega = self.omega
        rhs = omega * (b - self._upper @ x) + (1.0 - omega) * (self._diag * x)
        half = spla.spsolve_triangular(self._forward_lhs, rhs, lower=True)
        rhs2 = omega * (b - self._lower @ half) + (1.0 - omega) * (self._diag * half)
        return spla.spsolve_triangular(self._backward_lhs, rhs2, lower=False)


register_solver("jacobi", JacobiSolver)
register_solver("gauss_seidel", GaussSeidelSolver)
register_solver("sor", SORSolver)
register_solver("ssor", SSORSolver)
