"""(Preconditioned) conjugate gradient — Algorithm 1 of the paper.

The solver follows the classic PCG recurrence (Barrett et al., "Templates"):
per iteration one sparse mat-vec, one preconditioner application, two inner
products and three vector updates, exactly the operation mix the paper
describes under Algorithm 1.

Two features exist specifically for the checkpoint/restart study:

* ``warm_start=(p, rho)`` resumes the *same* Krylov sequence from a restored
  direction vector and scalar — this is what traditional/lossless
  checkpointing of CG does (checkpoint ``x`` **and** ``p``; line 4 of
  Algorithm 1);
* calling ``solve`` again with the (lossily) recovered ``x`` as ``x0`` and no
  warm start is the *restarted CG* scheme the paper adopts for lossy
  checkpointing (only ``x`` is checkpointed; the Krylov space is rebuilt).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.solvers.base import (
    Callback,
    CheckpointSpec,
    IterativeSolver,
    ResumeState,
    SolveResult,
    register_solver,
)

__all__ = ["CGSolver"]


class CGSolver(IterativeSolver):
    """Preconditioned conjugate gradient for SPD systems."""

    name = "cg"
    #: Algorithm 1 checkpoints ``x`` *and* the direction vector ``p`` plus the
    #: scalar ``rho`` so the same Krylov sequence resumes after a recovery
    #: (the residual is recomputed from the restored iterate).  Because that
    #: recomputation — ``r = b - A x`` instead of the recurrence residual —
    #: perturbs the last bits, CG resume is exact only up to rounding and the
    #: spec keeps the default ``bitwise_resume=False``: the replay cache
    #: never uses CG mid-phase snapshots as catch-up bases.
    checkpoint_spec = CheckpointSpec(
        extra_vectors=("p",), scalars=("rho",), exact_resume=True
    )

    def solve(
        self,
        b: np.ndarray,
        *,
        x0: Optional[np.ndarray] = None,
        callback: Optional[Callback] = None,
        max_iter: Optional[int] = None,
        iteration_offset: int = 0,
        warm_start: Optional[Tuple[np.ndarray, float]] = None,
        resume_state: Optional[ResumeState] = None,
    ) -> SolveResult:
        """Solve ``A x = b``; see class docstring for ``warm_start`` semantics.

        ``warm_start=(p, rho)`` is the historical CG-specific spelling of the
        generic ``resume_state`` protocol; passing both is rejected.
        """
        if warm_start is not None:
            if resume_state is not None:
                raise ValueError("pass either warm_start or resume_state, not both")
            resume_state = ResumeState(
                iteration=int(iteration_offset),
                vectors={"p": np.array(warm_start[0], dtype=np.float64, copy=True)},
                scalars={"rho": float(warm_start[1])},
            )
        return super().solve(
            b,
            x0=x0,
            callback=callback,
            max_iter=max_iter,
            iteration_offset=iteration_offset,
            resume_state=resume_state,
        )

    def _solve(
        self,
        b: np.ndarray,
        x0: np.ndarray,
        *,
        callback: Optional[Callback],
        max_iter: int,
        iteration_offset: int,
    ) -> SolveResult:
        matvec = self.matvec
        M = self.preconditioner
        x = x0
        b_norm = float(np.linalg.norm(b))

        r = b - matvec(x)
        res = float(np.linalg.norm(r))
        residual_norms = [res]
        converged = self.criterion.has_converged(res, b_norm)

        resume = getattr(self, "_resume_state", None)
        if resume is not None:
            p = np.array(resume.vectors["p"], dtype=np.float64, copy=True)
            if p.shape != x.shape:
                raise ValueError("warm-start direction vector has the wrong shape")
            rho = float(resume.scalars["rho"])
            z = M.solve(r)
        else:
            z = M.solve(r)
            p = z.copy()
            rho = float(r @ z)

        iterations = 0
        breakdown = False
        for local_iter in range(1, max_iter + 1):
            if converged:
                break
            q = matvec(p)
            denom = float(p @ q)
            if denom <= 0.0 or not np.isfinite(denom):
                # Not SPD along this direction (or numerical breakdown).
                breakdown = True
                break
            alpha = rho / denom
            x = x + alpha * p
            r = r - alpha * q
            res = float(np.linalg.norm(r))
            residual_norms.append(res)
            iterations = local_iter
            converged = self.criterion.has_converged(res, b_norm)
            diverged = self.criterion.has_diverged(res, b_norm)
            if not converged and not diverged:
                # Advance the Krylov recurrence *before* emitting so that the
                # callback sees (x_{i+1}, p_{i+1}, rho_{i+1}) — the exact state
                # a traditional checkpoint must capture to resume the same
                # sequence (Algorithm 1 checkpoints i, rho_i, p^(i), x^(i)).
                z = M.solve(r)
                rho_next = float(r @ z)
                if rho_next == 0.0:
                    breakdown = True
                    self._emit(
                        callback, iteration_offset + local_iter, x, res,
                        p=p.copy(), rho=rho, converged=converged,
                    )
                    break
                beta = rho_next / rho
                p = z + beta * p
                rho = rho_next
            self._emit(
                callback,
                iteration_offset + local_iter,
                x,
                res,
                p=p.copy(),
                rho=rho,
                converged=converged,
            )
            if converged or diverged:
                break
        return SolveResult(
            x=x,
            converged=converged,
            iterations=iterations,
            residual_norms=residual_norms,
            solver=self.name,
            b_norm=b_norm,
            info={"breakdown": breakdown},
        )


register_solver("cg", CGSolver)
