"""repro — lossy checkpointing for iterative methods (HPDC'18 reproduction).

A from-scratch Python reproduction of

    Dingwen Tao, Sheng Di, Xin Liang, Zizhong Chen, Franck Cappello.
    "Improving Performance of Iterative Methods by Lossy Checkpointing",
    HPDC 2018.

The package is organised as the paper's system is: problem substrates
(:mod:`repro.sparse`), error-bounded compressors (:mod:`repro.compression`),
iterative solvers and preconditioners (:mod:`repro.solvers`,
:mod:`repro.precond`), a checkpoint/restart toolkit (:mod:`repro.checkpoint`),
a simulated cluster (:mod:`repro.cluster`), the lossy-checkpointing
contribution itself (:mod:`repro.core`) and the experiment harness that
regenerates every table and figure of the evaluation
(:mod:`repro.experiments`).

Quick start::

    from repro.sparse import poisson_system
    from repro.solvers import CGSolver
    from repro.core import CheckpointingScheme
    from repro.engine import FaultToleranceEngine

    problem = poisson_system(16)
    solver = CGSolver(problem.A, rtol=1e-7, max_iter=5000)
    scheme = CheckpointingScheme.lossy(1e-4)
    report = FaultToleranceEngine(
        solver, problem.b, scheme,
        mtti_seconds=3600.0, estimated_checkpoint_seconds=25.0, seed=0,
    ).run()
    print(report.overhead_fraction)
"""

from repro._version import __version__

__all__ = ["__version__"]
