"""Plain-text table rendering used by the experiment harness.

The paper's evaluation section is a collection of tables and line plots; this
reproduction prints every figure as a text table (one row per x-axis point,
one column per series) so results can be diffed and inspected without a
plotting stack.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell, float_fmt: str) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return format(cell, float_fmt)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    float_fmt: str = ".4g",
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows: List[List[str]] = [
        [_format_cell(cell, float_fmt) for cell in row] for row in rows
    ]
    headers = [str(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in rendered_rows)
    return "\n".join(lines)
