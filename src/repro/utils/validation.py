"""Argument-validation helpers shared by all subpackages.

The library is used both programmatically and from experiment scripts, so
invalid arguments should fail early with precise messages rather than deep
inside NumPy/SciPy kernels.
"""

from __future__ import annotations

from numbers import Real
from typing import Sequence

import numpy as np
import scipy.sparse as sp


def check_positive(value: Real, name: str) -> float:
    """Return ``value`` as float, raising ``ValueError`` unless it is > 0."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_nonnegative(value: Real, name: str) -> float:
    """Return ``value`` as float, raising ``ValueError`` unless it is >= 0."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value}")
    return value


def check_probability(value: Real, name: str) -> float:
    """Return ``value`` as float, raising ``ValueError`` unless it is in [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_vector(x, name: str, *, dtype=np.float64) -> np.ndarray:
    """Return ``x`` as a contiguous 1-D float array, validating its shape."""
    arr = np.ascontiguousarray(x, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a 1-D vector, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    return arr


def check_square_matrix(A, name: str = "A") -> sp.csr_matrix:
    """Return ``A`` as CSR, raising unless it is a square 2-D sparse/dense matrix."""
    if sp.issparse(A):
        mat = A.tocsr()
    else:
        arr = np.asarray(A, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
        mat = sp.csr_matrix(arr)
    if mat.shape[0] != mat.shape[1]:
        raise ValueError(f"{name} must be square, got shape {mat.shape}")
    if mat.shape[0] == 0:
        raise ValueError(f"{name} must be non-empty")
    return mat


def check_same_length(x: Sequence, y: Sequence, name_x: str, name_y: str) -> None:
    """Raise ``ValueError`` unless ``x`` and ``y`` have the same length."""
    if len(x) != len(y):
        raise ValueError(
            f"{name_x} and {name_y} must have the same length, "
            f"got {len(x)} and {len(y)}"
        )
