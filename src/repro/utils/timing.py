"""Wall-clock and virtual-clock timing utilities.

Two clocks are used throughout the library:

* :class:`Stopwatch` measures *real* elapsed seconds (used to time actual
  compression/solve kernels on this machine).
* :class:`VirtualClock` accumulates *modeled* seconds on the simulated
  cluster timeline (used by the fault-tolerance runner, where one iteration
  of a 2,048-process run "costs" the paper-scale iteration time, not the time
  this laptop-scale reproduction happens to take).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class Stopwatch:
    """A minimal context-manager stopwatch measuring real elapsed seconds."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        self.elapsed = time.perf_counter() - self._start
        return self.elapsed


@dataclass
class VirtualClock:
    """Accumulates modeled time on the simulated cluster timeline.

    The clock keeps a per-category breakdown (``compute``, ``checkpoint``,
    ``recovery``, ``rollback``, ...) so the fault-tolerance overhead
    (total minus productive compute) can be reported exactly as the paper
    defines it.
    """

    now: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)
    events: List[Tuple[float, str]] = field(default_factory=list)
    record_events: bool = False

    def advance(self, seconds: float, category: str = "compute") -> float:
        """Advance the clock by ``seconds`` attributed to ``category``."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        self.now += seconds
        self.breakdown[category] = self.breakdown.get(category, 0.0) + seconds
        if self.record_events:
            self.events.append((self.now, category))
        return self.now

    def time_in(self, category: str) -> float:
        """Total modeled seconds spent in ``category`` so far."""
        return self.breakdown.get(category, 0.0)

    def reset(self) -> None:
        self.now = 0.0
        self.breakdown.clear()
        self.events.clear()

    def copy(self) -> "VirtualClock":
        clone = VirtualClock(now=self.now, record_events=self.record_events)
        clone.breakdown = dict(self.breakdown)
        clone.events = list(self.events)
        return clone
