"""Shared utilities: deterministic RNG, timers, validation helpers.

These helpers are intentionally small and dependency-free so that every other
subpackage (sparse generators, compressors, solvers, the fault-tolerance
runner) can rely on them without import cycles.
"""

from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.timing import Stopwatch, VirtualClock
from repro.utils.validation import (
    check_positive,
    check_nonnegative,
    check_probability,
    check_vector,
    check_square_matrix,
    check_same_length,
)
from repro.utils.tables import format_table

__all__ = [
    "default_rng",
    "spawn_rngs",
    "Stopwatch",
    "VirtualClock",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_vector",
    "check_square_matrix",
    "check_same_length",
    "format_table",
]
