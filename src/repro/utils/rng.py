"""Deterministic random-number-generator helpers.

Every stochastic component in the library (failure injection, synthetic matrix
generation, random right-hand sides, the Fig. 2 random-restart experiment)
takes an explicit seed or :class:`numpy.random.Generator` so that experiments
are reproducible run-to-run.  These helpers centralise the seed-handling
conventions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def default_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer, a ``SeedSequence`` or an
    existing ``Generator`` (returned unchanged), mirroring NumPy's own
    ``default_rng`` but tolerant of already-constructed generators so that
    call-sites can simply forward whatever they were given.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed.

    Used by trial-based experiments (e.g. the Fig. 2 extra-iteration study and
    the Fig. 10 failure-injection runs) so each trial gets an independent
    stream while the whole experiment remains reproducible from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive child seeds from the generator itself.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(seed: Optional[int], *salts: "int | str") -> int:
    """Mix ``seed`` with ``salts`` (integers or strings) into a new 63-bit seed.

    Deterministic and order-sensitive; used to give sub-experiments (e.g. one
    per process count, method or scheme) distinct but reproducible seeds.
    String salts are hashed with CRC32 so the result does not depend on
    Python's per-process hash randomisation.
    """
    import zlib

    state = np.uint64(0x9E3779B97F4A7C15)
    values = [0 if seed is None else int(seed)] + [
        zlib.crc32(s.encode("utf-8")) if isinstance(s, str) else int(s) for s in salts
    ]
    for value in values:
        v = np.uint64(value & 0xFFFFFFFFFFFFFFFF)
        state = np.uint64((int(state) ^ int(v)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF)
        state = np.uint64(int(state) ^ (int(state) >> np.uint64(31)))
    return int(state) & 0x7FFFFFFFFFFFFFFF
