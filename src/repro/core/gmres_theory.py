"""Theorem 3: the adaptive error-bound policy for GMRES lossy checkpointing.

Theorem 3 of the paper shows that if the pointwise relative error bound used
to compress the checkpointed iterate satisfies ``eb = O(||r^(t)|| / ||b||)``,
then the residual of the restart vector stays on the same order as the
pre-failure residual:

.. math::

    ||r'^{(t)}|| \\lesssim ||r^{(t)}|| + eb \\cdot ||b||

so restarted GMRES resumes without losing ground (expected ``N' = 0``, and in
practice sometimes accelerates by escaping stagnation).  This module provides
the bound-selection policy and the residual-jump estimate used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.errorbounds import ErrorBound
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "adaptive_relative_bound",
    "residual_jump_bound",
    "GMRESErrorBoundPolicy",
]


def adaptive_relative_bound(
    residual_norm: float,
    b_norm: float,
    *,
    safety_factor: float = 1.0,
    min_bound: float = 1e-12,
    max_bound: float = 1e-1,
) -> float:
    """Theorem 3's error bound ``eb = safety_factor * ||r|| / ||b||``, clipped.

    The clip keeps the bound inside what error-bounded compressors handle
    robustly; the lower clip matters late in the run when the residual is at
    the convergence threshold.
    """
    residual_norm = check_nonnegative(residual_norm, "residual_norm")
    b_norm = check_positive(b_norm, "b_norm")
    safety_factor = check_positive(safety_factor, "safety_factor")
    raw = safety_factor * residual_norm / b_norm
    return float(np.clip(raw, min_bound, max_bound))


def residual_jump_bound(residual_norm: float, b_norm: float, eb: float) -> float:
    """Upper bound on the post-restart residual norm (Eq. (14)).

    ``||r'|| <= (1 + eb) ||r|| + eb ||b||`` — the slightly looser intermediate
    line of the proof, which holds without the final approximation.
    """
    residual_norm = check_nonnegative(residual_norm, "residual_norm")
    b_norm = check_nonnegative(b_norm, "b_norm")
    eb = check_positive(eb, "eb")
    return float((1.0 + eb) * residual_norm + eb * b_norm)


@dataclass
class GMRESErrorBoundPolicy:
    """Callable policy returning the compression bound for the current state.

    Plugged into the lossy checkpointing scheme for GMRES: at every checkpoint
    the bound is recomputed from the current residual norm, so early
    checkpoints (large residual) are compressed aggressively while late
    checkpoints (small residual) are compressed tightly enough not to disturb
    convergence.
    """

    safety_factor: float = 1.0
    min_bound: float = 1e-12
    max_bound: float = 1e-1

    def bound_value(self, residual_norm: float, b_norm: float) -> float:
        """The scalar pointwise-relative bound for the current residual."""
        return adaptive_relative_bound(
            residual_norm,
            b_norm,
            safety_factor=self.safety_factor,
            min_bound=self.min_bound,
            max_bound=self.max_bound,
        )

    def error_bound(self, residual_norm: float, b_norm: float) -> ErrorBound:
        """Same as :meth:`bound_value` but wrapped as an :class:`ErrorBound`."""
        return ErrorBound.pointwise_relative(self.bound_value(residual_norm, b_norm))
