"""Theorem 3: the adaptive error-bound policy for GMRES lossy checkpointing.

Theorem 3 of the paper shows that if the pointwise relative error bound used
to compress the checkpointed iterate satisfies ``eb = O(||r^(t)|| / ||b||)``,
then the residual of the restart vector stays on the same order as the
pre-failure residual:

.. math::

    ||r'^{(t)}|| \\lesssim ||r^{(t)}|| + eb \\cdot ||b||

so restarted GMRES resumes without losing ground (expected ``N' = 0``, and in
practice sometimes accelerates by escaping stagnation).  This module provides
the bound-selection policy and the residual-jump estimate used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.errorbounds import ResidualAdaptiveBoundPolicy
from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "adaptive_relative_bound",
    "residual_jump_bound",
    "GMRESErrorBoundPolicy",
]


def adaptive_relative_bound(
    residual_norm: float,
    b_norm: float,
    *,
    safety_factor: float = 1.0,
    min_bound: float = 1e-12,
    max_bound: float = 1e-1,
) -> float:
    """Theorem 3's error bound ``eb = safety_factor * ||r|| / ||b||``, clipped.

    The clip keeps the bound inside what error-bounded compressors handle
    robustly; the lower clip matters late in the run when the residual is at
    the convergence threshold.
    """
    return ResidualAdaptiveBoundPolicy(
        safety_factor=safety_factor, min_bound=min_bound, max_bound=max_bound
    ).bound_value(residual_norm, b_norm)


def residual_jump_bound(residual_norm: float, b_norm: float, eb: float) -> float:
    """Upper bound on the post-restart residual norm (Eq. (14)).

    ``||r'|| <= (1 + eb) ||r|| + eb ||b||`` — the slightly looser intermediate
    line of the proof, which holds without the final approximation.
    """
    residual_norm = check_nonnegative(residual_norm, "residual_norm")
    b_norm = check_nonnegative(b_norm, "b_norm")
    eb = check_positive(eb, "eb")
    return float((1.0 + eb) * residual_norm + eb * b_norm)


@dataclass(frozen=True)
class GMRESErrorBoundPolicy(ResidualAdaptiveBoundPolicy):
    """The Theorem-3 policy under its historical GMRES-specific name.

    Plugged into the lossy checkpointing scheme for GMRES: at every checkpoint
    the bound is recomputed from the current residual norm, so early
    checkpoints (large residual) are compressed aggressively while late
    checkpoints (small residual) are compressed tightly enough not to disturb
    convergence.  The implementation now lives in the method-agnostic
    :class:`~repro.compression.errorbounds.ResidualAdaptiveBoundPolicy`
    (Theorem 3 is not specific to GMRES); this subclass keeps the public
    name every existing call site imports.
    """
