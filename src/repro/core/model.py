"""The lossy-checkpointing performance model (Section 4.1 and 4.3).

Implements, symbol for symbol, the equations of the paper:

* Young's optimal checkpoint interval ``k * Tit = sqrt(2 * Tf * Tckp)``
  (Eq. (1));
* the expected execution time under traditional checkpointing (Eq. (2)) and
  the corresponding fault-tolerance overhead (Eqs. (3)-(5));
* the expected execution time and overhead under lossy checkpointing, which
  adds the mean number ``N'`` of extra iterations per lossy recovery
  (Eqs. (6)-(8));
* Theorem 1: the upper bound on ``N'`` for which lossy checkpointing is
  guaranteed to beat traditional checkpointing.

All functions take the failure rate ``lam = 1/Tf`` in failures per second and
times in seconds, matching the paper's notation (Table 1 and Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

__all__ = [
    "young_interval",
    "overhead_function",
    "expected_overhead_fraction",
    "expected_total_time",
    "lossy_expected_overhead_fraction",
    "lossy_expected_total_time",
    "max_acceptable_extra_iterations",
    "CheckpointTimings",
]


def young_interval(checkpoint_seconds: float, mtti_seconds: float) -> float:
    """Optimal time between checkpoints per Young's formula (Eq. (1)).

    Returns ``sqrt(2 * Tf * Tckp)`` in seconds.
    """
    checkpoint_seconds = check_positive(checkpoint_seconds, "checkpoint_seconds")
    mtti_seconds = check_positive(mtti_seconds, "mtti_seconds")
    return float(np.sqrt(2.0 * mtti_seconds * checkpoint_seconds))


def overhead_function(checkpoint_seconds: float, lam: float) -> float:
    """The paper's ``f(t, lambda) = sqrt(2*lambda*t) + lambda*t`` (Theorem 1)."""
    checkpoint_seconds = check_nonnegative(checkpoint_seconds, "checkpoint_seconds")
    lam = check_nonnegative(lam, "lam")
    product = lam * checkpoint_seconds
    return float(np.sqrt(2.0 * product) + product)


def _check_stability(denominator: float, context: str) -> None:
    if denominator <= 0.0:
        raise ValueError(
            f"the checkpointing model is unstable for {context}: the failure "
            "rate and checkpoint cost are so high that no productive progress "
            "is possible (denominator of the expected-time formula is <= 0)"
        )


def expected_overhead_fraction(lam: float, checkpoint_seconds: float) -> float:
    """Expected fault-tolerance overhead / productive time (Eq. (5)).

    Assumes ``Trc ~ Tckp`` as the paper does for Figure 1.
    """
    f = overhead_function(checkpoint_seconds, lam)
    _check_stability(1.0 - f, f"lambda={lam:g}, Tckp={checkpoint_seconds:g}")
    return f / (1.0 - f)


def expected_total_time(
    productive_seconds: float,
    lam: float,
    checkpoint_seconds: float,
    recovery_seconds: Optional[float] = None,
) -> float:
    """Expected total execution time under traditional checkpointing (Eq. (2)).

    ``productive_seconds`` is ``N * Tit``.  If ``recovery_seconds`` is None it
    is approximated by ``checkpoint_seconds`` (the paper's simplification).
    """
    productive_seconds = check_nonnegative(productive_seconds, "productive_seconds")
    lam = check_nonnegative(lam, "lam")
    checkpoint_seconds = check_nonnegative(checkpoint_seconds, "checkpoint_seconds")
    if recovery_seconds is None:
        recovery_seconds = checkpoint_seconds
    recovery_seconds = check_nonnegative(recovery_seconds, "recovery_seconds")
    denominator = 1.0 - np.sqrt(2.0 * lam * checkpoint_seconds) - lam * recovery_seconds
    _check_stability(denominator, f"lambda={lam:g}, Tckp={checkpoint_seconds:g}")
    return float(productive_seconds / denominator)


def lossy_expected_total_time(
    productive_seconds: float,
    lam: float,
    lossy_checkpoint_seconds: float,
    extra_iterations: float,
    iteration_seconds: float,
    recovery_seconds: Optional[float] = None,
) -> float:
    """Expected total time under lossy checkpointing (Eq. (6)/(7) rearranged).

    ``extra_iterations`` is the paper's ``N'`` (mean extra iterations per
    lossy recovery) and ``iteration_seconds`` is ``Tit``.
    """
    productive_seconds = check_nonnegative(productive_seconds, "productive_seconds")
    lam = check_nonnegative(lam, "lam")
    lossy_checkpoint_seconds = check_nonnegative(
        lossy_checkpoint_seconds, "lossy_checkpoint_seconds"
    )
    extra_iterations = check_nonnegative(extra_iterations, "extra_iterations")
    iteration_seconds = check_nonnegative(iteration_seconds, "iteration_seconds")
    if recovery_seconds is None:
        recovery_seconds = lossy_checkpoint_seconds
    recovery_seconds = check_nonnegative(recovery_seconds, "recovery_seconds")
    denominator = (
        1.0
        - np.sqrt(2.0 * lam * lossy_checkpoint_seconds)
        - lam * recovery_seconds
        - lam * extra_iterations * iteration_seconds
    )
    _check_stability(
        denominator,
        f"lambda={lam:g}, Tckp={lossy_checkpoint_seconds:g}, N'={extra_iterations:g}",
    )
    return float(productive_seconds / denominator)


def lossy_expected_overhead_fraction(
    lam: float,
    lossy_checkpoint_seconds: float,
    extra_iterations: float,
    iteration_seconds: float,
) -> float:
    """Expected lossy-checkpointing overhead / productive time (Eq. (8)).

    Uses the paper's simplification ``T_rc^lossy ~ T_ckp^lossy``.
    """
    lam = check_nonnegative(lam, "lam")
    numerator = (
        overhead_function(lossy_checkpoint_seconds, lam)
        + lam * check_nonnegative(extra_iterations, "extra_iterations")
        * check_nonnegative(iteration_seconds, "iteration_seconds")
    )
    denominator = 1.0 - numerator
    _check_stability(
        denominator,
        f"lambda={lam:g}, Tckp={lossy_checkpoint_seconds:g}, N'={extra_iterations:g}",
    )
    return float(numerator / denominator)


def max_acceptable_extra_iterations(
    traditional_checkpoint_seconds: float,
    lossy_checkpoint_seconds: float,
    lam: float,
    iteration_seconds: float,
) -> float:
    """Theorem 1: the largest ``N'`` for which lossy checkpointing still wins.

    Returns ``(f(T_trad, lam) - f(T_lossy, lam)) / (lam * Tit)``.  A negative
    value means the lossy checkpoint is *more* expensive than the traditional
    one, so it can never win regardless of convergence impact.
    """
    lam = check_positive(lam, "lam")
    iteration_seconds = check_positive(iteration_seconds, "iteration_seconds")
    gain = overhead_function(traditional_checkpoint_seconds, lam) - overhead_function(
        lossy_checkpoint_seconds, lam
    )
    return float(gain / (lam * iteration_seconds))


@dataclass(frozen=True)
class CheckpointTimings:
    """Convenience bundle of per-scheme timings used by the experiment harness."""

    checkpoint_seconds: float
    recovery_seconds: float

    def __post_init__(self) -> None:
        check_nonnegative(self.checkpoint_seconds, "checkpoint_seconds")
        check_nonnegative(self.recovery_seconds, "recovery_seconds")

    def young_interval(self, mtti_seconds: float) -> float:
        """Optimal checkpoint interval for these timings at the given MTTI."""
        return young_interval(self.checkpoint_seconds, mtti_seconds)
