"""The paper's contribution: lossy checkpointing for iterative methods.

This package layers the primary contribution on top of the substrates:

* :mod:`repro.core.model` — the checkpoint/restart performance model
  (Young's interval, expected overheads, Theorem 1);
* :mod:`repro.core.stationary_theory` — Theorem 2's extra-iteration bound for
  stationary methods;
* :mod:`repro.core.gmres_theory` — Theorem 3's adaptive error-bound policy for
  GMRES;
* :mod:`repro.core.schemes` — the traditional / lossless / lossy checkpointing
  schemes;
* :mod:`repro.core.runner` — deprecated compatibility shim for the
  failure-injected execution engine, which now lives in :mod:`repro.engine`;
* :mod:`repro.core.extra_iterations` — the empirical N' measurement (Fig. 2).
"""

from repro.core.model import (
    young_interval,
    overhead_function,
    expected_overhead_fraction,
    expected_total_time,
    lossy_expected_overhead_fraction,
    lossy_expected_total_time,
    max_acceptable_extra_iterations,
    CheckpointTimings,
)
from repro.core.stationary_theory import (
    extra_iterations_at,
    expected_extra_iterations_interval,
    expected_extra_iterations,
    StationaryImpactModel,
)
from repro.core.gmres_theory import (
    adaptive_relative_bound,
    residual_jump_bound,
    GMRESErrorBoundPolicy,
)
from repro.core.schemes import CheckpointingScheme
from repro.core.scale import ExperimentScale, PAPER_WEAK_SCALING, paper_scale
# Imported from repro.engine (not repro.core.runner) so that merely importing
# this package does not trip the runner module's deprecation warning; the
# historical ``repro.core.FaultTolerantRunner`` name keeps working.
from repro.engine.core import FaultToleranceEngine as FaultTolerantRunner
from repro.engine.report import BaselineRun, FTRunReport, run_failure_free
from repro.core.extra_iterations import (
    ExtraIterationStudy,
    ExtraIterationTrial,
    measure_extra_iterations,
)

__all__ = [
    "young_interval",
    "overhead_function",
    "expected_overhead_fraction",
    "expected_total_time",
    "lossy_expected_overhead_fraction",
    "lossy_expected_total_time",
    "max_acceptable_extra_iterations",
    "CheckpointTimings",
    "extra_iterations_at",
    "expected_extra_iterations_interval",
    "expected_extra_iterations",
    "StationaryImpactModel",
    "adaptive_relative_bound",
    "residual_jump_bound",
    "GMRESErrorBoundPolicy",
    "CheckpointingScheme",
    "ExperimentScale",
    "PAPER_WEAK_SCALING",
    "paper_scale",
    "FaultTolerantRunner",
    "FTRunReport",
    "BaselineRun",
    "run_failure_free",
    "ExtraIterationStudy",
    "ExtraIterationTrial",
    "measure_extra_iterations",
]
