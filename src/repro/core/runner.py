"""Fault-tolerant execution of iterative solvers — compatibility surface.

The implementation lives in :mod:`repro.engine`: the original
``FaultTolerantRunner`` dict-closure state machine was refactored into the
discrete-event :class:`~repro.engine.core.FaultToleranceEngine` (explicit
compute/checkpoint/failure/recovery/rollback events against a typed
:class:`~repro.engine.core.EngineState`, solver-agnostic via the
``CheckpointableState`` protocol, pluggable failure models and
multilevel-aware recovery costing via
:class:`~repro.engine.scenario.Scenario`).

This module keeps the historical import surface — ``FaultTolerantRunner``
*is* the engine, with identical constructor parameters and byte-identical
reports for the default (Poisson failures, PFS recovery) scenario, as pinned
by the engine-equivalence test suite.
"""

from __future__ import annotations

from repro.engine.core import FaultToleranceEngine
from repro.engine.report import BaselineRun, FTRunReport, run_failure_free

__all__ = ["FaultTolerantRunner", "FTRunReport", "run_failure_free", "BaselineRun"]

#: Historical name of the engine (every pre-engine call site keeps working).
FaultTolerantRunner = FaultToleranceEngine
