"""Fault-tolerant execution of iterative solvers with (lossy) checkpointing.

This module is the reproduction of the paper's Algorithms 1 and 2 plus the
failure-injection methodology of Section 5.4:

* the solver runs for real (at reduced problem size) and its per-iteration
  callback drives a *virtual* cluster timeline: each iteration costs the
  paper-calibrated ``Tit``, each checkpoint costs the modeled compression +
  PFS-write time, each recovery the modeled read + decompression +
  static-rebuild time;
* failures arrive as a Poisson process on that timeline (they can strike
  during compute, during a checkpoint, or during a recovery);
* on a failure, the runner restores the last complete checkpoint.  Exact
  schemes (traditional / lossless) restore the solver state bit-for-bit —
  for CG that includes the direction vector and ``rho``, so the Krylov
  sequence resumes unchanged; the lossy scheme restores only the decompressed
  ``x`` and restarts the method from it (restarted CG / restarted GMRES),
  which is where the extra iterations ``N'`` come from — they are *measured*,
  not assumed;
* the report compares the failure-injected run against a failure-free
  baseline: total virtual time, fault-tolerance overhead (total minus the
  baseline's productive time, exactly the paper's definition), iteration
  counts, checkpoint/recovery statistics and the residual trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.failures import FailureInjector
from repro.cluster.machine import ClusterModel
from repro.compression.base import CompressedBlob
from repro.core.model import young_interval
from repro.core.scale import ExperimentScale
from repro.core.schemes import CheckpointingScheme
from repro.solvers.base import IterationState, IterativeSolver, SolverInterrupt
from repro.solvers.cg import CGSolver
from repro.utils.rng import SeedLike
from repro.utils.timing import VirtualClock
from repro.utils.validation import check_positive

__all__ = ["FaultTolerantRunner", "FTRunReport", "run_failure_free", "BaselineRun"]


def _json_scalar(value: object) -> object:
    """Coerce numpy scalars to plain Python so ``json.dumps`` accepts them."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


@dataclass
class BaselineRun:
    """Failure-free reference execution of a solver."""

    iterations: int
    converged: bool
    residual_norms: List[float]
    final_residual_norm: float
    x: np.ndarray

    def productive_seconds(
        self,
        iteration_seconds: Optional[float] = None,
        *,
        cluster: Optional[ClusterModel] = None,
        method: Optional[str] = None,
    ) -> float:
        """Failure-free productive time, ``iterations * Tit``.

        Pass either ``iteration_seconds`` directly or a ``cluster`` model plus
        the ``method`` name to look the per-iteration time up from the
        calibration table.
        """
        if iteration_seconds is None:
            if cluster is None or method is None:
                raise ValueError(
                    "provide iteration_seconds, or a cluster model and method "
                    "name to derive it"
                )
            iteration_seconds = cluster.iteration_time(method)
        return self.iterations * check_positive(iteration_seconds, "iteration_seconds")


def run_failure_free(
    solver: IterativeSolver, b: np.ndarray, *, x0: Optional[np.ndarray] = None
) -> BaselineRun:
    """Run ``solver`` once without failures and return the reference trajectory."""
    result = solver.solve(b, x0=x0)
    return BaselineRun(
        iterations=result.iterations,
        converged=result.converged,
        residual_norms=list(result.residual_norms),
        final_residual_norm=result.final_residual_norm,
        x=result.x,
    )


@dataclass
class _CheckpointState:
    """The runner's in-memory record of the last complete checkpoint."""

    iteration: int
    x_blob: CompressedBlob
    krylov_p: Optional[np.ndarray]
    krylov_rho: Optional[float]
    compression_ratio: float
    model_uncompressed_bytes: float
    model_compressed_bytes: float


@dataclass
class FTRunReport:
    """Outcome of one failure-injected run."""

    scheme: str
    method: str
    converged: bool
    total_iterations: int
    baseline_iterations: int
    num_failures: int
    num_checkpoints: int
    num_restarts_from_scratch: int
    total_seconds: float
    productive_seconds: float
    checkpoint_seconds: float
    recovery_seconds: float
    checkpoint_interval_seconds: float
    mean_checkpoint_seconds: float
    mean_recovery_seconds: float
    mean_compression_ratio: float
    residual_trace: List[Tuple[int, float]] = field(default_factory=list)
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def extra_iterations(self) -> int:
        """Iterations beyond the failure-free baseline (the measured N' total)."""
        return self.total_iterations - self.baseline_iterations

    @property
    def fault_tolerance_overhead(self) -> float:
        """Total time minus the failure-free productive time (paper's metric)."""
        return self.total_seconds - self.productive_seconds

    @property
    def overhead_fraction(self) -> float:
        """Overhead relative to the failure-free productive time."""
        if self.productive_seconds == 0:
            return float("inf")
        return self.fault_tolerance_overhead / self.productive_seconds

    # -- serialization (campaign cache / worker transport) -------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary representation (numpy scalars coerced)."""
        return {
            "scheme": str(self.scheme),
            "method": str(self.method),
            "converged": bool(self.converged),
            "total_iterations": int(self.total_iterations),
            "baseline_iterations": int(self.baseline_iterations),
            "num_failures": int(self.num_failures),
            "num_checkpoints": int(self.num_checkpoints),
            "num_restarts_from_scratch": int(self.num_restarts_from_scratch),
            "total_seconds": float(self.total_seconds),
            "productive_seconds": float(self.productive_seconds),
            "checkpoint_seconds": float(self.checkpoint_seconds),
            "recovery_seconds": float(self.recovery_seconds),
            "checkpoint_interval_seconds": float(self.checkpoint_interval_seconds),
            "mean_checkpoint_seconds": float(self.mean_checkpoint_seconds),
            "mean_recovery_seconds": float(self.mean_recovery_seconds),
            "mean_compression_ratio": float(self.mean_compression_ratio),
            "residual_trace": [
                [int(it), float(res)] for it, res in self.residual_trace
            ],
            "info": {str(k): _json_scalar(v) for k, v in self.info.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FTRunReport":
        """Rebuild a report from :meth:`to_dict` output (or parsed JSON)."""
        return cls(
            scheme=str(data["scheme"]),
            method=str(data["method"]),
            converged=bool(data["converged"]),
            total_iterations=int(data["total_iterations"]),
            baseline_iterations=int(data["baseline_iterations"]),
            num_failures=int(data["num_failures"]),
            num_checkpoints=int(data["num_checkpoints"]),
            num_restarts_from_scratch=int(data["num_restarts_from_scratch"]),
            total_seconds=float(data["total_seconds"]),
            productive_seconds=float(data["productive_seconds"]),
            checkpoint_seconds=float(data["checkpoint_seconds"]),
            recovery_seconds=float(data["recovery_seconds"]),
            checkpoint_interval_seconds=float(data["checkpoint_interval_seconds"]),
            mean_checkpoint_seconds=float(data["mean_checkpoint_seconds"]),
            mean_recovery_seconds=float(data["mean_recovery_seconds"]),
            mean_compression_ratio=float(data["mean_compression_ratio"]),
            residual_trace=[
                (int(it), float(res)) for it, res in data.get("residual_trace", [])
            ],
            info=dict(data.get("info", {})),
        )

    def to_json(self, **kwargs) -> str:
        """Serialize to a JSON string (``sort_keys`` for byte-determinism)."""
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "FTRunReport":
        """Rebuild a report from a :meth:`to_json` string."""
        return cls.from_dict(json.loads(payload))


class _FailureSignal(SolverInterrupt):
    """Internal interrupt raised by the runner's callback when a failure hits."""


class FaultTolerantRunner:
    """Execute one solver under one checkpointing scheme with injected failures.

    Parameters
    ----------
    solver:
        A configured :class:`~repro.solvers.base.IterativeSolver`.
    b:
        Right-hand side.
    scheme:
        The checkpointing scheme (traditional / lossless / lossy).
    cluster:
        Cluster time model (already set to the desired process count).
    scale:
        Paper-scale problem description used to convert measured compression
        ratios into modeled checkpoint bytes.
    mtti_seconds:
        Mean time to interruption for the injected failures; ``None`` disables
        failures.
    checkpoint_interval_seconds:
        Virtual seconds between checkpoints.  When None it is derived from
        Young's formula using ``estimated_checkpoint_seconds``.
    estimated_checkpoint_seconds:
        A priori estimate of one checkpoint's cost (as the paper does, from
        the fixed-frequency characterization runs of Section 5.3); required
        when ``checkpoint_interval_seconds`` is None.
    method:
        Name used for iteration-time calibration; defaults to ``solver.name``.
    baseline:
        Failure-free reference; computed on demand when omitted.
    max_restarts:
        Safety cap on the number of failure recoveries before giving up.
    """

    def __init__(
        self,
        solver: IterativeSolver,
        b: np.ndarray,
        scheme: CheckpointingScheme,
        *,
        cluster: Optional[ClusterModel] = None,
        scale: Optional[ExperimentScale] = None,
        mtti_seconds: Optional[float] = 3600.0,
        checkpoint_interval_seconds: Optional[float] = None,
        estimated_checkpoint_seconds: Optional[float] = None,
        iteration_seconds: Optional[float] = None,
        method: Optional[str] = None,
        baseline: Optional[BaselineRun] = None,
        x0: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        max_restarts: int = 1000,
        max_total_iterations: Optional[int] = None,
    ) -> None:
        self.solver = solver
        self.b = np.asarray(b, dtype=np.float64)
        self.scheme = scheme
        self.cluster = cluster or ClusterModel()
        self.scale = scale or ExperimentScale(
            num_processes=self.cluster.num_processes, grid_n=2160
        )
        self.mtti_seconds = mtti_seconds
        self.method = method or solver.name
        self.iteration_seconds = (
            check_positive(iteration_seconds, "iteration_seconds")
            if iteration_seconds is not None
            else self.cluster.iteration_time(self.method)
        )
        if checkpoint_interval_seconds is None:
            if estimated_checkpoint_seconds is None:
                raise ValueError(
                    "provide either checkpoint_interval_seconds or "
                    "estimated_checkpoint_seconds (to apply Young's formula)"
                )
            if mtti_seconds is None:
                raise ValueError(
                    "Young's formula needs a finite MTTI; pass "
                    "checkpoint_interval_seconds explicitly for failure-free runs"
                )
            checkpoint_interval_seconds = young_interval(
                estimated_checkpoint_seconds, mtti_seconds
            )
        self.checkpoint_interval_seconds = check_positive(
            checkpoint_interval_seconds, "checkpoint_interval_seconds"
        )
        self.x0 = (
            np.zeros(self.solver.n, dtype=np.float64)
            if x0 is None
            else np.asarray(x0, dtype=np.float64).copy()
        )
        self.seed = seed
        self.baseline = baseline
        self.max_restarts = int(max_restarts)
        self.max_total_iterations = max_total_iterations
        self.b_norm = float(np.linalg.norm(self.b))

    # ------------------------------------------------------------------
    def run(self) -> FTRunReport:
        """Execute the failure-injected run and return its report."""
        if self.baseline is None:
            self.baseline = run_failure_free(self.solver, self.b, x0=self.x0)

        clock = VirtualClock()
        injector = FailureInjector(self.mtti_seconds, seed=self.seed)
        vectors = self.scheme.dynamic_vector_count(self.method)

        # Mutable loop state shared with the callback via a dict closure.
        state: Dict[str, object] = {
            "next_ckpt_time": self.checkpoint_interval_seconds,
            "last_checkpoint": None,
            "last_ckpt_completion_time": 0.0,
            # Compute-category seconds of solver progress since the last
            # complete checkpoint — this (not wall-clock time) is what has to
            # be re-executed after a failure under an exact scheme.
            "compute_since_ckpt": 0.0,
            "num_checkpoints": 0,
            "num_failures_handled_inline": 0,
            "ratios": [],
            "ckpt_times": [],
            "recovery_times": [],
            "residual_trace": [],
            "interrupted_at": None,
        }

        def handle_failure_inline(failure_time: float, phase: str) -> None:
            """Exact-scheme failure: pure time cost (recovery + rollback).

            Traditional and lossless checkpoints restore the solver state
            bit-for-bit, so the numerical trajectory is unaffected — the
            failure only costs the recovery read plus re-execution of the work
            done since the last complete checkpoint.  The solve itself is not
            interrupted (its re-execution would reproduce the same iterates).
            """
            injector.consume(failure_time, phase)
            state["num_failures_handled_inline"] = (
                int(state["num_failures_handled_inline"]) + 1
            )
            last: Optional[_CheckpointState] = state["last_checkpoint"]  # type: ignore[assignment]
            recovery_seconds = self._recovery_seconds(last, vectors)
            self._advance_with_failures(clock, injector, recovery_seconds, "recovery")
            state["recovery_times"].append(recovery_seconds)
            rollback_seconds = float(state["compute_since_ckpt"])
            self._advance_with_failures(clock, injector, rollback_seconds, "rollback")
            state["next_ckpt_time"] = clock.now + self.checkpoint_interval_seconds

        def callback(it_state: IterationState) -> None:
            start = clock.now
            clock.advance(self.iteration_seconds, "compute")
            state["compute_since_ckpt"] = (
                float(state["compute_since_ckpt"]) + self.iteration_seconds
            )
            state["residual_trace"].append(
                (it_state.iteration, it_state.residual_norm)
            )
            failure_time = injector.failure_in(start, clock.now)
            if failure_time is not None:
                if self.scheme.lossy:
                    injector.consume(failure_time, "compute")
                    state["interrupted_at"] = it_state.iteration
                    raise _FailureSignal(it_state.iteration, "failure during compute")
                handle_failure_inline(failure_time, "compute")
            if clock.now >= state["next_ckpt_time"] and self._checkpoint_allowed(
                it_state, overdue_seconds=clock.now - float(state["next_ckpt_time"])
            ):
                self._take_checkpoint(
                    it_state, clock, injector, state, vectors, handle_failure_inline
                )

        x_current = self.x0.copy()
        warm_start: Optional[Tuple[np.ndarray, float]] = None
        iteration_offset = 0
        restarts_from_scratch = 0
        converged = False
        total_iterations = 0
        restarts = 0

        while True:
            interrupted = False
            try:
                result = self._solve_once(
                    x_current, warm_start, iteration_offset, callback
                )
            except _FailureSignal:
                interrupted = True
                result = None

            if not interrupted and result is not None:
                total_iterations = iteration_offset + result.iterations
                converged = result.converged
                break

            # ---- failure path: recover from the last complete checkpoint ----
            restarts += 1
            if restarts > self.max_restarts:
                break
            last: Optional[_CheckpointState] = state["last_checkpoint"]  # type: ignore[assignment]
            recovery_seconds = self._recovery_seconds(last, vectors)
            self._advance_with_failures(clock, injector, recovery_seconds, "recovery")
            state["recovery_times"].append(recovery_seconds)

            if last is None:
                # No checkpoint yet: restart from the initial guess.
                x_current = self.x0.copy()
                warm_start = None
                iteration_offset = 0
                restarts_from_scratch += 1
            else:
                compressor = self.scheme.compressor()
                x_current = np.asarray(
                    compressor.decompress(last.x_blob), dtype=np.float64
                )
                iteration_offset = last.iteration
                if (
                    self.scheme.checkpoint_krylov_state
                    and isinstance(self.solver, CGSolver)
                    and last.krylov_p is not None
                ):
                    warm_start = (last.krylov_p, float(last.krylov_rho))
                else:
                    warm_start = None
            if (
                self.max_total_iterations is not None
                and iteration_offset >= self.max_total_iterations
            ):
                break

        total_ckpt_seconds = clock.time_in("checkpoint")
        total_recovery_seconds = clock.time_in("recovery")
        productive_seconds = self.baseline.iterations * self.iteration_seconds
        ratios = state["ratios"] or [1.0]
        return FTRunReport(
            scheme=self.scheme.name,
            method=self.method,
            converged=converged,
            total_iterations=total_iterations,
            baseline_iterations=self.baseline.iterations,
            num_failures=injector.count,
            num_checkpoints=int(state["num_checkpoints"]),
            num_restarts_from_scratch=restarts_from_scratch,
            total_seconds=clock.now,
            productive_seconds=productive_seconds,
            checkpoint_seconds=total_ckpt_seconds,
            recovery_seconds=total_recovery_seconds,
            checkpoint_interval_seconds=self.checkpoint_interval_seconds,
            mean_checkpoint_seconds=float(np.mean(state["ckpt_times"]))
            if state["ckpt_times"]
            else 0.0,
            mean_recovery_seconds=float(np.mean(state["recovery_times"]))
            if state["recovery_times"]
            else 0.0,
            mean_compression_ratio=float(np.mean(ratios)),
            residual_trace=list(state["residual_trace"]),
            info={
                "iteration_seconds": self.iteration_seconds,
                "num_processes": self.cluster.num_processes,
                "mtti_seconds": self.mtti_seconds,
                "dynamic_vectors": vectors,
            },
        )

    # -- internals -----------------------------------------------------------
    def _checkpoint_allowed(
        self, it_state: IterationState, *, overdue_seconds: float = 0.0
    ) -> bool:
        """Whether a checkpoint may be taken at this iteration.

        Under the lossy scheme a recovery restarts the Krylov method from the
        checkpointed iterate, so the checkpoint is deferred to the method's
        natural restart boundary when the solver reports one (GMRES(k) cycle
        ends).  At paper scale the deferral is at most ``k`` iterations —
        negligible against the checkpoint interval — and it avoids throwing
        away a partially built Krylov cycle on every recovery.  If the
        deferral has already cost more than a quarter of the checkpoint
        interval (only possible on very small local problems, where a cycle is
        a large fraction of the whole run) the checkpoint is taken anyway.
        """
        if not self.scheme.lossy:
            return True
        if "cycle_end" in it_state.extras:
            if bool(it_state.extras["cycle_end"]) or bool(
                it_state.extras.get("converged", False)
            ):
                return True
            return overdue_seconds > 0.25 * self.checkpoint_interval_seconds
        return True

    def _solve_once(self, x_current, warm_start, iteration_offset, callback):
        remaining = None
        if self.max_total_iterations is not None:
            remaining = max(1, self.max_total_iterations - iteration_offset)
        if isinstance(self.solver, CGSolver):
            return self.solver.solve(
                self.b,
                x0=x_current,
                callback=callback,
                iteration_offset=iteration_offset,
                warm_start=warm_start,
                max_iter=remaining,
            )
        return self.solver.solve(
            self.b,
            x0=x_current,
            callback=callback,
            iteration_offset=iteration_offset,
            max_iter=remaining,
        )

    def _take_checkpoint(
        self,
        it_state: IterationState,
        clock: VirtualClock,
        injector: FailureInjector,
        state: Dict[str, object],
        vectors: int,
        handle_failure_inline,
    ) -> None:
        """Compress the current state and advance the clock by the modeled cost.

        A failure landing inside the checkpoint window discards the incomplete
        checkpoint (the previous complete one remains valid); under the lossy
        scheme it also interrupts the solve, matching the paper's methodology
        where failures may occur during the checkpoint/recovery period.
        """
        compressor = self.scheme.checkpoint_compressor(
            residual_norm=it_state.residual_norm, b_norm=self.b_norm
        )
        x_blob = compressor.compress(it_state.x)
        ratio = x_blob.compression_ratio

        model_uncompressed = self.scale.vector_bytes * vectors
        model_compressed = model_uncompressed / max(ratio, 1e-12)
        ckpt_seconds = self.cluster.checkpoint_seconds(
            model_uncompressed,
            model_compressed,
            compressed=self.scheme.uses_compression,
        )

        start = clock.now
        clock.advance(ckpt_seconds, "checkpoint")
        state["ckpt_times"].append(ckpt_seconds)
        failure_time = injector.failure_in(start, clock.now)
        if failure_time is not None:
            # Incomplete checkpoint: do not update last_checkpoint.
            if self.scheme.lossy:
                injector.consume(failure_time, "checkpoint")
                state["interrupted_at"] = it_state.iteration
                state["next_ckpt_time"] = clock.now + self.checkpoint_interval_seconds
                raise _FailureSignal(it_state.iteration, "failure during checkpoint")
            handle_failure_inline(failure_time, "checkpoint")
            return

        krylov_p = None
        krylov_rho = None
        if self.scheme.checkpoint_krylov_state and "p" in it_state.extras:
            krylov_p = np.asarray(it_state.extras["p"], dtype=np.float64)
            krylov_rho = float(it_state.extras.get("rho", 0.0))
        state["last_checkpoint"] = _CheckpointState(
            iteration=it_state.iteration,
            x_blob=x_blob,
            krylov_p=krylov_p,
            krylov_rho=krylov_rho,
            compression_ratio=ratio,
            model_uncompressed_bytes=model_uncompressed,
            model_compressed_bytes=model_compressed,
        )
        state["num_checkpoints"] = int(state["num_checkpoints"]) + 1
        state["ratios"].append(ratio)
        state["last_ckpt_completion_time"] = clock.now
        state["compute_since_ckpt"] = 0.0
        state["next_ckpt_time"] = clock.now + self.checkpoint_interval_seconds

    def _recovery_seconds(self, last: Optional[_CheckpointState], vectors: int) -> float:
        if last is None:
            # Nothing to read back: only the environment and static data are
            # rebuilt before restarting from the initial guess.
            return self.cluster.recovery_seconds(
                0.0, 0.0, static_bytes=self.scale.static_bytes, compressed=False
            )
        return self.cluster.recovery_seconds(
            last.model_uncompressed_bytes,
            last.model_compressed_bytes,
            static_bytes=self.scale.static_bytes,
            compressed=self.scheme.uses_compression,
        )

    def _advance_with_failures(
        self,
        clock: VirtualClock,
        injector: FailureInjector,
        seconds: float,
        category: str,
    ) -> None:
        """Advance the clock by ``seconds``, restarting the phase if a failure hits.

        A failure during recovery forces the recovery to start over (bounded
        by a small retry budget to keep pathological seeds terminating).
        """
        for _ in range(16):
            start = clock.now
            clock.advance(seconds, category)
            failure_time = injector.failure_in(start, clock.now)
            if failure_time is None:
                return
            injector.consume(failure_time, category)
        # After repeated failures just proceed; the run accounting still holds.
        return
