"""Fault-tolerant execution of iterative solvers — deprecated compat surface.

The implementation lives in :mod:`repro.engine`: the original
``FaultTolerantRunner`` dict-closure state machine was refactored into the
discrete-event :class:`~repro.engine.core.FaultToleranceEngine` (explicit
compute/checkpoint/failure/recovery/rollback events against a typed
:class:`~repro.engine.core.EngineState`, solver-agnostic via the
``CheckpointableState`` protocol, pluggable failure models, multilevel-aware
recovery costing via :class:`~repro.engine.scenario.Scenario`, and one
:class:`~repro.checkpoint.pipeline.CheckpointPipeline` write/restore path).

This module keeps the historical import name alive but **deprecated**:
accessing ``FaultTolerantRunner`` here emits a :class:`DeprecationWarning` —
import :class:`~repro.engine.FaultToleranceEngine` (or anything else from
:mod:`repro.engine`) instead.  The constructor parameters are identical and
reports under the modeled Poisson/PFS scenario stay byte-identical, as
pinned by the engine-equivalence test suite.
"""

from __future__ import annotations

import warnings

from repro.engine.report import BaselineRun, FTRunReport, run_failure_free

__all__ = ["FaultTolerantRunner", "FTRunReport", "run_failure_free", "BaselineRun"]


def __getattr__(name: str):
    """PEP 562 hook: the historical runner name resolves to the engine, loudly."""
    if name == "FaultTolerantRunner":
        from repro.engine.core import FaultToleranceEngine

        warnings.warn(
            "repro.core.runner.FaultTolerantRunner is deprecated; use "
            "repro.engine.FaultToleranceEngine (identical constructor and "
            "reports) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return FaultToleranceEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
