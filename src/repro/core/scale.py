"""Paper-scale problem descriptions used by the time model.

The reproduction executes solvers on reduced grids but *accounts* time as if
the run were one of the paper's weak-scaling configurations (Table 3:
256 processes / 1088^3 unknowns up to 2,048 processes / 2160^3 unknowns).
:class:`ExperimentScale` carries the paper-scale sizes needed by
:class:`~repro.cluster.machine.ClusterModel` — how many bytes one dynamic
vector occupies, how large the static data (matrix, preconditioner, right-hand
side) is, and how those bytes are spread over processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cluster.partition import block_partition

__all__ = ["ExperimentScale", "PAPER_WEAK_SCALING", "paper_scale"]

_DOUBLE = 8  # bytes per element

#: Grid edge length per process count in the paper's weak-scaling study
#: (Table 3, "Problem Size" column).
PAPER_WEAK_SCALING: Dict[int, int] = {
    256: 1088,
    512: 1368,
    768: 1568,
    1024: 1728,
    1280: 1856,
    1536: 1968,
    1792: 2064,
    2048: 2160,
}


@dataclass(frozen=True)
class ExperimentScale:
    """One weak-scaling configuration at paper scale.

    Attributes
    ----------
    num_processes:
        MPI processes of the modeled job.
    grid_n:
        Grid points per dimension; the global vector has ``grid_n ** 3``
        elements.
    static_multiplier:
        Static-variable footprint as a multiple of one dynamic vector.  The
        7-point CSR matrix stores ~7 nonzeros/row (12 bytes each) plus the
        right-hand side and a block-Jacobi/ILU preconditioner, ~12 vectors'
        worth of data in total.
    """

    num_processes: int
    grid_n: int
    static_multiplier: float = 12.0

    def __post_init__(self) -> None:
        if self.num_processes < 1:
            raise ValueError("num_processes must be >= 1")
        if self.grid_n < 1:
            raise ValueError("grid_n must be >= 1")
        if self.static_multiplier < 0:
            raise ValueError("static_multiplier must be >= 0")

    @property
    def global_elements(self) -> int:
        """Number of unknowns of the paper-scale problem (``grid_n ** 3``)."""
        return int(self.grid_n) ** 3

    @property
    def vector_bytes(self) -> float:
        """Bytes of one full dynamic vector at paper scale."""
        return float(self.global_elements * _DOUBLE)

    @property
    def static_bytes(self) -> float:
        """Bytes of the static variables at paper scale."""
        return self.static_multiplier * self.vector_bytes

    def per_process_vector_bytes(self) -> float:
        """Mean bytes of one dynamic vector owned by each process."""
        return self.vector_bytes / self.num_processes

    def per_process_elements(self) -> int:
        """Elements owned by rank 0 under the block partition (representative)."""
        return block_partition(self.global_elements, self.num_processes).counts[0]


def paper_scale(num_processes: int) -> ExperimentScale:
    """The :class:`ExperimentScale` matching one of the paper's process counts."""
    try:
        grid_n = PAPER_WEAK_SCALING[int(num_processes)]
    except KeyError:
        raise KeyError(
            f"no paper configuration for {num_processes} processes; "
            f"known: {sorted(PAPER_WEAK_SCALING)}"
        ) from None
    return ExperimentScale(num_processes=int(num_processes), grid_n=grid_n)
