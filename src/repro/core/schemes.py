"""Checkpointing schemes: traditional, lossless-compressed, lossy-compressed.

A scheme bundles everything the fault-tolerance runner needs to know about
*how* to checkpoint:

* which compressor to run the dynamic variables through (identity for
  traditional checkpointing, DEFLATE/LZMA for lossless, SZ-like/ZFP-like for
  lossy),
* whether the extra Krylov state of non-restarted CG (direction vector ``p``
  and scalar ``rho``) must be checkpointed as well — the paper checkpoints
  ``x`` *and* ``p`` under traditional/lossless checkpointing (Algorithm 1)
  but only ``x`` under lossy checkpointing (Algorithm 2, restarted CG),
* the error-bound policy
  (:class:`~repro.compression.errorbounds.ErrorBoundPolicy`): a fixed
  pointwise-relative bound (Jacobi and CG use ``1e-4``), a value-range
  relative bound, the residual-adaptive Theorem-3 policy (the paper's GMRES
  setting), or a per-variable composition of those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.compression.base import Compressor, make_compressor
from repro.compression.errorbounds import (
    ErrorBound,
    ErrorBoundPolicy,
    ResidualAdaptiveBoundPolicy,
    make_bound_policy,
)
from repro.solvers.base import IterativeSolver, checkpoint_spec_for

__all__ = ["CheckpointingScheme"]


@dataclass
class CheckpointingScheme:
    """Configuration of one checkpointing strategy.

    Instances are usually created through the :meth:`traditional`,
    :meth:`lossless` and :meth:`lossy` constructors, which encode the paper's
    three evaluated schemes.
    """

    name: str
    compressor_factory: Callable[[], Compressor]
    lossy: bool = False
    #: Checkpoint CG's direction vector and rho so the Krylov sequence can be
    #: resumed exactly (the paper's Algorithm 1).  Lossy schemes set this to
    #: False and restart from ``x`` only (Algorithm 2).
    checkpoint_krylov_state: bool = True
    #: Error-bound selection policy applied at every checkpoint; only
    #: meaningful for lossy schemes (exact schemes carry no bound).  ``None``
    #: keeps the compressor's configured bound untouched.
    bound_policy: Optional[ErrorBoundPolicy] = None
    #: Extra metadata carried into reports.
    description: str = ""
    _cached_compressor: Optional[Compressor] = field(
        default=None, repr=False, compare=False
    )
    #: Last (mode, value) bound resolved by :meth:`checkpoint_compressor` and
    #: the compressor built for it.  Adaptive policies re-resolve every
    #: checkpoint but the bound often repeats (steady residual, or the bench
    #: hammering one state), and building a fresh compressor per snapshot is
    #: measurable on the pipeline hot path.
    _cached_bound_compressor: Optional[tuple] = field(
        default=None, repr=False, compare=False
    )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def traditional(cls) -> "CheckpointingScheme":
        """No compression; checkpoint every dynamic variable exactly."""
        return cls(
            name="traditional",
            compressor_factory=lambda: make_compressor("none"),
            lossy=False,
            checkpoint_krylov_state=True,
            description="uncompressed checkpoints of all dynamic variables",
        )

    @classmethod
    def lossless(cls, *, codec: str = "zlib", level: int = 2) -> "CheckpointingScheme":
        """Lossless (Gzip-like) compression of all dynamic variables."""
        if codec == "zlib":
            factory = lambda: make_compressor("zlib", level=level)  # noqa: E731
        elif codec == "lzma":
            factory = lambda: make_compressor("lzma", preset=level)  # noqa: E731
        else:
            raise ValueError(f"unknown lossless codec {codec!r}")
        return cls(
            name="lossless",
            compressor_factory=factory,
            lossy=False,
            checkpoint_krylov_state=True,
            description=f"lossless ({codec}) compressed checkpoints",
        )

    @classmethod
    def lossy(
        cls,
        error_bound: "ErrorBound | float" = 1e-4,
        *,
        compressor: str = "sz",
        adaptive: bool = False,
        safety_factor: float = 1.0,
        bound_policy: "ErrorBoundPolicy | str | None" = None,
    ) -> "CheckpointingScheme":
        """Error-bounded lossy compression of the solution vector only.

        Parameters
        ----------
        error_bound:
            Fixed pointwise-relative bound (ignored at checkpoint time when
            an adaptive policy resolves a bound, but still used as the
            initial/default bound).
        compressor:
            ``"sz"`` (prediction-based, the paper's choice) or ``"zfp"``
            (transform-based ablation).
        adaptive:
            Shorthand for ``bound_policy="residual_adaptive"`` — the
            Theorem-3 policy ``eb = ||r||/||b||`` at every checkpoint (the
            paper's GMRES setting).
        bound_policy:
            Explicit :class:`~repro.compression.errorbounds.ErrorBoundPolicy`
            instance or registered policy name (``"fixed"``,
            ``"value_range"``, ``"residual_adaptive"``).  Defaults to the
            fixed policy at ``error_bound``.
        """
        if compressor not in ("sz", "zfp"):
            raise ValueError(f"lossy compressor must be 'sz' or 'zfp', got {compressor!r}")
        factory = lambda: make_compressor(compressor, error_bound=error_bound)  # noqa: E731
        if bound_policy is None:
            bound_policy = "residual_adaptive" if adaptive else "fixed"
        if isinstance(bound_policy, str):
            bound_policy = make_bound_policy(
                bound_policy, error_bound=error_bound, safety_factor=safety_factor
            )
        return cls(
            name="lossy",
            compressor_factory=factory,
            lossy=True,
            checkpoint_krylov_state=False,
            bound_policy=bound_policy,
            description=f"lossy ({compressor}) checkpoints, {bound_policy.describe()} bound",
        )

    # -- helpers -----------------------------------------------------------------
    @property
    def uses_compression(self) -> bool:
        """True when a (lossless or lossy) compression stage is modeled."""
        return self.name != "traditional"

    def compressor(self) -> Compressor:
        """The (cached) compressor instance for this scheme."""
        if self._cached_compressor is None:
            self._cached_compressor = self.compressor_factory()
        return self._cached_compressor

    @property
    def adaptive_policy(self) -> Optional[ResidualAdaptiveBoundPolicy]:
        """The residual-adaptive policy when one is configured (else ``None``).

        Backward-compatible view of :attr:`bound_policy` for call sites that
        only care whether the Theorem-3 adaptive bound is in effect.
        """
        if isinstance(self.bound_policy, ResidualAdaptiveBoundPolicy):
            return self.bound_policy
        return None

    def checkpoint_compressor(
        self,
        *,
        residual_norm: Optional[float] = None,
        b_norm: Optional[float] = None,
        variable: str = "x",
    ) -> Compressor:
        """Compressor to use for ``variable`` at the next checkpoint.

        Resolves the scheme's :attr:`bound_policy` against the current solver
        state (Theorem-3 adaptive bounds need the residual information); a
        policy that abstains — or a compressor without error bounds — leaves
        the base compressor untouched.
        """
        base = self.compressor()
        if self.bound_policy is None or not hasattr(base, "with_error_bound"):
            return base
        bound = self.bound_policy.resolve(
            variable=variable, residual_norm=residual_norm, b_norm=b_norm
        )
        if bound is None:
            return base
        key = (variable, bound.mode, bound.value)
        cached = self._cached_bound_compressor
        if cached is not None and cached[0] == key:
            return cached[1]
        compressor = base.with_error_bound(bound)
        self._cached_bound_compressor = (key, compressor)
        return compressor

    def stores_exactly(self, variable: str = "x") -> bool:
        """Whether this scheme stores ``variable`` bit-for-bit.

        Exact schemes (traditional/lossless) store everything exactly; the
        lossy scheme compresses only the iterate ``x`` under an error bound
        and keeps every other variable (Krylov recurrence state) exact.  The
        incremental checkpoint pipeline uses this to decide whether a delta
        can be taken on the raw value (exactly-stored variables) or must be
        taken on the compressed *reconstruction* (lossy ``x`` — the delta
        then reproduces the bound-respecting reconstruction bitwise, so the
        error bound holds with zero accumulation across a delta chain).
        """
        if not self.lossy:
            return True
        return variable != "x"

    def dynamic_vector_count(self, method: "Union[str, IterativeSolver]") -> int:
        """How many full-length dynamic vectors this scheme checkpoints.

        Derived from the solver's ``CheckpointableState`` declaration
        (:attr:`~repro.solvers.base.IterativeSolver.checkpoint_spec`) rather
        than a per-method special case: under exact schemes the count is
        ``x`` plus every extra vector the solver says an exact checkpoint
        must store (CG: ``p`` → 2; BiCGSTAB: ``r``/``r_hat``/``p``/``v`` → 5;
        GMRES and the stationary methods: just ``x`` → 1), so the modeled
        checkpoint sizes (Table 3) always match what is actually stored.
        The lossy restarted scheme checkpoints only ``x`` (Algorithm 2).

        Accepts either a solver instance or a registered method name;
        unregistered names fall back to a single vector.
        """
        if not self.checkpoint_krylov_state:
            return 1
        if isinstance(method, IterativeSolver):
            spec = method.checkpoint_spec
        else:
            spec = checkpoint_spec_for(str(method))
        if not spec.exact_resume:
            return 1
        return spec.vector_count
