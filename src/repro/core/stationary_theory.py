"""Theorem 2: extra-iteration bounds for stationary methods after a lossy restart.

For a stationary method ``x^(i) = G x^(i-1) + c`` with spectral radius ``R``
and convergence ``||x^(i) - x*|| ~ R^i ||x*||``, a lossy restart at iteration
``t`` with pointwise relative error bound ``eb`` needs at most

.. math::

    N'(t) = t - \\log_R(R^t + eb)

extra iterations to return to the pre-failure accuracy (proof of Theorem 2).
Because the failure iteration ``t`` is uniformly distributed over the run, the
paper reports the *expected* upper bound as the interval

.. math::

    [\\; (N+1)/2 - \\log_R(R^{(N+1)/2} + eb),\\; N - \\log_R(R^N + eb)\\;]

whose endpoints come from Jensen's inequality (the bound is convex in ``t``)
and from the worst case ``t = N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "extra_iterations_at",
    "expected_extra_iterations_interval",
    "expected_extra_iterations",
    "StationaryImpactModel",
]


def _check_radius(spectral_radius: float) -> float:
    spectral_radius = float(spectral_radius)
    if not (0.0 < spectral_radius < 1.0):
        raise ValueError(
            f"spectral radius must be in (0, 1) for a convergent method, got {spectral_radius}"
        )
    return spectral_radius


def extra_iterations_at(t: float, spectral_radius: float, eb: float) -> float:
    """Upper bound ``N'(t) = t - log_R(R^t + eb)`` for a restart at iteration ``t``."""
    spectral_radius = _check_radius(spectral_radius)
    eb = check_positive(eb, "eb")
    t = float(t)
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    log_r = np.log(spectral_radius)
    value = t - np.log(spectral_radius**t + eb) / log_r
    # Numerical guard: the bound is mathematically non-negative.
    return float(max(0.0, value))


def expected_extra_iterations_interval(
    total_iterations: int, spectral_radius: float, eb: float
) -> Tuple[float, float]:
    """The paper's interval for the expected upper bound of ``N'`` (Theorem 2).

    Returns ``(lower, upper)`` where the lower endpoint evaluates the bound at
    the mean failure iteration ``(N+1)/2`` (Jensen) and the upper endpoint at
    the final iteration ``N``.
    """
    total_iterations = int(total_iterations)
    if total_iterations < 1:
        raise ValueError(f"total_iterations must be >= 1, got {total_iterations}")
    midpoint = (total_iterations + 1) / 2.0
    lower = extra_iterations_at(midpoint, spectral_radius, eb)
    upper = extra_iterations_at(float(total_iterations), spectral_radius, eb)
    return (lower, upper)


def expected_extra_iterations(
    total_iterations: int, spectral_radius: float, eb: float, *, samples: int = 512
) -> float:
    """Expected value of the bound for ``t`` uniform over ``[1, N]`` (numerical).

    This refines the interval of :func:`expected_extra_iterations_interval`
    with a direct average; the result always lies inside that interval.
    """
    total_iterations = int(total_iterations)
    if total_iterations < 1:
        raise ValueError(f"total_iterations must be >= 1, got {total_iterations}")
    samples = max(2, int(samples))
    ts = np.linspace(1.0, float(total_iterations), samples)
    values = [extra_iterations_at(t, spectral_radius, eb) for t in ts]
    return float(np.mean(values))


@dataclass(frozen=True)
class StationaryImpactModel:
    """Convergence-impact model of one stationary method instance.

    Bundles the spectral radius and the failure-free iteration count so the
    experiment harness can query expected ``N'`` values for any error bound.
    """

    spectral_radius: float
    total_iterations: int

    def __post_init__(self) -> None:
        _check_radius(self.spectral_radius)
        if int(self.total_iterations) < 1:
            raise ValueError("total_iterations must be >= 1")

    def interval(self, eb: float) -> Tuple[float, float]:
        """Expected-upper-bound interval for error bound ``eb``."""
        return expected_extra_iterations_interval(
            self.total_iterations, self.spectral_radius, eb
        )

    def expected(self, eb: float) -> float:
        """Numerical expectation of the bound for error bound ``eb``."""
        return expected_extra_iterations(
            self.total_iterations, self.spectral_radius, eb
        )
