"""Empirical measurement of the extra iterations per lossy recovery (Fig. 2).

The paper measures, for the CG method, how many extra iterations one lossy
recovery costs on average: "For each experiment, we randomly select an
iteration to compress the approximate solution vector, decompress it to
continue the computations, and then count the number of extra iterations."
This module implements exactly that experiment for any solver/compressor
combination:

1. run the solver failure-free, recording the iterate at a set of candidate
   restart iterations;
2. for each sampled restart iteration ``t``: compress and decompress
   ``x^(t)``, restart the solver from the perturbed vector, and count how
   many iterations it needs to reach the original convergence criterion;
3. the extra iterations of that trial are ``(t + needed) - N`` where ``N`` is
   the failure-free iteration count.

The same harness powers the error-bound-sweep ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compression.base import Compressor
from repro.solvers.base import IterativeSolver
from repro.utils.rng import SeedLike, default_rng

__all__ = ["ExtraIterationTrial", "ExtraIterationStudy", "measure_extra_iterations"]


@dataclass
class ExtraIterationTrial:
    """One lossy-restart trial."""

    restart_iteration: int
    iterations_after_restart: int
    extra_iterations: int
    compression_ratio: float
    converged: bool


@dataclass
class ExtraIterationStudy:
    """Aggregated result of :func:`measure_extra_iterations`."""

    baseline_iterations: int
    trials: List[ExtraIterationTrial] = field(default_factory=list)

    @property
    def mean_extra_iterations(self) -> float:
        """Mean extra iterations per lossy recovery (the paper's N')."""
        if not self.trials:
            return 0.0
        return float(np.mean([t.extra_iterations for t in self.trials]))

    @property
    def mean_extra_fraction(self) -> float:
        """Mean extra iterations as a fraction of the failure-free count."""
        if self.baseline_iterations == 0:
            return 0.0
        return self.mean_extra_iterations / self.baseline_iterations

    @property
    def max_extra_iterations(self) -> int:
        """Worst-case extra iterations across the trials."""
        if not self.trials:
            return 0
        return int(max(t.extra_iterations for t in self.trials))

    def summary(self) -> Dict[str, float]:
        """Dictionary summary used by the experiment reports."""
        return {
            "baseline_iterations": float(self.baseline_iterations),
            "trials": float(len(self.trials)),
            "mean_extra_iterations": self.mean_extra_iterations,
            "mean_extra_fraction": self.mean_extra_fraction,
            "max_extra_iterations": float(self.max_extra_iterations),
        }


def measure_extra_iterations(
    solver: IterativeSolver,
    b: np.ndarray,
    compressor: Compressor,
    *,
    trials: int = 10,
    restart_iterations: Optional[Sequence[int]] = None,
    x0: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> ExtraIterationStudy:
    """Run the Fig. 2 experiment for one solver/compressor pair.

    Parameters
    ----------
    solver, b:
        The configured solver and right-hand side.
    compressor:
        The (lossy) compressor applied to the iterate at the restart point.
    trials:
        Number of random restart iterations to sample (ignored when
        ``restart_iterations`` is given explicitly).
    restart_iterations:
        Explicit restart points; values outside ``[1, N-1]`` are clipped.
    seed:
        RNG seed for the random restart-iteration choice.
    """
    b = np.asarray(b, dtype=np.float64)
    rng = default_rng(seed)

    baseline = solver.solve(b, x0=x0)
    n_baseline = baseline.iterations
    if n_baseline < 2:
        raise ValueError(
            "the failure-free run converged in fewer than 2 iterations; "
            "the extra-iteration experiment is not meaningful"
        )

    if restart_iterations is None:
        count = max(1, int(trials))
        restart_iterations = sorted(
            int(v) for v in rng.integers(1, n_baseline, size=count)
        )
    targets = sorted({int(np.clip(t, 1, n_baseline - 1)) for t in restart_iterations})

    # Single instrumented failure-free run capturing x at the target iterations.
    snapshots: Dict[int, np.ndarray] = {}

    def capture(state) -> None:
        if state.iteration in wanted:
            snapshots[state.iteration] = state.x

    wanted = set(targets)
    solver.solve(b, x0=x0, callback=capture)

    study = ExtraIterationStudy(baseline_iterations=n_baseline)
    for t in targets:
        if t not in snapshots:
            continue
        blob = compressor.compress(snapshots[t])
        x_restart = np.asarray(compressor.decompress(blob), dtype=np.float64)
        resumed = solver.solve(b, x0=x_restart)
        extra = (t + resumed.iterations) - n_baseline
        study.trials.append(
            ExtraIterationTrial(
                restart_iteration=t,
                iterations_after_restart=resumed.iterations,
                extra_iterations=int(extra),
                compression_ratio=blob.compression_ratio,
                converged=resumed.converged,
            )
        )
    return study
