"""Synthetic symmetric-indefinite KKT (saddle-point) systems.

The paper's Fig. 3 solves the SuiteSparse matrix **KKT240** (about 28 million
equations, generated from a 3D PDE-constrained optimisation problem) with
GMRES and a Jacobi preconditioner.  That matrix is too large to ship or to
factor here, so this module builds a *synthetic* KKT system with the same
structural properties:

.. math::

    K = \\begin{pmatrix} H & B^T \\\\ B & -C \\end{pmatrix}

where ``H`` is an SPD discrete-Laplacian-plus-mass block (the Hessian of the
objective on the state/control variables), ``B`` is a discretised constraint
Jacobian, and ``C`` is a small positive-semidefinite regularisation block.
Such matrices are symmetric indefinite — exactly the property that rules out
CG and makes preconditioned GMRES the paper's solver of choice for Fig. 3.

See DESIGN.md ("What the authors used vs. what we build") for the
substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.sparse.poisson import poisson_2d, poisson_3d
from repro.utils.rng import default_rng

__all__ = ["kkt_system", "KKTProblem"]


@dataclass
class KKTProblem:
    """A synthetic saddle-point (KKT) test problem.

    Attributes
    ----------
    K:
        The symmetric indefinite system matrix.
    b:
        Right-hand side.
    n_primal:
        Number of primal (state/control) unknowns.
    n_dual:
        Number of dual (constraint multiplier) unknowns.
    """

    K: sp.csr_matrix
    b: np.ndarray
    n_primal: int
    n_dual: int

    @property
    def size(self) -> int:
        """Total number of unknowns."""
        return self.K.shape[0]

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return self.K.nnz


def kkt_system(
    n: int,
    *,
    dims: int = 3,
    regularization: float = 1e-2,
    constraint_fraction: float = 0.5,
    seed: Optional[int] = None,
) -> KKTProblem:
    """Build a synthetic symmetric-indefinite KKT system.

    Parameters
    ----------
    n:
        Grid points per dimension for the primal block (primal size ``n**dims``).
    dims:
        2 or 3; the constraint operator couples neighbouring grid unknowns.
    regularization:
        Magnitude of the ``-C`` block (must be non-negative); small values make
        the system harder (closer to a pure saddle point).
    constraint_fraction:
        Ratio of dual to primal unknowns in (0, 1].
    seed:
        Seed for the random constraint weights and right-hand side.
    """
    n = int(n)
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if dims not in (2, 3):
        raise ValueError(f"dims must be 2 or 3, got {dims}")
    if regularization < 0:
        raise ValueError("regularization must be non-negative")
    if not (0.0 < constraint_fraction <= 1.0):
        raise ValueError("constraint_fraction must be in (0, 1]")
    rng = default_rng(seed)

    # Primal Hessian block: Laplacian + mass term, SPD.
    lap = poisson_3d(n) if dims == 3 else poisson_2d(n)
    n_primal = lap.shape[0]
    H = (lap + sp.identity(n_primal, format="csr")).tocsr()

    # Constraint Jacobian: each dual unknown couples a few neighbouring primal
    # unknowns with O(1) weights, mimicking a discretised PDE constraint.
    n_dual = max(1, int(round(constraint_fraction * n_primal)))
    rows, cols, vals = [], [], []
    stride = max(1, n_primal // n_dual)
    for i in range(n_dual):
        base = (i * stride) % n_primal
        for offset, weight in ((0, 2.0), (1, -1.0), (n, -1.0)):
            j = (base + offset) % n_primal
            rows.append(i)
            cols.append(j)
            vals.append(weight * (1.0 + 0.1 * rng.standard_normal()))
    B = sp.csr_matrix((vals, (rows, cols)), shape=(n_dual, n_primal))

    C = regularization * sp.identity(n_dual, format="csr")
    K = sp.bmat([[H, B.T], [B, -C]], format="csr")
    # Symmetrise exactly (bmat preserves symmetry analytically; this guards
    # against floating-point asymmetry from the random weights path).
    K = ((K + K.T) * 0.5).tocsr()

    b = rng.standard_normal(K.shape[0])
    b /= np.linalg.norm(b)
    return KKTProblem(K=K, b=b, n_primal=n_primal, n_dual=n_dual)
