"""Sparse linear-system generators and analysis tools.

This subpackage is the "problem substrate" of the reproduction: it builds the
3D Poisson system of the paper's Eq. (15), synthetic symmetric-indefinite KKT
systems standing in for SuiteSparse KKT240, and a handful of auxiliary
generators (SPD, diagonally dominant, tridiagonal) used by tests and
ablations.  It also provides the spectral analysis (iteration matrix, spectral
radius) needed by Theorem 2's extra-iteration bound for stationary methods.
"""

from repro.sparse.poisson import (
    poisson_1d,
    poisson_2d,
    poisson_3d,
    poisson_system,
    PoissonProblem,
)
from repro.sparse.kkt import kkt_system, KKTProblem
from repro.sparse.matrices import (
    random_spd,
    diagonally_dominant,
    tridiagonal,
    random_sparse_system,
)
from repro.sparse.analysis import (
    jacobi_iteration_matrix,
    gauss_seidel_iteration_matrix,
    sor_iteration_matrix,
    spectral_radius,
    estimate_spectral_radius_power,
    is_symmetric,
    is_diagonally_dominant,
)
from repro.sparse.io import save_csr, load_csr

__all__ = [
    "poisson_1d",
    "poisson_2d",
    "poisson_3d",
    "poisson_system",
    "PoissonProblem",
    "kkt_system",
    "KKTProblem",
    "random_spd",
    "diagonally_dominant",
    "tridiagonal",
    "random_sparse_system",
    "jacobi_iteration_matrix",
    "gauss_seidel_iteration_matrix",
    "sor_iteration_matrix",
    "spectral_radius",
    "estimate_spectral_radius_power",
    "is_symmetric",
    "is_diagonally_dominant",
    "save_csr",
    "load_csr",
]
