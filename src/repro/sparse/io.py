"""Minimal sparse-matrix persistence (NumPy ``.npz`` based).

The checkpoint subsystem stores *vectors*; matrices are static variables that
only ever need to be written once (at solver start) and re-read at recovery.
This module gives that path a compact, dependency-free on-disk format.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np
import scipy.sparse as sp

__all__ = ["save_csr", "load_csr"]

PathLike = Union[str, "os.PathLike[str]"]


def save_csr(path: PathLike, A: sp.spmatrix) -> int:
    """Write ``A`` (converted to CSR) to ``path`` and return the bytes written."""
    A = sp.csr_matrix(A)
    path = os.fspath(path)
    np.savez_compressed(
        path,
        data=A.data,
        indices=A.indices,
        indptr=A.indptr,
        shape=np.asarray(A.shape, dtype=np.int64),
    )
    # np.savez_compressed appends .npz if missing.
    actual = path if path.endswith(".npz") else path + ".npz"
    return os.path.getsize(actual)


def load_csr(path: PathLike) -> sp.csr_matrix:
    """Read a CSR matrix previously written with :func:`save_csr`."""
    path = os.fspath(path)
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    with np.load(path) as payload:
        shape = tuple(int(s) for s in payload["shape"])
        return sp.csr_matrix(
            (payload["data"], payload["indices"], payload["indptr"]), shape=shape
        )
