"""3D/2D/1D Poisson operators — the paper's Eq. (15) test problem.

The evaluation section of the paper solves the sparse linear system arising
from discretising a 3D Poisson equation on an ``n x n x n`` grid with the
7-point stencil written out in Eq. (15): block-tridiagonal ``A`` whose
innermost blocks ``T`` have ``-6`` on the diagonal and ``+1`` on the first
off-diagonals, with identity coupling blocks between planes/rows.

Two sign conventions are supported:

* ``sign="paper"`` builds the matrix exactly as printed in Eq. (15)
  (diagonal ``-6``), which is symmetric *negative* definite;
* ``sign="spd"`` (default) builds its negation (diagonal ``+6``), which is
  symmetric positive definite and therefore directly usable by CG.  The two
  describe the same linear system up to negating the right-hand side.

:func:`poisson_system` additionally manufactures a smooth exact solution and
the matching right-hand side.  A smooth solution field is important for the
reproduction: the paper's large compression ratios (Table 3) come from the
fact that converged/near-converged solution vectors of PDE problems are
smooth and therefore highly compressible by prediction-based lossy
compressors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import default_rng

__all__ = [
    "poisson_1d",
    "poisson_2d",
    "poisson_3d",
    "poisson_system",
    "PoissonProblem",
]


def _check_n(n: int) -> int:
    n = int(n)
    if n < 1:
        raise ValueError(f"grid dimension n must be >= 1, got {n}")
    return n


def _sign_factor(sign: str) -> float:
    if sign == "spd":
        return 1.0
    if sign == "paper":
        return -1.0
    raise ValueError(f"sign must be 'spd' or 'paper', got {sign!r}")


def poisson_1d(n: int, *, sign: str = "spd", dtype=np.float64) -> sp.csr_matrix:
    """Return the 1-D Poisson (second-difference) matrix of order ``n``.

    With ``sign="spd"`` the matrix is ``tridiag(-1, 2, -1)``; with
    ``sign="paper"`` it is ``tridiag(1, -2, 1)``.
    """
    n = _check_n(n)
    s = _sign_factor(sign)
    main = np.full(n, 2.0 * s, dtype=dtype)
    off = np.full(n - 1, -1.0 * s, dtype=dtype)
    return sp.diags([off, main, off], offsets=[-1, 0, 1], format="csr", dtype=dtype)


def _laplacian_nd(shape: Tuple[int, ...], sign: str, dtype) -> sp.csr_matrix:
    """Kronecker-sum construction of the d-dimensional 7/5/3-point Laplacian."""
    s = _sign_factor(sign)
    dims = [int(m) for m in shape]
    for m in dims:
        if m < 1:
            raise ValueError(f"all grid dimensions must be >= 1, got {shape}")
    # Build with the SPD convention then apply the sign at the end so the
    # Kronecker sum stays simple.
    operator: Optional[sp.spmatrix] = None
    for axis, m in enumerate(dims):
        one_d = poisson_1d(m, sign="spd", dtype=dtype)
        eye_before = sp.identity(int(np.prod(dims[:axis], dtype=np.int64)) or 1,
                                 format="csr", dtype=dtype)
        eye_after = sp.identity(int(np.prod(dims[axis + 1:], dtype=np.int64)) or 1,
                                format="csr", dtype=dtype)
        term = sp.kron(sp.kron(eye_before, one_d), eye_after, format="csr")
        operator = term if operator is None else operator + term
    assert operator is not None
    return (s * operator).tocsr()


def poisson_2d(n: int, *, sign: str = "spd", dtype=np.float64) -> sp.csr_matrix:
    """Return the 5-point 2-D Poisson matrix on an ``n x n`` grid."""
    n = _check_n(n)
    return _laplacian_nd((n, n), sign, dtype)


def poisson_3d(n: int, *, sign: str = "spd", dtype=np.float64) -> sp.csr_matrix:
    """Return the 7-point 3-D Poisson matrix on an ``n x n x n`` grid.

    This is the paper's Eq. (15) operator (up to the documented sign
    convention): diagonal magnitude 6, six neighbour couplings of magnitude 1.
    """
    n = _check_n(n)
    return _laplacian_nd((n, n, n), sign, dtype)


def _smooth_field(shape: Tuple[int, ...], kind: str, rng) -> np.ndarray:
    """Sample a smooth scalar field on the unit-cube grid of ``shape``."""
    axes = [np.linspace(0.0, 1.0, m + 2)[1:-1] for m in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    if kind == "sine":
        field = np.ones(shape, dtype=np.float64)
        for g in grids:
            field = field * np.sin(np.pi * g)
    elif kind == "gaussian":
        field = np.zeros(shape, dtype=np.float64)
        centers = [(0.35, 0.45, 0.55), (0.7, 0.6, 0.3)]
        widths = [0.12, 0.2]
        for center, width in zip(centers, widths):
            r2 = np.zeros(shape, dtype=np.float64)
            for g, c in zip(grids, center[: len(grids)]):
                r2 = r2 + (g - c) ** 2
            field = field + np.exp(-r2 / (2.0 * width**2))
    elif kind == "random":
        field = rng.standard_normal(shape)
    else:
        raise ValueError(f"unknown field kind {kind!r}")
    return field.reshape(-1)


@dataclass
class PoissonProblem:
    """A fully assembled Poisson test problem.

    Attributes
    ----------
    A:
        The SPD system matrix (CSR).
    b:
        Right-hand side manufactured as ``A @ x_true``.
    x_true:
        The manufactured exact solution (smooth field on the grid).
    n:
        Grid points per dimension.
    dims:
        Spatial dimensionality (1, 2 or 3).
    """

    A: sp.csr_matrix
    b: np.ndarray
    x_true: np.ndarray
    n: int
    dims: int

    @property
    def size(self) -> int:
        """Number of unknowns (``n ** dims``)."""
        return self.A.shape[0]

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros of the system matrix."""
        return self.A.nnz


def poisson_system(
    n: int,
    *,
    dims: int = 3,
    field: str = "gaussian",
    seed: Optional[int] = None,
    dtype=np.float64,
) -> PoissonProblem:
    """Assemble the SPD Poisson system with a manufactured smooth solution.

    Parameters
    ----------
    n:
        Grid points per dimension.
    dims:
        1, 2 or 3 spatial dimensions (the paper uses 3; lower dimensions are
        convenient for fast unit tests).
    field:
        Shape of the manufactured solution: ``"gaussian"`` (default, two
        smooth blobs exciting many modes), ``"sine"`` (a single Laplacian
        eigenvector — degenerate for Krylov methods, kept for tests) or
        ``"random"`` (rough field, used to stress compressors).
    seed:
        Seed for the ``"random"`` field.
    """
    n = _check_n(n)
    if dims not in (1, 2, 3):
        raise ValueError(f"dims must be 1, 2 or 3, got {dims}")
    rng = default_rng(seed)
    shape = tuple([n] * dims)
    if dims == 1:
        A = poisson_1d(n, dtype=dtype)
    elif dims == 2:
        A = poisson_2d(n, dtype=dtype)
    else:
        A = poisson_3d(n, dtype=dtype)
    x_true = _smooth_field(shape, field, rng).astype(dtype, copy=False)
    b = A @ x_true
    return PoissonProblem(A=A, b=b, x_true=x_true, n=n, dims=dims)
