"""Auxiliary sparse-matrix generators used by tests and ablation studies.

These complement :mod:`repro.sparse.poisson` with matrices whose properties
are easy to control (condition number, diagonal dominance, bandwidth), so that
solver and compressor behaviour can be probed away from the single Poisson
family the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import default_rng

__all__ = [
    "random_spd",
    "diagonally_dominant",
    "tridiagonal",
    "random_sparse_system",
    "SparseSystem",
]


def tridiagonal(
    n: int, diag: float = 2.0, off: float = -1.0, *, dtype=np.float64
) -> sp.csr_matrix:
    """Return the ``n x n`` tridiagonal matrix ``tridiag(off, diag, off)``."""
    n = int(n)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    main = np.full(n, diag, dtype=dtype)
    side = np.full(n - 1, off, dtype=dtype)
    return sp.diags([side, main, side], offsets=[-1, 0, 1], format="csr", dtype=dtype)


def random_spd(
    n: int,
    *,
    density: float = 0.01,
    condition: float = 100.0,
    seed: Optional[int] = None,
) -> sp.csr_matrix:
    """Return a random sparse SPD matrix with roughly the given condition number.

    Built as ``Q D Q^T`` restricted to a sparse pattern via a shifted
    ``A^T A + alpha I`` construction: a random sparse rectangular factor ``R``
    gives ``A = R^T R`` (positive semidefinite), then a diagonal shift sets the
    smallest eigenvalue so that ``cond(A) ~ condition``.
    """
    n = int(n)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not (0.0 < density <= 1.0):
        raise ValueError(f"density must be in (0, 1], got {density}")
    if condition < 1.0:
        raise ValueError(f"condition must be >= 1, got {condition}")
    rng = default_rng(seed)
    R = sp.random(n, n, density=density, random_state=rng, format="csr")
    A = (R.T @ R).tocsr()
    # Largest eigenvalue estimate via a few power iterations.
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    lam_max = 1.0
    for _ in range(20):
        w = A @ v
        norm = np.linalg.norm(w)
        if norm == 0:
            break
        lam_max = norm
        v = w / norm
    shift = lam_max / (condition - 1.0) if condition > 1.0 else lam_max
    return (A + shift * sp.identity(n, format="csr")).tocsr()


def diagonally_dominant(
    n: int,
    *,
    density: float = 0.01,
    dominance: float = 1.5,
    symmetric: bool = True,
    seed: Optional[int] = None,
) -> sp.csr_matrix:
    """Return a strictly diagonally dominant sparse matrix.

    ``dominance`` > 1 scales the diagonal to ``dominance * sum(|off-diag|)``
    row-wise, which guarantees convergence of the Jacobi and Gauss-Seidel
    iterations — useful for stationary-method tests that must converge.
    """
    n = int(n)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if dominance <= 1.0:
        raise ValueError(f"dominance must be > 1, got {dominance}")
    rng = default_rng(seed)
    A = sp.random(n, n, density=density, random_state=rng, format="csr")
    if symmetric:
        A = ((A + A.T) * 0.5).tocsr()
    A.setdiag(0.0)
    A.eliminate_zeros()
    row_sums = np.abs(A).sum(axis=1).A.ravel() if hasattr(np.abs(A).sum(axis=1), "A") \
        else np.asarray(np.abs(A).sum(axis=1)).ravel()
    diag = dominance * np.maximum(row_sums, 1.0)
    return (A + sp.diags(diag, format="csr")).tocsr()


@dataclass
class SparseSystem:
    """A generic sparse linear system bundle ``A x = b`` with known solution."""

    A: sp.csr_matrix
    b: np.ndarray
    x_true: np.ndarray

    @property
    def size(self) -> int:
        """Number of unknowns."""
        return self.A.shape[0]


def random_sparse_system(
    n: int,
    *,
    kind: str = "spd",
    density: float = 0.01,
    seed: Optional[int] = None,
) -> SparseSystem:
    """Build a random sparse system with a known smooth-ish solution.

    ``kind`` selects the generator: ``"spd"`` (CG-friendly), ``"dominant"``
    (stationary-method friendly).
    """
    rng = default_rng(seed)
    if kind == "spd":
        A = random_spd(n, density=density, seed=rng)
    elif kind == "dominant":
        A = diagonally_dominant(n, density=density, seed=rng)
    else:
        raise ValueError(f"unknown kind {kind!r}")
    t = np.linspace(0.0, 1.0, n)
    x_true = np.sin(2 * np.pi * t) + 0.25 * np.cos(6 * np.pi * t)
    b = A @ x_true
    return SparseSystem(A=A, b=b, x_true=x_true)
