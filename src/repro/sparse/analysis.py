"""Spectral analysis of iteration matrices for stationary methods.

Theorem 2 of the paper bounds the extra iterations of a stationary method
after a lossy restart in terms of the spectral radius ``R`` of its iteration
matrix ``G`` (``x_{i+1} = G x_i + c``).  This module builds ``G`` for Jacobi,
Gauss-Seidel and SOR splittings and estimates ``R`` either exactly (dense
eigenvalues, small matrices) or via power iteration / the empirical
convergence-rate estimate the paper itself uses ("We estimate the spectral
radius R based on the final relative norm error and the number of convergence
iterations").
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils.validation import check_square_matrix

__all__ = [
    "jacobi_iteration_matrix",
    "gauss_seidel_iteration_matrix",
    "sor_iteration_matrix",
    "spectral_radius",
    "estimate_spectral_radius_power",
    "spectral_radius_from_convergence",
    "is_symmetric",
    "is_diagonally_dominant",
]


def _split(A: sp.csr_matrix):
    """Return (D, L, U) with A = D - L - U (L/U strictly lower/upper, negated)."""
    A = A.tocsr()
    D = sp.diags(A.diagonal(), format="csr")
    L = (-sp.tril(A, k=-1)).tocsr()
    U = (-sp.triu(A, k=1)).tocsr()
    return D, L, U


def jacobi_iteration_matrix(A) -> sp.csr_matrix:
    """Return the Jacobi iteration matrix ``G = D^{-1}(L + U)``."""
    A = check_square_matrix(A)
    diag = A.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("Jacobi splitting requires a nonzero diagonal")
    D_inv = sp.diags(1.0 / diag, format="csr")
    _, L, U = _split(A)
    return (D_inv @ (L + U)).tocsr()


def gauss_seidel_iteration_matrix(A) -> np.ndarray:
    """Return the (dense) Gauss-Seidel iteration matrix ``(D - L)^{-1} U``.

    Computed densely, so intended only for modest problem sizes (analysis and
    tests), not for production solves.
    """
    A = check_square_matrix(A)
    D, L, U = _split(A)
    lower = (D - L).toarray()
    return np.linalg.solve(lower, U.toarray())


def sor_iteration_matrix(A, omega: float) -> np.ndarray:
    """Return the dense SOR iteration matrix for relaxation factor ``omega``."""
    A = check_square_matrix(A)
    if not (0.0 < omega < 2.0):
        raise ValueError(f"omega must be in (0, 2), got {omega}")
    D, L, U = _split(A)
    lhs = (D - omega * L).toarray()
    rhs = ((1.0 - omega) * D + omega * U).toarray()
    return np.linalg.solve(lhs, rhs)


def spectral_radius(G) -> float:
    """Exact spectral radius of a (small) matrix via dense eigenvalues."""
    if sp.issparse(G):
        G = G.toarray()
    G = np.asarray(G, dtype=np.float64)
    if G.ndim != 2 or G.shape[0] != G.shape[1]:
        raise ValueError(f"G must be square, got shape {G.shape}")
    return float(np.max(np.abs(np.linalg.eigvals(G))))


def estimate_spectral_radius_power(
    G, *, iterations: int = 200, seed: Optional[int] = None, tol: float = 1e-10
) -> float:
    """Estimate the spectral radius of ``G`` with power iteration.

    Works for sparse matrices of any size; converges to the dominant
    eigenvalue magnitude (which equals the spectral radius for the
    diagonalizable iteration matrices arising from standard splittings).
    """
    if not sp.issparse(G):
        G = sp.csr_matrix(np.asarray(G, dtype=np.float64))
    n = G.shape[0]
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    estimate = 0.0
    for _ in range(int(iterations)):
        w = G @ v
        norm = np.linalg.norm(w)
        if norm < tol:
            return 0.0
        new_estimate = norm
        v = w / norm
        if abs(new_estimate - estimate) <= tol * max(1.0, new_estimate):
            return float(new_estimate)
        estimate = new_estimate
    return float(estimate)


def spectral_radius_from_convergence(
    initial_error: float, final_error: float, iterations: int
) -> float:
    """Estimate R from observed error reduction over ``iterations`` steps.

    This is the estimator the paper uses for the Jacobi analysis in Section 5
    (``||x_i - x*|| ~ R^i ||x_0 - x*||``), i.e.
    ``R = (final/initial)^(1/iterations)``.
    """
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    if initial_error <= 0 or final_error <= 0:
        raise ValueError("errors must be positive")
    if final_error > initial_error:
        return 1.0
    return float((final_error / initial_error) ** (1.0 / iterations))


def is_symmetric(A, *, tol: float = 1e-12) -> bool:
    """Return True if ``A`` is numerically symmetric within ``tol``."""
    A = check_square_matrix(A)
    diff = (A - A.T).tocoo()
    if diff.nnz == 0:
        return True
    scale = max(1.0, float(np.max(np.abs(A.data))) if A.nnz else 1.0)
    return float(np.max(np.abs(diff.data))) <= tol * scale


def is_diagonally_dominant(A, *, strict: bool = False) -> bool:
    """Return True if ``A`` is (strictly) row diagonally dominant."""
    A = check_square_matrix(A)
    diag = np.abs(A.diagonal())
    abs_A = abs(A)
    row_sums = np.asarray(abs_A.sum(axis=1)).ravel() - diag
    if strict:
        return bool(np.all(diag > row_sums))
    return bool(np.all(diag >= row_sums))


def condition_number_estimate(A, *, which: str = "spd") -> float:
    """Rough condition-number estimate for an SPD sparse matrix.

    Uses a handful of Lanczos (``eigsh``) iterations for the extreme
    eigenvalues; intended for reporting, not for tight numerical analysis.
    """
    A = check_square_matrix(A)
    if which != "spd":
        raise ValueError("only SPD condition estimation is supported")
    n = A.shape[0]
    if n < 3:
        dense = A.toarray()
        eigs = np.linalg.eigvalsh(dense)
        return float(eigs[-1] / max(eigs[0], np.finfo(float).tiny))
    lam_max = float(spla.eigsh(A, k=1, which="LA", return_eigenvectors=False,
                               maxiter=5000)[0])
    lam_min = float(spla.eigsh(A, k=1, which="SA", return_eigenvectors=False,
                               maxiter=5000)[0])
    return lam_max / max(lam_min, np.finfo(float).tiny)
