"""Variable classification and registration (the paper's ``Protect()``).

Section 3 of the paper classifies solver variables into three roles:

* **static** — stored once before the iterations start (matrix ``A``,
  preconditioner ``M``, right-hand side ``b``);
* **dynamic** — change every iteration and must be checkpointed periodically
  (iteration counter, ``x``, and for non-restarted CG also ``p`` and ``rho``);
* **recomputed** — cheaper to recompute after a failure than to checkpoint
  (the residual ``r = b - A x``).

The :class:`VariableRegistry` captures this classification together with
getter/setter callables so the checkpoint manager can snapshot and restore
live solver state without the solver knowing about checkpointing at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

__all__ = ["VariableRole", "ProtectedVariable", "VariableRegistry"]


class VariableRole(str, enum.Enum):
    """The paper's three-way variable classification."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    RECOMPUTED = "recomputed"


@dataclass
class ProtectedVariable:
    """One registered variable.

    Attributes
    ----------
    name:
        Unique identifier within the registry.
    role:
        Static / dynamic / recomputed classification.
    getter:
        Callable returning the current value (array or scalar).
    setter:
        Callable accepting a restored value; optional for static variables
        that are reconstructed rather than restored.
    compressible:
        Whether the value may be run through a lossy compressor (only float
        arrays; iteration counters and scalars are always stored exactly).
    """

    name: str
    role: VariableRole
    getter: Callable[[], object]
    setter: Optional[Callable[[object], None]] = None
    compressible: bool = True

    def current_value(self) -> object:
        """Read the live value through the getter."""
        return self.getter()

    def restore(self, value: object) -> None:
        """Write ``value`` back through the setter."""
        if self.setter is None:
            raise ValueError(f"variable {self.name!r} has no setter registered")
        self.setter(value)


@dataclass
class VariableRegistry:
    """Collection of protected variables, indexed by name."""

    variables: Dict[str, ProtectedVariable] = field(default_factory=dict)

    def protect(
        self,
        name: str,
        role: VariableRole,
        getter: Callable[[], object],
        setter: Optional[Callable[[object], None]] = None,
        *,
        compressible: bool = True,
    ) -> ProtectedVariable:
        """Register a variable (the paper's ``Protect()`` API)."""
        if not name:
            raise ValueError("variable name must be non-empty")
        if name in self.variables:
            raise ValueError(f"variable {name!r} is already protected")
        var = ProtectedVariable(
            name=name,
            role=VariableRole(role),
            getter=getter,
            setter=setter,
            compressible=compressible,
        )
        self.variables[name] = var
        return var

    def protect_value(
        self, name: str, role: VariableRole, holder: Dict[str, object], *, compressible: bool = True
    ) -> ProtectedVariable:
        """Protect a dict-slot variable — convenience for simple state holders."""
        return self.protect(
            name,
            role,
            getter=lambda holder=holder, name=name: holder[name],
            setter=lambda value, holder=holder, name=name: holder.__setitem__(name, value),
            compressible=compressible,
        )

    def unprotect(self, name: str) -> None:
        """Remove a variable from the registry."""
        self.variables.pop(name, None)

    def by_role(self, role: VariableRole) -> List[ProtectedVariable]:
        """All variables with the given role, in registration order."""
        role = VariableRole(role)
        return [v for v in self.variables.values() if v.role is role]

    def names(self, roles: Optional[Iterable[VariableRole]] = None) -> List[str]:
        """Names of the registered variables, optionally filtered by role."""
        if roles is None:
            return list(self.variables)
        roles = {VariableRole(r) for r in roles}
        return [name for name, v in self.variables.items() if v.role in roles]

    def __contains__(self, name: str) -> bool:
        return name in self.variables

    def __len__(self) -> int:
        return len(self.variables)

    def dynamic_nbytes(self) -> int:
        """Total byte size of the current dynamic-variable values."""
        total = 0
        for var in self.by_role(VariableRole.DYNAMIC):
            value = var.current_value()
            if isinstance(value, np.ndarray):
                total += value.nbytes
            else:
                total += np.asarray(value).nbytes
        return total
