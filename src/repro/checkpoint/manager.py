"""Checkpoint manager — the paper's ``Protect()`` / ``Snapshot()`` layer.

The :class:`CheckpointManager` ties together the three lower layers:

* the :class:`~repro.checkpoint.variables.VariableRegistry` holding the
  protected solver state (static / dynamic / recomputed),
* a :class:`~repro.compression.base.Compressor` that turns dynamic float
  arrays into (possibly lossy) payloads, and
* a :class:`~repro.checkpoint.store.CheckpointStore` that persists the
  serialized checkpoint.

``snapshot()`` compresses and persists the dynamic variables;
``restore()`` reads back the latest (or a chosen) checkpoint, decompresses
and pushes the values into the live variables through their setters.  Static
variables are stored once via ``snapshot_static()``.  Recomputed variables
are never stored — the caller recomputes them after a restore, exactly as in
Algorithm 1/2 (``r = b - A x``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.checkpoint.serialization import (
    CheckpointPayload,
    deserialize_checkpoint,
    serialize_checkpoint,
)
from repro.checkpoint.store import CheckpointStore, MemoryCheckpointStore
from repro.checkpoint.variables import ProtectedVariable, VariableRegistry, VariableRole
from repro.compression.base import CompressedBlob, Compressor
from repro.compression.identity import IdentityCompressor

__all__ = ["CheckpointManager", "CheckpointRecord"]

_STATIC_ID = -1


@dataclass
class CheckpointRecord:
    """Bookkeeping for one snapshot call."""

    checkpoint_id: int
    tag: Dict[str, object]
    uncompressed_bytes: int
    compressed_bytes: int
    compress_seconds: float
    write_seconds: float

    @property
    def compression_ratio(self) -> float:
        """Achieved ratio over the dynamic variables of this snapshot."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.uncompressed_bytes / self.compressed_bytes


class CheckpointManager:
    """Snapshot/restore protected variables through a compressor and a store."""

    def __init__(
        self,
        compressor: Optional[Compressor] = None,
        store: Optional[CheckpointStore] = None,
        *,
        keep_last: int = 2,
    ) -> None:
        self.compressor = compressor or IdentityCompressor()
        self.store = store or MemoryCheckpointStore()
        keep_last = int(keep_last)
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.keep_last = keep_last
        self.registry = VariableRegistry()
        self.records: List[CheckpointRecord] = []
        self._next_id = 0

    # -- registration (Protect) -------------------------------------------
    def protect(
        self,
        name: str,
        role: VariableRole,
        getter,
        setter=None,
        *,
        compressible: bool = True,
    ) -> ProtectedVariable:
        """Register a variable; see :meth:`VariableRegistry.protect`."""
        return self.registry.protect(
            name, role, getter, setter, compressible=compressible
        )

    # -- snapshots (Snapshot) ----------------------------------------------
    def snapshot_static(self) -> Optional[CheckpointRecord]:
        """Persist the static variables once (id ``-1``); no compression.

        Returns None when no static variables are registered.
        """
        static_vars = self.registry.by_role(VariableRole.STATIC)
        if not static_vars:
            return None
        payload = CheckpointPayload(meta={"kind": "static"})
        raw_bytes = 0
        for var in static_vars:
            value = var.current_value()
            entry = self._exact_entry(value)
            raw_bytes += entry.nbytes if isinstance(entry, np.ndarray) else 8
            payload.entries[var.name] = entry
        serialized = serialize_checkpoint(payload)
        receipt = self.store.write(_STATIC_ID, serialized)
        record = CheckpointRecord(
            checkpoint_id=_STATIC_ID,
            tag={"kind": "static"},
            uncompressed_bytes=raw_bytes,
            compressed_bytes=len(serialized),
            compress_seconds=0.0,
            write_seconds=receipt.seconds,
        )
        self.records.append(record)
        return record

    def snapshot(self, **tag) -> CheckpointRecord:
        """Compress and persist the dynamic variables (the ``Snapshot()`` call).

        Keyword arguments become checkpoint metadata (e.g. ``iteration=120``)
        and are returned verbatim by :meth:`restore`.
        """
        dynamic_vars = self.registry.by_role(VariableRole.DYNAMIC)
        if not dynamic_vars:
            raise RuntimeError("no dynamic variables are protected; nothing to snapshot")
        payload = CheckpointPayload(meta={"kind": "dynamic", "tag": tag})
        uncompressed = 0
        compress_seconds = 0.0
        for var in dynamic_vars:
            value = var.current_value()
            if (
                var.compressible
                and isinstance(value, np.ndarray)
                and np.issubdtype(value.dtype, np.floating)
                and value.size > 1
            ):
                # Use the per-call record: reading records[-1] mis-attributes
                # timing when the compressor instance is shared (several
                # managers, with_error_bound swaps).
                blob, comp_record = self.compressor.compress_with_record(value)
                compress_seconds += comp_record.seconds
                uncompressed += value.nbytes
                payload.entries[var.name] = blob
            else:
                entry = self._exact_entry(value)
                uncompressed += entry.nbytes if isinstance(entry, np.ndarray) else 8
                payload.entries[var.name] = entry
        serialized = serialize_checkpoint(payload)
        checkpoint_id = self._next_id
        self._next_id += 1
        receipt = self.store.write(checkpoint_id, serialized)
        self._prune_dynamic()
        record = CheckpointRecord(
            checkpoint_id=checkpoint_id,
            tag=dict(tag),
            uncompressed_bytes=uncompressed,
            compressed_bytes=len(serialized),
            compress_seconds=compress_seconds,
            write_seconds=receipt.seconds,
        )
        self.records.append(record)
        return record

    # -- restore -------------------------------------------------------------
    def restore(
        self, checkpoint_id: Optional[int] = None, *, apply: bool = True
    ) -> Dict[str, object]:
        """Load a checkpoint (latest by default), decompress and apply it.

        Returns the restored values keyed by variable name plus the metadata
        tag under ``"__tag__"``.  With ``apply=False`` the values are returned
        without being pushed through the variable setters.
        """
        if checkpoint_id is None:
            checkpoint_id = self._latest_dynamic_id()
            if checkpoint_id is None:
                raise KeyError("no dynamic checkpoint available to restore")
        raw = self.store.read(checkpoint_id)
        payload = deserialize_checkpoint(raw)
        restored: Dict[str, object] = {}
        for name, entry in payload.entries.items():
            if isinstance(entry, CompressedBlob):
                value = self.compressor.decompress(entry)
            else:
                value = entry
            restored[name] = value
            if apply and name in self.registry:
                var = self.registry.variables[name]
                if var.setter is not None:
                    var.restore(value)
        restored["__tag__"] = payload.meta.get("tag", {})
        return restored

    def restore_static(self, *, apply: bool = True) -> Dict[str, object]:
        """Load the static-variable checkpoint written by :meth:`snapshot_static`."""
        raw = self.store.read(_STATIC_ID)
        payload = deserialize_checkpoint(raw)
        restored: Dict[str, object] = {}
        for name, entry in payload.entries.items():
            restored[name] = entry
            if apply and name in self.registry:
                var = self.registry.variables[name]
                if var.setter is not None:
                    var.restore(entry)
        return restored

    # -- queries ---------------------------------------------------------------
    def has_checkpoint(self) -> bool:
        """True when at least one dynamic checkpoint exists."""
        return self._latest_dynamic_id() is not None

    def latest_record(self) -> Optional[CheckpointRecord]:
        """The record of the most recent dynamic snapshot, if any."""
        dynamic = [r for r in self.records if r.checkpoint_id != _STATIC_ID]
        return dynamic[-1] if dynamic else None

    def mean_compression_ratio(self) -> float:
        """Mean ratio over all dynamic snapshots taken so far."""
        dynamic = [r for r in self.records if r.checkpoint_id != _STATIC_ID]
        if not dynamic:
            return 1.0
        return float(np.mean([r.compression_ratio for r in dynamic]))

    # -- internals ----------------------------------------------------------
    def _latest_dynamic_id(self) -> Optional[int]:
        ids = [i for i in self.store.ids() if i != _STATIC_ID]
        return ids[-1] if ids else None

    def _prune_dynamic(self) -> None:
        ids = [i for i in self.store.ids() if i != _STATIC_ID]
        for checkpoint_id in ids[: max(0, len(ids) - self.keep_last)]:
            self.store.delete(checkpoint_id)

    @staticmethod
    def _exact_entry(value):
        if isinstance(value, np.ndarray):
            return np.ascontiguousarray(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, (float, np.floating)):
            return float(value)
        raise TypeError(
            f"cannot checkpoint value of type {type(value)!r}; register arrays or scalars"
        )
