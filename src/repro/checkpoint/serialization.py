"""Checkpoint payload (de)serialization.

A checkpoint is a set of named entries, each either a compressed array
(:class:`~repro.compression.base.CompressedBlob`) or an exactly-stored scalar
or small array (iteration counters, ``rho``...).  The serializer packs these
into one self-describing byte string so any
:class:`~repro.checkpoint.store.CheckpointStore` backend can persist it
opaquely — the same way FTI writes one checkpoint file per process.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, Union

import numpy as np

from repro.compression.base import CompressedBlob

__all__ = ["CheckpointPayload", "serialize_checkpoint", "deserialize_checkpoint"]

_MAGIC = b"RPCK0001"

Entry = Union[CompressedBlob, np.ndarray, float, int]


@dataclass
class CheckpointPayload:
    """In-memory representation of one checkpoint before/after serialization."""

    entries: Dict[str, Entry] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def nbytes(self) -> int:
        """Approximate serialized size (payload bytes of each entry)."""
        total = 0
        for value in self.entries.values():
            if isinstance(value, CompressedBlob):
                total += value.nbytes
            elif isinstance(value, np.ndarray):
                total += value.nbytes
            else:
                total += 8
        return total


def _entry_header(value: Entry) -> Dict[str, object]:
    if isinstance(value, CompressedBlob):
        return {
            "kind": "blob",
            "shape": list(value.shape),
            "dtype": value.dtype,
            "compressor": value.compressor,
            "meta": value.meta,
            "nbytes": value.nbytes,
        }
    if isinstance(value, np.ndarray):
        return {
            "kind": "array",
            "shape": list(value.shape),
            "dtype": np.dtype(value.dtype).str,
            "nbytes": int(value.nbytes),
        }
    if isinstance(value, (int, np.integer)):
        return {"kind": "int", "value": int(value)}
    if isinstance(value, (float, np.floating)):
        return {"kind": "float", "value": float(value)}
    raise TypeError(f"unsupported checkpoint entry type: {type(value)!r}")


def serialize_checkpoint(payload: CheckpointPayload) -> bytes:
    """Pack a :class:`CheckpointPayload` into a single byte string."""
    headers = {}
    body = io.BytesIO()
    for name, value in payload.entries.items():
        header = _entry_header(value)
        if header["kind"] == "blob":
            header["offset"] = body.tell()
            body.write(value.payload)  # type: ignore[union-attr]
        elif header["kind"] == "array":
            header["offset"] = body.tell()
            body.write(np.ascontiguousarray(value).tobytes())
        headers[name] = header
    index = json.dumps({"entries": headers, "meta": payload.meta}).encode("utf-8")
    out = io.BytesIO()
    out.write(_MAGIC)
    out.write(np.asarray([len(index)], dtype=np.int64).tobytes())
    out.write(index)
    out.write(body.getvalue())
    return out.getvalue()


def deserialize_checkpoint(raw: bytes) -> CheckpointPayload:
    """Inverse of :func:`serialize_checkpoint`."""
    if raw[: len(_MAGIC)] != _MAGIC:
        raise ValueError("not a repro checkpoint payload (bad magic)")
    offset = len(_MAGIC)
    index_len = int(np.frombuffer(raw, dtype=np.int64, count=1, offset=offset)[0])
    offset += 8
    index = json.loads(raw[offset:offset + index_len].decode("utf-8"))
    offset += index_len
    body = raw[offset:]

    entries: Dict[str, Entry] = {}
    for name, header in index["entries"].items():
        kind = header["kind"]
        if kind == "blob":
            start = int(header["offset"])
            stop = start + int(header["nbytes"])
            entries[name] = CompressedBlob(
                payload=body[start:stop],
                shape=tuple(int(s) for s in header["shape"]),
                dtype=header["dtype"],
                compressor=header["compressor"],
                meta=dict(header["meta"]),
            )
        elif kind == "array":
            start = int(header["offset"])
            stop = start + int(header["nbytes"])
            arr = np.frombuffer(body[start:stop], dtype=np.dtype(header["dtype"])).copy()
            entries[name] = arr.reshape([int(s) for s in header["shape"]])
        elif kind == "int":
            entries[name] = int(header["value"])
        elif kind == "float":
            entries[name] = float(header["value"])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown checkpoint entry kind {kind!r}")
    return CheckpointPayload(entries=entries, meta=dict(index.get("meta", {})))
