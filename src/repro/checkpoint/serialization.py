"""Checkpoint payload (de)serialization.

A checkpoint is a set of named entries, each either a compressed array
(:class:`~repro.compression.base.CompressedBlob`) or an exactly-stored scalar
or small array (iteration counters, ``rho``...).  The serializer packs these
into one self-describing byte string so any
:class:`~repro.checkpoint.store.CheckpointStore` backend can persist it
opaquely — the same way FTI writes one checkpoint file per process.

Wire layout (little-endian)::

    magic "RPCK0001" | i64 index_len | JSON index | entry bodies

The serializer builds the JSON index once, sizes the output exactly, and
writes magic + index + bodies into a single preallocated buffer — no
``BytesIO`` staging copy.  :meth:`CheckpointPayload.nbytes` reports the
*true* serialized size (magic + index + bodies) by building the same index,
so it always equals ``len(serialize_checkpoint(payload))``.

Deserialization is zero-copy where safe: blob payloads come back as
``memoryview`` slices of the input buffer (every decoder accepts buffer
objects) and raw arrays as read-only ``np.frombuffer`` views.  Consumers
that need to mutate an array entry must copy it first; the pipeline's
restore path does exactly that.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.compression.base import CompressedBlob

__all__ = ["CheckpointPayload", "serialize_checkpoint", "deserialize_checkpoint"]

_MAGIC = b"RPCK0001"
_INDEX_LEN = struct.Struct("<q")
_PREFIX = len(_MAGIC) + _INDEX_LEN.size

Entry = Union[CompressedBlob, np.ndarray, float, int]


@dataclass
class CheckpointPayload:
    """In-memory representation of one checkpoint before/after serialization."""

    entries: Dict[str, Entry] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def nbytes(self) -> int:
        """Exact serialized size: ``len(serialize_checkpoint(self))``."""
        index, _chunks, body_size = _build_index(self)
        return _PREFIX + len(index) + body_size


def _entry_header(value: Entry) -> Dict[str, object]:
    if isinstance(value, CompressedBlob):
        return {
            "kind": "blob",
            "shape": list(value.shape),
            "dtype": value.dtype,
            "compressor": value.compressor,
            "meta": value.meta,
            "nbytes": value.nbytes,
        }
    if isinstance(value, np.ndarray):
        return {
            "kind": "array",
            "shape": list(value.shape),
            "dtype": np.dtype(value.dtype).str,
            "nbytes": int(value.nbytes),
        }
    if isinstance(value, (int, np.integer)):
        return {"kind": "int", "value": int(value)}
    if isinstance(value, (float, np.floating)):
        return {"kind": "float", "value": float(value)}
    raise TypeError(f"unsupported checkpoint entry type: {type(value)!r}")


def _build_index(payload: CheckpointPayload) -> Tuple[bytes, List[memoryview], int]:
    """The serialized JSON index plus the body chunks it points into.

    Single source of truth for the wire layout: both :func:`serialize_checkpoint`
    and :meth:`CheckpointPayload.nbytes` are thin wrappers over this.
    """
    headers: Dict[str, Dict[str, object]] = {}
    chunks: List[memoryview] = []
    body_size = 0
    for name, value in payload.entries.items():
        header = _entry_header(value)
        if header["kind"] == "blob":
            header["offset"] = body_size
            chunk = memoryview(value.payload)  # type: ignore[union-attr]
        elif header["kind"] == "array":
            header["offset"] = body_size
            chunk = memoryview(np.ascontiguousarray(value)).cast("B")
        else:
            headers[name] = header
            continue
        chunks.append(chunk)
        body_size += chunk.nbytes
        headers[name] = header
    index = json.dumps({"entries": headers, "meta": payload.meta}).encode("utf-8")
    return index, chunks, body_size


def serialize_checkpoint(payload: CheckpointPayload) -> bytes:
    """Pack a :class:`CheckpointPayload` into a single byte string."""
    index, chunks, body_size = _build_index(payload)
    out = bytearray(_PREFIX + len(index) + body_size)
    out[: len(_MAGIC)] = _MAGIC
    _INDEX_LEN.pack_into(out, len(_MAGIC), len(index))
    pos = _PREFIX
    out[pos:pos + len(index)] = index
    pos += len(index)
    for chunk in chunks:
        out[pos:pos + chunk.nbytes] = chunk
        pos += chunk.nbytes
    return bytes(out)


def deserialize_checkpoint(raw) -> CheckpointPayload:
    """Inverse of :func:`serialize_checkpoint`.

    Blob payloads are returned as ``memoryview`` slices of ``raw`` and array
    entries as read-only ``np.frombuffer`` views — no body copies.  Raises
    ``ValueError`` on a foreign or truncated buffer.
    """
    view = memoryview(raw)
    if bytes(view[: len(_MAGIC)]) != _MAGIC:
        raise ValueError("not a repro checkpoint payload (bad magic)")
    if len(view) < _PREFIX:
        raise ValueError("truncated checkpoint payload")
    (index_len,) = _INDEX_LEN.unpack_from(view, len(_MAGIC))
    if index_len < 0 or _PREFIX + index_len > len(view):
        raise ValueError("truncated checkpoint payload")
    index = json.loads(bytes(view[_PREFIX:_PREFIX + index_len]).decode("utf-8"))
    body = view[_PREFIX + index_len:]

    entries: Dict[str, Entry] = {}
    for name, header in index["entries"].items():
        kind = header["kind"]
        if kind in ("blob", "array"):
            start = int(header["offset"])
            stop = start + int(header["nbytes"])
            if start < 0 or stop > len(body):
                raise ValueError("truncated checkpoint payload")
            if kind == "blob":
                entries[name] = CompressedBlob(
                    payload=body[start:stop],
                    shape=tuple(int(s) for s in header["shape"]),
                    dtype=header["dtype"],
                    compressor=header["compressor"],
                    meta=dict(header["meta"]),
                )
            else:
                arr = np.frombuffer(body[start:stop], dtype=np.dtype(header["dtype"]))
                entries[name] = arr.reshape([int(s) for s in header["shape"]])
        elif kind == "int":
            entries[name] = int(header["value"])
        elif kind == "float":
            entries[name] = float(header["value"])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown checkpoint entry kind {kind!r}")
    return CheckpointPayload(entries=entries, meta=dict(index.get("meta", {})))
