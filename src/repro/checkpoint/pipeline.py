"""The unified checkpoint pipeline — one measured write/restore path.

Before this module existed the repository had two disconnected checkpoint
stacks: the faithful ``Protect()``/``Snapshot()`` layer
(:class:`~repro.checkpoint.manager.CheckpointManager` +
:class:`~repro.checkpoint.variables.VariableRegistry` + serialization) used
only by standalone examples, and the fault-tolerance engine's hand-rolled
path that compressed only ``x``, kept resume vectors raw and unpriced in
memory, and *modeled* the remaining checkpoint bytes as
``vector_bytes * dynamic_vector_count``.  :class:`CheckpointPipeline` unifies
them:

* a :class:`~repro.checkpoint.variables.VariableRegistry` is materialized
  from the solver's :class:`~repro.solvers.base.CheckpointSpec` declaration —
  the iterate ``x``, the declared exact-resume vectors (CG's ``p``,
  BiCGSTAB's ``r``/``r_hat``/``p``/``v``) and the declared scalars, plus the
  iteration counter;
* each variable is compressed under the scheme's rules — ``x`` through the
  scheme compressor with the resolved
  :class:`~repro.compression.errorbounds.ErrorBoundPolicy` bound, Krylov
  recurrence state always exactly (identity/DEFLATE, never lossy — a lossy
  recurrence vector would silently break the "exact resume" contract),
  scalars and counters losslessly in the payload index;
* the variables are packed into **one versioned serialized payload**
  (:mod:`repro.checkpoint.serialization`) whose *measured* byte size — not a
  modeled estimate — is what the engine prices through
  :meth:`~repro.cluster.machine.ClusterModel.checkpoint_seconds` and writes
  into the (possibly multilevel) :class:`~repro.checkpoint.store.
  CheckpointStore`;
* :meth:`CheckpointPipeline.restore` is the single inverse: it decompresses
  ``x`` (the rollback distortion of a lossy restore happens here), rebuilds
  the :class:`~repro.solvers.base.ResumeState` and hands both back, whether
  the payload came from the engine's in-memory record or a multilevel
  fallback read.

Paper-scale accounting
----------------------
The reproduction runs reduced problems, so measured *local* payload bytes
are converted to paper scale per variable: every full-length vector costs
``scale.vector_bytes / ratio_v`` with its own measured compression ratio
(this is where a BiCGSTAB-exact checkpoint's five differently-compressible
vectors stop being priced as five copies of ``x``), while scalars and the
serialization index are absolute bytes that do not grow with the problem.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

import numpy as np

from repro.checkpoint.delta import delta_decode, delta_encode, is_delta_blob
from repro.checkpoint.serialization import (
    CheckpointPayload,
    deserialize_checkpoint,
    serialize_checkpoint,
)
from repro.checkpoint.store import CheckpointStore, WriteReceipt
from repro.checkpoint.variables import VariableRegistry, VariableRole
from repro.compression.base import CompressedBlob, Compressor, make_compressor
from repro.solvers.base import CheckpointSpec, IterativeSolver, ResumeState

if TYPE_CHECKING:
    from repro.core.scale import ExperimentScale
    from repro.core.schemes import CheckpointingScheme

__all__ = [
    "PIPELINE_VERSION",
    "SCALAR_BYTES",
    "DEFAULT_KEYFRAME_INTERVAL",
    "VariableMeasurement",
    "PipelineSnapshot",
    "RestoredCheckpoint",
    "CheckpointPipeline",
    "scaled_payload_bytes",
    "state_digest",
]

#: Stamped into every pipeline payload's metadata; bump when the payload
#: layout changes incompatibly.
PIPELINE_VERSION = 1

#: Logical size of one exactly-stored scalar / 64-bit counter entry.
SCALAR_BYTES = 8

#: Every ``keyframe_interval``-th checkpoint id of an incremental pipeline is
#: a full (non-delta) payload, bounding how far a restore chain can reach.
DEFAULT_KEYFRAME_INTERVAL = 8

#: How many committed payloads' reconstructions an incremental pipeline keeps
#: as delta bases (far beyond the engine's one-level-cycle retention bound).
_MAX_BASES = 32

#: A delta only ships when it is at most this fraction of the full form.  A
#: marginal delta (a few percent smaller) is a bad trade: it saves almost
#: nothing on the drain but chains the restore through its base payload,
#: roughly doubling the recovery read.
DELTA_SHIP_THRESHOLD = 0.75


def scaled_payload_bytes(
    scale: "ExperimentScale",
    variable_ratios: Mapping[str, float],
    *,
    scalar_count: int = 0,
    overhead_bytes: float = 0.0,
) -> tuple:
    """``(uncompressed, compressed)`` bytes of one payload at paper scale.

    The single pricing rule shared by the engine
    (:meth:`PipelineSnapshot.scaled_bytes`) and the experiment
    characterizations (:func:`repro.experiments.characterize.
    measured_checkpoint_bytes`): every full-length vector is scaled by its
    own measured compression ratio, while scalars and the serialization
    index are absolute bytes that do not grow with the problem size.
    """
    scalar_bytes = SCALAR_BYTES * int(scalar_count)
    uncompressed = scale.vector_bytes * len(variable_ratios) + scalar_bytes
    compressed = (
        sum(scale.vector_bytes / ratio for ratio in variable_ratios.values())
        + float(overhead_bytes)
    )
    return float(uncompressed), float(compressed)


def state_digest(
    x: np.ndarray,
    resume_state: Optional[ResumeState] = None,
    *,
    context: bytes = b"",
) -> bytes:
    """BLAKE2b digest of one exact numeric solver state.

    The digest covers the *numeric content* of a restart point — the iterate
    bytes plus any exact-resume vectors and scalars, in sorted-name order —
    under an optional caller-supplied ``context`` prefix (problem identity,
    right-hand side).  The iteration counter is deliberately excluded: it is
    a label on the timeline, not part of the numeric state, so a restore of
    checkpoint *k* and a restore of an identical iterate at a different
    offset hash the same.  This is the key of the trajectory-replay cache
    (:mod:`repro.engine.replay`): two solves started from digest-equal states
    produce bitwise-identical trajectories.
    """
    h = hashlib.blake2b(context, digest_size=16)
    h.update(np.ascontiguousarray(x, dtype=np.float64).tobytes())
    if resume_state is not None:
        for name in sorted(resume_state.vectors):
            h.update(b"v:" + name.encode("utf-8") + b"\0")
            h.update(
                np.ascontiguousarray(
                    resume_state.vectors[name], dtype=np.float64
                ).tobytes()
            )
        for name in sorted(resume_state.scalars):
            h.update(b"s:" + name.encode("utf-8") + b"\0")
            h.update(struct.pack("<d", float(resume_state.scalars[name])))
    return h.digest()


@dataclass(frozen=True)
class VariableMeasurement:
    """Measured footprint of one variable inside one pipeline payload."""

    name: str
    #: ``"vector"`` (full-length array, scales with the problem), ``"scalar"``
    #: or ``"int"`` (absolute-size entries stored exactly in the index).
    kind: str
    uncompressed_bytes: int
    stored_bytes: int
    #: Name of the compressor the variable went through (``None`` for exact
    #: index entries).
    compressor: Optional[str] = None
    #: Resolved error bound description for lossily-compressed variables.
    error_bound: Optional[str] = None

    @property
    def compression_ratio(self) -> float:
        """Original bytes over stored bytes for this variable."""
        if self.stored_bytes == 0:
            return float("inf")
        return self.uncompressed_bytes / self.stored_bytes


@dataclass
class PipelineSnapshot:
    """One serialized checkpoint plus its measured per-variable byte map."""

    checkpoint_id: int
    iteration: int
    payload: bytes
    variables: List[VariableMeasurement] = field(default_factory=list)
    #: Per-vector reconstructions (what a restorer of this payload will hold)
    #: — populated only by incremental pipelines, where a committed snapshot
    #: becomes the delta base of its successors.  Never serialized.
    reconstructions: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Checkpoint id the payload's delta entries reference (``None`` for full
    #: keyframe payloads).
    base_id: Optional[int] = None

    @property
    def serialized_bytes(self) -> int:
        """Total measured payload size (index + all stored variables)."""
        return len(self.payload)

    @property
    def uncompressed_bytes(self) -> int:
        """Sum of the variables' original byte sizes."""
        return sum(v.uncompressed_bytes for v in self.variables)

    @property
    def compression_ratio(self) -> float:
        """Overall payload ratio (original bytes over serialized bytes)."""
        if self.serialized_bytes == 0:
            return float("inf")
        return self.uncompressed_bytes / self.serialized_bytes

    @property
    def vector_measurements(self) -> List[VariableMeasurement]:
        """The full-length vector variables (the ones that scale)."""
        return [v for v in self.variables if v.kind == "vector"]

    @property
    def overhead_bytes(self) -> int:
        """Serialization-index bytes (everything that is not variable body)."""
        body = sum(v.stored_bytes for v in self.variables if v.kind == "vector")
        return len(self.payload) - body

    def ratio_of(self, name: str) -> float:
        """Measured compression ratio of one named variable."""
        for measurement in self.variables:
            if measurement.name == name:
                return measurement.compression_ratio
        raise KeyError(f"no variable {name!r} in this snapshot")

    def variable_ratios(self) -> Dict[str, float]:
        """Per-vector measured compression ratios, keyed by variable name."""
        return {v.name: v.compression_ratio for v in self.vector_measurements}

    def scaled_bytes(self, scale: "ExperimentScale") -> tuple:
        """``(uncompressed, compressed)`` bytes of this payload at paper scale.

        Every full-length vector is scaled by its own measured ratio; scalars
        and the serialization index are absolute bytes (they do not grow with
        the problem size).
        """
        return scaled_payload_bytes(
            scale,
            self.variable_ratios(),
            scalar_count=sum(1 for v in self.variables if v.kind != "vector"),
            overhead_bytes=self.overhead_bytes,
        )


@dataclass
class RestoredCheckpoint:
    """Outcome of one :meth:`CheckpointPipeline.restore` call."""

    checkpoint_id: int
    iteration: int
    x: np.ndarray
    resume_state: Optional[ResumeState] = None
    tag: Dict[str, object] = field(default_factory=dict)


class CheckpointPipeline:
    """Single checkpoint write/restore path for the engine and standalone use.

    Parameters
    ----------
    scheme:
        The :class:`~repro.core.schemes.CheckpointingScheme` governing how
        each variable is compressed (and which error-bound policy resolves
        the lossy bound).
    solver:
        The solver whose :attr:`~repro.solvers.base.IterativeSolver.
        checkpoint_spec` declares the protected state.  Pass ``spec``
        directly when no solver instance is at hand.
    spec:
        Explicit :class:`~repro.solvers.base.CheckpointSpec`; defaults to the
        solver's declaration.
    store:
        Optional :class:`~repro.checkpoint.store.CheckpointStore` (plain or
        multilevel) that :meth:`commit` persists payloads into and
        :meth:`restore` reads from.
    static:
        Optional mapping of static variables (``A`` component arrays, ``b``)
        snapshotted once by :meth:`snapshot_static` under id ``-1``.
    incremental:
        Enable delta payloads: each vector is delta-encoded against the last
        *committed* payload (bitwise residuals through the v1 block codec,
        see :mod:`repro.checkpoint.delta`) whenever the delta undercuts the
        variable's full compressed form by :data:`DELTA_SHIP_THRESHOLD`,
        with periodic full keyframes.
        Exactly-stored variables delta on their raw values; the lossy ``x``
        deltas on its bound-respecting reconstruction, so restores honour
        the same bound with no accumulation across a chain.
    keyframe_interval:
        Every ``keyframe_interval``-th checkpoint id is forced to be a full
        payload (:data:`DEFAULT_KEYFRAME_INTERVAL` by default).
    """

    _STATIC_ID = -1

    def __init__(
        self,
        scheme: "CheckpointingScheme",
        *,
        solver: Optional[IterativeSolver] = None,
        spec: Optional[CheckpointSpec] = None,
        store: Optional[CheckpointStore] = None,
        static: Optional[Mapping[str, np.ndarray]] = None,
        incremental: bool = False,
        keyframe_interval: int = DEFAULT_KEYFRAME_INTERVAL,
    ) -> None:
        if spec is None:
            if solver is None:
                raise ValueError("provide a solver or an explicit CheckpointSpec")
            spec = solver.checkpoint_spec
        self.scheme = scheme
        self.solver = solver
        self.spec = spec
        self.store = store
        self._static = {name: np.asarray(value) for name, value in (static or {}).items()}
        self._holder: Dict[str, object] = {}
        self.registry = self._materialize_registry()
        # Krylov recurrence state must survive a round trip bit-for-bit, so
        # it never goes through the lossy compressor: exact schemes reuse
        # their own (identity / DEFLATE) compressor, the lossy scheme falls
        # back to DEFLATE for anything that is not ``x``.
        self._exact_compressor: Compressor = (
            make_compressor("zlib") if scheme.lossy else scheme.compressor()
        )
        self._decompressors: Dict[str, Compressor] = {}
        self._next_id = 0
        self.incremental = bool(incremental)
        self.keyframe_interval = int(keyframe_interval)
        if self.incremental and self.keyframe_interval < 1:
            raise ValueError(
                f"keyframe_interval must be >= 1, got {keyframe_interval}"
            )
        #: Reconstructions of committed payloads, keyed by checkpoint id —
        #: the delta bases a restore of a dependent payload resolves against.
        self._bases: Dict[int, Dict[str, np.ndarray]] = {}
        self._last_committed_id: Optional[int] = None
        # Optional snapshot memo (see :meth:`enable_snapshot_memo`): a
        # process-wide cache of finished payloads keyed by the pipeline's
        # call-history digest, so deterministic re-runs skip re-compressing
        # identical checkpoints.  Off unless the engine opts in.
        self._memo = None
        self._lineage: Optional[bytes] = None

    # -- registry materialization (the paper's Protect()) ---------------------
    def _materialize_registry(self) -> VariableRegistry:
        registry = VariableRegistry()
        for name, value in self._static.items():
            self._holder[name] = value
            registry.protect_value(
                name, VariableRole.STATIC, self._holder, compressible=False
            )
        registry.protect_value(
            "iteration", VariableRole.DYNAMIC, self._holder, compressible=False
        )
        registry.protect_value("x", VariableRole.DYNAMIC, self._holder)
        if self.stores_resume_state:
            for name in self.spec.extra_vectors:
                registry.protect_value(name, VariableRole.DYNAMIC, self._holder)
            for name in self.spec.scalars:
                registry.protect_value(
                    name, VariableRole.DYNAMIC, self._holder, compressible=False
                )
        return registry

    @property
    def stores_resume_state(self) -> bool:
        """Whether payloads carry the solver's declared exact-resume state."""
        return (
            self.scheme.checkpoint_krylov_state
            and self.spec.exact_resume
            and bool(self.spec.extra_vectors or self.spec.scalars)
        )

    # -- snapshot memoization --------------------------------------------------
    def enable_snapshot_memo(self, memo, context: bytes) -> None:
        """Serve repeated snapshots of identical histories from ``memo``.

        ``memo`` is any mapping-like cache with ``get(key)``/``put(key, snap)``
        (:class:`~repro.engine.replay.SnapshotMemo` in practice); ``context``
        must digest everything that shapes payload bytes but is not visible in
        the per-call inputs — the solver/matrix identity and the scheme's
        compressor configuration.

        Correctness rests on a *lineage* argument rather than per-call purity:
        :meth:`snapshot` output depends on mutable pipeline state (the delta
        bases of previously committed payloads), so each memo key folds a
        running digest of every prior ``snapshot``/``commit`` on this
        pipeline.  Two pipelines reach the same lineage digest only by making
        the identical call sequence with identical inputs from an identical
        configuration — at which point their internal state matches and the
        cached snapshot is byte-for-byte what a fresh compression pass would
        produce.  Divergence (a failure discarding a checkpoint, a different
        boundary schedule) changes the commit sequence and forks the lineage,
        so stale entries can never be served.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(context)
        h.update(b"incremental" if self.incremental else b"full")
        h.update(struct.pack("<q", self.keyframe_interval))
        self._memo = memo
        self._lineage = h.digest()

    def _memo_key(
        self,
        x: np.ndarray,
        iteration: int,
        resume_state: Optional[ResumeState],
        residual_norm: Optional[float],
        b_norm: Optional[float],
        checkpoint_id: int,
        tag: dict,
    ) -> bytes:
        """Digest of one snapshot call chained onto the pipeline lineage."""
        h = hashlib.blake2b(digest_size=16)
        h.update(self._lineage)
        h.update(state_digest(x, resume_state))
        h.update(struct.pack("<qq", int(iteration), int(checkpoint_id)))
        for value in (residual_norm, b_norm):
            if value is None:
                h.update(b"\x00")
            else:
                h.update(b"\x01" + struct.pack("<d", float(value)))
        if tag:
            h.update(repr(sorted(tag.items())).encode("utf-8"))
        return h.digest()

    # -- snapshot (the paper's Snapshot()) ------------------------------------
    def snapshot(
        self,
        x: np.ndarray,
        *,
        iteration: int = 0,
        resume_state: Optional[ResumeState] = None,
        residual_norm: Optional[float] = None,
        b_norm: Optional[float] = None,
        checkpoint_id: Optional[int] = None,
        **tag,
    ) -> PipelineSnapshot:
        """Compress and serialize one checkpoint; nothing is persisted yet.

        ``resume_state`` supplies the declared exact-resume vectors/scalars
        (omit it — or pass a partial state, e.g. GMRES away from a restart
        boundary — and the payload stores just ``x``).  ``residual_norm`` and
        ``b_norm`` feed the scheme's error-bound policy.  Call
        :meth:`commit` to persist the returned snapshot.
        """
        if checkpoint_id is None:
            checkpoint_id = self._next_id
        self._next_id = max(self._next_id, int(checkpoint_id)) + 1

        memo_key = None
        if self._memo is not None:
            memo_key = self._memo_key(
                x, iteration, resume_state, residual_norm, b_norm,
                int(checkpoint_id), tag,
            )
            # The call joins the lineage whether it hits or misses — the
            # *next* key must see it either way.
            self._lineage = memo_key
            cached = self._memo.get(memo_key)
            if cached is not None:
                return cached

        self._holder["iteration"] = int(iteration)
        self._holder["x"] = np.ascontiguousarray(x)
        if self.stores_resume_state:
            vectors = resume_state.vectors if resume_state is not None else {}
            scalars = resume_state.scalars if resume_state is not None else {}
            for name in self.spec.extra_vectors:
                self._holder[name] = vectors.get(name)
            for name in self.spec.scalars:
                self._holder[name] = scalars.get(name)

        payload = CheckpointPayload(
            meta={
                "kind": "dynamic",
                "pipeline_version": PIPELINE_VERSION,
                "scheme": self.scheme.name,
                "iteration": int(iteration),
                "tag": tag,
            }
        )
        base_id = self._delta_base_id(int(checkpoint_id))
        reconstructions: Dict[str, np.ndarray] = {}
        shipped_delta = False
        measurements: List[VariableMeasurement] = []
        for var in self.registry.by_role(VariableRole.DYNAMIC):
            value = var.current_value()
            if value is None:
                continue  # declared but unavailable this round (partial resume)
            if (
                var.compressible
                and isinstance(value, np.ndarray)
                and np.issubdtype(value.dtype, np.floating)
                and value.size > 1
            ):
                compressor = self._compressor_for(
                    var.name, residual_norm=residual_norm, b_norm=b_norm
                )
                if self.incremental and not self.scheme.stores_exactly(var.name):
                    # What a restorer of this payload will hold: the
                    # compressor's reconstruction, derived from the in-memory
                    # codes when the compressor supports it (identical bytes
                    # to a decompress of the blob, without the decode pass).
                    blob, _, recon = compressor.compress_with_reconstruction(value)
                else:
                    blob, _ = compressor.compress_with_record(value)
                    recon = None
                if self.incremental:
                    # The exact path must copy — ``value`` may alias a solver
                    # buffer that keeps mutating, and a delta base has to
                    # stay frozen.
                    if recon is None:
                        recon = np.array(value, dtype=np.float64, copy=True)
                    reconstructions[var.name] = recon
                    delta = self._try_delta(var.name, recon, base_id, blob)
                    if delta is not None:
                        blob = delta
                        shipped_delta = True
                payload.entries[var.name] = blob
                measurements.append(
                    VariableMeasurement(
                        name=var.name,
                        kind="vector",
                        uncompressed_bytes=int(value.nbytes),
                        stored_bytes=blob.nbytes,
                        compressor=blob.compressor,
                        error_bound=str(blob.meta.get("error_bound"))
                        if "error_bound" in blob.meta
                        else None,
                    )
                )
            else:
                entry = _exact_entry(value)
                payload.entries[var.name] = entry
                measurements.append(
                    VariableMeasurement(
                        name=var.name,
                        kind="int" if isinstance(entry, int) else "scalar",
                        uncompressed_bytes=SCALAR_BYTES,
                        stored_bytes=SCALAR_BYTES,
                    )
                )
        result = PipelineSnapshot(
            checkpoint_id=int(checkpoint_id),
            iteration=int(iteration),
            payload=serialize_checkpoint(payload),
            variables=measurements,
            reconstructions=reconstructions,
            base_id=base_id if shipped_delta else None,
        )
        if memo_key is not None:
            self._memo.put(memo_key, result)
        return result

    def commit(self, snapshot: PipelineSnapshot) -> Optional[WriteReceipt]:
        """Persist a snapshot into the pipeline's store (no-op without one).

        Kept separate from :meth:`snapshot` so the engine can price — and on
        a mid-write failure discard — a checkpoint without it ever becoming
        restorable.  Under :attr:`incremental` mode the committed snapshot's
        reconstruction becomes the delta base of subsequent snapshots, store
        or no store.
        """
        if self._memo is not None:
            # Commits pick the delta base of every later snapshot, so they
            # fork the memo lineage exactly like snapshot calls do — a run
            # that discards a checkpoint (mid-write failure) stops sharing
            # keys with one that committed it.
            h = hashlib.blake2b(digest_size=16)
            h.update(self._lineage)
            h.update(b"commit")
            h.update(struct.pack("<q", int(snapshot.checkpoint_id)))
            self._lineage = h.digest()
        if self.incremental and snapshot.checkpoint_id >= 0:
            self._bases[snapshot.checkpoint_id] = snapshot.reconstructions
            self._last_committed_id = snapshot.checkpoint_id
            while len(self._bases) > _MAX_BASES:
                del self._bases[next(iter(self._bases))]
        if self.store is None:
            return None
        return self.store.write(snapshot.checkpoint_id, snapshot.payload)

    def snapshot_static(self) -> Optional[PipelineSnapshot]:
        """Persist the static variables once (id ``-1``); no compression."""
        static_vars = self.registry.by_role(VariableRole.STATIC)
        if not static_vars:
            return None
        payload = CheckpointPayload(
            meta={"kind": "static", "pipeline_version": PIPELINE_VERSION}
        )
        measurements = []
        for var in static_vars:
            value = _exact_entry(var.current_value())
            payload.entries[var.name] = value
            nbytes = value.nbytes if isinstance(value, np.ndarray) else SCALAR_BYTES
            measurements.append(
                VariableMeasurement(
                    name=var.name,
                    kind="vector" if isinstance(value, np.ndarray) else "scalar",
                    uncompressed_bytes=int(nbytes),
                    stored_bytes=int(nbytes),
                )
            )
        snapshot = PipelineSnapshot(
            checkpoint_id=self._STATIC_ID,
            iteration=-1,
            payload=serialize_checkpoint(payload),
            variables=measurements,
        )
        self.commit(snapshot)
        return snapshot

    # -- restore ---------------------------------------------------------------
    def restore(
        self,
        checkpoint_id: Optional[int] = None,
        *,
        payload: Optional[bytes] = None,
    ) -> RestoredCheckpoint:
        """Decompress one checkpoint back into ``x`` + resume state.

        Reads ``payload`` when given (the engine's in-memory record), else
        the identified — or latest — checkpoint from the store.  This is the
        single restore path: the lossy rollback distortion, a multilevel
        fallback read and a standalone user's restore all land here.
        """
        if payload is None:
            if self.store is None:
                raise ValueError("no payload given and the pipeline has no store")
            if checkpoint_id is None:
                ids = [i for i in self.store.ids() if i != self._STATIC_ID]
                if not ids:
                    raise KeyError("no dynamic checkpoint available to restore")
                checkpoint_id = ids[-1]
            payload = self.store.read(checkpoint_id)
        parsed = deserialize_checkpoint(payload)
        entries: Dict[str, object] = {}
        for name, entry in parsed.entries.items():
            if isinstance(entry, CompressedBlob):
                if is_delta_blob(entry):
                    entries[name] = self._resolve_delta(name, entry)
                else:
                    entries[name] = self._decompressor(entry.compressor).decompress(
                        entry
                    )
            else:
                entries[name] = entry
        if "x" not in entries:
            raise ValueError("payload does not contain the iterate 'x'")
        iteration = int(parsed.meta.get("iteration", entries.get("iteration", 0)))
        resume: Optional[ResumeState] = None
        if self.stores_resume_state and all(
            name in entries for name in (*self.spec.extra_vectors, *self.spec.scalars)
        ):
            resume = ResumeState(
                iteration=iteration,
                vectors={
                    name: _writable_f64(entries[name])
                    for name in self.spec.extra_vectors
                },
                scalars={
                    name: float(entries[name]) for name in self.spec.scalars
                },
            )
        return RestoredCheckpoint(
            checkpoint_id=int(checkpoint_id) if checkpoint_id is not None else -1,
            iteration=iteration,
            x=_writable_f64(entries["x"]),
            resume_state=resume,
            tag=dict(parsed.meta.get("tag", {})),
        )

    def restore_static(self) -> Dict[str, object]:
        """Load the static payload written by :meth:`snapshot_static`."""
        if self.store is None:
            raise ValueError("the pipeline has no store to read statics from")
        parsed = deserialize_checkpoint(self.store.read(self._STATIC_ID))
        return dict(parsed.entries)

    # -- internals -------------------------------------------------------------
    def _delta_base_id(self, checkpoint_id: int) -> Optional[int]:
        """The committed payload a delta snapshot would reference, if any.

        ``None`` forces a full keyframe: the pipeline is not incremental, no
        payload has been committed yet, or the id falls on the periodic
        keyframe cadence.
        """
        if not self.incremental or self._last_committed_id is None:
            return None
        if checkpoint_id >= 0 and checkpoint_id % self.keyframe_interval == 0:
            return None
        return self._last_committed_id

    def _try_delta(
        self,
        name: str,
        recon: np.ndarray,
        base_id: Optional[int],
        direct: CompressedBlob,
    ) -> Optional[CompressedBlob]:
        """Delta blob for ``recon`` against the committed base, if it wins.

        Returns ``None`` when no base is available (keyframe), the base lacks
        this variable or changed shape, or the delta does not beat the full
        compressed form by at least :data:`DELTA_SHIP_THRESHOLD` — a restore
        of a delta payload has to read its base chain too, so a marginal
        saving on the write is not worth the chained recovery.
        """
        if base_id is None:
            return None
        base = self._bases.get(base_id, {}).get(name)
        if base is None or base.shape != recon.shape:
            return None
        meta = {}
        if "error_bound" in direct.meta:
            meta["error_bound"] = direct.meta["error_bound"]
        delta = delta_encode(
            recon, base, base_id=base_id, inner=direct.compressor, meta=meta
        )
        if delta.nbytes > DELTA_SHIP_THRESHOLD * direct.nbytes:
            return None
        return delta

    def _resolve_delta(self, name: str, blob: CompressedBlob) -> np.ndarray:
        """Decode one delta entry against its committed base reconstruction."""
        base_id = int(blob.meta["base_id"])
        base = self._bases.get(base_id, {}).get(name)
        if base is None:
            raise KeyError(
                f"cannot restore delta entry {name!r}: base checkpoint "
                f"{base_id} is not available in this pipeline (incremental "
                "payloads must be restored by the pipeline that committed "
                "their base chain)"
            )
        return delta_decode(blob, base)

    def _compressor_for(
        self,
        name: str,
        *,
        residual_norm: Optional[float],
        b_norm: Optional[float],
    ) -> Compressor:
        """Compressor for one vector variable under the scheme's rules."""
        if name != "x" and self.scheme.lossy:
            return self._exact_compressor
        return self.scheme.checkpoint_compressor(
            residual_norm=residual_norm, b_norm=b_norm, variable=name
        )

    def _decompressor(self, name: str) -> Compressor:
        try:
            return self._decompressors[name]
        except KeyError:
            self._decompressors[name] = make_compressor(name)
            return self._decompressors[name]


def _writable_f64(value) -> np.ndarray:
    """A float64 array the solver may mutate.

    Deserialized array entries are read-only views into the payload buffer;
    decompressed blobs already own writable memory and pass through as-is.
    """
    arr = np.asarray(value, dtype=np.float64)
    if not arr.flags.writeable:
        arr = arr.copy()
    return arr


def _exact_entry(value):
    """Coerce a value into an exactly-stored serialization entry."""
    if isinstance(value, np.ndarray):
        return np.ascontiguousarray(value)
    if isinstance(value, (bool, np.bool_)):
        return int(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    raise TypeError(
        f"cannot checkpoint value of type {type(value)!r}; arrays or scalars only"
    )
