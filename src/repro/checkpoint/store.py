"""Checkpoint persistence back ends behind one ``CheckpointStore`` protocol.

A :class:`CheckpointStore` persists opaque checkpoint payloads keyed by an
integer checkpoint id.  Every backend also carries a :class:`StoreProfile` —
the latency / bandwidth / durability envelope the engine uses to *price*
writes, reads, and asynchronous drains against the modeled cluster — and
answers :meth:`CheckpointStore.survives` for a given failure scope so the
multilevel policy can compose real backends instead of bare multipliers.

Concrete back ends:

* :class:`MemoryCheckpointStore` — keeps payloads in RAM.  This is what the
  fault-tolerance runner uses by default: the *timing* of PFS writes is
  modeled by the cluster layer (see :mod:`repro.cluster.pfs`), so the store
  itself only needs to hold the real bytes.
* :class:`FileCheckpointStore` — one file per checkpoint under a directory,
  like FTI's one-file-per-process layout.  Writes are crash-safe: payloads
  land in a same-directory temp file, are fsynced, and are published with an
  atomic ``os.replace`` followed by a directory fsync.
* :class:`SimulatedObjectStore` — an in-memory stand-in for a remote object
  store (high latency, modest bandwidth, system-scope durability) whose
  profile the engine prices; it also counts PUT/GET/DELETE operations the
  way an object-store bill would.

:class:`~repro.checkpoint.chunked.ChunkedStore` wraps any of these with
content-addressed chunk dedup via the blob API (:meth:`put_blob` et al.),
which namespaces auxiliary objects (chunks, replicas) away from the integer
checkpoint-id keyspace.
"""

from __future__ import annotations

import abc
import os
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "FAILURE_SCOPES",
    "StoreProfile",
    "StoreStat",
    "WriteReceipt",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "SimulatedObjectStore",
    "MEMORY_PROFILE",
    "DISK_PROFILE",
    "PFS_PROFILE",
    "OBJECT_PROFILE",
    "STORE_PROFILES",
]

PathLike = Union[str, "os.PathLike[str]"]

_GIB = 1024**3

#: Failure scopes a checkpoint may need to survive, narrowest first.  A store
#: whose durability covers scope ``s`` also covers every narrower scope.
FAILURE_SCOPES: Tuple[str, ...] = ("process", "node", "system")


@dataclass(frozen=True)
class StoreProfile:
    """Latency / bandwidth / durability envelope of a checkpoint store.

    Mirrors the shape of :class:`repro.cluster.pfs.PFSModel` so the engine
    can price any backend the way it prices the paper's PFS: a write costs
    ``latency + per_process_overhead * procs + nbytes / write_bandwidth``.
    ``durability`` names the widest failure scope (:data:`FAILURE_SCOPES`)
    that data in this store survives.
    """

    name: str
    write_bandwidth: float
    read_bandwidth: float
    latency: float = 0.5
    per_process_overhead: float = 0.008
    async_bandwidth_fraction: float = 0.7
    durability: str = "system"

    def __post_init__(self) -> None:
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency < 0 or self.per_process_overhead < 0:
            raise ValueError("latency and per-process overhead must be >= 0")
        if not (0.0 < self.async_bandwidth_fraction <= 1.0):
            raise ValueError("async_bandwidth_fraction must be in (0, 1]")
        if self.durability not in FAILURE_SCOPES:
            raise ValueError(
                f"durability must be one of {FAILURE_SCOPES}, got {self.durability!r}"
            )

    # -- pricing (same algebra as PFSModel) --------------------------------
    def write_seconds(self, nbytes: float, num_processes: int = 1) -> float:
        """Modeled seconds to write ``nbytes`` from ``num_processes`` ranks."""
        return (
            self.latency
            + self.per_process_overhead * num_processes
            + float(nbytes) / self.write_bandwidth
        )

    def read_seconds(self, nbytes: float, num_processes: int = 1) -> float:
        """Modeled seconds to read ``nbytes`` into ``num_processes`` ranks."""
        return (
            self.latency
            + self.per_process_overhead * num_processes
            + float(nbytes) / self.read_bandwidth
        )

    def drain_seconds(self, nbytes: float, num_processes: int = 1) -> float:
        """Modeled seconds to drain ``nbytes`` on the background I/O channel."""
        return (
            self.latency
            + self.per_process_overhead * num_processes
            + float(nbytes) / (self.write_bandwidth * self.async_bandwidth_fraction)
        )

    def survives(self, failure_scope: str) -> bool:
        """True if data in this store survives a failure of ``failure_scope``."""
        if failure_scope not in FAILURE_SCOPES:
            raise ValueError(
                f"failure_scope must be one of {FAILURE_SCOPES}, got {failure_scope!r}"
            )
        return FAILURE_SCOPES.index(self.durability) >= FAILURE_SCOPES.index(
            failure_scope
        )

    def scaled(self, cost_multiplier: float, *, name: Optional[str] = None) -> "StoreProfile":
        """A profile whose write/read cost is ``cost_multiplier`` times this one.

        Used by the multilevel policy to derive per-level profiles from a base
        backend: cheaper levels get proportionally more bandwidth and less
        latency, so pricing through the scaled profile matches the legacy
        ``cost_multiplier`` algebra.
        """
        if cost_multiplier <= 0:
            raise ValueError("cost_multiplier must be positive")
        return replace(
            self,
            name=name or f"{self.name}x{cost_multiplier:g}",
            write_bandwidth=self.write_bandwidth / cost_multiplier,
            read_bandwidth=self.read_bandwidth / cost_multiplier,
            latency=self.latency * cost_multiplier,
            per_process_overhead=self.per_process_overhead * cost_multiplier,
        )


#: Profile matching the paper's measured PFS (see repro.cluster.pfs.PFSModel);
#: the engine's legacy pricing path is byte-identical to this profile.
PFS_PROFILE = StoreProfile(
    name="pfs",
    write_bandwidth=78.8 * _GIB / 103.0,
    read_bandwidth=78.8 * _GIB / 95.0,
    latency=0.5,
    per_process_overhead=0.008,
    async_bandwidth_fraction=0.7,
    durability="system",
)

#: Node-RAM staging: enormous bandwidth, near-zero latency, but the payload
#: dies with the process.
MEMORY_PROFILE = StoreProfile(
    name="memory",
    write_bandwidth=100.0 * PFS_PROFILE.write_bandwidth,
    read_bandwidth=100.0 * PFS_PROFILE.read_bandwidth,
    latency=0.001,
    per_process_overhead=0.0001,
    async_bandwidth_fraction=0.9,
    durability="process",
)

#: Node-local disk (SSD burst buffer): faster than the PFS, survives a process
#: crash but not the loss of the node.
DISK_PROFILE = StoreProfile(
    name="disk",
    write_bandwidth=20.0 * PFS_PROFILE.write_bandwidth,
    read_bandwidth=20.0 * PFS_PROFILE.read_bandwidth,
    latency=0.01,
    per_process_overhead=0.001,
    async_bandwidth_fraction=0.8,
    durability="node",
)

#: Remote object store: system-scope durable like the PFS but with much higher
#: per-request latency and lower streaming bandwidth.
OBJECT_PROFILE = StoreProfile(
    name="object",
    write_bandwidth=0.5 * PFS_PROFILE.write_bandwidth,
    read_bandwidth=0.8 * PFS_PROFILE.read_bandwidth,
    latency=4.0,
    per_process_overhead=0.012,
    async_bandwidth_fraction=0.9,
    durability="system",
)

#: Built-in profiles by name.
STORE_PROFILES: Dict[str, StoreProfile] = {
    "pfs": PFS_PROFILE,
    "memory": MEMORY_PROFILE,
    "disk": DISK_PROFILE,
    "object": OBJECT_PROFILE,
}


@dataclass
class WriteReceipt:
    """Result of persisting one checkpoint.

    ``seconds`` is host wall-clock time (``time.perf_counter`` deltas) and is
    diagnostic only — it must never feed a deterministic artifact (reports,
    campaign caches, benchmark JSON); modeled time comes from
    :class:`StoreProfile` pricing instead.  The dedup fields are populated
    only by :class:`~repro.checkpoint.chunked.ChunkedStore`.
    """

    checkpoint_id: int
    nbytes: int
    seconds: float
    unique_bytes: Optional[int] = None
    dedup_ratio: Optional[float] = None
    chunks_total: Optional[int] = None
    chunks_new: Optional[int] = None


@dataclass(frozen=True)
class StoreStat:
    """Metadata about one stored checkpoint (cf. ``os.stat``)."""

    checkpoint_id: int
    nbytes: int
    backend: str


class CheckpointStore(abc.ABC):
    """Abstract key-value store for serialized checkpoints."""

    @abc.abstractmethod
    def write(self, checkpoint_id: int, payload: bytes) -> WriteReceipt:
        """Persist ``payload`` under ``checkpoint_id`` (overwriting)."""

    @abc.abstractmethod
    def read(self, checkpoint_id: int) -> bytes:
        """Return the payload stored under ``checkpoint_id``."""

    @abc.abstractmethod
    def ids(self) -> List[int]:
        """All stored checkpoint ids in ascending order."""

    @abc.abstractmethod
    def delete(self, checkpoint_id: int) -> None:
        """Remove a checkpoint (no-op if absent)."""

    # -- profile & durability ---------------------------------------------
    @property
    def profile(self) -> StoreProfile:
        """The latency/bandwidth/durability envelope used to price this store."""
        return PFS_PROFILE

    def survives(self, failure_scope: str) -> bool:
        """True if checkpoints in this store survive ``failure_scope`` failures."""
        return self.profile.survives(failure_scope)

    def stat(self, checkpoint_id: int) -> StoreStat:
        """Metadata for one checkpoint; raises ``KeyError`` like :meth:`read`."""
        payload = self.read(checkpoint_id)
        return StoreStat(
            checkpoint_id=int(checkpoint_id),
            nbytes=len(payload),
            backend=self.profile.name,
        )

    # -- auxiliary blob namespace -----------------------------------------
    # Chunk pools and level replicas live beside the integer-keyed
    # checkpoints without colliding with them.  Backends that cannot hold
    # blobs simply leave these unimplemented.
    def put_blob(self, key: str, payload: bytes) -> None:
        """Persist an auxiliary named blob (chunks, replicas, manifests)."""
        raise NotImplementedError(f"{type(self).__name__} does not store blobs")

    def get_blob(self, key: str) -> bytes:
        """Return a blob by key; raises ``KeyError`` if absent."""
        raise NotImplementedError(f"{type(self).__name__} does not store blobs")

    def delete_blob(self, key: str) -> None:
        """Remove a blob (no-op if absent)."""
        raise NotImplementedError(f"{type(self).__name__} does not store blobs")

    def has_blob(self, key: str) -> bool:
        """True if a blob exists under ``key``."""
        raise NotImplementedError(f"{type(self).__name__} does not store blobs")

    def blob_keys(self) -> List[str]:
        """All stored blob keys in sorted order."""
        raise NotImplementedError(f"{type(self).__name__} does not store blobs")

    # -- conveniences ------------------------------------------------------
    def latest_id(self) -> Optional[int]:
        """The most recent checkpoint id, or None if the store is empty."""
        ids = self.ids()
        return ids[-1] if ids else None

    def prune(self, keep_last: int = 1) -> None:
        """Delete all but the most recent ``keep_last`` checkpoints."""
        if keep_last < 0:
            raise ValueError(f"keep_last must be >= 0, got {keep_last}")
        ids = self.ids()
        for checkpoint_id in ids[: max(0, len(ids) - keep_last)]:
            self.delete(checkpoint_id)


class MemoryCheckpointStore(CheckpointStore):
    """In-memory checkpoint store (payloads held as byte strings)."""

    def __init__(self, profile: StoreProfile = MEMORY_PROFILE) -> None:
        self._data: Dict[int, bytes] = {}
        self._blobs: Dict[str, bytes] = {}
        self._profile = profile

    @property
    def profile(self) -> StoreProfile:
        return self._profile

    def write(self, checkpoint_id: int, payload: bytes) -> WriteReceipt:
        start = time.perf_counter()
        self._data[int(checkpoint_id)] = bytes(payload)
        return WriteReceipt(int(checkpoint_id), len(payload), time.perf_counter() - start)

    def read(self, checkpoint_id: int) -> bytes:
        try:
            return self._data[int(checkpoint_id)]
        except KeyError:
            raise KeyError(f"no checkpoint with id {checkpoint_id}") from None

    def ids(self) -> List[int]:
        return sorted(self._data)

    def delete(self, checkpoint_id: int) -> None:
        self._data.pop(int(checkpoint_id), None)

    def put_blob(self, key: str, payload: bytes) -> None:
        self._blobs[str(key)] = bytes(payload)

    def get_blob(self, key: str) -> bytes:
        try:
            return self._blobs[str(key)]
        except KeyError:
            raise KeyError(f"no blob with key {key!r}") from None

    def delete_blob(self, key: str) -> None:
        self._blobs.pop(str(key), None)

    def has_blob(self, key: str) -> bool:
        return str(key) in self._blobs

    def blob_keys(self) -> List[str]:
        return sorted(self._blobs)

    def total_bytes(self) -> int:
        """Total bytes currently held by the store (checkpoints + blobs)."""
        return sum(len(v) for v in self._data.values()) + sum(
            len(v) for v in self._blobs.values()
        )


class FileCheckpointStore(CheckpointStore):
    """One-file-per-checkpoint store rooted at ``directory``.

    Writes are crash-safe: the payload is staged in a temp file *in the same
    directory* (so the final ``os.replace`` is an atomic same-filesystem
    rename), fsynced before publication, and the directory entry itself is
    fsynced afterwards so the rename survives a power loss.  A reader
    therefore sees either the previous complete checkpoint or the new one —
    never a torn write.
    """

    _BLOB_DIR = "blobs"

    def __init__(
        self, directory: PathLike, profile: StoreProfile = DISK_PROFILE
    ) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._profile = profile

    @property
    def profile(self) -> StoreProfile:
        return self._profile

    def _path(self, checkpoint_id: int) -> str:
        return os.path.join(self.directory, f"ckpt_{int(checkpoint_id):08d}.bin")

    @staticmethod
    def _fsync_dir(directory: str) -> None:
        # Persist the rename itself: fsync on the file only flushes its data
        # blocks, not the directory entry created by os.replace.
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform without dir fsync
            pass
        finally:
            os.close(fd)

    def _atomic_write(self, path: str, payload: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._fsync_dir(os.path.dirname(path))

    def write(self, checkpoint_id: int, payload: bytes) -> WriteReceipt:
        start = time.perf_counter()
        self._atomic_write(self._path(checkpoint_id), payload)
        return WriteReceipt(int(checkpoint_id), len(payload), time.perf_counter() - start)

    def read(self, checkpoint_id: int) -> bytes:
        path = self._path(checkpoint_id)
        if not os.path.exists(path):
            raise KeyError(f"no checkpoint with id {checkpoint_id}")
        with open(path, "rb") as handle:
            return handle.read()

    def ids(self) -> List[int]:
        found = []
        for name in os.listdir(self.directory):
            if name.startswith("ckpt_") and name.endswith(".bin"):
                try:
                    found.append(int(name[5:-4]))
                except ValueError:
                    continue
        return sorted(found)

    def delete(self, checkpoint_id: int) -> None:
        path = self._path(checkpoint_id)
        if os.path.exists(path):
            os.remove(path)

    # -- blobs: one file per key under blobs/, key escaped into a filename --
    def _blob_path(self, key: str) -> str:
        safe = str(key).replace("%", "%25").replace(os.sep, "%2F").replace("/", "%2F")
        return os.path.join(self.directory, self._BLOB_DIR, safe)

    def put_blob(self, key: str, payload: bytes) -> None:
        path = self._blob_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._atomic_write(path, payload)

    def get_blob(self, key: str) -> bytes:
        path = self._blob_path(key)
        if not os.path.exists(path):
            raise KeyError(f"no blob with key {key!r}")
        with open(path, "rb") as handle:
            return handle.read()

    def delete_blob(self, key: str) -> None:
        path = self._blob_path(key)
        if os.path.exists(path):
            os.remove(path)

    def has_blob(self, key: str) -> bool:
        return os.path.exists(self._blob_path(key))

    def blob_keys(self) -> List[str]:
        blob_dir = os.path.join(self.directory, self._BLOB_DIR)
        if not os.path.isdir(blob_dir):
            return []
        keys = []
        for name in os.listdir(blob_dir):
            keys.append(name.replace("%2F", "/").replace("%25", "%"))
        return sorted(keys)


class SimulatedObjectStore(MemoryCheckpointStore):
    """In-memory stand-in for a remote object store.

    Holds real bytes like :class:`MemoryCheckpointStore` but reports the
    :data:`OBJECT_PROFILE` envelope (high latency, modest bandwidth,
    system-scope durability) so the engine prices it like S3-over-WAN, and
    tallies PUT/GET/DELETE operation counts the way an object-store bill
    would.
    """

    def __init__(self, profile: StoreProfile = OBJECT_PROFILE) -> None:
        super().__init__(profile)
        self.op_counts: Dict[str, int] = {"put": 0, "get": 0, "delete": 0}

    def write(self, checkpoint_id: int, payload: bytes) -> WriteReceipt:
        self.op_counts["put"] += 1
        return super().write(checkpoint_id, payload)

    def read(self, checkpoint_id: int) -> bytes:
        self.op_counts["get"] += 1
        return super().read(checkpoint_id)

    def delete(self, checkpoint_id: int) -> None:
        self.op_counts["delete"] += 1
        super().delete(checkpoint_id)

    def put_blob(self, key: str, payload: bytes) -> None:
        self.op_counts["put"] += 1
        super().put_blob(key, payload)

    def get_blob(self, key: str) -> bytes:
        self.op_counts["get"] += 1
        return super().get_blob(key)

    def delete_blob(self, key: str) -> None:
        self.op_counts["delete"] += 1
        super().delete_blob(key)
