"""Checkpoint persistence back ends.

A :class:`CheckpointStore` persists opaque checkpoint payloads keyed by an
integer checkpoint id.  Two concrete back ends are provided:

* :class:`MemoryCheckpointStore` — keeps payloads in RAM.  This is what the
  fault-tolerance runner uses: the *timing* of PFS writes is modeled by the
  cluster layer (see :mod:`repro.cluster.pfs`), so the store itself only needs
  to hold the real bytes.
* :class:`FileCheckpointStore` — writes one file per checkpoint under a
  directory, like FTI's one-file-per-process layout, for users who want real
  persistence in their own applications.
"""

from __future__ import annotations

import abc
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

__all__ = [
    "WriteReceipt",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
]

PathLike = Union[str, "os.PathLike[str]"]


@dataclass
class WriteReceipt:
    """Result of persisting one checkpoint."""

    checkpoint_id: int
    nbytes: int
    seconds: float


class CheckpointStore(abc.ABC):
    """Abstract key-value store for serialized checkpoints."""

    @abc.abstractmethod
    def write(self, checkpoint_id: int, payload: bytes) -> WriteReceipt:
        """Persist ``payload`` under ``checkpoint_id`` (overwriting)."""

    @abc.abstractmethod
    def read(self, checkpoint_id: int) -> bytes:
        """Return the payload stored under ``checkpoint_id``."""

    @abc.abstractmethod
    def ids(self) -> List[int]:
        """All stored checkpoint ids in ascending order."""

    @abc.abstractmethod
    def delete(self, checkpoint_id: int) -> None:
        """Remove a checkpoint (no-op if absent)."""

    def latest_id(self) -> Optional[int]:
        """The most recent checkpoint id, or None if the store is empty."""
        ids = self.ids()
        return ids[-1] if ids else None

    def prune(self, keep_last: int = 1) -> None:
        """Delete all but the most recent ``keep_last`` checkpoints."""
        if keep_last < 0:
            raise ValueError(f"keep_last must be >= 0, got {keep_last}")
        ids = self.ids()
        for checkpoint_id in ids[: max(0, len(ids) - keep_last)]:
            self.delete(checkpoint_id)


class MemoryCheckpointStore(CheckpointStore):
    """In-memory checkpoint store (payloads held as byte strings)."""

    def __init__(self) -> None:
        self._data: Dict[int, bytes] = {}

    def write(self, checkpoint_id: int, payload: bytes) -> WriteReceipt:
        start = time.perf_counter()
        self._data[int(checkpoint_id)] = bytes(payload)
        return WriteReceipt(int(checkpoint_id), len(payload), time.perf_counter() - start)

    def read(self, checkpoint_id: int) -> bytes:
        try:
            return self._data[int(checkpoint_id)]
        except KeyError:
            raise KeyError(f"no checkpoint with id {checkpoint_id}") from None

    def ids(self) -> List[int]:
        return sorted(self._data)

    def delete(self, checkpoint_id: int) -> None:
        self._data.pop(int(checkpoint_id), None)

    def total_bytes(self) -> int:
        """Total bytes currently held by the store."""
        return sum(len(v) for v in self._data.values())


class FileCheckpointStore(CheckpointStore):
    """One-file-per-checkpoint store rooted at ``directory``."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, checkpoint_id: int) -> str:
        return os.path.join(self.directory, f"ckpt_{int(checkpoint_id):08d}.bin")

    def write(self, checkpoint_id: int, payload: bytes) -> WriteReceipt:
        start = time.perf_counter()
        path = self._path(checkpoint_id)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return WriteReceipt(int(checkpoint_id), len(payload), time.perf_counter() - start)

    def read(self, checkpoint_id: int) -> bytes:
        path = self._path(checkpoint_id)
        if not os.path.exists(path):
            raise KeyError(f"no checkpoint with id {checkpoint_id}")
        with open(path, "rb") as handle:
            return handle.read()

    def ids(self) -> List[int]:
        found = []
        for name in os.listdir(self.directory):
            if name.startswith("ckpt_") and name.endswith(".bin"):
                try:
                    found.append(int(name[5:-4]))
                except ValueError:
                    continue
        return sorted(found)

    def delete(self, checkpoint_id: int) -> None:
        path = self._path(checkpoint_id)
        if os.path.exists(path):
            os.remove(path)
