"""FTI-style multilevel checkpointing (extension beyond the paper's L4-only use).

FTI (Bautista-Gomez et al., SC'11) offers four checkpoint levels with
increasing resilience and cost:

* **L1** — local storage device (fast, survives soft process failures only),
* **L2** — partner copy on a buddy node,
* **L3** — Reed-Solomon encoded across nodes,
* **L4** — the parallel file system (survives whole-system failures).

The paper writes all checkpoints at L4 through MPI-IO; this module adds the
multilevel policy so the ablation benchmarks can quantify how much of the
lossy-checkpointing gain survives when cheaper levels absorb most failures.

The store composes real :class:`~repro.checkpoint.store.CheckpointStore`
backends: every level routes to a backend (one shared in-memory backend by
default, reproducing the legacy behavior exactly), and each level's *pricing*
comes from that backend's :class:`~repro.checkpoint.store.StoreProfile`
scaled by the level's cost multiplier (see :meth:`MultilevelCheckpointStore.
profile_for`).  Partner-level checkpoints additionally write a buddy replica
through the backend's blob namespace — when the backend dedups
(:class:`~repro.checkpoint.chunked.ChunkedStore`), the replica shares chunks
with the primary copy and adds zero unique bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.store import (
    CheckpointStore,
    MemoryCheckpointStore,
    StoreProfile,
    WriteReceipt,
)
from repro.utils.rng import default_rng

__all__ = ["CheckpointLevel", "MultilevelPolicy", "MultilevelCheckpointStore"]


class CheckpointLevel(enum.IntEnum):
    """FTI's four checkpoint levels."""

    LOCAL = 1
    PARTNER = 2
    REED_SOLOMON = 3
    PFS = 4


#: Relative write-cost multipliers (PFS = 1.0) — FTI's published measurements
#: put L1 at a few percent of L4 and L2/L3 in between.
_DEFAULT_COST = {
    CheckpointLevel.LOCAL: 0.05,
    CheckpointLevel.PARTNER: 0.15,
    CheckpointLevel.REED_SOLOMON: 0.35,
    CheckpointLevel.PFS: 1.0,
}

#: Probability that a checkpoint at this level survives a (random) failure.
_DEFAULT_SURVIVAL = {
    CheckpointLevel.LOCAL: 0.60,
    CheckpointLevel.PARTNER: 0.85,
    CheckpointLevel.REED_SOLOMON: 0.97,
    CheckpointLevel.PFS: 1.0,
}


@dataclass
class MultilevelPolicy:
    """Which level each successive checkpoint goes to, and level properties.

    ``cycle`` lists the level assigned to checkpoint number ``i mod
    len(cycle)``; FTI's default-like cycle writes mostly cheap local
    checkpoints with a periodic PFS checkpoint.
    """

    cycle: List[CheckpointLevel] = field(
        default_factory=lambda: [
            CheckpointLevel.LOCAL,
            CheckpointLevel.LOCAL,
            CheckpointLevel.PARTNER,
            CheckpointLevel.LOCAL,
            CheckpointLevel.LOCAL,
            CheckpointLevel.PFS,
        ]
    )
    cost_multiplier: Dict[CheckpointLevel, float] = field(
        default_factory=lambda: dict(_DEFAULT_COST)
    )
    survival_probability: Dict[CheckpointLevel, float] = field(
        default_factory=lambda: dict(_DEFAULT_SURVIVAL)
    )

    def __post_init__(self) -> None:
        if not self.cycle:
            raise ValueError("cycle must contain at least one level")
        for level in CheckpointLevel:
            if not (0.0 < self.cost_multiplier[level] <= 1.0 + 1e-9):
                raise ValueError(f"cost multiplier for {level} must be in (0, 1]")
            if not (0.0 <= self.survival_probability[level] <= 1.0):
                raise ValueError(f"survival probability for {level} must be in [0, 1]")

    def level_for(self, checkpoint_index: int) -> CheckpointLevel:
        """Level assigned to the ``checkpoint_index``-th checkpoint."""
        return self.cycle[int(checkpoint_index) % len(self.cycle)]


class MultilevelCheckpointStore(CheckpointStore):
    """Store that routes payloads per level and models level survival.

    ``write`` assigns the level from the policy cycle and routes the payload
    to that level's backend; ``surviving_id`` draws which of the stored
    checkpoints survive a failure (PFS always survives) and returns the
    newest survivor — that is the checkpoint a recovery would actually
    restart from.

    The policy cycle is keyed on *new dynamic* checkpoints only: the static
    checkpoint (negative ids) is pinned to PFS — it must be recoverable after
    any failure and may be rewritten at any time — and overwriting an
    existing checkpoint keeps its level.  Neither advances the cycle, so
    ``snapshot_static()`` calls cannot shift the levels of later dynamic
    checkpoints.

    ``backend`` is the shared backend every level routes to by default (an
    in-memory store when omitted — the legacy behavior); ``level_backends``
    overrides the backend for individual levels.  Partner-level writes add a
    buddy replica under the blob key ``replica/L2/<id>`` on the partner
    backend, via the dedup pool when the backend offers one.
    """

    def __init__(
        self,
        policy: Optional[MultilevelPolicy] = None,
        *,
        seed=None,
        backend: Optional[CheckpointStore] = None,
        level_backends: Optional[Dict[CheckpointLevel, CheckpointStore]] = None,
    ) -> None:
        self.policy = policy or MultilevelPolicy()
        self._backend = backend if backend is not None else MemoryCheckpointStore()
        self._level_backends = dict(level_backends or {})
        self._levels: Dict[int, CheckpointLevel] = {}
        self._dynamic_writes = 0
        self._rng = default_rng(seed)

    # -- backend composition -----------------------------------------------
    def backend_for(self, level: CheckpointLevel) -> CheckpointStore:
        """The backend payloads at ``level`` are routed to."""
        return self._level_backends.get(CheckpointLevel(level), self._backend)

    def profile_for(self, level: CheckpointLevel) -> StoreProfile:
        """Pricing profile of one level: backend profile x level multiplier."""
        level = CheckpointLevel(level)
        base = self.backend_for(level).profile
        multiplier = self.policy.cost_multiplier[level]
        if multiplier == 1.0:
            return base
        return base.scaled(multiplier, name=f"{base.name}/L{int(level)}")

    def _backends(self) -> List[CheckpointStore]:
        seen: List[CheckpointStore] = [self._backend]
        for store in self._level_backends.values():
            if all(store is not other for other in seen):
                seen.append(store)
        return seen

    @staticmethod
    def _replica_key(checkpoint_id: int) -> str:
        return f"replica/L{int(CheckpointLevel.PARTNER)}/{int(checkpoint_id)}"

    def _write_replica(self, store: CheckpointStore, checkpoint_id: int, payload: bytes) -> None:
        key = self._replica_key(checkpoint_id)
        put_chunked = getattr(store, "put_chunked_blob", None)
        try:
            if put_chunked is not None:
                put_chunked(key, payload)
            else:
                store.put_blob(key, payload)
        except NotImplementedError:
            pass  # backend has no blob namespace; replica stays modeled-only

    def _delete_replica(self, store: CheckpointStore, checkpoint_id: int) -> None:
        key = self._replica_key(checkpoint_id)
        delete_chunked = getattr(store, "delete_chunked_blob", None)
        try:
            if delete_chunked is not None:
                delete_chunked(key)
            else:
                store.delete_blob(key)
        except NotImplementedError:
            pass

    # -- CheckpointStore interface -----------------------------------------
    def write(self, checkpoint_id: int, payload: bytes) -> WriteReceipt:
        checkpoint_id = int(checkpoint_id)
        if checkpoint_id < 0:
            level = CheckpointLevel.PFS
        elif checkpoint_id in self._levels:
            level = self._levels[checkpoint_id]
        else:
            level = self.policy.level_for(self._dynamic_writes)
            self._dynamic_writes += 1
        self._levels[checkpoint_id] = level
        store = self.backend_for(level)
        receipt = store.write(checkpoint_id, payload)
        if level == CheckpointLevel.PARTNER:
            self._write_replica(store, checkpoint_id, payload)
        return receipt

    def read(self, checkpoint_id: int) -> bytes:
        checkpoint_id = int(checkpoint_id)
        level = self._levels.get(checkpoint_id)
        if level is not None:
            return self.backend_for(level).read(checkpoint_id)
        for store in self._backends():
            try:
                return store.read(checkpoint_id)
            except KeyError:
                continue
        raise KeyError(f"no checkpoint with id {checkpoint_id}")

    def ids(self) -> List[int]:
        found = set()
        for store in self._backends():
            found.update(store.ids())
        return sorted(found)

    def delete(self, checkpoint_id: int) -> None:
        checkpoint_id = int(checkpoint_id)
        level = self._levels.pop(checkpoint_id, None)
        if level is not None:
            store = self.backend_for(level)
            store.delete(checkpoint_id)
            if level == CheckpointLevel.PARTNER:
                self._delete_replica(store, checkpoint_id)
            return
        for store in self._backends():
            store.delete(checkpoint_id)

    # -- profile & durability ---------------------------------------------
    @property
    def profile(self) -> StoreProfile:
        # The store as a whole is as durable (and as expensive) as its
        # PFS-level backend: that is where static and cycle-top checkpoints
        # land, and what a whole-system recovery reads from.
        return self.backend_for(CheckpointLevel.PFS).profile

    # -- multilevel-specific ---------------------------------------------------
    def next_level(self, offset: int = 0) -> CheckpointLevel:
        """Level the *next* new dynamic checkpoint will be written to.

        Lets a caller price a write before performing it (the fault-tolerance
        engine charges the level's cost even for an attempt that a failure
        later discards); the cycle itself only advances on an actual
        :meth:`write`.  ``offset`` peeks further ahead: an asynchronous engine
        with ``offset`` checkpoints still draining prices the next write at
        the level it will hold once those pending writes commit.
        """
        return self.policy.level_for(self._dynamic_writes + int(offset))

    def level_of(self, checkpoint_id: int) -> CheckpointLevel:
        """The level the given checkpoint was written to."""
        return self._levels[int(checkpoint_id)]

    def cost_multiplier_of(self, checkpoint_id: int) -> float:
        """Relative write cost of the given checkpoint (PFS = 1)."""
        return self.policy.cost_multiplier[self.level_of(checkpoint_id)]

    def surviving_id(self, *, exclude_static: bool = True) -> Optional[int]:
        """Newest checkpoint that survives a simulated failure, if any."""
        candidates = [i for i in self.ids() if not (exclude_static and i < 0)]
        for checkpoint_id in reversed(candidates):
            level = self._levels.get(checkpoint_id, CheckpointLevel.PFS)
            if self._rng.random() <= self.policy.survival_probability[level]:
                return checkpoint_id
        return None
