"""FTI-style multilevel checkpointing (extension beyond the paper's L4-only use).

FTI (Bautista-Gomez et al., SC'11) offers four checkpoint levels with
increasing resilience and cost:

* **L1** — local storage device (fast, survives soft process failures only),
* **L2** — partner copy on a buddy node,
* **L3** — Reed-Solomon encoded across nodes,
* **L4** — the parallel file system (survives whole-system failures).

The paper writes all checkpoints at L4 through MPI-IO; this module adds the
multilevel policy so the ablation benchmarks can quantify how much of the
lossy-checkpointing gain survives when cheaper levels absorb most failures.
The levels here are *modeled*: each level has a cost multiplier relative to a
PFS write and a survival probability given a failure, and the
:class:`MultilevelCheckpointStore` keeps one payload per level while exposing
the plain :class:`~repro.checkpoint.store.CheckpointStore` interface.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpoint.store import CheckpointStore, MemoryCheckpointStore, WriteReceipt
from repro.utils.rng import default_rng

__all__ = ["CheckpointLevel", "MultilevelPolicy", "MultilevelCheckpointStore"]


class CheckpointLevel(enum.IntEnum):
    """FTI's four checkpoint levels."""

    LOCAL = 1
    PARTNER = 2
    REED_SOLOMON = 3
    PFS = 4


#: Relative write-cost multipliers (PFS = 1.0) — FTI's published measurements
#: put L1 at a few percent of L4 and L2/L3 in between.
_DEFAULT_COST = {
    CheckpointLevel.LOCAL: 0.05,
    CheckpointLevel.PARTNER: 0.15,
    CheckpointLevel.REED_SOLOMON: 0.35,
    CheckpointLevel.PFS: 1.0,
}

#: Probability that a checkpoint at this level survives a (random) failure.
_DEFAULT_SURVIVAL = {
    CheckpointLevel.LOCAL: 0.60,
    CheckpointLevel.PARTNER: 0.85,
    CheckpointLevel.REED_SOLOMON: 0.97,
    CheckpointLevel.PFS: 1.0,
}


@dataclass
class MultilevelPolicy:
    """Which level each successive checkpoint goes to, and level properties.

    ``cycle`` lists the level assigned to checkpoint number ``i mod
    len(cycle)``; FTI's default-like cycle writes mostly cheap local
    checkpoints with a periodic PFS checkpoint.
    """

    cycle: List[CheckpointLevel] = field(
        default_factory=lambda: [
            CheckpointLevel.LOCAL,
            CheckpointLevel.LOCAL,
            CheckpointLevel.PARTNER,
            CheckpointLevel.LOCAL,
            CheckpointLevel.LOCAL,
            CheckpointLevel.PFS,
        ]
    )
    cost_multiplier: Dict[CheckpointLevel, float] = field(
        default_factory=lambda: dict(_DEFAULT_COST)
    )
    survival_probability: Dict[CheckpointLevel, float] = field(
        default_factory=lambda: dict(_DEFAULT_SURVIVAL)
    )

    def __post_init__(self) -> None:
        if not self.cycle:
            raise ValueError("cycle must contain at least one level")
        for level in CheckpointLevel:
            if not (0.0 < self.cost_multiplier[level] <= 1.0 + 1e-9):
                raise ValueError(f"cost multiplier for {level} must be in (0, 1]")
            if not (0.0 <= self.survival_probability[level] <= 1.0):
                raise ValueError(f"survival probability for {level} must be in [0, 1]")

    def level_for(self, checkpoint_index: int) -> CheckpointLevel:
        """Level assigned to the ``checkpoint_index``-th checkpoint."""
        return self.cycle[int(checkpoint_index) % len(self.cycle)]


class MultilevelCheckpointStore(CheckpointStore):
    """Store that keeps payloads per level and models level survival.

    ``write`` assigns the level from the policy cycle; ``surviving_id`` draws
    which of the stored checkpoints survive a failure (PFS always survives)
    and returns the newest survivor — that is the checkpoint a recovery would
    actually restart from.

    The policy cycle is keyed on *new dynamic* checkpoints only: the static
    checkpoint (negative ids) is pinned to PFS — it must be recoverable after
    any failure and may be rewritten at any time — and overwriting an
    existing checkpoint keeps its level.  Neither advances the cycle, so
    ``snapshot_static()`` calls cannot shift the levels of later dynamic
    checkpoints.
    """

    def __init__(self, policy: Optional[MultilevelPolicy] = None, *, seed=None) -> None:
        self.policy = policy or MultilevelPolicy()
        self._store = MemoryCheckpointStore()
        self._levels: Dict[int, CheckpointLevel] = {}
        self._dynamic_writes = 0
        self._rng = default_rng(seed)

    # -- CheckpointStore interface -----------------------------------------
    def write(self, checkpoint_id: int, payload: bytes) -> WriteReceipt:
        checkpoint_id = int(checkpoint_id)
        if checkpoint_id < 0:
            level = CheckpointLevel.PFS
        elif checkpoint_id in self._levels:
            level = self._levels[checkpoint_id]
        else:
            level = self.policy.level_for(self._dynamic_writes)
            self._dynamic_writes += 1
        self._levels[checkpoint_id] = level
        return self._store.write(checkpoint_id, payload)

    def read(self, checkpoint_id: int) -> bytes:
        return self._store.read(checkpoint_id)

    def ids(self) -> List[int]:
        return self._store.ids()

    def delete(self, checkpoint_id: int) -> None:
        self._levels.pop(int(checkpoint_id), None)
        self._store.delete(checkpoint_id)

    # -- multilevel-specific ---------------------------------------------------
    def next_level(self, offset: int = 0) -> CheckpointLevel:
        """Level the *next* new dynamic checkpoint will be written to.

        Lets a caller price a write before performing it (the fault-tolerance
        engine charges the level's cost even for an attempt that a failure
        later discards); the cycle itself only advances on an actual
        :meth:`write`.  ``offset`` peeks further ahead: an asynchronous engine
        with ``offset`` checkpoints still draining prices the next write at
        the level it will hold once those pending writes commit.
        """
        return self.policy.level_for(self._dynamic_writes + int(offset))

    def level_of(self, checkpoint_id: int) -> CheckpointLevel:
        """The level the given checkpoint was written to."""
        return self._levels[int(checkpoint_id)]

    def cost_multiplier_of(self, checkpoint_id: int) -> float:
        """Relative write cost of the given checkpoint (PFS = 1)."""
        return self.policy.cost_multiplier[self.level_of(checkpoint_id)]

    def surviving_id(self, *, exclude_static: bool = True) -> Optional[int]:
        """Newest checkpoint that survives a simulated failure, if any."""
        candidates = [i for i in self.ids() if not (exclude_static and i < 0)]
        for checkpoint_id in reversed(candidates):
            level = self._levels.get(checkpoint_id, CheckpointLevel.PFS)
            if self._rng.random() <= self.policy.survival_probability[level]:
                return checkpoint_id
        return None
