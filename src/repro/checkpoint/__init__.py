"""Checkpoint/restart toolkit (the paper's FTI substitute).

The workflow mirrors the paper's description of its library integration
(Section 4.2): *register* the variables to protect (``Protect``), *snapshot*
them periodically (``Snapshot``), and *restore* them after a failure.  The
toolkit classifies variables the way Langou et al. and the paper do —
static / dynamic / recomputed — compresses dynamic variables through any
:class:`~repro.compression.base.Compressor`, and persists the resulting
payload through a pluggable :class:`~repro.checkpoint.store.CheckpointStore`
(in-memory, on-disk, or the FTI-style multilevel scheme).
"""

from repro.checkpoint.variables import VariableRole, ProtectedVariable, VariableRegistry
from repro.checkpoint.serialization import (
    serialize_checkpoint,
    deserialize_checkpoint,
    CheckpointPayload,
)
from repro.checkpoint.store import (
    FAILURE_SCOPES,
    STORE_PROFILES,
    CheckpointStore,
    FileCheckpointStore,
    MemoryCheckpointStore,
    SimulatedObjectStore,
    StoreProfile,
    StoreStat,
    WriteReceipt,
)
from repro.checkpoint.chunked import ChunkedStore, DEFAULT_CHUNK_SIZE, chunk_digest
from repro.checkpoint.manager import CheckpointManager, CheckpointRecord
from repro.checkpoint.multilevel import (
    CheckpointLevel,
    MultilevelPolicy,
    MultilevelCheckpointStore,
)
from repro.checkpoint.pipeline import (
    DEFAULT_KEYFRAME_INTERVAL,
    PIPELINE_VERSION,
    CheckpointPipeline,
    PipelineSnapshot,
    RestoredCheckpoint,
    VariableMeasurement,
)
from repro.checkpoint.delta import (
    DELTA_COMPRESSOR,
    delta_decode,
    delta_encode,
    is_delta_blob,
)

__all__ = [
    "VariableRole",
    "ProtectedVariable",
    "VariableRegistry",
    "serialize_checkpoint",
    "deserialize_checkpoint",
    "CheckpointPayload",
    "CheckpointStore",
    "MemoryCheckpointStore",
    "FileCheckpointStore",
    "SimulatedObjectStore",
    "ChunkedStore",
    "StoreProfile",
    "StoreStat",
    "WriteReceipt",
    "FAILURE_SCOPES",
    "STORE_PROFILES",
    "DEFAULT_CHUNK_SIZE",
    "chunk_digest",
    "CheckpointManager",
    "CheckpointRecord",
    "CheckpointLevel",
    "MultilevelPolicy",
    "MultilevelCheckpointStore",
    "CheckpointPipeline",
    "PipelineSnapshot",
    "RestoredCheckpoint",
    "VariableMeasurement",
    "PIPELINE_VERSION",
    "DEFAULT_KEYFRAME_INTERVAL",
    "DELTA_COMPRESSOR",
    "delta_encode",
    "delta_decode",
    "is_delta_blob",
]
