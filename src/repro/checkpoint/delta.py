"""Bitwise delta encoding of checkpoint vectors (incremental payloads).

Successive iterates of a converging solver are *close*: most of the
mantissa bits of ``x_k`` agree with ``x_{k-1}``.  The incremental mode of
:class:`~repro.checkpoint.pipeline.CheckpointPipeline` exploits that by
shipping, instead of a full compressed vector, the **residual of the raw
IEEE-754 bit patterns** against the last committed payload:

* both arrays are viewed as little-endian ``uint64`` words,
* the wrapping word difference is zigzag-mapped (small signed residuals get
  small codes) and packed through the existing v1 block codec
  (:mod:`repro.compression.codec` — per-block minimal widths, escape channel
  for rough regions, one DEFLATE pass),
* decoding adds the residual back onto the base words, so reconstruction is
  **bitwise exact given the same base**.

The delta blob records which checkpoint it is based on
(``meta["base_id"]``); chains are cut by periodic full *keyframes* so a
restore never has to walk unboundedly far back.  Because a delta reproduces
its input exactly, the error behaviour of the variable is whatever the
*input* already had: lossless inputs round-trip bitwise, and a lossy
variable is delta-encoded on its bound-respecting *reconstruction*, so the
restored value honours the same bound with zero accumulation across deltas.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.base import CompressedBlob
from repro.compression.codec import decode_frame, decode_signed, encode_frame, encode_signed

__all__ = ["DELTA_COMPRESSOR", "DELTA_WIDTH_CAP", "delta_encode", "delta_decode", "is_delta_blob"]

#: Compressor name stamped into delta blobs (they are decoded by
#: :func:`delta_decode` with an explicit base, never via ``make_compressor``).
DELTA_COMPRESSOR = "delta64"

#: Escape-channel cap for delta streams.  Quantization codes are narrow, so
#: the codec's default 32-bit cap suits them — but a float64 bit residual at
#: relative drift ``d`` is ``~52 + log2(d)`` bits wide (35-45 bits for
#: typical inter-checkpoint drift), and escaping all of them would cost 16
#: bytes each.  A 56-bit cap lets whole blocks pack at their natural width
#: (still beating the raw 64 bits) while true outliers keep escaping.
DELTA_WIDTH_CAP = 56


def _as_words(data: np.ndarray) -> np.ndarray:
    """View a float64/int64 array as its raw uint64 bit patterns."""
    arr = np.ascontiguousarray(data)
    if arr.dtype.itemsize != 8:
        raise ValueError(
            f"delta encoding needs 8-byte elements, got dtype {arr.dtype}"
        )
    return arr.reshape(-1).view(np.uint64)


def delta_encode(
    value: np.ndarray,
    base: np.ndarray,
    *,
    base_id: int,
    inner: Optional[str] = None,
    meta: Optional[dict] = None,
) -> CompressedBlob:
    """Encode ``value`` as a bitwise residual against ``base``.

    ``base`` must be the reconstruction a restorer will hold for checkpoint
    ``base_id`` (for exact variables the committed value itself; for lossy
    variables the committed payload's decompressed reconstruction).
    ``inner`` optionally names the compressor whose output the delta rides on
    (carried for reporting only).
    """
    value = np.ascontiguousarray(value, dtype=np.float64)
    base = np.ascontiguousarray(base, dtype=np.float64)
    if value.shape != base.shape:
        raise ValueError(
            f"delta base shape {base.shape} does not match value shape {value.shape}"
        )
    residual = (_as_words(value) - _as_words(base)).view(np.int64)
    payload = encode_frame([encode_signed(residual, width_cap=DELTA_WIDTH_CAP)])
    # Delta payloads stay on the v1 block-codec frame: their residuals are
    # already narrow integers, so the v2 shuffle/shard stage has nothing to
    # add, and keeping the frame stable keeps old delta chains restorable.
    blob_meta = {"base_id": int(base_id), "format_version": 1}
    if inner is not None:
        blob_meta["inner"] = str(inner)
    if meta:
        blob_meta.update(meta)
    return CompressedBlob(
        payload=payload,
        shape=tuple(value.shape),
        dtype=str(value.dtype),
        compressor=DELTA_COMPRESSOR,
        meta=blob_meta,
    )


def delta_decode(blob: CompressedBlob, base: np.ndarray) -> np.ndarray:
    """Reconstruct the array stored in a delta blob given its base."""
    if blob.compressor != DELTA_COMPRESSOR:
        raise ValueError(
            f"blob was produced by {blob.compressor!r}, not {DELTA_COMPRESSOR!r}"
        )
    base = np.ascontiguousarray(base, dtype=np.float64)
    expected = 1
    for dim in blob.shape:
        expected *= int(dim)
    if base.size != expected:
        raise ValueError(
            f"delta base has {base.size} elements, blob stores {expected}"
        )
    (section,) = decode_frame(blob.payload)
    residual = decode_signed(section)
    if residual.size != expected:
        raise ValueError(
            f"delta stream has {residual.size} residuals, blob declares {expected}"
        )
    # ``words`` is freshly allocated by the addition, so the reshaped float64
    # view already owns its memory — no defensive copy needed.
    words = _as_words(base) + residual.view(np.uint64)
    return words.view(np.float64).reshape(blob.shape)


def is_delta_blob(blob: CompressedBlob) -> bool:
    """Whether ``blob`` is an incremental (base-referencing) payload entry."""
    return blob.compressor == DELTA_COMPRESSOR
