"""Content-addressed chunk dedup on top of any :class:`CheckpointStore`.

:class:`ChunkedStore` splits every payload into fixed-size chunks, keys each
chunk by its BLAKE2b digest, and stores chunks once in a refcounted pool on
the wrapped backend's blob namespace.  Each checkpoint is represented by a
small JSON *manifest* (chunk digests in order plus the total length) written
under the checkpoint's integer id, so the wrapped store's ``ids`` /
``latest_id`` / ``prune`` semantics carry over unchanged.

Identical blocks — across delta keyframes, FTI level replicas, or repeated
writes of slowly-changing state — are therefore stored (and, in the engine's
pricing model, *shipped*) only once: bytes that never hit the wire cost
nothing.  The :class:`~repro.checkpoint.store.WriteReceipt` reports
``unique_bytes`` (chunk bytes newly added by this write) and ``dedup_ratio``
(logical bytes / unique bytes) so callers can price the write at the deduped
size; :meth:`ChunkedStore.preview_write` exposes the same split *before*
committing, which is what the engine uses to price a drain it may later
discard.

Besides integer-keyed checkpoints, the store offers *chunked blobs*
(:meth:`ChunkedStore.put_chunked_blob`): string-keyed objects that share the
same chunk pool.  The multilevel store uses them for partner-level replicas,
so a replica of a payload whose chunks are already pooled adds zero unique
bytes.

The manifest layout is documented in ``docs/payload-format.md``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Tuple

from repro.checkpoint.store import (
    CheckpointStore,
    StoreProfile,
    StoreStat,
    WriteReceipt,
)

__all__ = ["ChunkedStore", "DEFAULT_CHUNK_SIZE", "chunk_digest"]

#: Default chunk size (bytes).  Small enough that repeated regions of a
#: multi-megabyte payload dedup well, large enough that the manifest stays a
#: tiny fraction of the payload.
DEFAULT_CHUNK_SIZE = 4096

_MANIFEST_MAGIC = "repro-chunk-manifest"
_MANIFEST_VERSION = 1
_DIGEST_SIZE = 16  # bytes of BLAKE2b -> 32 hex chars per chunk key
_MANIFEST_BLOB_PREFIX = "manifest/"


def chunk_digest(chunk: bytes) -> str:
    """Content address of one chunk: BLAKE2b-128 hex digest."""
    return hashlib.blake2b(chunk, digest_size=_DIGEST_SIZE).hexdigest()


def _chunk_key(digest: str) -> str:
    return f"chunk/{digest}"


class ChunkedStore(CheckpointStore):
    """Content-addressed, refcounted chunking wrapper around any backend.

    Parameters
    ----------
    base:
        The wrapped backend.  It must support the blob API
        (``put_blob``/``get_blob``/...), which all built-in backends do.
    chunk_size:
        Fixed chunk size in bytes; the final chunk of a payload may be
        shorter.

    The refcount table is rebuilt from the manifests already present on the
    base store, so reopening a :class:`ChunkedStore` over an existing
    :class:`~repro.checkpoint.store.FileCheckpointStore` directory resumes
    with correct liveness accounting.
    """

    def __init__(
        self, base: CheckpointStore, *, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.base = base
        self.chunk_size = int(chunk_size)
        self._refcounts: Dict[str, int] = {}
        # Monotone cumulative counters over the store's lifetime; deletes do
        # not roll them back (they describe write traffic, not occupancy).
        self._logical_bytes = 0
        self._unique_bytes = 0
        for checkpoint_id in self.base.ids():
            self._count_refs(self._parse_manifest(self.base.read(checkpoint_id)))
        for key in self.base.blob_keys():
            if key.startswith(_MANIFEST_BLOB_PREFIX):
                self._count_refs(self._parse_manifest(self.base.get_blob(key)))

    # -- manifest helpers --------------------------------------------------
    def _split(self, payload: bytes) -> List[bytes]:
        return [
            payload[offset : offset + self.chunk_size]
            for offset in range(0, len(payload), self.chunk_size)
        ]

    @staticmethod
    def _parse_manifest(raw: bytes) -> Dict:
        manifest = json.loads(raw.decode("utf-8"))
        if manifest.get("magic") != _MANIFEST_MAGIC:
            raise ValueError("payload on the base store is not a chunk manifest")
        return manifest

    def _count_refs(self, manifest: Dict) -> None:
        for digest in manifest["chunks"]:
            self._refcounts[digest] = self._refcounts.get(digest, 0) + 1

    def _load_manifest(self, checkpoint_id: int) -> Dict:
        return self._parse_manifest(self.base.read(checkpoint_id))

    def _store_chunks(self, payload: bytes) -> Tuple[List[str], int, int]:
        """Pool the chunks of ``payload``; return (digests, new_bytes, new_chunks)."""
        digests: List[str] = []
        new_bytes = 0
        new_chunks = 0
        for chunk in self._split(payload):
            digest = chunk_digest(chunk)
            digests.append(digest)
            count = self._refcounts.get(digest, 0)
            if count == 0 and not self.base.has_blob(_chunk_key(digest)):
                self.base.put_blob(_chunk_key(digest), chunk)
                new_bytes += len(chunk)
                new_chunks += 1
            self._refcounts[digest] = count + 1
        self._logical_bytes += len(payload)
        self._unique_bytes += new_bytes
        return digests, new_bytes, new_chunks

    def _release_chunks(self, digests: List[str]) -> None:
        for digest in digests:
            remaining = self._refcounts.get(digest, 0) - 1
            if remaining <= 0:
                self._refcounts.pop(digest, None)
                self.base.delete_blob(_chunk_key(digest))
            else:
                self._refcounts[digest] = remaining

    def _manifest_bytes(self, length: int, digests: List[str]) -> bytes:
        manifest = {
            "magic": _MANIFEST_MAGIC,
            "version": _MANIFEST_VERSION,
            "length": length,
            "chunk_size": self.chunk_size,
            "chunks": digests,
        }
        return json.dumps(manifest, sort_keys=True).encode("utf-8")

    def _assemble(self, manifest: Dict) -> bytes:
        body = b"".join(
            self.base.get_blob(_chunk_key(digest)) for digest in manifest["chunks"]
        )
        if len(body) != manifest["length"]:
            raise ValueError(
                f"reassembled {len(body)} bytes, manifest says {manifest['length']}"
            )
        return body

    def preview_write(self, payload: bytes) -> Tuple[int, int]:
        """``(nbytes, unique_new_bytes)`` a :meth:`write` of ``payload`` would see.

        ``unique_new_bytes`` counts the bytes of chunks not yet in the pool —
        the data that would actually travel to the backend.  Used by the
        engine to price a write before (or without) committing it.
        """
        seen_new = set()
        unique_new = 0
        for chunk in self._split(bytes(payload)):
            digest = chunk_digest(chunk)
            if self._refcounts.get(digest, 0) == 0 and digest not in seen_new:
                seen_new.add(digest)
                unique_new += len(chunk)
        return len(payload), unique_new

    # -- CheckpointStore interface -----------------------------------------
    def write(self, checkpoint_id: int, payload: bytes) -> WriteReceipt:
        payload = bytes(payload)
        checkpoint_id = int(checkpoint_id)
        # Overwrite semantics: drop the previous manifest's references first.
        if checkpoint_id in set(self.base.ids()):
            self.delete(checkpoint_id)
        digests, new_bytes, new_chunks = self._store_chunks(payload)
        receipt = self.base.write(
            checkpoint_id, self._manifest_bytes(len(payload), digests)
        )
        return WriteReceipt(
            checkpoint_id=checkpoint_id,
            nbytes=len(payload),
            seconds=receipt.seconds,
            unique_bytes=new_bytes,
            dedup_ratio=(len(payload) / new_bytes) if new_bytes else float("inf"),
            chunks_total=len(digests),
            chunks_new=new_chunks,
        )

    def read(self, checkpoint_id: int) -> bytes:
        return self._assemble(self._load_manifest(checkpoint_id))

    def ids(self) -> List[int]:
        return self.base.ids()

    def delete(self, checkpoint_id: int) -> None:
        checkpoint_id = int(checkpoint_id)
        if checkpoint_id not in set(self.base.ids()):
            return
        manifest = self._load_manifest(checkpoint_id)
        self.base.delete(checkpoint_id)
        self._release_chunks(manifest["chunks"])

    # -- chunked blobs (string-keyed, same chunk pool) ---------------------
    def put_chunked_blob(self, key: str, payload: bytes) -> WriteReceipt:
        """Store a string-keyed object through the dedup pool.

        Replicas and other auxiliary copies written this way share chunks
        with the integer-keyed checkpoints, so a replica of an
        already-pooled payload adds zero unique bytes.
        """
        payload = bytes(payload)
        manifest_key = _MANIFEST_BLOB_PREFIX + str(key)
        if self.base.has_blob(manifest_key):
            self.delete_chunked_blob(key)
        digests, new_bytes, new_chunks = self._store_chunks(payload)
        self.base.put_blob(manifest_key, self._manifest_bytes(len(payload), digests))
        return WriteReceipt(
            checkpoint_id=-1,
            nbytes=len(payload),
            seconds=0.0,
            unique_bytes=new_bytes,
            dedup_ratio=(len(payload) / new_bytes) if new_bytes else float("inf"),
            chunks_total=len(digests),
            chunks_new=new_chunks,
        )

    def get_chunked_blob(self, key: str) -> bytes:
        manifest_key = _MANIFEST_BLOB_PREFIX + str(key)
        return self._assemble(self._parse_manifest(self.base.get_blob(manifest_key)))

    def delete_chunked_blob(self, key: str) -> None:
        manifest_key = _MANIFEST_BLOB_PREFIX + str(key)
        if not self.base.has_blob(manifest_key):
            return
        manifest = self._parse_manifest(self.base.get_blob(manifest_key))
        self.base.delete_blob(manifest_key)
        self._release_chunks(manifest["chunks"])

    def has_chunked_blob(self, key: str) -> bool:
        return self.base.has_blob(_MANIFEST_BLOB_PREFIX + str(key))

    # -- profile & stats ---------------------------------------------------
    @property
    def profile(self) -> StoreProfile:
        return self.base.profile

    def stat(self, checkpoint_id: int) -> StoreStat:
        manifest = self._load_manifest(checkpoint_id)
        return StoreStat(
            checkpoint_id=int(checkpoint_id),
            nbytes=int(manifest["length"]),
            backend=f"chunked({self.base.profile.name})",
        )

    def dedup_stats(self) -> Dict[str, float]:
        """Cumulative write-traffic dedup over this store's lifetime."""
        return {
            "logical_bytes": float(self._logical_bytes),
            "unique_bytes": float(self._unique_bytes),
            "dedup_ratio": (
                self._logical_bytes / self._unique_bytes
                if self._unique_bytes
                else float("inf") if self._logical_bytes else 1.0
            ),
            "live_chunks": float(len(self._refcounts)),
        }

    def live_chunk_count(self) -> int:
        """Number of distinct chunks currently referenced by any manifest."""
        return len(self._refcounts)

    def refcount(self, digest: str) -> int:
        """Reference count of one chunk digest (0 if unknown)."""
        return self._refcounts.get(digest, 0)

    # -- raw blob passthrough ----------------------------------------------
    def put_blob(self, key: str, payload: bytes) -> None:
        self.base.put_blob(key, payload)

    def get_blob(self, key: str) -> bytes:
        return self.base.get_blob(key)

    def delete_blob(self, key: str) -> None:
        self.base.delete_blob(key)

    def has_blob(self, key: str) -> bool:
        return self.base.has_blob(key)

    def blob_keys(self) -> List[str]:
        return self.base.blob_keys()
