"""Run reports of the fault-tolerance engine (and the failure-free baseline).

:class:`FTRunReport` is the JSON-round-trippable outcome of one
failure-injected run; its serialization is byte-deterministic
(``sort_keys``), which is what the campaign cache, the cross-process
executor and the engine-equivalence tests rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.machine import ClusterModel
from repro.solvers.base import IterativeSolver
from repro.utils.validation import check_positive

__all__ = ["BaselineRun", "FTRunReport", "run_failure_free"]


def _json_scalar(value: object) -> object:
    """Coerce numpy scalars to plain Python so ``json.dumps`` accepts them."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


@dataclass
class BaselineRun:
    """Failure-free reference execution of a solver."""

    iterations: int
    converged: bool
    residual_norms: List[float]
    final_residual_norm: float
    x: np.ndarray

    def productive_seconds(
        self,
        iteration_seconds: Optional[float] = None,
        *,
        cluster: Optional[ClusterModel] = None,
        method: Optional[str] = None,
    ) -> float:
        """Failure-free productive time, ``iterations * Tit``.

        Pass either ``iteration_seconds`` directly or a ``cluster`` model plus
        the ``method`` name to look the per-iteration time up from the
        calibration table.
        """
        if iteration_seconds is None:
            if cluster is None or method is None:
                raise ValueError(
                    "provide iteration_seconds, or a cluster model and method "
                    "name to derive it"
                )
            iteration_seconds = cluster.iteration_time(method)
        return self.iterations * check_positive(iteration_seconds, "iteration_seconds")


def run_failure_free(
    solver: IterativeSolver, b: np.ndarray, *, x0: Optional[np.ndarray] = None
) -> BaselineRun:
    """Run ``solver`` once without failures and return the reference trajectory."""
    result = solver.solve(b, x0=x0)
    return BaselineRun(
        iterations=result.iterations,
        converged=result.converged,
        residual_norms=list(result.residual_norms),
        final_residual_norm=result.final_residual_norm,
        x=result.x,
    )


@dataclass
class FTRunReport:
    """Outcome of one failure-injected run."""

    scheme: str
    method: str
    converged: bool
    total_iterations: int
    baseline_iterations: int
    num_failures: int
    num_checkpoints: int
    num_restarts_from_scratch: int
    total_seconds: float
    productive_seconds: float
    checkpoint_seconds: float
    recovery_seconds: float
    checkpoint_interval_seconds: float
    mean_checkpoint_seconds: float
    mean_recovery_seconds: float
    mean_compression_ratio: float
    residual_trace: List[Tuple[int, float]] = field(default_factory=list)
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def extra_iterations(self) -> int:
        """Iterations beyond the failure-free baseline (the measured N' total)."""
        return self.total_iterations - self.baseline_iterations

    @property
    def gave_up(self) -> bool:
        """True when the run hit a restart/iteration cap before converging."""
        return bool(self.info.get("gave_up", False))

    @property
    def write_mode(self) -> str:
        """Which timeline the checkpoint writes ran on (default ``blocking``)."""
        return str(self.info.get("write_mode", "blocking"))

    @property
    def io_drain_seconds(self) -> float:
        """Total I/O-channel drain time of an async run (0 for blocking runs).

        Drain time overlaps compute, so it is *not* part of
        ``total_seconds``/overhead — it measures how busy the second channel
        was.
        """
        return float(self.info.get("io_drain_seconds", 0.0))

    @property
    def fault_tolerance_overhead(self) -> float:
        """Total time minus the failure-free productive time (paper's metric)."""
        return self.total_seconds - self.productive_seconds

    @property
    def overhead_fraction(self) -> float:
        """Overhead relative to the failure-free productive time."""
        if self.productive_seconds == 0:
            return float("inf")
        return self.fault_tolerance_overhead / self.productive_seconds

    # -- serialization (campaign cache / worker transport) -------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary representation (numpy scalars coerced)."""
        return {
            "scheme": str(self.scheme),
            "method": str(self.method),
            "converged": bool(self.converged),
            "total_iterations": int(self.total_iterations),
            "baseline_iterations": int(self.baseline_iterations),
            "num_failures": int(self.num_failures),
            "num_checkpoints": int(self.num_checkpoints),
            "num_restarts_from_scratch": int(self.num_restarts_from_scratch),
            "total_seconds": float(self.total_seconds),
            "productive_seconds": float(self.productive_seconds),
            "checkpoint_seconds": float(self.checkpoint_seconds),
            "recovery_seconds": float(self.recovery_seconds),
            "checkpoint_interval_seconds": float(self.checkpoint_interval_seconds),
            "mean_checkpoint_seconds": float(self.mean_checkpoint_seconds),
            "mean_recovery_seconds": float(self.mean_recovery_seconds),
            "mean_compression_ratio": float(self.mean_compression_ratio),
            "residual_trace": [
                [int(it), float(res)] for it, res in self.residual_trace
            ],
            "info": {str(k): _json_scalar(v) for k, v in self.info.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FTRunReport":
        """Rebuild a report from :meth:`to_dict` output (or parsed JSON)."""
        return cls(
            scheme=str(data["scheme"]),
            method=str(data["method"]),
            converged=bool(data["converged"]),
            total_iterations=int(data["total_iterations"]),
            baseline_iterations=int(data["baseline_iterations"]),
            num_failures=int(data["num_failures"]),
            num_checkpoints=int(data["num_checkpoints"]),
            num_restarts_from_scratch=int(data["num_restarts_from_scratch"]),
            total_seconds=float(data["total_seconds"]),
            productive_seconds=float(data["productive_seconds"]),
            checkpoint_seconds=float(data["checkpoint_seconds"]),
            recovery_seconds=float(data["recovery_seconds"]),
            checkpoint_interval_seconds=float(data["checkpoint_interval_seconds"]),
            mean_checkpoint_seconds=float(data["mean_checkpoint_seconds"]),
            mean_recovery_seconds=float(data["mean_recovery_seconds"]),
            mean_compression_ratio=float(data["mean_compression_ratio"]),
            residual_trace=[
                (int(it), float(res)) for it, res in data.get("residual_trace", [])
            ],
            info=dict(data.get("info", {})),
        )

    def to_json(self, **kwargs) -> str:
        """Serialize to a JSON string (``sort_keys`` for byte-determinism)."""
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "FTRunReport":
        """Rebuild a report from a :meth:`to_json` string."""
        return cls.from_dict(json.loads(payload))
