"""Failure/recovery scenarios — the engine's pluggable execution regime.

A :class:`Scenario` names the two orthogonal knobs of Section 5.4's
failure-injection methodology that the original runner hard-wired:

* **failure model** — how failure inter-arrival times are drawn
  (``poisson``, the paper's process; ``weibull`` infant-mortality
  clustering; ``bursty`` correlated arrivals; see
  :mod:`repro.cluster.failures`);
* **recovery levels** — where checkpoints live and therefore what a
  recovery costs: ``pfs`` always prices a parallel-file-system round trip
  (the paper's L4-only setup), ``fti`` walks the FTI level cycle of
  :class:`~repro.checkpoint.multilevel.MultilevelCheckpointStore`, so most
  checkpoints are cheap local/partner copies that may not survive a failure
  (falling back to an older, safer checkpoint costs extra rollback).

A third knob, **checkpoint costing**, selects how checkpoint/recovery bytes
are priced: ``measured`` (the default) prices every checkpoint from the
byte size of the serialized :class:`~repro.checkpoint.pipeline.
CheckpointPipeline` payload it actually produced — each full-length vector
scaled to paper size by its own measured compression ratio — while
``modeled`` retains the historical ``vector_bytes × dynamic_vector_count /
ratio(x)`` estimate.  The modeled Poisson/PFS regime reproduces the
pre-pipeline runner byte-for-byte (pinned by the engine-equivalence suite);
the campaign grid exposes all knobs as axes.

A fourth knob, **write mode**, selects the timeline a checkpoint write runs
on: ``blocking`` (the paper's stop-the-world write — the solver stalls for
compression *and* the PFS write) or ``async`` (two-channel timeline — the
solver only stalls for the inline capture while the PFS write *drains* on a
separate I/O channel overlapping subsequent compute; the checkpoint is not
recoverable until its drain completes, a failure mid-drain falls back to
the previous completed checkpoint, and payloads ship incremental deltas).

A fifth knob, **store backend**, selects which
:class:`~repro.checkpoint.store.CheckpointStore` holds the payloads and
which :class:`~repro.checkpoint.store.StoreProfile` prices the writes,
reads, and drains: ``pfs`` (the default — the paper's implicit parallel
file system, priced through the legacy :class:`~repro.cluster.pfs.PFSModel`
path bit-exactly), ``memory`` (node-RAM staging), ``disk`` (node-local
burst buffer), ``object`` (a simulated remote object store), or ``chunked``
(content-addressed dedup over the object store — unique bytes price the
write, duplicate chunks never hit the wire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.checkpoint.chunked import ChunkedStore
from repro.checkpoint.multilevel import MultilevelCheckpointStore, MultilevelPolicy
from repro.checkpoint.store import (
    CheckpointStore,
    MemoryCheckpointStore,
    SimulatedObjectStore,
)
from repro.cluster.failures import FailureInjector, make_failure_model
from repro.utils.rng import SeedLike, default_rng, derive_seed

__all__ = [
    "Scenario",
    "FAILURE_MODELS",
    "CAMPAIGN_FAILURE_MODELS",
    "RECOVERY_LEVELS",
    "CHECKPOINT_COSTINGS",
    "WRITE_MODES",
    "STORE_BACKENDS",
    "DEFAULT_SCENARIO",
]

#: Failure-model names a scenario accepts.  ``scripted`` (failures at
#: explicit virtual times, via ``failure_params=(("times", (...)),)``) is for
#: deterministic studies and regression tests.
FAILURE_MODELS = ("poisson", "weibull", "bursty", "scripted")

#: The subset valid as a campaign-grid axis: campaign cells cannot carry the
#: explicit times a scripted model needs, so accepting ``scripted`` there
#: would silently cache failure-free runs as FT measurements.
CAMPAIGN_FAILURE_MODELS = ("poisson", "weibull", "bursty")

#: Recovery-level regimes a scenario (and the campaign grid) accepts.
RECOVERY_LEVELS = ("pfs", "fti")

#: How checkpoint/recovery bytes are priced: from the measured serialized
#: pipeline payload (default) or from the historical modeled estimate.
CHECKPOINT_COSTINGS = ("measured", "modeled")

#: Which timeline a checkpoint write runs on: ``blocking`` stalls the solver
#: for the whole write (the paper's model); ``async`` overlaps the storage
#: drain with compute on a second I/O channel and ships incremental deltas.
WRITE_MODES = ("blocking", "async")

#: Which checkpoint-store backend holds (and prices) the payloads.  ``pfs``
#: is the paper's implicit parallel file system and reproduces the legacy
#: pricing path bit-exactly; the others route pricing through the backend's
#: :class:`~repro.checkpoint.store.StoreProfile`.
STORE_BACKENDS = ("pfs", "memory", "disk", "object", "chunked")

_Params = Tuple[Tuple[str, object], ...]


@dataclass(frozen=True)
class Scenario:
    """One (failure model × recovery levels) execution regime.

    ``failure_params`` are passed through to the failure-model constructor
    (e.g. ``(("shape", 0.5),)`` for a harsher Weibull); kept as a tuple of
    pairs so scenarios stay hashable and cache-key friendly.
    """

    failure_model: str = "poisson"
    recovery_levels: str = "pfs"
    failure_params: _Params = ()
    checkpoint_costing: str = "measured"
    write_mode: str = "blocking"
    store_backend: str = "pfs"

    def __post_init__(self) -> None:
        if self.failure_model not in FAILURE_MODELS:
            raise ValueError(
                f"unknown failure model {self.failure_model!r}; "
                f"known: {FAILURE_MODELS}"
            )
        if self.recovery_levels not in RECOVERY_LEVELS:
            raise ValueError(
                f"unknown recovery levels {self.recovery_levels!r}; "
                f"known: {RECOVERY_LEVELS}"
            )
        if self.checkpoint_costing not in CHECKPOINT_COSTINGS:
            raise ValueError(
                f"unknown checkpoint costing {self.checkpoint_costing!r}; "
                f"known: {CHECKPOINT_COSTINGS}"
            )
        if self.write_mode not in WRITE_MODES:
            raise ValueError(
                f"unknown write mode {self.write_mode!r}; known: {WRITE_MODES}"
            )
        if self.store_backend not in STORE_BACKENDS:
            raise ValueError(
                f"unknown store backend {self.store_backend!r}; "
                f"known: {STORE_BACKENDS}"
            )
        object.__setattr__(
            self, "failure_params", tuple((str(k), v) for k, v in self.failure_params)
        )

    @property
    def is_default(self) -> bool:
        """True for the default regime (Poisson, PFS-only, measured bytes)."""
        return self.is_paper_regime and self.measured

    @property
    def is_paper_regime(self) -> bool:
        """Poisson arrivals + PFS-only recovery + blocking writes to the PFS.

        The modeled variant of this regime is what the frozen pre-pipeline
        runner priced, so its reports carry no scenario info keys — keeping
        them byte-identical to the legacy reference.
        """
        return (
            self.failure_model == "poisson"
            and self.recovery_levels == "pfs"
            and not self.failure_params
            and self.write_mode == "blocking"
            and self.store_backend == "pfs"
        )

    @property
    def measured(self) -> bool:
        """True when checkpoints are priced from measured payload bytes."""
        return self.checkpoint_costing == "measured"

    @property
    def asynchronous(self) -> bool:
        """True when checkpoint writes drain on the overlapped I/O channel."""
        return self.write_mode == "async"

    @property
    def multilevel(self) -> bool:
        """True when checkpoints walk the FTI level cycle."""
        return self.recovery_levels == "fti"

    @property
    def default_backend(self) -> bool:
        """True for the paper's implicit PFS backend (legacy pricing path)."""
        return self.store_backend == "pfs"

    # -- factories -----------------------------------------------------------
    def build_injector(
        self, mtti_seconds: Optional[float], seed: SeedLike
    ) -> FailureInjector:
        """The failure injector for one run (disabled when ``mtti`` is None)."""
        if mtti_seconds is None or mtti_seconds == float("inf"):
            return FailureInjector(None, seed=seed)
        if self.failure_model == "poisson" and not self.failure_params:
            # Construct exactly what the pre-engine runner constructed so the
            # RNG stream (and therefore every report byte) is unchanged.
            return FailureInjector(mtti_seconds, seed=seed)
        model = make_failure_model(
            self.failure_model, mtti_seconds, **dict(self.failure_params)
        )
        return FailureInjector(mtti_seconds, seed=seed, model=model)

    def build_backend_store(
        self, *, directory: Optional[str] = None
    ) -> Optional[CheckpointStore]:
        """The physical payload store this scenario's backend selects.

        ``None`` for the default ``pfs`` backend: the engine keeps its legacy
        in-memory payload holding with modeled PFS pricing, which the
        byte-identity suite pins.  ``disk`` needs a ``directory`` to root the
        :class:`~repro.checkpoint.store.FileCheckpointStore` in.
        """
        if self.store_backend == "pfs":
            return None
        if self.store_backend == "memory":
            return MemoryCheckpointStore()
        if self.store_backend == "disk":
            if directory is None:
                raise ValueError("store_backend='disk' needs a directory")
            from repro.checkpoint.store import FileCheckpointStore

            return FileCheckpointStore(directory)
        if self.store_backend == "object":
            return SimulatedObjectStore()
        if self.store_backend == "chunked":
            return ChunkedStore(SimulatedObjectStore())
        raise AssertionError(f"unhandled store backend {self.store_backend!r}")

    def build_multilevel_store(
        self,
        seed: SeedLike,
        *,
        policy: Optional[MultilevelPolicy] = None,
        backend: Optional[CheckpointStore] = None,
    ) -> Optional[MultilevelCheckpointStore]:
        """The multilevel store for one run (``None`` under PFS-only recovery).

        The store's survival draws get their own stream derived from the run
        seed so they do not perturb the failure-arrival stream.  Every
        ``SeedLike`` flavour yields a distinct, reproducible child seed —
        collapsing non-int seeds to one constant would correlate the
        survival outcomes of supposedly independent runs.
        """
        if not self.multilevel:
            return None
        if seed is None:
            store_seed: SeedLike = None  # fresh entropy, like the injector
        elif isinstance(seed, (int, np.integer)):
            store_seed = derive_seed(int(seed), "multilevel")
        else:
            # SeedSequence / Generator: draw one child seed from it (the
            # injector owns its own draws, so the streams stay distinct).
            store_seed = derive_seed(
                int(default_rng(seed).integers(0, 2**63 - 1)), "multilevel"
            )
        return MultilevelCheckpointStore(policy, seed=store_seed, backend=backend)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (campaign cells, report info)."""
        return {
            "failure_model": self.failure_model,
            "recovery_levels": self.recovery_levels,
            "failure_params": [[k, v] for k, v in self.failure_params],
            "checkpoint_costing": self.checkpoint_costing,
            "write_mode": self.write_mode,
            "store_backend": self.store_backend,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output (or parsed JSON)."""
        return cls(
            failure_model=str(data.get("failure_model", "poisson")),
            recovery_levels=str(data.get("recovery_levels", "pfs")),
            failure_params=tuple(
                (str(k), v) for k, v in data.get("failure_params", [])
            ),
            checkpoint_costing=str(data.get("checkpoint_costing", "measured")),
            write_mode=str(data.get("write_mode", "blocking")),
            store_backend=str(data.get("store_backend", "pfs")),
        )


#: The default regime: homogeneous Poisson failures, PFS-only recovery,
#: measured-payload checkpoint costing.  The paper's original modeled pricing
#: remains available as ``Scenario(checkpoint_costing="modeled")``.
DEFAULT_SCENARIO = Scenario()
