"""Deterministic trajectory-replay cache for the fault-tolerance engine.

The engine re-executes real solver numerics after every modeled failure,
even though restores are deterministic: a phase that starts from the same
numeric state produces the same iterates bit for bit, so each distinct
iteration span only needs to be *computed* once — afterwards its residual
trajectory can be replayed against the virtual timeline without a single
matvec.

Key
---
A phase — one ``solver.solve(b, x0=..., resume_state=...)`` call — is keyed
by a BLAKE2b digest of its exact numeric start state
(:func:`repro.checkpoint.pipeline.state_digest`): the iterate bytes plus the
resume vectors/scalars, salted with a fingerprint of the solver
configuration (class, matrix bytes, convergence criterion, preconditioner
action) and the right-hand side.  The iteration offset is a *label* — it
shifts reported indices but not the numerics — so it stays out of the key,
which is what lets a re-executed span after a rollback hit the recording of
the original execution.

Replay
------
A cache hit replays the recorded per-iteration residual norms through the
engine's compute callback as lazy :class:`_ReplayState` objects.  Scalars
and flags (``converged``, ``cycle_end``, ``rho`` …) are recorded per
iteration; full vector state is only retained at the snapshots the engine
actually captured at checkpoint boundaries.  When a replay needs a boundary
the recording did not capture (failure arrivals land at arbitrary
iterations, and different scenarios place checkpoints differently), the
state is *materialized* by numeric catch-up from the nearest recorded
snapshot whose resume is provably bitwise — the phase start always
qualifies (re-executing the identical call is deterministic), mid-phase
snapshots only for solvers whose :class:`~repro.solvers.base.CheckpointSpec`
declares ``bitwise_resume`` (stationary methods, BiCGSTAB, GMRES at a cycle
end; *not* CG, whose resume recomputes ``r = b - A x``).

Because replayed states carry the recorded bits, every downstream decision —
clock arithmetic, calendar postings, failure draws, checkpoint payload
bytes — is unchanged, and reports stay byte-identical with the cache on or
off (pinned by the equivalence, golden-report and replay hypothesis
suites).

Bounds and escape hatch
-----------------------
The process-wide cache is LRU-bounded in entries and retained bytes.
``REPRO_REPLAY=off`` (or ``FaultToleranceEngine(replay=False)``) disables
the whole mechanism.
"""

from __future__ import annotations

import hashlib
import os
import struct
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.checkpoint.pipeline import state_digest
from repro.solvers.base import (
    IterationState,
    IterativeSolver,
    ResumeState,
    SolveResult,
    SolverInterrupt,
)

__all__ = [
    "REPLAY_ENV",
    "replay_enabled",
    "solver_fingerprint",
    "scheme_fingerprint",
    "TrajectoryCache",
    "TrajectoryRecording",
    "RecordedStep",
    "ReplaySession",
    "SnapshotMemo",
    "get_global_cache",
    "get_global_snapshot_memo",
    "clear_global_cache",
]

#: Environment escape hatch: set to ``off``/``0``/``false``/``no``/
#: ``disabled`` to run every phase numerically.
REPLAY_ENV = "REPRO_REPLAY"
_OFF_VALUES = {"0", "off", "false", "no", "disabled"}

#: Fixed per-step bookkeeping estimate (list slot, dataclass, small dict).
_STEP_OVERHEAD_BYTES = 120


def replay_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the replay switch: explicit ``override`` beats the env var."""
    if override is not None:
        return bool(override)
    return os.environ.get(REPLAY_ENV, "").strip().lower() not in _OFF_VALUES


# ---------------------------------------------------------------------------
# Solver identity
# ---------------------------------------------------------------------------

_FINGERPRINTS: "weakref.WeakKeyDictionary[IterativeSolver, bytes]" = (
    weakref.WeakKeyDictionary()
)


def _probe_vectors(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Two deterministic, RNG-free probe vectors covering all components."""
    base = np.arange(n, dtype=np.float64)
    return np.cos(base), 1.0 / (base + 2.0)


def solver_fingerprint(solver: IterativeSolver) -> bytes:
    """Digest of everything that determines a solver's iteration trajectory.

    Covers the algorithm (class), the exact matrix bytes, the convergence
    criterion, the method-specific shape parameters of the built-in solvers
    (GMRES ``restart``, SOR/SSOR ``omega``) and the *action* of the
    preconditioner — probed on deterministic vectors, so differently
    configured preconditioners of the same class hash differently without
    the fingerprint having to know their parameters.  Cached per solver
    instance (the probe applies the preconditioner twice).
    """
    try:
        return _FINGERPRINTS[solver]
    except (KeyError, TypeError):
        pass
    h = hashlib.blake2b(digest_size=16)
    cls = type(solver)
    h.update(f"{cls.__module__}.{cls.__qualname__}".encode("utf-8"))
    A = solver.A.tocsr()
    h.update(struct.pack("<qq", *A.shape))
    h.update(np.asarray(A.indptr).tobytes())
    h.update(np.asarray(A.indices).tobytes())
    h.update(np.ascontiguousarray(A.data, dtype=np.float64).tobytes())
    crit = solver.criterion
    h.update(struct.pack("<ddd", crit.rtol, crit.atol, crit.divtol))
    for attr in ("restart", "omega"):
        value = getattr(solver, attr, None)
        if isinstance(value, (int, float)):
            h.update(f"{attr}={value!r}".encode("utf-8"))
    M = solver.preconditioner
    h.update(type(M).__qualname__.encode("utf-8"))
    for probe in _probe_vectors(solver.n):
        h.update(np.ascontiguousarray(M.solve(probe), dtype=np.float64).tobytes())
    digest = h.digest()
    try:
        _FINGERPRINTS[solver] = digest
    except TypeError:  # pragma: no cover - solver without weakref support
        pass
    return digest


# ---------------------------------------------------------------------------
# Recordings
# ---------------------------------------------------------------------------


@dataclass
class RecordedStep:
    """One recorded iteration: the residual norm plus the light extras.

    Vector-valued extras are *not* stored per step (that would retain the
    whole trajectory); only their names are, so lazy replay states can
    answer ``in``-checks and trigger materialization on access.  Light
    values (bools, floats) are immutable and stored by reference.
    """

    __slots__ = ("residual_norm", "light_extras", "vector_names")

    residual_norm: float
    light_extras: Dict[str, object]
    vector_names: Tuple[str, ...]


@dataclass
class TrajectoryRecording:
    """The replayable record of one solve phase.

    ``ended`` classifies how the recording stopped:

    * ``"terminal"`` — ``_solve`` returned (converged, intrinsic breakdown/
      divergence, or budget-capped); replayable as-is for the same budget.
    * ``"interrupted"`` — a callback raised :class:`SolverInterrupt`
      mid-phase; the steps are a valid prefix, replayable only when the end
      state supports a bitwise numeric continuation.
    * ``"opaque"`` — the solver's emissions were not 1:1 with its counted
      iterations (foreign solver); never replayed.

    ``snapshots`` maps phase-local iteration indices (1-based) to the full
    :class:`IterationState` captured there — the states the engine saw at
    checkpoint boundaries, the phase's end state, and any state later
    materialized by catch-up.
    """

    key: bytes
    limit: int
    solver_name: str
    start_x: np.ndarray
    start_resume: Optional[ResumeState]
    steps: List[RecordedStep] = field(default_factory=list)
    snapshots: Dict[int, IterationState] = field(default_factory=dict)
    ended: str = "interrupted"
    converged: bool = False
    final_x: Optional[np.ndarray] = None
    residual0: Optional[float] = None
    info: Dict[str, object] = field(default_factory=dict)
    #: Bytes this recording is currently accounted for in its cache.
    nbytes: int = 0

    def measure(self) -> int:
        """Approximate retained bytes (arrays dominate; structs estimated)."""
        total = self.start_x.nbytes + 64
        if self.start_resume is not None:
            total += sum(v.nbytes for v in self.start_resume.vectors.values())
            total += 8 * len(self.start_resume.scalars)
        if self.final_x is not None:
            total += self.final_x.nbytes
        total += len(self.steps) * _STEP_OVERHEAD_BYTES
        for snap in self.snapshots.values():
            total += snap.x.nbytes + 64
            for value in snap.extras.values():
                if isinstance(value, np.ndarray):
                    total += value.nbytes
        return total


def _copy_state(it_state: IterationState) -> IterationState:
    """Decoupled copy of an iteration state (arrays owned by the recording)."""
    extras: Dict[str, object] = {}
    for name, value in it_state.extras.items():
        extras[name] = value.copy() if isinstance(value, np.ndarray) else value
    return IterationState(
        iteration=int(it_state.iteration),
        x=it_state.x.copy(),
        residual_norm=float(it_state.residual_norm),
        extras=extras,
    )


def _copy_resume(resume: Optional[ResumeState]) -> Optional[ResumeState]:
    if resume is None:
        return None
    return ResumeState(
        iteration=int(resume.iteration),
        vectors={name: v.copy() for name, v in resume.vectors.items()},
        scalars=dict(resume.scalars),
    )


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


class TrajectoryCache:
    """Process-wide LRU of :class:`TrajectoryRecording` objects.

    Bounded both in entry count and in retained bytes (snapshots added
    after insertion — checkpoint boundaries, catch-up materializations —
    are re-accounted via :meth:`put`).  Entries pinned by an active replay
    are never evicted.
    """

    def __init__(self, max_entries: int = 256, max_bytes: int = 256 * 1024 * 1024):
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[bytes, TrajectoryRecording]" = OrderedDict()
        self._pins: Dict[bytes, int] = {}
        self.total_bytes = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: bytes) -> Optional[TrajectoryRecording]:
        rec = self._entries.get(key)
        if rec is not None:
            self._entries.move_to_end(key)
        return rec

    def put(self, rec: TrajectoryRecording) -> None:
        """Insert or re-account a recording (idempotent on the same object)."""
        old = self._entries.pop(rec.key, None)
        if old is not None:
            self.total_bytes -= old.nbytes
        rec.nbytes = rec.measure()
        self._entries[rec.key] = rec
        self.total_bytes += rec.nbytes
        self._evict()

    def pin(self, key: bytes) -> None:
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: bytes) -> None:
        count = self._pins.get(key, 0) - 1
        if count <= 0:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count

    def clear(self) -> None:
        self._entries.clear()
        self._pins.clear()
        self.total_bytes = 0

    def _evict(self) -> None:
        while len(self._entries) > self.max_entries or self.total_bytes > self.max_bytes:
            victim = None
            for key in self._entries:  # oldest first
                if key not in self._pins:
                    victim = key
                    break
            if victim is None:  # everything live is pinned
                break
            rec = self._entries.pop(victim)
            self.total_bytes -= rec.nbytes
            self.evictions += 1


_GLOBAL_CACHE: Optional[TrajectoryCache] = None


def get_global_cache() -> TrajectoryCache:
    """The process-wide cache engines share by default."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = TrajectoryCache()
    return _GLOBAL_CACHE


def clear_global_cache() -> None:
    if _GLOBAL_CACHE is not None:
        _GLOBAL_CACHE.clear()
    if _GLOBAL_SNAPSHOT_MEMO is not None:
        _GLOBAL_SNAPSHOT_MEMO.clear()


# ---------------------------------------------------------------------------
# Checkpoint-payload memoization
# ---------------------------------------------------------------------------


def scheme_fingerprint(scheme) -> bytes:
    """Digest of a checkpointing scheme's observable payload behaviour.

    The scheme's dataclass fields do not pin everything that shapes payload
    bytes (a lossless zlib level or a lossy error bound live inside the
    compressor factory), so — like the preconditioner probe in
    :func:`solver_fingerprint` — the compressor is exercised on a
    deterministic vector at two residual levels and the resulting blobs are
    hashed.  Differently configured schemes of the same name hash
    differently without the fingerprint having to know their parameters.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(scheme.name.encode("utf-8"))
    h.update(scheme.description.encode("utf-8"))
    h.update(b"K" if scheme.checkpoint_krylov_state else b"k")
    h.update(b"L" if scheme.lossy else b"l")
    probe = np.cos(np.arange(257, dtype=np.float64) / 3.0)
    for residual_norm in (1.0, 1e-6):
        compressor = scheme.checkpoint_compressor(
            residual_norm=residual_norm, b_norm=1.0
        )
        blob, _ = compressor.compress_with_record(probe)
        h.update(blob.compressor.encode("utf-8") + b"\0")
        h.update(blob.payload)
    return h.digest()


class SnapshotMemo:
    """Process-wide LRU of finished checkpoint payloads.

    Values are :class:`~repro.checkpoint.pipeline.PipelineSnapshot` objects
    keyed by the pipeline's lineage digest (see
    :meth:`~repro.checkpoint.pipeline.CheckpointPipeline.enable_snapshot_memo`).
    Entries are immutable once built — payload bytes are never mutated and
    delta-base reconstructions are only ever read — so a hit is returned by
    reference.  Byte accounting covers the serialized payload plus retained
    reconstructions.
    """

    _ENTRY_OVERHEAD_BYTES = 256

    def __init__(
        self,
        max_entries: int = 4096,
        max_bytes: int = 128 * 1024 * 1024,
    ) -> None:
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[bytes, object]" = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @classmethod
    def _measure(cls, snapshot) -> int:
        size = len(snapshot.payload) + cls._ENTRY_OVERHEAD_BYTES
        for recon in snapshot.reconstructions.values():
            size += int(recon.nbytes)
        return size

    def get(self, key: bytes):
        snapshot = self._entries.get(key)
        if snapshot is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return snapshot

    def put(self, key: bytes, snapshot) -> None:
        old = self._entries.pop(key, None)
        if old is not None:
            self.total_bytes -= self._measure(old)
        self._entries[key] = snapshot
        self.total_bytes += self._measure(snapshot)
        while self._entries and (
            len(self._entries) > self.max_entries
            or self.total_bytes > self.max_bytes
        ):
            _, evicted = self._entries.popitem(last=False)
            self.total_bytes -= self._measure(evicted)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self.total_bytes = 0


_GLOBAL_SNAPSHOT_MEMO: Optional[SnapshotMemo] = None


def get_global_snapshot_memo() -> SnapshotMemo:
    """The process-wide payload memo engines share by default."""
    global _GLOBAL_SNAPSHOT_MEMO
    if _GLOBAL_SNAPSHOT_MEMO is None:
        _GLOBAL_SNAPSHOT_MEMO = SnapshotMemo()
    return _GLOBAL_SNAPSHOT_MEMO


# ---------------------------------------------------------------------------
# Recording / replaying one engine run
# ---------------------------------------------------------------------------


class _PhaseRecorder:
    """Collects a solve's emissions into a :class:`TrajectoryRecording`.

    ``base_local`` is 0 for a fresh recording and the existing step count
    when a numeric continuation extends an interrupted recording in place.
    """

    def __init__(self, rec: TrajectoryRecording, base_local: int) -> None:
        self.rec = rec
        self.base = int(base_local)
        self.last_state: Optional[IterationState] = None
        self.result: Optional[SolveResult] = None

    def on_iteration(self, it_state: IterationState) -> None:
        light: Dict[str, object] = {}
        vector_names: List[str] = []
        for name, value in it_state.extras.items():
            if isinstance(value, np.ndarray):
                vector_names.append(name)
            else:
                light[name] = value
        self.rec.steps.append(
            RecordedStep(
                residual_norm=float(it_state.residual_norm),
                light_extras=light,
                vector_names=tuple(vector_names),
            )
        )
        self.last_state = it_state

    def on_result(self, result: SolveResult) -> None:
        self.result = result

    def note_snapshot(self, it_state: IterationState) -> None:
        """Retain the full state at an engine checkpoint boundary."""
        local = len(self.rec.steps)
        if local > self.base and local not in self.rec.snapshots:
            self.rec.snapshots[local] = _copy_state(it_state)

    def finalize(self, result: SolveResult) -> None:
        rec = self.rec
        if self.base + result.iterations != len(rec.steps):
            # Emissions were not 1:1 with counted iterations (a foreign
            # solver): the step list cannot stand in for the execution.
            rec.ended = "opaque"
            return
        rec.ended = "terminal"
        rec.converged = bool(result.converged)
        rec.final_x = np.array(result.x, dtype=np.float64, copy=True)
        rec.info = dict(result.info)
        if self.base == 0 and result.residual_norms:
            rec.residual0 = float(result.residual_norms[0])
        if self.last_state is not None:
            self.note_snapshot(self.last_state)

    def finalize_interrupted(self) -> None:
        self.rec.ended = "interrupted"
        if self.last_state is not None:
            # The end state is the continuation point for a later extension.
            self.note_snapshot(self.last_state)


class _LazyExtras:
    """Mapping view over a recorded step's extras.

    Light values answer directly; vector values materialize the full state
    on first access (checkpoint boundaries only), so ``capture_resume_state``
    sees exactly what a numeric execution would have emitted.
    """

    __slots__ = ("_state", "_step")

    def __init__(self, state: "_ReplayState", step: RecordedStep) -> None:
        self._state = state
        self._step = step

    def __contains__(self, name: object) -> bool:
        return name in self._step.light_extras or name in self._step.vector_names

    def __getitem__(self, name: str) -> object:
        light = self._step.light_extras
        if name in light:
            return light[name]
        if name in self._step.vector_names:
            return self._state._full().extras[name]
        raise KeyError(name)

    def get(self, name: str, default: object = None) -> object:
        if name in self:
            return self[name]
        return default

    def keys(self):
        return list(self._step.light_extras) + list(self._step.vector_names)

    def __iter__(self):
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._step.light_extras) + len(self._step.vector_names)


class _ReplayState:
    """Duck-typed :class:`IterationState` served from a recording.

    ``iteration`` and ``residual_norm`` come straight from the recorded
    step; ``x`` (and vector extras) materialize lazily via the session's
    catch-up machinery — the engine only touches them at checkpoint
    boundaries, which is the whole point of replay.
    """

    __slots__ = ("_session", "_rec", "_local", "_full_state", "iteration",
                 "residual_norm", "extras")

    def __init__(
        self,
        session: "ReplaySession",
        rec: TrajectoryRecording,
        local: int,
        iteration: int,
        step: RecordedStep,
    ) -> None:
        self._session = session
        self._rec = rec
        self._local = local
        self._full_state = None
        self.iteration = iteration
        self.residual_norm = step.residual_norm
        self.extras = _LazyExtras(self, step)

    def _full(self) -> IterationState:
        if self._full_state is None:
            self._full_state = self._session.materialize(self._rec, self._local)
        return self._full_state

    @property
    def x(self) -> np.ndarray:
        # A fresh copy per access, mirroring what ``_emit`` hands a numeric
        # callback — the caller owns it.
        return self._full().x.copy()


class ReplaySession:
    """Per-run front end of the trajectory cache.

    Owns the phase digests (solver fingerprint + right-hand side), decides
    record vs. replay vs. extend per phase, materializes checkpoint-boundary
    states by bitwise numeric catch-up, and keeps the run's hit/saving
    counters for the benchmark artifact.
    """

    def __init__(
        self,
        solver: IterativeSolver,
        b: np.ndarray,
        *,
        cache: Optional[TrajectoryCache] = None,
    ) -> None:
        self.solver = solver
        self.b = np.asarray(b, dtype=np.float64)
        self.cache = cache if cache is not None else get_global_cache()
        h = hashlib.blake2b(self.b.tobytes(), digest_size=16)
        self._context = solver_fingerprint(solver) + h.digest()
        # The same value every solver computes internally — used by the
        # extension guard, which must apply the solver's own divergence
        # predicate to the recorded end residual.
        self.b_norm = float(np.linalg.norm(self.b))
        self.hits = 0
        self.misses = 0
        self.iterations_replayed = 0
        self.catchup_iterations = 0
        self._active_recorder: Optional[_PhaseRecorder] = None

    @property
    def iterations_saved(self) -> int:
        """Iterations served from the cache net of catch-up re-execution."""
        return max(0, self.iterations_replayed - self.catchup_iterations)

    @property
    def context(self) -> bytes:
        """Solver + right-hand-side digest every phase key is scoped by."""
        return self._context

    # -- engine entry points -------------------------------------------------
    def solve_phase(
        self,
        x0: np.ndarray,
        resume: Optional[ResumeState],
        iteration_offset: int,
        max_iter: Optional[int],
        callback: Callable[[IterationState], None],
    ) -> SolveResult:
        """Serve one engine phase: replay on a digest hit, record otherwise."""
        limit = self.solver.max_iter if max_iter is None else int(max_iter)
        key = state_digest(x0, resume, context=self._context)
        rec = self.cache.get(key)
        if rec is not None and self._replayable(rec, limit):
            self.hits += 1
            return self._replay(rec, iteration_offset, limit, callback)
        self.misses += 1
        if rec is not None and rec.ended == "opaque":
            # Known non-replayable emitter: skip the recording overhead.
            return self.solver.solve(
                self.b,
                x0=x0,
                callback=callback,
                max_iter=max_iter,
                iteration_offset=iteration_offset,
                resume_state=resume,
            )
        return self._record(
            key, x0, resume, iteration_offset, max_iter, limit, callback
        )

    def note_boundary_state(self, it_state) -> None:
        """Engine hook: a checkpoint boundary saw this state.

        During recording (or extension) the full state is retained so later
        replays of the same span find their boundaries without catch-up.
        No-op during pure replay — the served states already come from the
        recording.
        """
        recorder = self._active_recorder
        if recorder is not None and isinstance(it_state, IterationState):
            recorder.note_snapshot(it_state)

    # -- record --------------------------------------------------------------
    def _record(
        self,
        key: bytes,
        x0: np.ndarray,
        resume: Optional[ResumeState],
        iteration_offset: int,
        max_iter: Optional[int],
        limit: int,
        callback: Callable[[IterationState], None],
    ) -> SolveResult:
        rec = TrajectoryRecording(
            key=key,
            limit=limit,
            solver_name=self.solver.name,
            start_x=np.array(x0, dtype=np.float64, copy=True),
            start_resume=_copy_resume(resume),
        )
        recorder = _PhaseRecorder(rec, base_local=0)
        self._active_recorder = recorder
        try:
            with self.solver.recording(recorder):
                result = self.solver.solve(
                    self.b,
                    x0=x0,
                    callback=callback,
                    max_iter=max_iter,
                    iteration_offset=iteration_offset,
                    resume_state=resume,
                )
        except SolverInterrupt:
            recorder.finalize_interrupted()
            self.cache.put(rec)
            raise
        finally:
            self._active_recorder = None
        recorder.finalize(result)
        self.cache.put(rec)
        return result

    # -- replay --------------------------------------------------------------
    def _replayable(self, rec: TrajectoryRecording, limit: int) -> bool:
        """Whether ``rec`` can serve a phase with iteration budget ``limit``.

        The budget must match the recorded one: solvers may shape their work
        by the remaining budget (GMRES truncates its final Arnoldi cycle),
        so a different ``max_iter`` is a different execution even from the
        same start state.  Within a matching budget, a terminal recording
        replays as-is; an interrupted recording replays only when its end
        state supports a bitwise numeric continuation (the replay may need
        to run past the recorded prefix if this run's failures land later).
        """
        if rec.limit != limit:
            return False
        if rec.ended == "terminal":
            return True
        if rec.ended != "interrupted" or not rec.steps:
            return False
        return self._extendable(rec)

    def _extendable(self, rec: TrajectoryRecording) -> bool:
        spec = self.solver.checkpoint_spec
        if not spec.bitwise_resume or spec.restart_boundary_only:
            # Mid-phase continuation must reproduce the uninterrupted
            # sequence bit for bit.  GMRES is excluded even though its
            # boundary resume is bitwise: its divergence check runs on
            # *preconditioned* norms at cycle ends, which the recorded
            # (unpreconditioned) residual cannot stand in for.
            return False
        local = len(rec.steps)
        end = rec.snapshots.get(local)
        if end is None:
            return False
        if self.solver.capture_resume_state(end) is None:
            return False
        # An end residual past the divergence guard means the uninterrupted
        # solve would have stopped *at* the recorded end — a continuation
        # solve would not re-run that post-emission check.
        if self.solver.criterion.has_diverged(
            rec.steps[-1].residual_norm, self.b_norm
        ):
            return False
        return True

    def _replay(
        self,
        rec: TrajectoryRecording,
        iteration_offset: int,
        limit: int,
        callback: Callable[[IterationState], None],
    ) -> SolveResult:
        self.cache.pin(rec.key)
        try:
            total = len(rec.steps)
            for local in range(1, total + 1):
                step = rec.steps[local - 1]
                state = _ReplayState(
                    self, rec, local, iteration_offset + local, step
                )
                self.iterations_replayed += 1
                # May raise SolverInterrupt (the engine's failure signal) —
                # exactly as the numeric execution's callback would.
                callback(state)
            if rec.ended == "terminal":
                return self._synthesize(rec, total)
            return self._extend(rec, iteration_offset, limit, callback)
        finally:
            self.cache.unpin(rec.key)

    def _synthesize(self, rec: TrajectoryRecording, iterations: int) -> SolveResult:
        norms = [step.residual_norm for step in rec.steps]
        if rec.residual0 is not None:
            norms = [rec.residual0] + norms
        return SolveResult(
            x=rec.final_x.copy(),
            converged=rec.converged,
            iterations=iterations,
            residual_norms=norms,
            solver=rec.solver_name,
            b_norm=self.b_norm,
            info=dict(rec.info),
        )

    def _extend(
        self,
        rec: TrajectoryRecording,
        iteration_offset: int,
        limit: int,
        callback: Callable[[IterationState], None],
    ) -> SolveResult:
        """Continue an interrupted recording numerically, appending in place.

        Only reached for solvers whose captured end state resumes bitwise
        (checked by :meth:`_extendable`), so the appended steps are the ones
        the uninterrupted execution would have produced.
        """
        local = len(rec.steps)
        end = rec.snapshots[local]
        resume = self.solver.capture_resume_state(end)
        recorder = _PhaseRecorder(rec, base_local=local)
        self._active_recorder = recorder
        try:
            with self.solver.recording(recorder):
                result = self.solver.solve(
                    self.b,
                    x0=end.x,
                    callback=callback,
                    max_iter=limit - local,
                    iteration_offset=iteration_offset + local,
                    resume_state=resume,
                )
        except SolverInterrupt:
            recorder.finalize_interrupted()
            self.cache.put(rec)
            raise
        finally:
            self._active_recorder = None
        recorder.finalize(result)
        self.cache.put(rec)
        norms = [step.residual_norm for step in rec.steps]
        if rec.residual0 is not None:
            norms = [rec.residual0] + norms
        return SolveResult(
            x=np.array(result.x, dtype=np.float64, copy=True),
            converged=result.converged,
            iterations=local + result.iterations,
            residual_norms=norms,
            solver=result.solver,
            b_norm=result.b_norm,
            info=dict(result.info),
        )

    # -- catch-up ------------------------------------------------------------
    def materialize(self, rec: TrajectoryRecording, local: int) -> IterationState:
        """Full state at phase-local iteration ``local`` (1-based).

        Snapshot hit: return it.  Otherwise re-execute numerically from the
        nearest base whose continuation is provably bitwise — a mid-phase
        snapshot when the solver declares ``bitwise_resume`` (and, for
        boundary-gated solvers like GMRES, the snapshot captures a resume
        state), else the phase start, where re-issuing the identical solve
        call is deterministic re-execution for every solver.
        """
        snap = rec.snapshots.get(local)
        if snap is not None:
            return snap
        base_local = 0
        base_x = rec.start_x
        base_resume = rec.start_resume
        if self.solver.checkpoint_spec.bitwise_resume:
            for j in sorted((k for k in rec.snapshots if k < local), reverse=True):
                candidate = rec.snapshots[j]
                resume = self.solver.capture_resume_state(candidate)
                if resume is not None:
                    base_local, base_x, base_resume = j, candidate.x, resume
                    break
        span = local - base_local
        collected: Dict[str, IterationState] = {}
        emitted = [0]

        def collector(st: IterationState) -> None:
            emitted[0] += 1
            if emitted[0] == span:
                collected["state"] = st

        if self.solver._trajectory_recorder is not None:  # pragma: no cover
            raise RuntimeError("catch-up attempted while a recording is active")
        self.solver.solve(
            self.b,
            x0=base_x,
            callback=collector,
            max_iter=span,
            iteration_offset=base_local,
            resume_state=base_resume,
        )
        self.catchup_iterations += span
        state = collected.get("state")
        if state is None:  # pragma: no cover - recording guarantees the span
            raise RuntimeError(
                f"replay catch-up produced {emitted[0]} iterations, "
                f"needed {span} (recording of {rec.solver_name})"
            )
        state = _copy_state(state)
        rec.snapshots[local] = state
        self.cache.put(rec)  # re-account retained bytes
        return state
