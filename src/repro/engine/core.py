"""Discrete-event fault-tolerance engine (Algorithms 1-2 + Section 5.4).

This is the solver-agnostic successor of the original
``FaultTolerantRunner``: the solver still runs for real (at reduced problem
size) and its per-iteration callback drives a *virtual* cluster timeline,
but the run is now narrated as explicit events on that timeline — compute,
checkpoint, failure, recovery, rollback — dispatched against a typed
:class:`EngineState` instead of a mutable dict closure, and every
solver-specific decision flows through the ``CheckpointableState`` protocol
(:class:`~repro.solvers.base.CheckpointSpec`) rather than ``isinstance``
checks:

* each solver declares which state an exact checkpoint stores and how the
  sequence resumes (CG's ``(p, rho)``, BiCGSTAB's full recurrence, GMRES's
  restart-boundary resume, the stationary methods' bare ``x``);
* failure arrivals come from a pluggable
  :class:`~repro.cluster.failures.FailureModel` (Poisson by default, plus
  Weibull infant-mortality and bursty/correlated arrivals);
* recovery is multilevel-aware: under the ``fti`` scenario checkpoints walk
  the FTI level cycle of
  :class:`~repro.checkpoint.multilevel.MultilevelCheckpointStore`, cheap
  levels may not survive a failure, and a recovery is priced at the level of
  the checkpoint it actually restores instead of always charging a PFS read;
* every checkpoint is written and restored through the single
  :class:`~repro.checkpoint.pipeline.CheckpointPipeline`: the solver's
  declared state is compressed per variable, packed into one serialized
  payload, and — under the default ``measured`` costing — priced from that
  payload's measured per-variable byte sizes instead of the historical
  ``vector_bytes × dynamic_vector_count`` estimate.

The ``modeled`` Poisson/PFS :class:`~repro.engine.scenario.Scenario`
reproduces the original runner's reports byte-for-byte (pinned by the
engine-equivalence test suite and the golden-report fixtures).

Event calendar
--------------
Everything that can *interrupt or gate* the compute loop is a typed
:class:`~repro.engine.calendar.ScheduledEvent` on an
:class:`~repro.engine.calendar.EventCalendar`:

* ``failure-strike`` — the injector's pending arrival.  The
  :class:`~repro.cluster.failures.FailureInjector` owns its single live
  posting (:meth:`~repro.cluster.failures.FailureInjector.reschedule`): it
  is posted once up front and re-posted after every consume, so the hot
  loop's only per-iteration failure work is one float comparison against
  :attr:`~repro.engine.calendar.EventCalendar.next_time`.
* ``checkpoint-due`` — the checkpoint cadence.  Every due-time change
  cancels the previous posting and posts a new one (lazy cancellation).
* ``compute-phase-end`` — posted at every solver-segment boundary
  (converged, interrupted, budget-capped) and retired inline by the run
  loop, which is its handler; the posting claims the boundary's slot in the
  global event sequence.
* ``drain-complete`` / ``staging-slot-freed`` — see below.

Simultaneous events resolve by ``(time, seq)``: posting order breaks ties,
identically on every same-seed run.  A strike that lands *inside* an
iteration window preempts a cadence event with an earlier due time — the
cadence action only runs at the iteration boundary, by which point the
machine is already down (``_dispatch_boundary``).

Two-channel timeline (``write_mode="async"``)
---------------------------------------------
The paper — and the default ``blocking`` mode — charges the whole checkpoint
write inline on one serialized clock.  Under the scenario's asynchronous
write mode the timeline splits into two
:class:`~repro.engine.calendar.Channel` objects, each with its own calendar:

* the **compute channel** (:class:`~repro.engine.calendar.ComputeChannel`)
  — iterations, inline captures, recoveries, rollbacks.  It also anchors
  the incremental rollback accounting: the compute-seconds total at the
  newest committed checkpoint, so the rollback span is an O(1) difference.
* the **I/O channel** (:class:`~repro.engine.calendar.IOChannel`) — one
  ``drain-complete`` event per staged checkpoint, serialized on the
  channel's ``busy_until`` clock and priced at the contended async
  bandwidth (:meth:`~repro.cluster.machine.ClusterModel.drain_seconds`);
  while a drain is in flight, compute iterations pay a small interference
  surcharge.

I/O-channel completions are only *observable* from the compute channel at
synchronization points — checkpoint entry, an I/O-channel failure, and the
end of the run — which is why the drains live on their own calendar: a
``drain-complete`` whose time has passed is not delivered until the compute
channel synchronizes (both calendars share one
:class:`~repro.engine.calendar.SequenceCounter`, so the global order is
still total).  A checkpoint becomes *recoverable only when its drain
commits* — a failure mid-drain discards the dirty write and recovery falls
back to the previous completed checkpoint.  When every staging slot holds
an in-flight drain the capture defers (backpressure), and the commit that
frees a slot posts ``staging-slot-freed`` to end the deferral episode.
Payloads ship incremental deltas against the last committed checkpoint
(:mod:`repro.checkpoint.delta`) with periodic full keyframes.

Blocking mode takes none of these paths and stays byte-identical to the
single-clock engine (pinned by the equivalence suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.checkpoint.multilevel import MultilevelCheckpointStore, MultilevelPolicy
from repro.checkpoint.pipeline import CheckpointPipeline, PipelineSnapshot
from repro.checkpoint.store import CheckpointStore, StoreProfile
from repro.cluster.machine import ClusterModel
from repro.engine.calendar import (
    ComputeChannel,
    EventCalendar,
    EventKind,
    IOChannel,
    SequenceCounter,
)
from repro.engine.events import (
    CheckpointDeferredEvent,
    CheckpointDiscardedEvent,
    CheckpointTakenEvent,
    ComputeEvent,
    DrainCompletedEvent,
    DrainStartedEvent,
    EventLog,
    FailureHitEvent,
    GiveUpEvent,
    RecoveryEvent,
    RollbackEvent,
)
from repro.engine.replay import (
    ReplaySession,
    get_global_snapshot_memo,
    replay_enabled,
    scheme_fingerprint,
)
from repro.engine.report import BaselineRun, FTRunReport, run_failure_free
from repro.engine.scenario import DEFAULT_SCENARIO, Scenario
from repro.solvers.base import (
    IterationState,
    IterativeSolver,
    ResumeState,
    SolverInterrupt,
)
from repro.utils.rng import SeedLike
from repro.utils.timing import VirtualClock
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # imported lazily at runtime to keep the package acyclic
    from repro.core.scale import ExperimentScale
    from repro.core.schemes import CheckpointingScheme

__all__ = ["FaultToleranceEngine", "CheckpointRecord", "EngineState", "PendingDrain"]

#: How many times an interrupted recovery/rollback phase restarts before the
#: engine forces one final uninterrupted attempt (keeps pathological seeds
#: terminating while leaving the time accounting of a *finished* phase).
RECOVERY_RETRY_BUDGET = 16


class _FailureSignal(SolverInterrupt):
    """Internal interrupt raised by the compute handler when a failure hits."""


@dataclass
class CheckpointRecord:
    """One complete checkpoint on the virtual timeline."""

    checkpoint_id: int
    iteration: int
    #: The serialized pipeline payload plus its measured per-variable bytes.
    snapshot: PipelineSnapshot
    compression_ratio: float
    #: Bytes this checkpoint was *priced* at (measured payload bytes scaled
    #: to paper size under ``measured`` costing; the historical
    #: ``vector_bytes × n_vectors / ratio(x)`` estimate under ``modeled``).
    model_uncompressed_bytes: float
    model_compressed_bytes: float
    #: Cumulative compute seconds when this checkpoint completed — the anchor
    #: for computing rollback work when a multilevel recovery falls back here.
    compute_seconds_at_completion: float
    #: FTI level the payload was written to (None under PFS-only scenarios).
    level: Optional[int] = None
    #: Bytes a *restore* of this checkpoint must read/decompress.  For a full
    #: payload this equals the model bytes; for an incremental (delta) async
    #: payload it is the whole base chain — keyframe plus every intermediate
    #: delta — since the in-memory delta bases do not survive the failure the
    #: scenario models.  ``None`` (blocking mode) falls back to the model
    #: bytes.
    restore_uncompressed_bytes: Optional[float] = None
    restore_compressed_bytes: Optional[float] = None


@dataclass
class PendingDrain:
    """One staged checkpoint still flushing on the I/O channel.

    Carried as the payload of the checkpoint's ``drain-complete`` event on
    the I/O calendar.  The record is fully priced and holds its payload, but
    it is *not* recoverable until the drain commits: a failure before
    ``end`` discards it (dirty write) and recovery falls back to the
    previous completed checkpoint.
    """

    record: CheckpointRecord
    #: I/O-channel interval of the drain (``start`` may be after the capture
    #: finished when an earlier drain still held the channel).
    start: float
    end: float
    seconds: float


@dataclass
class EngineState:
    """Explicit mutable state of one run (replaces the old dict closure).

    Channel clocks live on the engine's
    :class:`~repro.engine.calendar.ComputeChannel` /
    :class:`~repro.engine.calendar.IOChannel` objects, and in-flight drains
    on the I/O calendar; this dataclass keeps the run's *outcome* state —
    checkpoints, counters, traces.
    """

    next_checkpoint_due: float
    last_checkpoint: Optional[CheckpointRecord] = None
    #: All live checkpoints by id — only populated under multilevel scenarios,
    #: where a failure may destroy recent cheap-level checkpoints and the
    #: recovery falls back to an older survivor.
    records: Dict[int, CheckpointRecord] = field(default_factory=dict)
    num_checkpoints: int = 0
    num_inline_failures: int = 0
    compression_ratios: List[float] = field(default_factory=list)
    checkpoint_times: List[float] = field(default_factory=list)
    recovery_times: List[float] = field(default_factory=list)
    residual_trace: List[Tuple[int, float]] = field(default_factory=list)
    interrupted_at: Optional[int] = None
    gave_up: bool = False
    give_up_reason: Optional[str] = None
    # -- asynchronous (two-channel) write mode only ------------------------
    #: Id the next async checkpoint gets (ids are assigned at capture, but
    #: ``num_checkpoints`` only counts drains that completed).
    next_checkpoint_id: int = 0
    #: Drain seconds of every *completed* checkpoint (I/O-channel time).
    drain_times: List[float] = field(default_factory=list)
    #: Checkpoints whose drain a failure interrupted (dirty writes).
    num_dirty_checkpoints: int = 0
    #: Captures deferred because every staging slot held an in-flight drain.
    num_deferred_checkpoints: int = 0
    #: True while the current due checkpoint is being held back by staging
    #: backpressure (collapses per-iteration retries into one event).
    checkpoint_deferred: bool = False
    #: Restore-chain bytes (uncompressed, compressed) by checkpoint id — what
    #: a recovery must read back for an incremental payload (its keyframe
    #: plus every intermediate delta).
    restore_chain: Dict[int, Tuple[float, float]] = field(default_factory=dict)


class FaultToleranceEngine:
    """Execute one solver under one checkpointing scheme with injected failures.

    Parameters
    ----------
    solver:
        A configured :class:`~repro.solvers.base.IterativeSolver`.
    b:
        Right-hand side.
    scheme:
        The checkpointing scheme (traditional / lossless / lossy).
    cluster:
        Cluster time model (already set to the desired process count).
    scale:
        Paper-scale problem description used to convert measured compression
        ratios into modeled checkpoint bytes.
    mtti_seconds:
        Mean time to interruption for the injected failures; ``None`` disables
        failures.
    checkpoint_interval_seconds:
        Virtual seconds between checkpoints.  When None it is derived from
        Young's formula using ``estimated_checkpoint_seconds``.
    estimated_checkpoint_seconds:
        A priori estimate of one checkpoint's cost (as the paper does, from
        the fixed-frequency characterization runs of Section 5.3); required
        when ``checkpoint_interval_seconds`` is None.
    method:
        Name used for iteration-time calibration; defaults to ``solver.name``.
    baseline:
        Failure-free reference; computed on demand when omitted.
    max_restarts:
        Safety cap on the number of failure recoveries before giving up.
    scenario:
        Failure-model × recovery-level regime; defaults to the paper's
        (Poisson arrivals, PFS-only recovery).
    multilevel_policy:
        Level cycle/cost/survival table for ``fti`` scenarios; the FTI-like
        default cycle is used when omitted.
    record_events:
        Keep an :class:`~repro.engine.events.EventLog` of the run (off by
        default — one event per iteration).
    max_events:
        Bound the event log to the newest ``max_events`` entries (ring
        buffer); ``None`` keeps every event.  Only meaningful with
        ``record_events=True``.
    replay:
        Trajectory-replay cache switch (see :mod:`repro.engine.replay`).
        ``None`` (default) defers to the ``REPRO_REPLAY`` environment
        variable, which enables replay unless set to ``off``; ``True`` /
        ``False`` force it per engine.  Reports are byte-identical either
        way — replay only changes how fast phases the process has already
        computed are re-traversed.
    """

    def __init__(
        self,
        solver: IterativeSolver,
        b: np.ndarray,
        scheme: "CheckpointingScheme",
        *,
        cluster: Optional[ClusterModel] = None,
        scale: Optional["ExperimentScale"] = None,
        mtti_seconds: Optional[float] = 3600.0,
        checkpoint_interval_seconds: Optional[float] = None,
        estimated_checkpoint_seconds: Optional[float] = None,
        iteration_seconds: Optional[float] = None,
        method: Optional[str] = None,
        baseline: Optional[BaselineRun] = None,
        x0: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        max_restarts: int = 1000,
        max_total_iterations: Optional[int] = None,
        scenario: Optional[Scenario] = None,
        multilevel_policy: Optional[MultilevelPolicy] = None,
        record_events: bool = False,
        max_events: Optional[int] = None,
        replay: Optional[bool] = None,
    ) -> None:
        from repro.core.model import young_interval
        from repro.core.scale import ExperimentScale

        self.solver = solver
        self.b = np.asarray(b, dtype=np.float64)
        self.scheme = scheme
        self.cluster = cluster or ClusterModel()
        self.scale = scale or ExperimentScale(
            num_processes=self.cluster.num_processes, grid_n=2160
        )
        self.mtti_seconds = mtti_seconds
        self.method = method or solver.name
        self.iteration_seconds = (
            check_positive(iteration_seconds, "iteration_seconds")
            if iteration_seconds is not None
            else self.cluster.iteration_time(self.method)
        )
        if checkpoint_interval_seconds is None:
            if estimated_checkpoint_seconds is None:
                raise ValueError(
                    "provide either checkpoint_interval_seconds or "
                    "estimated_checkpoint_seconds (to apply Young's formula)"
                )
            if mtti_seconds is None:
                raise ValueError(
                    "Young's formula needs a finite MTTI; pass "
                    "checkpoint_interval_seconds explicitly for failure-free runs"
                )
            checkpoint_interval_seconds = young_interval(
                estimated_checkpoint_seconds, mtti_seconds
            )
        self.checkpoint_interval_seconds = check_positive(
            checkpoint_interval_seconds, "checkpoint_interval_seconds"
        )
        self.x0 = (
            np.zeros(self.solver.n, dtype=np.float64)
            if x0 is None
            else np.asarray(x0, dtype=np.float64).copy()
        )
        self.seed = seed
        self.baseline = baseline
        self.max_restarts = int(max_restarts)
        self.max_total_iterations = max_total_iterations
        self.b_norm = float(np.linalg.norm(self.b))
        self.scenario = scenario or DEFAULT_SCENARIO
        self.multilevel_policy = multilevel_policy
        self.record_events = bool(record_events)
        self.max_events = max_events
        self.replay = replay
        self._replay: Optional[ReplaySession] = None
        self.events: Optional[EventLog] = None
        # Per-run working attributes (set up in run()).
        self._clock: VirtualClock = VirtualClock()
        self._async: bool = self.scenario.asynchronous
        self._injector = None
        self._store: Optional[MultilevelCheckpointStore] = None
        #: Physical payload backend selected by ``scenario.store_backend``
        #: (None for the default ``pfs`` backend — legacy pricing path).
        self._backend: Optional[CheckpointStore] = None
        self._backend_dir = None  # TemporaryDirectory for the disk backend
        self._pipeline: Optional[CheckpointPipeline] = None
        self._state: EngineState = EngineState(
            next_checkpoint_due=self.checkpoint_interval_seconds
        )
        self._vectors: int = 0
        # Calendar machinery: one global sequence, one calendar per channel.
        self._sequence = SequenceCounter()
        self._calendar = EventCalendar(self._sequence)
        self._io_calendar = EventCalendar(self._sequence)
        self._compute = ComputeChannel("compute")
        self._io = IOChannel("io")
        self._due_event = None  # live CHECKPOINT_DUE posting (or None)

    @property
    def events_processed(self) -> int:
        """Calendar sequence numbers claimed so far — every scheduled and
        recorded event of the run (the benchmark's throughput numerator)."""
        return self._sequence.value

    @property
    def replay_hits(self) -> int:
        """Phases of the last run served from the trajectory-replay cache."""
        return 0 if self._replay is None else self._replay.hits

    @property
    def replay_iterations_saved(self) -> int:
        """Solver iterations the last run replayed instead of re-executing,
        net of numeric catch-up spent materializing checkpoint boundaries."""
        return 0 if self._replay is None else self._replay.iterations_saved

    # ------------------------------------------------------------------
    def run(self) -> FTRunReport:
        """Execute the failure-injected run and return its report."""
        if self.baseline is None:
            self.baseline = run_failure_free(self.solver, self.b, x0=self.x0)

        clock = self._clock = VirtualClock()
        self._sequence = SequenceCounter()
        calendar = self._calendar = EventCalendar(self._sequence)
        self._io_calendar = EventCalendar(self._sequence)
        self._compute = ComputeChannel("compute")
        self._io = IOChannel("io")
        self._due_event = None
        self._injector = self.scenario.build_injector(self.mtti_seconds, self.seed)
        self._async = self.scenario.asynchronous
        # Latent arrivals strike at the window that finds them on the
        # two-channel timeline only; the blocking timeline keeps the stale
        # arrival untouched (pinned byte-identical to the legacy runner).
        self._injector.latent_clamp = self._async
        self._injector.reschedule(calendar)
        if self.scenario.default_backend:
            self._backend = None
        elif self.scenario.store_backend == "disk":
            import tempfile

            # Held on self so the payload files outlive run() for inspection;
            # the TemporaryDirectory finalizer cleans up with the engine.
            self._backend_dir = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
            self._backend = self.scenario.build_backend_store(
                directory=self._backend_dir.name
            )
        else:
            self._backend = self.scenario.build_backend_store()
        self._store = self.scenario.build_multilevel_store(
            self.seed, policy=self.multilevel_policy, backend=self._backend
        )
        self._staging_slots = int(self.cluster.spec.async_staging_slots)
        self._pipeline = CheckpointPipeline(
            self.scheme,
            solver=self.solver,
            # Multilevel wraps the physical backend when both are selected;
            # a bare backend persists payloads even under PFS-only recovery.
            store=self._store if self._store is not None else self._backend,
            # Async cells ship incremental deltas — the drain prices the
            # bytes an overlapped incremental writer would actually move.
            incremental=self._async,
        )
        self._vectors = self.scheme.dynamic_vector_count(self.solver)
        self.events = (
            EventLog(max_events=self.max_events) if self.record_events else None
        )
        state = self._state = EngineState(
            next_checkpoint_due=self.checkpoint_interval_seconds
        )
        self._set_due(self.checkpoint_interval_seconds)
        # Trajectory replay: phases whose exact numeric start state the
        # process has already executed are served from the recording instead
        # of re-running matvecs (byte-identical reports either way).
        self._replay = (
            ReplaySession(self.solver, self.b)
            if replay_enabled(self.replay)
            else None
        )
        if self._replay is not None:
            # Same switch, second cache: checkpoint payloads along an
            # identical pipeline history compress once per process instead
            # of once per run (the compression pass dominates the event loop
            # once the solve itself is replayed).
            self._pipeline.enable_snapshot_memo(
                get_global_snapshot_memo(),
                self._replay.context + scheme_fingerprint(self.scheme),
            )

        x_current = self.x0.copy()
        resume: Optional[ResumeState] = None
        iteration_offset = 0
        restarts_from_scratch = 0
        converged = False
        total_iterations = 0
        restarts = 0

        while True:
            interrupted = False
            try:
                result = self._solve_once(x_current, resume, iteration_offset)
            except _FailureSignal:
                interrupted = True
                result = None
            # The segment boundary claims its slot in the global sequence;
            # the code below *is* its handler, so the posting retires
            # immediately (lazy cancellation).
            calendar.post(
                clock.now,
                EventKind.COMPUTE_PHASE_END,
                payload="interrupted" if interrupted else "solved",
            ).cancel()

            if not interrupted and result is not None:
                total_iterations = iteration_offset + result.iterations
                converged = result.converged
                if (
                    not converged
                    and self.max_total_iterations is not None
                    and total_iterations >= self.max_total_iterations
                ):
                    # The iteration budget — not the solver — ended the run.
                    state.gave_up = True
                    state.give_up_reason = "max_total_iterations"
                    self._record(
                        GiveUpEvent(
                            time=clock.now,
                            reason="max_total_iterations",
                            iterations_reached=total_iterations,
                        )
                    )
                break

            # ---- failure path: recover from the last complete checkpoint ----
            restarts += 1
            if restarts > self.max_restarts:
                # Give up — but report the progress actually made instead of
                # a stale zero (the interrupted iteration is the furthest
                # point the timeline reached).
                state.gave_up = True
                state.give_up_reason = "max_restarts"
                total_iterations = (
                    int(state.interrupted_at)
                    if state.interrupted_at is not None
                    else iteration_offset
                )
                self._record(
                    GiveUpEvent(
                        time=clock.now,
                        reason="max_restarts",
                        iterations_reached=total_iterations,
                    )
                )
                break
            self._apply_survival()
            last = state.last_checkpoint
            recovery_seconds = self._recovery_seconds(last)
            self._advance_with_failures(recovery_seconds, "recovery")
            state.recovery_times.append(recovery_seconds)
            self._record(
                RecoveryEvent(
                    time=clock.now,
                    seconds=recovery_seconds,
                    from_iteration=0 if last is None else last.iteration,
                    from_scratch=last is None,
                    level=None if last is None else last.level,
                )
            )

            if last is None:
                # No checkpoint survived (or none was taken yet): restart
                # from the initial guess.
                x_current = self.x0.copy()
                resume = None
                iteration_offset = 0
                restarts_from_scratch += 1
            else:
                # One restore path for every read — the in-memory record and
                # a multilevel fallback carry the same serialized payload, so
                # the lossy rollback distortion happens inside the pipeline.
                restored = self._pipeline.restore(
                    last.checkpoint_id, payload=last.snapshot.payload
                )
                x_current = restored.x
                iteration_offset = last.iteration
                resume = (
                    restored.resume_state
                    if self.scheme.checkpoint_krylov_state
                    else None
                )
            if (
                self.max_total_iterations is not None
                and iteration_offset >= self.max_total_iterations
            ):
                state.gave_up = True
                state.give_up_reason = "max_total_iterations"
                total_iterations = iteration_offset
                self._record(
                    GiveUpEvent(
                        time=clock.now,
                        reason="max_total_iterations",
                        iterations_reached=total_iterations,
                    )
                )
                break

        if self._async:
            # The run is over (converged or gave up): whatever is still
            # staged finishes flushing in the background — settle so the
            # checkpoint counts reflect every write that completed.
            self._settle_drains(self._io.busy_until)
        return self._build_report(converged, total_iterations, restarts_from_scratch)

    # -- event handlers ------------------------------------------------------
    def _on_compute(self, it_state: IterationState) -> None:
        """Compute event: one solver iteration on the virtual timeline.

        The hot path does exactly three things — advance the two clocks,
        append the residual trace, and compare the calendar's cached
        ``next_time`` against the clock.  Failure strikes and checkpoint
        cadence only cost anything when an event is actually due
        (:meth:`_dispatch_boundary`).
        """
        clock = self._clock
        seconds = self.iteration_seconds
        start = clock.now
        clock.advance(seconds, "compute")
        self._compute.advance(seconds)
        if self._async and self._io.busy_at(start):
            # A drain is in flight: the background flush steals bandwidth
            # from the solver, so this iteration pays the interference
            # surcharge on the compute channel.  The surcharge is I/O
            # contention, not solver work — it is not re-executed on a
            # rollback, so it stays out of the rollback anchor arithmetic.
            surcharge = seconds * self.cluster.async_interference
            if surcharge > 0.0:
                clock.advance(surcharge, "io_interference")
        self._state.residual_trace.append(
            (it_state.iteration, it_state.residual_norm)
        )
        if self.events is not None:
            self._record(
                ComputeEvent(
                    time=clock.now,
                    iteration=it_state.iteration,
                    seconds=seconds,
                    residual_norm=it_state.residual_norm,
                )
            )
        if self._calendar.next_time <= clock.now:
            self._dispatch_boundary(it_state, start)

    def _dispatch_boundary(self, it_state: IterationState, window_start: float) -> None:
        """Deliver calendar events due at this iteration boundary.

        At most two kinds can be actionable here and each has at most one
        live posting, so delivery is kind-routed rather than heap-popped:

        * ``failure-strike`` first — a strike inside the window preempts the
          cadence action, which only runs at the boundary (by then the
          machine is already down).  At most one strike is delivered per
          boundary; an arrival re-armed into this same window is found by
          the *next* window, exactly as the per-phase window checks did.
        * ``checkpoint-due`` second, against the due time the strike handler
          may just have reset.

        ``drain-complete`` events live on the I/O calendar and are never
        delivered here — the compute channel only observes them at
        synchronization points.
        """
        head = self._calendar.peek()  # also skips lazily-cancelled postings
        clock = self._clock
        if head is None or head.time > clock.now:
            return
        injector = self._injector
        state = self._state
        if injector.peek() <= clock.now:
            failure_time = injector.strike_time(window_start)
            if self.scheme.lossy:
                self._consume_strike(failure_time, "compute")
                self._on_io_channel_failure(failure_time)
                state.interrupted_at = it_state.iteration
                raise _FailureSignal(it_state.iteration, "failure during compute")
            self._on_inline_failure(failure_time, "compute")
        if clock.now >= state.next_checkpoint_due and self._checkpoint_allowed(
            it_state, overdue_seconds=clock.now - state.next_checkpoint_due
        ):
            self._on_checkpoint(it_state)

    def _on_inline_failure(self, failure_time: float, phase: str) -> None:
        """Exact-scheme failure: pure time cost (recovery + rollback).

        Traditional and lossless checkpoints restore the solver state
        bit-for-bit, so the numerical trajectory is unaffected — the failure
        only costs the recovery read plus re-execution of the work done since
        the last complete checkpoint.  The solve itself is not interrupted
        (its re-execution would reproduce the same iterates).

        A checkpoint that was already *due* when the failure struck is not
        silently dropped: the due time is left at "now", so the checkpoint is
        retaken at the first opportunity after the rollback instead of a full
        interval later (high failure rates would otherwise stretch the
        effective interval far past Young's optimum).
        """
        clock = self._clock
        state = self._state
        self._consume_strike(failure_time, phase)
        state.num_inline_failures += 1
        self._on_io_channel_failure(failure_time)
        checkpoint_was_due = clock.now >= state.next_checkpoint_due
        self._apply_survival()
        last = state.last_checkpoint
        recovery_seconds = self._recovery_seconds(last)
        self._advance_with_failures(recovery_seconds, "recovery")
        state.recovery_times.append(recovery_seconds)
        self._record(
            RecoveryEvent(
                time=clock.now,
                seconds=recovery_seconds,
                from_iteration=0 if last is None else last.iteration,
                from_scratch=last is None,
                level=None if last is None else last.level,
            )
        )
        rollback_seconds = self._compute.since_checkpoint
        self._advance_with_failures(rollback_seconds, "rollback")
        self._record(RollbackEvent(time=clock.now, seconds=rollback_seconds))
        if checkpoint_was_due or (
            # Two-channel mode: recovery + rollback may outlast the
            # checkpoint interval (long rollbacks happen whenever a failure
            # discarded in-flight drains).  The checkpoint that came due
            # during the handling is taken at the first opportunity instead
            # of a full interval later — otherwise repeated failures push
            # the cadence away indefinitely, the rollback anchor goes stale
            # and the rollback span compounds.
            self._async
            and clock.now >= state.next_checkpoint_due
        ):
            self._set_due(clock.now)
        else:
            self._set_due(clock.now + self.checkpoint_interval_seconds)

    def _on_checkpoint(self, it_state: IterationState) -> None:
        """Checkpoint event: run the pipeline, advance the priced cost.

        The full payload — iterate, declared resume vectors, scalars — is
        materialized and serialized through the
        :class:`~repro.checkpoint.pipeline.CheckpointPipeline` *before* the
        write is priced, so the cost can come from what the checkpoint
        actually contains.  A failure landing inside the checkpoint window
        discards the incomplete checkpoint (the previous complete one remains
        valid, and nothing is committed to the store); under the lossy scheme
        it also interrupts the solve, matching the paper's methodology where
        failures may occur during the checkpoint/recovery period.
        """
        clock = self._clock
        state = self._state
        if self._replay is not None:
            # Recording mode retains the full state seen at this boundary so
            # later replays of the span find it without numeric catch-up
            # (no-op while replaying — the state already comes from the
            # recording).
            self._replay.note_boundary_state(it_state)
        if self._async:
            # Synchronization point: commit every drain that finished before
            # this capture so the incremental snapshot deltas against the
            # last *committed* payload (and the rollback anchor is current).
            self._settle_drains(clock.now)
            if self._io.in_flight >= self._staging_slots:
                # Backpressure: every node-local staging buffer still holds
                # an in-flight drain, so the compute channel has nowhere to
                # stage this payload.  Leave the checkpoint due — it is
                # retried as soon as a drain settles.  Without this cap a
                # drain slower than the checkpoint interval (e.g. the
                # traditional scheme's uncompressed payload) grows the dirty
                # queue without bound: no checkpoint ever commits, the
                # rollback span stretches toward the whole run, and failure
                # counts explode (see docs/architecture.md).
                if not state.checkpoint_deferred:
                    state.checkpoint_deferred = True
                    state.num_deferred_checkpoints += 1
                    self._record(
                        CheckpointDeferredEvent(
                            time=clock.now,
                            iteration=it_state.iteration,
                            pending=self._io.in_flight,
                        )
                    )
                return
        checkpoint_id = (
            state.next_checkpoint_id if self._async else state.num_checkpoints
        )
        resume = (
            self.solver.capture_resume_state(it_state)
            if self.scheme.checkpoint_krylov_state
            else None
        )
        snapshot = self._pipeline.snapshot(
            it_state.x,
            iteration=it_state.iteration,
            resume_state=resume,
            residual_norm=it_state.residual_norm,
            b_norm=self.b_norm,
            checkpoint_id=checkpoint_id,
        )

        if self.scenario.measured:
            model_uncompressed, model_compressed = snapshot.scaled_bytes(self.scale)
            ratio = model_uncompressed / max(model_compressed, 1e-12)
        else:
            # Historical modeled estimate: every dynamic vector priced at the
            # iterate's compression ratio (byte-compatible with the frozen
            # pre-pipeline runner).
            ratio = snapshot.ratio_of("x")
            model_uncompressed = self.scale.vector_bytes * self._vectors
            model_compressed = model_uncompressed / max(ratio, 1e-12)
        level: Optional[int] = None
        write_multiplier = 1.0
        write_profile: Optional[StoreProfile] = None
        if self._store is not None:
            # With drains outstanding the level cycle has already been
            # "claimed" by the pending writes, so peek past them.
            next_level = self._store.next_level(self._io.in_flight)
            level = int(next_level)
            if self._backend is None:
                write_multiplier = self._store.policy.cost_multiplier[next_level]
            else:
                # The level's profile already folds in the cost multiplier;
                # keep the scalar at 1.0 so the cost is not double-counted.
                write_profile = self._store.profile_for(next_level)
        elif self._backend is not None:
            write_profile = self._backend.profile
        # A dedup backend only ships the chunks the pool does not already
        # hold; duplicate bytes never hit the wire, so they cost nothing.
        ship_compressed = model_compressed * self._dedup_fraction(snapshot)

        if self._async:
            self._enqueue_drain(
                it_state,
                snapshot,
                ratio=ratio,
                model_uncompressed=model_uncompressed,
                model_compressed=model_compressed,
                ship_compressed=ship_compressed,
                level=level,
                write_multiplier=write_multiplier,
                write_profile=write_profile,
            )
            return

        ckpt_seconds = self.cluster.checkpoint_seconds(
            model_uncompressed,
            ship_compressed,
            compressed=self.scheme.uses_compression,
            write_cost_multiplier=write_multiplier,
            profile=write_profile,
        )

        start = clock.now
        clock.advance(ckpt_seconds, "checkpoint")
        state.checkpoint_times.append(ckpt_seconds)
        if self._injector.peek() <= clock.now:
            failure_time = self._injector.strike_time(start)
            # Incomplete checkpoint: do not record or commit it.
            self._record(
                CheckpointDiscardedEvent(time=clock.now, iteration=it_state.iteration)
            )
            if self.scheme.lossy:
                self._consume_strike(failure_time, "checkpoint")
                state.interrupted_at = it_state.iteration
                self._set_due(clock.now + self.checkpoint_interval_seconds)
                raise _FailureSignal(
                    it_state.iteration, "failure during checkpoint"
                )
            self._on_inline_failure(failure_time, "checkpoint")
            return

        record = CheckpointRecord(
            checkpoint_id=state.num_checkpoints,
            iteration=it_state.iteration,
            snapshot=snapshot,
            compression_ratio=ratio,
            model_uncompressed_bytes=model_uncompressed,
            model_compressed_bytes=model_compressed,
            compute_seconds_at_completion=self._compute.seconds_total,
            level=level,
        )
        if self._store is not None or self._backend is not None:
            self._pipeline.commit(snapshot)
        if self._store is not None:
            record.level = int(self._store.level_of(record.checkpoint_id))
            state.records[record.checkpoint_id] = record
            self._prune_unreachable_records()
        state.last_checkpoint = record
        state.num_checkpoints += 1
        state.compression_ratios.append(ratio)
        self._compute.mark()
        self._set_due(clock.now + self.checkpoint_interval_seconds)
        self._record(
            CheckpointTakenEvent(
                time=clock.now,
                iteration=it_state.iteration,
                seconds=ckpt_seconds,
                compression_ratio=ratio,
                level=record.level,
            )
        )

    # -- asynchronous I/O channel --------------------------------------------
    def _enqueue_drain(
        self,
        it_state: IterationState,
        snapshot: PipelineSnapshot,
        *,
        ratio: float,
        model_uncompressed: float,
        model_compressed: float,
        ship_compressed: float,
        level: Optional[int],
        write_multiplier: float,
        write_profile: Optional[StoreProfile],
    ) -> None:
        """Async checkpoint: inline capture on the compute channel, then a
        ``drain-complete`` event on the I/O calendar.

        The solver stalls only for compression + node-local staging; the
        storage write of the (possibly delta-encoded) payload acquires the
        I/O channel — starting when the channel frees up — and its completion
        is posted at the drain's end time.  Until a synchronization point
        delivers that event the checkpoint is a *dirty* write: a failure
        discards it and recovery falls back to the previous completed
        checkpoint.  A failure during the capture itself discards the
        snapshot before anything is staged (as in blocking mode).
        """
        clock = self._clock
        state = self._state
        capture_seconds = self.cluster.capture_seconds(
            model_uncompressed,
            model_compressed,
            compressed=self.scheme.uses_compression,
        )
        start = clock.now
        clock.advance(capture_seconds, "checkpoint")
        state.checkpoint_times.append(capture_seconds)
        if self._injector.peek() <= clock.now:
            failure_time = self._injector.strike_time(start)
            # The capture never finished: nothing was staged, nothing drains.
            self._record(
                CheckpointDiscardedEvent(time=clock.now, iteration=it_state.iteration)
            )
            if self.scheme.lossy:
                self._consume_strike(failure_time, "checkpoint")
                self._on_io_channel_failure(failure_time)
                state.interrupted_at = it_state.iteration
                self._set_due(clock.now + self.checkpoint_interval_seconds)
                raise _FailureSignal(
                    it_state.iteration, "failure during checkpoint capture"
                )
            self._on_inline_failure(failure_time, "checkpoint")
            return

        drain_seconds = self.cluster.drain_seconds(
            ship_compressed,
            write_cost_multiplier=write_multiplier,
            profile=write_profile,
        )
        drain_start, drain_end = self._io.enqueue(clock.now, drain_seconds)
        # A delta payload restores through its whole base chain (keyframe +
        # intermediate deltas), so recovery is priced at the chain bytes, not
        # just the delta the drain shipped.
        restore_u, restore_c = model_uncompressed, model_compressed
        if snapshot.base_id is not None:
            base_u, base_c = state.restore_chain.get(snapshot.base_id, (0.0, 0.0))
            restore_u += base_u
            restore_c += base_c
        state.restore_chain[snapshot.checkpoint_id] = (restore_u, restore_c)
        record = CheckpointRecord(
            checkpoint_id=snapshot.checkpoint_id,
            iteration=it_state.iteration,
            snapshot=snapshot,
            compression_ratio=ratio,
            model_uncompressed_bytes=model_uncompressed,
            model_compressed_bytes=model_compressed,
            compute_seconds_at_completion=self._compute.seconds_total,
            level=level,
            restore_uncompressed_bytes=restore_u,
            restore_compressed_bytes=restore_c,
        )
        self._io_calendar.post(
            drain_end,
            EventKind.DRAIN_COMPLETE,
            payload=PendingDrain(
                record=record, start=drain_start, end=drain_end, seconds=drain_seconds
            ),
        )
        state.next_checkpoint_id += 1
        self._set_due(clock.now + self.checkpoint_interval_seconds)
        self._record(
            DrainStartedEvent(
                time=clock.now,
                checkpoint_id=record.checkpoint_id,
                iteration=it_state.iteration,
                drain_start=drain_start,
                seconds=drain_seconds,
            )
        )

    def _settle_drains(self, until: float) -> None:
        """Deliver every ``drain-complete`` due by I/O-channel time ``until``.

        A committed drain becomes the newest recovery point: the payload is
        persisted through the pipeline (entering the multilevel survival
        cycle under ``fti`` scenarios), the rollback anchor rebases onto it,
        and — in incremental mode — its reconstruction becomes the delta
        base of subsequent snapshots.  If the commit frees a staging slot
        while a capture is deferred, the backpressure episode ends with a
        ``staging-slot-freed`` posting (delivered synchronously here).
        """
        if self._io.in_flight == 0:
            return
        state = self._state
        for event in self._io_calendar.pop_due(until):
            pending: PendingDrain = event.payload
            self._io.complete_one()
            record = pending.record
            self._pipeline.commit(record.snapshot)
            if self._store is not None:
                record.level = int(self._store.level_of(record.checkpoint_id))
                state.records[record.checkpoint_id] = record
                self._prune_unreachable_records()
            state.last_checkpoint = record
            state.num_checkpoints += 1
            state.compression_ratios.append(record.compression_ratio)
            state.drain_times.append(pending.seconds)
            self._compute.rebase(record.compute_seconds_at_completion)
            self._record(
                DrainCompletedEvent(
                    time=pending.end,
                    checkpoint_id=record.checkpoint_id,
                    iteration=record.iteration,
                )
            )
            self._record(
                CheckpointTakenEvent(
                    time=pending.end,
                    iteration=record.iteration,
                    seconds=pending.seconds,
                    compression_ratio=record.compression_ratio,
                    level=record.level,
                )
            )
            if (
                state.checkpoint_deferred
                and self._io.in_flight < self._staging_slots
            ):
                # The episode ends here; the still-due checkpoint-due event
                # drives the retake at the next boundary.
                self._calendar.post(
                    pending.end,
                    EventKind.STAGING_SLOT_FREED,
                    payload=record.checkpoint_id,
                ).cancel()
                state.checkpoint_deferred = False

    def _on_io_channel_failure(self, failure_time: float) -> None:
        """Settle the I/O channel at a failure: commit finished drains,
        discard the dirty rest.

        Drains that completed strictly before the failure are real
        checkpoints (recovery may restore them); anything still in flight is
        a dirty write — the payload never became recoverable, so it is
        dropped and the channel resets (the post-recovery restart re-stages
        from the restored state, it does not resume half-flushed buffers).
        No-op in blocking mode.
        """
        if not self._async:
            return
        state = self._state
        self._settle_drains(failure_time)
        for event in self._io_calendar.pop_due(math.inf):
            pending: PendingDrain = event.payload
            state.num_dirty_checkpoints += 1
            self._record(
                CheckpointDiscardedEvent(
                    time=failure_time, iteration=pending.record.iteration
                )
            )
        self._io.reset(failure_time)
        # The staging buffers are free again: a later deferral is a new
        # backpressure episode and records its own event (no slot-freed
        # posting — the slots were torn down, not drained).
        state.checkpoint_deferred = False

    # -- internals -----------------------------------------------------------
    def _set_due(self, time: float) -> None:
        """Move the checkpoint cadence: cancel the live ``checkpoint-due``
        posting and post the new due time (lazy cancellation)."""
        self._state.next_checkpoint_due = time
        if self._due_event is not None:
            self._due_event.cancel()
        self._due_event = self._calendar.post(time, EventKind.CHECKPOINT_DUE)

    def _consume_strike(self, failure_time: float, phase: str) -> None:
        """Record the strike, re-arm the injector, re-post its calendar entry."""
        event = self._injector.consume(failure_time, phase)
        self._record(
            FailureHitEvent(time=failure_time, phase=phase, index=event.index)
        )
        self._injector.reschedule(self._calendar)

    def _checkpoint_allowed(
        self, it_state: IterationState, *, overdue_seconds: float = 0.0
    ) -> bool:
        """Whether a checkpoint may be taken at this iteration.

        Under the lossy scheme a recovery restarts the Krylov method from the
        checkpointed iterate, so the checkpoint is deferred to the method's
        natural restart boundary when the solver reports one (GMRES(k) cycle
        ends).  At paper scale the deferral is at most ``k`` iterations —
        negligible against the checkpoint interval — and it avoids throwing
        away a partially built Krylov cycle on every recovery.  If the
        deferral has already cost more than a quarter of the checkpoint
        interval (only possible on very small local problems, where a cycle is
        a large fraction of the whole run) the checkpoint is taken anyway.
        """
        if not self.scheme.lossy:
            return True
        if "cycle_end" in it_state.extras:
            if bool(it_state.extras["cycle_end"]) or bool(
                it_state.extras.get("converged", False)
            ):
                return True
            return overdue_seconds > 0.25 * self.checkpoint_interval_seconds
        return True

    def _solve_once(self, x_current, resume, iteration_offset):
        remaining = None
        if self.max_total_iterations is not None:
            remaining = max(1, self.max_total_iterations - iteration_offset)
        if self._replay is not None:
            return self._replay.solve_phase(
                x_current, resume, iteration_offset, remaining, self._on_compute
            )
        return self.solver.solve(
            self.b,
            x0=x_current,
            callback=self._on_compute,
            iteration_offset=iteration_offset,
            max_iter=remaining,
            resume_state=resume,
        )

    def _apply_survival(self) -> None:
        """Draw which multilevel checkpoints survived the failure just hit.

        PFS-only scenarios keep every checkpoint (no-op).  Under ``fti``
        scenarios each stored checkpoint survives with its level's
        probability; newer casualties are discarded and the engine falls back
        to the newest survivor — rebasing the rollback anchor so the extra
        lost compute is re-executed too.
        """
        state = self._state
        if self._store is None or not state.records:
            return
        survivor_id = self._store.surviving_id()
        if (
            survivor_id is not None
            and state.last_checkpoint is not None
            and survivor_id == state.last_checkpoint.checkpoint_id
        ):
            return
        for checkpoint_id in sorted(state.records):
            if survivor_id is None or checkpoint_id > survivor_id:
                self._store.delete(checkpoint_id)
        state.records = {
            checkpoint_id: record
            for checkpoint_id, record in state.records.items()
            if survivor_id is not None and checkpoint_id <= survivor_id
        }
        new_last = (
            state.records.get(survivor_id) if survivor_id is not None else None
        )
        state.last_checkpoint = new_last
        self._compute.rebase(
            0.0 if new_last is None else new_last.compute_seconds_at_completion
        )

    def _prune_unreachable_records(self) -> None:
        """Drop checkpoints no survival draw can ever return.

        ``surviving_id`` scans newest-first and always stops at a checkpoint
        whose level survives with certainty (PFS in the default policy), so
        anything older than the newest certain survivor is unreachable as a
        fallback — and never drawn for, so pruning does not perturb the
        survival RNG stream.  This bounds retention at one level cycle
        instead of growing with run length.
        """
        from repro.checkpoint.multilevel import CheckpointLevel

        state = self._state
        survival = self._store.policy.survival_probability
        certain = [
            checkpoint_id
            for checkpoint_id, record in state.records.items()
            if survival[CheckpointLevel(record.level)] >= 1.0
        ]
        if not certain:
            return
        newest_certain = max(certain)
        for checkpoint_id in sorted(state.records):
            if checkpoint_id < newest_certain:
                self._store.delete(checkpoint_id)
                del state.records[checkpoint_id]

    def _dedup_fraction(self, snapshot: PipelineSnapshot) -> float:
        """Fraction of this payload's bytes a dedup backend actually ships.

        1.0 (exact) for every non-dedup backend, so default-path pricing is
        untouched.  For a chunked backend, only the chunks the pool does not
        already hold travel to storage; the fraction previews that split on
        the real serialized payload before anything is committed.
        """
        if self._backend is None:
            return 1.0
        preview = getattr(self._backend, "preview_write", None)
        if preview is None:
            return 1.0
        nbytes, unique_new = preview(snapshot.payload)
        if nbytes <= 0:
            return 1.0
        return unique_new / nbytes

    def _recovery_seconds(self, last: Optional[CheckpointRecord]) -> float:
        read_profile: Optional[StoreProfile] = None
        if self._backend is not None:
            read_profile = self._backend.profile
        if last is None:
            # Nothing to read back: only the environment and static data are
            # rebuilt before restarting from the initial guess.
            return self.cluster.recovery_seconds(
                0.0,
                0.0,
                static_bytes=self.scale.static_bytes,
                compressed=False,
                profile=read_profile,
            )
        read_multiplier = 1.0
        if last.level is not None and self._store is not None:
            from repro.checkpoint.multilevel import CheckpointLevel

            if self._backend is None:
                read_multiplier = self._store.policy.cost_multiplier[
                    CheckpointLevel(last.level)
                ]
            else:
                read_profile = self._store.profile_for(CheckpointLevel(last.level))
        read_uncompressed = (
            last.restore_uncompressed_bytes
            if last.restore_uncompressed_bytes is not None
            else last.model_uncompressed_bytes
        )
        read_compressed = (
            last.restore_compressed_bytes
            if last.restore_compressed_bytes is not None
            else last.model_compressed_bytes
        )
        return self.cluster.recovery_seconds(
            read_uncompressed,
            read_compressed,
            static_bytes=self.scale.static_bytes,
            compressed=self.scheme.uses_compression,
            read_cost_multiplier=read_multiplier,
            profile=read_profile,
        )

    def _advance_with_failures(self, seconds: float, category: str) -> None:
        """Advance the clock by ``seconds``, restarting the phase if a failure hits.

        A failure during recovery forces the recovery to start over, bounded
        by :data:`RECOVERY_RETRY_BUDGET` to keep pathological seeds
        terminating.  When the budget is exhausted one final *uninterrupted*
        advance is performed, so the phase genuinely completes and the time
        accounting matches a finished phase (the old runner treated the last
        interrupted attempt as complete).
        """
        clock = self._clock
        injector = self._injector
        for _ in range(RECOVERY_RETRY_BUDGET):
            start = clock.now
            clock.advance(seconds, category)
            if injector.peek() > clock.now:
                return
            self._consume_strike(injector.strike_time(start), category)
        clock.advance(seconds, category)

    def _record(self, event) -> None:
        if self.events is not None:
            event.stamp(self._sequence.claim())
            self.events.append(event)

    def _build_report(
        self, converged: bool, total_iterations: int, restarts_from_scratch: int
    ) -> FTRunReport:
        clock = self._clock
        state = self._state
        total_ckpt_seconds = clock.time_in("checkpoint")
        total_recovery_seconds = clock.time_in("recovery")
        productive_seconds = self.baseline.iterations * self.iteration_seconds
        ratios = state.compression_ratios or [1.0]
        info: Dict[str, object] = {
            "iteration_seconds": self.iteration_seconds,
            "num_processes": self.cluster.num_processes,
            "mtti_seconds": self.mtti_seconds,
            "dynamic_vectors": self._vectors,
        }
        if not self.scenario.is_paper_regime:
            info["failure_model"] = self.scenario.failure_model
            info["recovery_levels"] = self.scenario.recovery_levels
        if self.scenario.measured:
            # Absent under modeled costing so the paper-regime reports stay
            # byte-identical to the frozen pre-pipeline runner.
            info["checkpoint_costing"] = "measured"
        if not self.scenario.default_backend:
            info["store_backend"] = self.scenario.store_backend
            dedup_stats = getattr(self._backend, "dedup_stats", None)
            if dedup_stats is not None:
                # Byte counts only — deterministic payload accounting, never
                # host wall-clock (WriteReceipt.seconds stays out of reports).
                stats = dedup_stats()
                info["logical_bytes"] = stats["logical_bytes"]
                info["unique_bytes"] = stats["unique_bytes"]
                ratio = stats["dedup_ratio"]
                info["dedup_ratio"] = (
                    ratio if ratio == ratio and ratio != float("inf") else None
                )
        if self._async:
            info["write_mode"] = "async"
            info["io_drain_seconds"] = float(sum(state.drain_times))
            info["mean_drain_seconds"] = (
                float(np.mean(state.drain_times)) if state.drain_times else 0.0
            )
            info["io_interference_seconds"] = clock.time_in("io_interference")
            info["num_dirty_checkpoints"] = state.num_dirty_checkpoints
        if state.gave_up:
            info["gave_up"] = True
            info["give_up_reason"] = state.give_up_reason
        return FTRunReport(
            scheme=self.scheme.name,
            method=self.method,
            converged=converged,
            total_iterations=total_iterations,
            baseline_iterations=self.baseline.iterations,
            num_failures=self._injector.count,
            num_checkpoints=state.num_checkpoints,
            num_restarts_from_scratch=restarts_from_scratch,
            total_seconds=clock.now,
            productive_seconds=productive_seconds,
            checkpoint_seconds=total_ckpt_seconds,
            recovery_seconds=total_recovery_seconds,
            checkpoint_interval_seconds=self.checkpoint_interval_seconds,
            mean_checkpoint_seconds=float(np.mean(state.checkpoint_times))
            if state.checkpoint_times
            else 0.0,
            mean_recovery_seconds=float(np.mean(state.recovery_times))
            if state.recovery_times
            else 0.0,
            mean_compression_ratio=float(np.mean(ratios)),
            residual_trace=list(state.residual_trace),
            info=info,
        )
