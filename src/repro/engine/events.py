"""Typed events of the fault-tolerance engine's virtual timeline.

The engine narrates one failure-injected run as a sequence of discrete
events — compute, checkpoint, failure, recovery, rollback, give-up — each
stamped with the virtual time at which it *completed*.  The
:class:`EventLog` is the engine's replacement for "print-debugging a dict
closure": tests assert on exact event orderings (e.g. that an overdue
checkpoint is retaken immediately after a rollback), and scenario studies
can reconstruct the full timeline from it.

Recording is opt-in (``FaultToleranceEngine(record_events=True)``): a
paper-scale run emits one compute event per iteration, so the default keeps
the hot loop allocation-free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterator, List, Optional, Type, TypeVar

__all__ = [
    "EngineEvent",
    "ComputeEvent",
    "CheckpointTakenEvent",
    "CheckpointDeferredEvent",
    "CheckpointDiscardedEvent",
    "DrainStartedEvent",
    "DrainCompletedEvent",
    "FailureHitEvent",
    "RecoveryEvent",
    "RollbackEvent",
    "GiveUpEvent",
    "EventLog",
]


@dataclass(frozen=True)
class EngineEvent:
    """Base class: ``time`` is the virtual time the event completed.

    ``seq`` is the event's position in the calendar's global sequence —
    stamped at recording time from the same monotonic counter that orders
    :class:`~repro.engine.calendar.ScheduledEvent` tie-breaks, so one
    recorded run carries a single total order across scheduled and observed
    events.  ``-1`` means the event was built outside a calendar run.
    """

    time: float
    seq: int = field(default=-1, kw_only=True, compare=False)

    def stamp(self, seq: int) -> None:
        """Assign the calendar sequence number (events stay frozen otherwise)."""
        object.__setattr__(self, "seq", int(seq))


@dataclass(frozen=True)
class ComputeEvent(EngineEvent):
    """One solver iteration advanced the timeline by ``seconds``."""

    iteration: int
    seconds: float
    residual_norm: float


@dataclass(frozen=True)
class CheckpointTakenEvent(EngineEvent):
    """A checkpoint completed (and became the newest recovery point)."""

    iteration: int
    seconds: float
    compression_ratio: float
    level: Optional[int] = None  # CheckpointLevel value under multilevel runs


@dataclass(frozen=True)
class CheckpointDeferredEvent(EngineEvent):
    """An async checkpoint stayed due because all staging slots were busy.

    Backpressure: with every staging buffer occupied by an in-flight drain
    (``MachineSpec.async_staging_slots``), the compute channel cannot stage
    another payload, so the capture is deferred and retried once a drain
    settles.  Recorded once per deferral episode, not once per iteration.
    """

    iteration: int
    pending: int  # drains in flight when the capture was deferred


@dataclass(frozen=True)
class CheckpointDiscardedEvent(EngineEvent):
    """A failure landed inside the checkpoint window; the write was discarded.

    Under asynchronous write mode this also marks a *dirty* drain: a failure
    struck while the staged payload was still flushing on the I/O channel,
    so the checkpoint never became recoverable.
    """

    iteration: int


@dataclass(frozen=True)
class DrainStartedEvent(EngineEvent):
    """An async checkpoint was staged and its I/O-channel drain enqueued.

    ``time`` is the compute-channel time the capture finished; the drain
    itself occupies ``[drain_start, drain_start + seconds]`` on the I/O
    channel (``drain_start`` may be later than ``time`` when an earlier
    drain still holds the channel).
    """

    checkpoint_id: int
    iteration: int
    drain_start: float
    seconds: float


@dataclass(frozen=True)
class DrainCompletedEvent(EngineEvent):
    """An async drain finished; the checkpoint is now recoverable.

    ``time`` is the I/O-channel completion time (the event is recorded when
    the engine next settles the drain queue, which may be later on the
    compute channel).
    """

    checkpoint_id: int
    iteration: int


@dataclass(frozen=True)
class FailureHitEvent(EngineEvent):
    """An injected failure struck during ``phase``."""

    phase: str
    index: int


@dataclass(frozen=True)
class RecoveryEvent(EngineEvent):
    """A recovery (read + decompress + static rebuild) completed."""

    seconds: float
    from_iteration: int  # 0 when restarting from scratch
    from_scratch: bool
    level: Optional[int] = None


@dataclass(frozen=True)
class RollbackEvent(EngineEvent):
    """Re-execution of the compute lost since the restored checkpoint."""

    seconds: float


@dataclass(frozen=True)
class GiveUpEvent(EngineEvent):
    """The run abandoned before convergence (restart/iteration cap)."""

    reason: str
    iterations_reached: int


E = TypeVar("E", bound=EngineEvent)


class EventLog:
    """Append-only record of engine events, in dispatch order.

    ``max_events`` opts into a ring buffer keeping only the newest entries —
    million-event campaign cells can record the tail of their timeline
    without unbounded RSS.  The default (None) keeps every event, as tests
    that assert on full orderings expect.
    """

    __slots__ = ("events", "max_events", "total_appended")

    def __init__(
        self,
        events: Optional[List[EngineEvent]] = None,
        *,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None:
            max_events = int(max_events)
            if max_events < 1:
                raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self.events: "List[EngineEvent] | Deque[EngineEvent]" = (
            deque(events or (), maxlen=max_events)
            if max_events is not None
            else list(events or ())
        )
        #: Lifetime append count — exceeds ``len(self)`` once the ring wraps.
        self.total_appended = len(self.events)

    def append(self, event: EngineEvent) -> None:
        self.events.append(event)
        self.total_appended += 1

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound (0 when unbounded)."""
        return self.total_appended - len(self.events)

    def of_type(self, event_type: Type[E]) -> List[E]:
        """All recorded events of one type, in order."""
        return [e for e in self.events if isinstance(e, event_type)]

    def __iter__(self) -> Iterator[EngineEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
