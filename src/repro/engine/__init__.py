"""Discrete-event fault-tolerance engine.

The engine executes one iterative solve under one checkpointing scheme with
injected failures on a virtual cluster timeline (the paper's Algorithms 1-2
and Section 5.4 methodology), structured as explicit timeline events against
a typed state:

* :mod:`repro.engine.core` — the event loop
  (:class:`~repro.engine.core.FaultToleranceEngine`);
* :mod:`repro.engine.events` — the typed event vocabulary and the opt-in
  :class:`~repro.engine.events.EventLog`;
* :mod:`repro.engine.scenario` — pluggable failure models × recovery levels
  (:class:`~repro.engine.scenario.Scenario`);
* :mod:`repro.engine.report` — :class:`~repro.engine.report.FTRunReport` and
  the failure-free baseline;
* :mod:`repro.engine.replay` — the deterministic trajectory-replay cache
  (phases keyed by a digest of their exact numeric start state replay their
  recorded residual trajectory instead of re-executing matvecs).

``repro.core.runner`` remains as a *deprecated* compatibility shim —
accessing its ``FaultTolerantRunner`` emits a ``DeprecationWarning``; import
:class:`~repro.engine.core.FaultToleranceEngine` from here instead.
"""

from repro.engine.core import (
    CheckpointRecord,
    EngineState,
    FaultToleranceEngine,
    PendingDrain,
)
from repro.engine.events import (
    CheckpointDiscardedEvent,
    CheckpointTakenEvent,
    ComputeEvent,
    DrainCompletedEvent,
    DrainStartedEvent,
    EngineEvent,
    EventLog,
    FailureHitEvent,
    GiveUpEvent,
    RecoveryEvent,
    RollbackEvent,
)
from repro.engine.replay import (
    REPLAY_ENV,
    ReplaySession,
    SnapshotMemo,
    TrajectoryCache,
    clear_global_cache,
    get_global_cache,
    get_global_snapshot_memo,
    replay_enabled,
)
from repro.engine.report import BaselineRun, FTRunReport, run_failure_free
from repro.engine.scenario import (
    DEFAULT_SCENARIO,
    FAILURE_MODELS,
    RECOVERY_LEVELS,
    WRITE_MODES,
    Scenario,
)

__all__ = [
    "FaultToleranceEngine",
    "EngineState",
    "CheckpointRecord",
    "PendingDrain",
    "EngineEvent",
    "ComputeEvent",
    "CheckpointTakenEvent",
    "CheckpointDiscardedEvent",
    "DrainStartedEvent",
    "DrainCompletedEvent",
    "FailureHitEvent",
    "RecoveryEvent",
    "RollbackEvent",
    "GiveUpEvent",
    "EventLog",
    "BaselineRun",
    "FTRunReport",
    "run_failure_free",
    "Scenario",
    "DEFAULT_SCENARIO",
    "FAILURE_MODELS",
    "RECOVERY_LEVELS",
    "WRITE_MODES",
    "REPLAY_ENV",
    "ReplaySession",
    "SnapshotMemo",
    "TrajectoryCache",
    "replay_enabled",
    "get_global_cache",
    "get_global_snapshot_memo",
    "clear_global_cache",
]
