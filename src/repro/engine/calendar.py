"""Typed event calendar and channel objects for the fault-tolerance engine.

The engine's virtual timeline is a discrete-event simulation: the solver
pumps compute iterations, and everything else that can happen — a failure
arrival, a drain finishing on the I/O channel, the checkpoint cadence coming
due — is a :class:`ScheduledEvent` posted to one :class:`EventCalendar`.
Handlers pull due events in deterministic ``(time, seq)`` order instead of
re-deriving "did a failure land in this window?" / "which drains finished?"
from scratch on every phase.

Determinism
-----------
Every posting claims a monotonically increasing sequence number from the
calendar; the heap orders by ``(time, seq)`` so simultaneous events resolve
in posting order, identically on every same-seed run.  The same counter
stamps the observed :class:`~repro.engine.events.EngineEvent` records, so a
recorded :class:`~repro.engine.events.EventLog` carries one global total
order across scheduled and observed events.

Cancellation is lazy: a cancelled entry stays in the heap and is skipped at
pop time (the standard DES trick — O(1) cancel, no re-heapify).

Channels
--------
:class:`Channel` owns a ``busy_until`` clock on one serialized resource.
The engine uses two:

* the **compute channel** — the solver's own clock (iterations, captures,
  recoveries, rollbacks) plus the incremental interference accounting that
  was previously re-derived per iteration;
* the **I/O channel** — checkpoint drains, serialized one after another.
  :meth:`Channel.reset` is the only way the clock goes backwards (a failure
  discards in-flight work), so a stale absolute ``busy_until`` can never be
  compared against a later ``max(now, busy_until)``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, List, Optional

__all__ = [
    "EventKind",
    "ScheduledEvent",
    "SequenceCounter",
    "EventCalendar",
    "Channel",
    "ComputeChannel",
    "IOChannel",
]


class SequenceCounter:
    """Monotonic event-sequence source, shareable across calendars.

    The engine runs one calendar per channel but wants a *single* total
    order across every scheduled and recorded event of a run — both
    calendars (and the :class:`~repro.engine.events.EventLog` stamps) claim
    from the same counter.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def claim(self) -> int:
        seq = self.value
        self.value += 1
        return seq


class EventKind(str, Enum):
    """The typed vocabulary of schedulable engine events."""

    #: End of one solver segment (converged, interrupted, or budget-capped).
    COMPUTE_PHASE_END = "compute-phase-end"
    #: The checkpoint cadence comes due at this time.
    CHECKPOINT_DUE = "checkpoint-due"
    #: A staged drain finishes flushing on the I/O channel.
    DRAIN_COMPLETE = "drain-complete"
    #: The failure injector's next arrival.
    FAILURE_STRIKE = "failure-strike"
    #: A staging slot frees up while a capture is held back by backpressure.
    STAGING_SLOT_FREED = "staging-slot-freed"


@dataclass(slots=True)
class ScheduledEvent:
    """One entry on the calendar.

    ``seq`` is claimed from the calendar's global counter at posting time and
    breaks ties between simultaneous events deterministically (earlier
    posting wins).  ``payload`` carries the handler's context (a pending
    drain, a failure arrival, ...); ``cancelled`` marks lazily removed
    entries.
    """

    time: float
    seq: int
    kind: EventKind
    payload: object = None
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


class EventCalendar:
    """A heapq of :class:`ScheduledEvent`, ordered by ``(time, seq)``.

    ``next_time`` is kept current on every post/pop so the engine's hot loop
    can gate dispatch on a single float comparison instead of touching the
    heap per iteration.
    """

    __slots__ = ("_heap", "_sequence", "next_time")

    def __init__(self, sequence: Optional[SequenceCounter] = None) -> None:
        self._heap: List[ScheduledEvent] = []
        self._sequence = sequence if sequence is not None else SequenceCounter()
        #: Time of the earliest live entry (``math.inf`` when empty).
        self.next_time: float = math.inf

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def claim_seq(self) -> int:
        """Claim the next global sequence number (also used to stamp
        observed :class:`~repro.engine.events.EventLog` records)."""
        return self._sequence.claim()

    def post(
        self, time: float, kind: "EventKind | str", payload: object = None
    ) -> ScheduledEvent:
        """Schedule ``kind`` at ``time`` and return the (cancellable) entry."""
        event = ScheduledEvent(
            time=float(time), seq=self.claim_seq(), kind=EventKind(kind), payload=payload
        )
        heapq.heappush(self._heap, (event.time, event.seq, event))
        if event.time < self.next_time:
            self.next_time = event.time
        return event

    def _skip_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        self.next_time = heap[0][0] if heap else math.inf

    def peek(self) -> Optional[ScheduledEvent]:
        """The earliest live entry without removing it (None when empty)."""
        self._skip_cancelled()
        return self._heap[0][2] if self._heap else None

    def pop_due(self, until: float) -> Iterator[ScheduledEvent]:
        """Yield every live event with ``time <= until`` in (time, seq) order.

        Events posted *while iterating* participate: a handler that posts an
        earlier-or-equal event sees it delivered in the same sweep (heap
        order is re-evaluated on every step).
        """
        heap = self._heap
        while True:
            self._skip_cancelled()
            if not heap or heap[0][0] > until:
                return
            event = heapq.heappop(heap)[2]
            self.next_time = heap[0][0] if heap else math.inf
            yield event

    def clear(self) -> None:
        """Drop every entry (sequence numbers keep counting up)."""
        self._heap.clear()
        self.next_time = math.inf


@dataclass(slots=True)
class Channel:
    """One serialized resource with an absolute busy-until clock."""

    name: str
    busy_until: float = 0.0

    def acquire(self, now: float, seconds: float) -> "tuple[float, float]":
        """Reserve the channel for ``seconds`` starting no earlier than
        ``now``; returns the ``(start, end)`` interval actually held."""
        start = now if now > self.busy_until else self.busy_until
        end = start + seconds
        self.busy_until = end
        return start, end

    def busy_at(self, time: float) -> bool:
        return time < self.busy_until

    def reset(self, now: float) -> None:
        """Discard in-flight work: the channel is idle as of ``now``.

        Clamping to ``now`` (not 0.0) keeps the invariant that
        ``busy_until`` never moves backwards past the present, so a stale
        absolute clock can never win a later ``max(now, busy_until)``.
        """
        self.busy_until = min(self.busy_until, float(now))


@dataclass(slots=True)
class ComputeChannel(Channel):
    """The solver's channel: tracks rollback-relevant compute incrementally.

    ``seconds_total`` accumulates every productive compute second;
    ``since_checkpoint`` is the rollback span — the compute done since the
    newest committed checkpoint, maintained in O(1) per iteration.

    The two update paths are deliberately distinct floating-point
    expressions, matching the engine's pinned arithmetic: a checkpoint
    completed *at the current instant* calls :meth:`mark`
    (``since_checkpoint = 0.0`` — subsequent spans accumulate from zero),
    while a commit anchored at an *earlier* total calls :meth:`rebase`
    (one subtraction against that anchor).
    """

    seconds_total: float = 0.0
    since_checkpoint: float = 0.0

    def advance(self, seconds: float) -> None:
        self.seconds_total += seconds
        self.since_checkpoint += seconds

    def mark(self) -> None:
        """A checkpoint completed now: the rollback span restarts at zero."""
        self.since_checkpoint = 0.0

    def rebase(self, anchor: float) -> None:
        """Anchor the rollback span at an earlier compute-seconds total."""
        self.since_checkpoint = self.seconds_total - anchor


@dataclass(slots=True)
class IOChannel(Channel):
    """The drain channel: serialized writes, reset on failure.

    The engine posts one :data:`EventKind.DRAIN_COMPLETE` per enqueued drain
    at its ``end`` time; the channel only owns the busy clock and the count
    of entries in flight (the drain payloads live on the scheduled events).
    """

    in_flight: int = 0

    def enqueue(self, now: float, seconds: float) -> "tuple[float, float]":
        start, end = self.acquire(now, seconds)
        self.in_flight += 1
        return start, end

    def complete_one(self) -> None:
        self.in_flight -= 1

    def reset(self, now: float) -> None:
        # Explicit base call: ``slots=True`` dataclasses are re-created by the
        # decorator, which breaks zero-argument ``super()``'s class cell.
        Channel.reset(self, now)
        self.in_flight = 0
