"""Declarative description of an experiment campaign.

A campaign is a grid of independent *cells*; each cell is one fully
self-contained :class:`RunSpec` — everything a worker process needs to execute
the cell deterministically (problem size, solver tolerances, checkpointing
scheme, failure seed, ...).  The same cell always produces the same result, so
cells can be

* executed in any order and on any number of worker processes
  (:mod:`repro.campaign.executor`), and
* cached on disk content-addressed by the hash of their spec
  (:mod:`repro.campaign.cache`).

:class:`CampaignSpec` is the declarative grid {kind x method x scheme x
compressor x error bound x error-bound policy x interval x MTTI x scenario
(failure model x recovery levels x checkpoint costing x write mode x store
backend) x scale x repetition}
that expands into the cell list;
figure modules that need a heterogeneous or specially seeded cell list pass
explicit ``cells`` instead of grid axes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.utils.rng import derive_seed

__all__ = ["RunSpec", "CampaignSpec", "KINDS"]

#: Cell kinds understood by :func:`repro.campaign.execute.execute_cell`.
KINDS = (
    "ft",               # failure-injected FaultToleranceEngine run -> FTRunReport
    "characterize",     # compression-ratio characterization of one scheme
    "extra_iterations", # Fig. 2 random-restart extra-iteration study
    "trajectory",       # Fig. 9 residual trace with scripted lossy restarts
    "solve",            # plain failure-free solve (Fig. 3 KKT system)
    "model",            # pure performance-model evaluation (Fig. 1)
)

#: Bumped when a change to the executor invalidates previously cached results.
#: 2: the v1 block codec changed SZ/ZFP payload sizes, hence every cached
#: compression ratio and the sizes/overheads derived from them.
#: 3: the discrete-event engine added the scenario axis (failure model x
#: recovery levels) to ft cells and fixed give-up/overdue-checkpoint
#: accounting, changing some cached FT reports.
#: 4: the checkpoint pipeline made measured-payload costing the default (ft
#: reports price per-variable serialized bytes) and characterization cells
#: now carry per-variable ratios/overhead, changing cached cell results.
#: 5: the two-channel engine timeline added the write-mode axis (blocking vs
#: async overlapped drains with incremental delta payloads) to ft cells.
#: 6: async captures gained staging-slot backpressure (MachineSpec
#: .async_staging_slots): drains slower than the checkpoint interval no
#: longer grow the dirty queue without bound, changing async ft reports.
#: 7: pluggable checkpoint-store backends added the store-backend axis
#: (pfs/memory/disk/object/chunked) to ft cells; non-default backends price
#: writes/drains/reads through their StoreProfile and chunked backends dedup
#: shipped bytes, changing those cells' reports (pfs cells are unchanged).
#: 8: payload format v2 (byte-shuffled, sharded, entropy-gated compression):
#: lossless and SZ payload bytes changed (smaller), so every cell's measured
#: payload sizes, ratios and checkpoint costs changed with them.
CACHE_VERSION = 8

_Params = Tuple[Tuple[str, object], ...]


def _freeze_params(params) -> _Params:
    """Normalise a params mapping/sequence into a sorted tuple of pairs."""
    if params is None:
        return ()
    items = params.items() if isinstance(params, dict) else params
    frozen = []
    for key, value in items:
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        frozen.append((str(key), value))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class RunSpec:
    """One independent campaign cell.

    Attributes
    ----------
    kind:
        What to execute; one of :data:`KINDS`.
    method:
        Solver/method name (``jacobi``/``gmres``/``cg``/... or ``kkt`` for the
        Fig. 3 solve cell).
    scheme:
        Checkpointing scheme name (``traditional``/``lossless``/``lossy``).
    compressor:
        Lossy compressor for lossy schemes (``sz`` or ``zfp``).
    error_bound:
        Pointwise-relative error bound of the lossy compressor.
    adaptive:
        Use the Theorem-3 adaptive bound (the paper's GMRES setting);
        shorthand that overrides ``error_bound_policy`` with
        ``"residual_adaptive"``.
    error_bound_policy:
        How the lossy bound is chosen at each checkpoint: ``"fixed"``,
        ``"value_range"`` or ``"residual_adaptive"`` (see
        :mod:`repro.compression.errorbounds`).
    checkpoint_costing:
        How checkpoint/recovery bytes are priced: ``"measured"`` (serialized
        pipeline payload, the default) or ``"modeled"`` (the historical
        ``vector_bytes × n_vectors`` estimate).
    write_mode:
        Which timeline checkpoint writes run on: ``"blocking"`` (the paper's
        stop-the-world write, the default) or ``"async"`` (overlapped
        I/O-channel drains with incremental delta payloads; see
        :mod:`repro.engine.scenario`).
    num_processes:
        Paper-scale process count the cell is accounted at.
    mtti_seconds:
        Mean time to interruption of the injected failures (``None`` disables
        failures).
    failure_model:
        Failure-arrival model of the injected failures (``poisson``, the
        paper's process, or ``weibull``/``bursty``; see
        :mod:`repro.cluster.failures`).
    recovery_levels:
        Where checkpoints live: ``pfs`` (the paper's L4-only pricing) or
        ``fti`` (the multilevel FTI cycle with per-level costs/survival).
    checkpoint_interval_seconds:
        Explicit interval; ``None`` applies Young's formula to the
        characterized checkpoint cost.
    repetition:
        Repetition index (axis only; the entropy lives in ``seed``).
    seed:
        Seed of the stochastic part of the cell (failure injection, random
        restart points).
    problem_seed:
        Seed of the synthetic problem construction.
    grid_n / kkt_n:
        Local (reduced) problem sizes.
    rtol:
        Solver convergence tolerance; ``None`` uses the per-method paper value.
    params:
        Kind-specific extras as a tuple of ``(name, value)`` pairs (e.g.
        ``trials`` for extra-iteration cells, ``restart_fractions`` for
        trajectory cells, ``lam``/``tckp`` for model cells).
    """

    kind: str = "ft"
    method: str = "jacobi"
    scheme: str = "lossy"
    compressor: str = "sz"
    error_bound: float = 1e-4
    adaptive: bool = False
    error_bound_policy: str = "fixed"
    num_processes: int = 2048
    mtti_seconds: Optional[float] = 3600.0
    failure_model: str = "poisson"
    recovery_levels: str = "pfs"
    checkpoint_costing: str = "measured"
    write_mode: str = "blocking"
    store_backend: str = "pfs"
    checkpoint_interval_seconds: Optional[float] = None
    repetition: int = 0
    seed: int = 2018
    problem_seed: int = 2018
    grid_n: int = 12
    kkt_n: int = 6
    rtol: Optional[float] = None
    gmres_restart: int = 30
    max_iter: int = 100000
    params: _Params = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}; known: {KINDS}")
        from repro.compression.errorbounds import BOUND_POLICIES
        from repro.engine.scenario import (
            CAMPAIGN_FAILURE_MODELS,
            CHECKPOINT_COSTINGS,
            RECOVERY_LEVELS,
            STORE_BACKENDS,
            WRITE_MODES,
        )

        if self.failure_model not in CAMPAIGN_FAILURE_MODELS:
            # "scripted" is deliberately excluded: a cell cannot carry the
            # explicit failure times it needs, so it would silently run
            # failure-free.
            raise ValueError(
                f"unknown failure model {self.failure_model!r}; "
                f"known: {CAMPAIGN_FAILURE_MODELS}"
            )
        if self.recovery_levels not in RECOVERY_LEVELS:
            raise ValueError(
                f"unknown recovery levels {self.recovery_levels!r}; "
                f"known: {RECOVERY_LEVELS}"
            )
        if self.checkpoint_costing not in CHECKPOINT_COSTINGS:
            raise ValueError(
                f"unknown checkpoint costing {self.checkpoint_costing!r}; "
                f"known: {CHECKPOINT_COSTINGS}"
            )
        if self.write_mode not in WRITE_MODES:
            raise ValueError(
                f"unknown write mode {self.write_mode!r}; known: {WRITE_MODES}"
            )
        if self.store_backend not in STORE_BACKENDS:
            raise ValueError(
                f"unknown store backend {self.store_backend!r}; "
                f"known: {STORE_BACKENDS}"
            )
        if self.error_bound_policy not in BOUND_POLICIES:
            # "per_variable" is deliberately excluded: a cell cannot carry
            # the per-name policy mapping it needs.
            raise ValueError(
                f"unknown error-bound policy {self.error_bound_policy!r}; "
                f"known: {BOUND_POLICIES}"
            )
        object.__setattr__(self, "params", _freeze_params(self.params))

    def param(self, name: str, default=None):
        """Look up one kind-specific parameter."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def with_overrides(self, **kwargs) -> "RunSpec":
        """Copy with the given fields replaced."""
        return replace(self, **kwargs)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary representation."""
        return {
            "kind": self.kind,
            "method": self.method,
            "scheme": self.scheme,
            "compressor": self.compressor,
            "error_bound": float(self.error_bound),
            "adaptive": bool(self.adaptive),
            "error_bound_policy": self.error_bound_policy,
            "num_processes": int(self.num_processes),
            "mtti_seconds": None if self.mtti_seconds is None else float(self.mtti_seconds),
            "failure_model": self.failure_model,
            "recovery_levels": self.recovery_levels,
            "checkpoint_costing": self.checkpoint_costing,
            "write_mode": self.write_mode,
            "store_backend": self.store_backend,
            "checkpoint_interval_seconds": (
                None
                if self.checkpoint_interval_seconds is None
                else float(self.checkpoint_interval_seconds)
            ),
            "repetition": int(self.repetition),
            "seed": int(self.seed),
            "problem_seed": int(self.problem_seed),
            "grid_n": int(self.grid_n),
            "kkt_n": int(self.kkt_n),
            "rtol": None if self.rtol is None else float(self.rtol),
            "gmres_restart": int(self.gmres_restart),
            "max_iter": int(self.max_iter),
            "params": [[k, list(v) if isinstance(v, tuple) else v] for k, v in self.params],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSpec":
        """Rebuild a cell from :meth:`to_dict` output (or parsed JSON)."""
        data = dict(data)
        data["params"] = _freeze_params(data.get("params"))
        return cls(**data)

    def cache_key(self) -> str:
        """Content hash identifying this cell in the result cache."""
        payload = json.dumps(
            {"version": CACHE_VERSION, "spec": self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative grid of campaign cells.

    The grid axes (methods x schemes x compressors x error bounds x intervals
    x MTTIs x process counts x repetitions) expand into one :class:`RunSpec`
    per combination; each cell's failure seed is derived deterministically
    from the campaign ``seed`` and the cell's coordinates, so re-expanding the
    same spec always yields the same cells.  When ``cells`` is non-empty the
    grid axes are ignored and the explicit cell list is used as-is.
    """

    name: str = "campaign"
    kind: str = "ft"
    methods: Tuple[str, ...] = ("jacobi",)
    schemes: Tuple[str, ...] = ("lossy",)
    compressors: Tuple[str, ...] = ("sz",)
    error_bounds: Tuple[float, ...] = (1e-4,)
    error_bound_policies: Tuple[str, ...] = ("fixed",)
    checkpoint_intervals: Tuple[Optional[float], ...] = (None,)
    mttis: Tuple[Optional[float], ...] = (3600.0,)
    failure_models: Tuple[str, ...] = ("poisson",)
    recovery_levels: Tuple[str, ...] = ("pfs",)
    checkpoint_costings: Tuple[str, ...] = ("measured",)
    write_modes: Tuple[str, ...] = ("blocking",)
    store_backends: Tuple[str, ...] = ("pfs",)
    process_counts: Tuple[int, ...] = (2048,)
    repetitions: int = 1
    seed: int = 2018
    grid_n: int = 12
    kkt_n: int = 6
    gmres_restart: int = 30
    max_iter: int = 100000
    rtols: Tuple[Tuple[str, float], ...] = ()
    params: _Params = ()
    cells: Tuple[RunSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "methods", tuple(self.methods))
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "compressors", tuple(self.compressors))
        object.__setattr__(self, "error_bounds", tuple(float(e) for e in self.error_bounds))
        object.__setattr__(
            self, "error_bound_policies", tuple(self.error_bound_policies)
        )
        object.__setattr__(self, "checkpoint_intervals", tuple(self.checkpoint_intervals))
        object.__setattr__(self, "mttis", tuple(self.mttis))
        object.__setattr__(self, "failure_models", tuple(self.failure_models))
        object.__setattr__(self, "recovery_levels", tuple(self.recovery_levels))
        object.__setattr__(
            self, "checkpoint_costings", tuple(self.checkpoint_costings)
        )
        object.__setattr__(self, "write_modes", tuple(self.write_modes))
        object.__setattr__(self, "store_backends", tuple(self.store_backends))
        object.__setattr__(self, "process_counts", tuple(int(p) for p in self.process_counts))
        object.__setattr__(self, "rtols", _freeze_params(dict(self.rtols)))
        object.__setattr__(self, "params", _freeze_params(self.params))
        object.__setattr__(self, "cells", tuple(self.cells))

    def rtol_for(self, method: str) -> Optional[float]:
        """The configured tolerance for ``method`` (``None`` = paper default)."""
        for key, value in self.rtols:
            if key == method:
                return float(value)
        return None

    def expand(self) -> List[RunSpec]:
        """Expand the grid into the ordered list of independent cells."""
        if self.cells:
            return list(self.cells)
        expanded: List[RunSpec] = []
        for method in self.methods:
            for scheme in self.schemes:
                for compressor in self.compressors:
                    for eb in self.error_bounds:
                        for policy in self.error_bound_policies:
                            for interval in self.checkpoint_intervals:
                                for mtti in self.mttis:
                                    for failure_model in self.failure_models:
                                        for levels in self.recovery_levels:
                                            for costing in self.checkpoint_costings:
                                                for mode in self.write_modes:
                                                    for backend in self.store_backends:
                                                        for procs in self.process_counts:
                                                            for rep in range(
                                                                self.repetitions
                                                            ):
                                                                expanded.append(
                                                                    self._cell(
                                                                        method,
                                                                        scheme,
                                                                        compressor,
                                                                        eb,
                                                                        policy,
                                                                        interval,
                                                                        mtti,
                                                                        failure_model,
                                                                        levels,
                                                                        costing,
                                                                        mode,
                                                                        backend,
                                                                        procs,
                                                                        rep,
                                                                    )
                                                                )
        return expanded

    def _cell(
        self,
        method: str,
        scheme: str,
        compressor: str,
        eb: float,
        error_bound_policy: str,
        interval: Optional[float],
        mtti: Optional[float],
        failure_model: str,
        recovery_levels: str,
        checkpoint_costing: str,
        write_mode: str,
        store_backend: str,
        procs: int,
        rep: int,
    ) -> RunSpec:
        salts = [
            method,
            scheme,
            compressor,
            repr(float(eb)),
            repr(interval),
            repr(mtti),
            procs,
            rep,
        ]
        # Scenario/policy/costing coordinates only salt the seed when
        # non-default, so every pre-existing campaign keeps its exact
        # historical cell seeds (and with them the statistical baselines the
        # figure tests pin).
        if failure_model != "poisson" or recovery_levels != "pfs":
            salts += [failure_model, recovery_levels]
        if error_bound_policy != "fixed":
            salts += ["policy", error_bound_policy]
        if checkpoint_costing != "measured":
            salts += ["costing", checkpoint_costing]
        if write_mode != "blocking":
            salts += ["write_mode", write_mode]
        if store_backend != "pfs":
            salts += ["store_backend", store_backend]
        cell_seed = derive_seed(self.seed, *salts)
        return RunSpec(
            kind=self.kind,
            method=method,
            scheme=scheme,
            compressor=compressor,
            error_bound=float(eb),
            adaptive=(scheme == "lossy" and method == "gmres"),
            error_bound_policy=error_bound_policy,
            num_processes=int(procs),
            mtti_seconds=mtti,
            failure_model=failure_model,
            recovery_levels=recovery_levels,
            checkpoint_costing=checkpoint_costing,
            write_mode=write_mode,
            store_backend=store_backend,
            checkpoint_interval_seconds=interval,
            repetition=rep,
            seed=cell_seed,
            problem_seed=self.seed,
            grid_n=self.grid_n,
            kkt_n=self.kkt_n,
            rtol=self.rtol_for(method),
            gmres_restart=self.gmres_restart,
            max_iter=self.max_iter,
            params=self.params,
        )

    def __len__(self) -> int:
        if self.cells:
            return len(self.cells)
        return (
            len(self.methods)
            * len(self.schemes)
            * len(self.compressors)
            * len(self.error_bounds)
            * len(self.error_bound_policies)
            * len(self.checkpoint_intervals)
            * len(self.mttis)
            * len(self.failure_models)
            * len(self.recovery_levels)
            * len(self.checkpoint_costings)
            * len(self.write_modes)
            * len(self.store_backends)
            * len(self.process_counts)
            * self.repetitions
        )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dictionary representation."""
        return {
            "name": self.name,
            "kind": self.kind,
            "methods": list(self.methods),
            "schemes": list(self.schemes),
            "compressors": list(self.compressors),
            "error_bounds": list(self.error_bounds),
            "error_bound_policies": list(self.error_bound_policies),
            "checkpoint_intervals": list(self.checkpoint_intervals),
            "mttis": list(self.mttis),
            "failure_models": list(self.failure_models),
            "recovery_levels": list(self.recovery_levels),
            "checkpoint_costings": list(self.checkpoint_costings),
            "write_modes": list(self.write_modes),
            "store_backends": list(self.store_backends),
            "process_counts": list(self.process_counts),
            "repetitions": int(self.repetitions),
            "seed": int(self.seed),
            "grid_n": int(self.grid_n),
            "kkt_n": int(self.kkt_n),
            "gmres_restart": int(self.gmres_restart),
            "max_iter": int(self.max_iter),
            "rtols": [[k, v] for k, v in self.rtols],
            "params": [[k, list(v) if isinstance(v, tuple) else v] for k, v in self.params],
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_dict` output (or parsed JSON)."""
        data = dict(data)
        data["cells"] = tuple(
            RunSpec.from_dict(cell) for cell in data.get("cells", [])
        )
        data["rtols"] = _freeze_params(dict(data.get("rtols", [])))
        data["params"] = _freeze_params(data.get("params"))
        return cls(**data)

    def to_json(self, **kwargs) -> str:
        """Serialize to JSON (``sort_keys`` by default for determinism)."""
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "CampaignSpec":
        """Rebuild a campaign from a :meth:`to_json` string."""
        return cls.from_dict(json.loads(payload))
