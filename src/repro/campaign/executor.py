"""Fan a campaign's cells out over worker processes (or run them serially).

The executor guarantees a crucial invariant: *results are a function of the
spec, never of the execution strategy*.  Cells are fully self-seeded, the
worker function is deterministic, and outcomes are collected by cell index —
so ``n_workers=4`` and ``n_workers=1`` produce byte-identical campaign
results, and a cached re-run is indistinguishable from a fresh one.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.campaign.cache import ResultCache
from repro.campaign.execute import configure_memo_store, execute_cell
from repro.campaign.spec import CampaignSpec, RunSpec

__all__ = ["CellOutcome", "CampaignResult", "ParallelExecutor", "run_campaign"]

#: ``progress(done, total, outcome)`` callback signature.
ProgressFn = Callable[[int, int, "CellOutcome"], None]


@dataclass
class CellOutcome:
    """One executed (or cache-served) campaign cell."""

    index: int
    spec: RunSpec
    result: Dict[str, object]
    cached: bool
    seconds: float = 0.0


@dataclass
class CampaignResult:
    """Ordered outcomes of one campaign execution."""

    name: str
    outcomes: List[CellOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    n_workers: int = 1

    @property
    def executed_count(self) -> int:
        """Cells that actually ran (cache misses)."""
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cached_count(self) -> int:
        """Cells served from the result cache."""
        return sum(1 for o in self.outcomes if o.cached)

    def results(self) -> List[Dict[str, object]]:
        """The per-cell result dictionaries, in cell order."""
        return [o.result for o in self.outcomes]

    def cells(self) -> List[RunSpec]:
        """The cell specs, in cell order."""
        return [o.spec for o in self.outcomes]

    def __len__(self) -> int:
        return len(self.outcomes)


def _default_workers() -> int:
    cpus = os.cpu_count() or 1
    return max(1, min(8, cpus))


class ParallelExecutor:
    """Execute campaign cells, optionally in parallel and through a cache.

    Parameters
    ----------
    n_workers:
        Worker processes; ``1`` runs everything serially in-process (the
        deterministic fallback — no pool, no pickling).  ``None`` picks a
        sensible default from the core count.
    cache:
        A :class:`~repro.campaign.cache.ResultCache` (or a directory path to
        create one in); ``None`` disables caching.
    progress:
        Optional ``progress(done, total, outcome)`` callback, invoked in the
        parent process as each cell completes.
    """

    def __init__(
        self,
        n_workers: Optional[int] = 1,
        *,
        cache: "ResultCache | str | os.PathLike | None" = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.n_workers = _default_workers() if n_workers is None else max(1, int(n_workers))
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.progress = progress

    # ------------------------------------------------------------------
    def run(
        self, campaign: Union[CampaignSpec, Sequence[RunSpec]]
    ) -> CampaignResult:
        """Execute every cell of ``campaign`` and return the ordered outcomes."""
        if isinstance(campaign, CampaignSpec):
            name = campaign.name
            cells = campaign.expand()
        else:
            name = "cells"
            cells = list(campaign)

        # Shared sub-results (baselines, characterizations) persist next to
        # the cell results; without a result cache there is no durable
        # directory to anchor them, so the memo stays in-process only.
        memo_dir = (
            str(self.cache.directory / "memos") if self.cache is not None else None
        )
        configure_memo_store(memo_dir)

        start = time.perf_counter()
        total = len(cells)
        outcomes: List[Optional[CellOutcome]] = [None] * total
        pending: List[int] = []
        done = 0

        for index, cell in enumerate(cells):
            hit = self.cache.get(cell) if self.cache is not None else None
            if hit is not None:
                outcome = CellOutcome(index=index, spec=cell, result=hit, cached=True)
                outcomes[index] = outcome
                done += 1
                if self.progress:
                    self.progress(done, total, outcome)
            else:
                pending.append(index)

        if pending:
            if self.n_workers == 1:
                for index in pending:
                    outcome = self._execute_one(index, cells[index])
                    outcomes[index] = outcome
                    done += 1
                    if self.progress:
                        self.progress(done, total, outcome)
            else:
                done = self._execute_parallel(
                    cells, pending, outcomes, done, total, memo_dir
                )

        return CampaignResult(
            name=name,
            outcomes=[o for o in outcomes if o is not None],
            wall_seconds=time.perf_counter() - start,
            n_workers=self.n_workers,
        )

    # ------------------------------------------------------------------
    def _execute_one(self, index: int, cell: RunSpec) -> CellOutcome:
        cell_start = time.perf_counter()
        result = execute_cell(cell)
        seconds = time.perf_counter() - cell_start
        if self.cache is not None:
            self.cache.put(cell, result)
        return CellOutcome(
            index=index, spec=cell, result=result, cached=False, seconds=seconds
        )

    def _execute_parallel(
        self,
        cells: List[RunSpec],
        pending: List[int],
        outcomes: List[Optional[CellOutcome]],
        done: int,
        total: int,
        memo_dir: Optional[str] = None,
    ) -> int:
        submitted = {}
        first_error: Optional[BaseException] = None
        with ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=_init_worker,
            initargs=(memo_dir,),
        ) as pool:
            for chunk in self._chunk_pending(cells, pending):
                future = pool.submit(_execute_chunk, [cells[i] for i in chunk])
                submitted[future] = chunk
            remaining = set(submitted)
            while remaining:
                completed, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in completed:
                    chunk = submitted[future]
                    try:
                        chunk_results = future.result()
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        # Keep draining so every other chunk's results still
                        # land in the cache; only this chunk's cells are lost.
                        if first_error is None:
                            first_error = exc
                        continue
                    for index, (result, seconds) in zip(chunk, chunk_results):
                        if self.cache is not None:
                            self.cache.put(cells[index], result)
                        outcome = CellOutcome(
                            index=index,
                            spec=cells[index],
                            result=result,
                            cached=False,
                            seconds=seconds,
                        )
                        outcomes[index] = outcome
                        done += 1
                        if self.progress:
                            self.progress(done, total, outcome)
        if first_error is not None:
            raise first_error
        return done

    def _chunk_pending(
        self, cells: List[RunSpec], pending: List[int]
    ) -> List[List[int]]:
        """Batch pending cells into worker tasks that amortise shared setup.

        Cells sharing a (problem, scheme) configuration reuse the same
        expensive sub-results — the failure-free baseline and the scheme's
        compression characterization — which are memoized *per worker
        process*.  Shipping such cells one at a time makes every worker redo
        that setup, so same-configuration cells are grouped and each group
        split into at most ``n_workers`` contiguous chunks: enough tasks to
        keep every worker busy, few enough that the setup is paid O(n_workers)
        times instead of O(cells).  Chunks are interleaved round-robin across
        groups so the first tasks the pool hands out carry *distinct*
        configurations — the shared setups themselves then run in parallel.
        """
        from repro.campaign.execute import _scheme_key

        groups: Dict[tuple, List[int]] = {}
        for index in pending:
            groups.setdefault(_scheme_key(cells[index]), []).append(index)
        per_group: List[List[List[int]]] = []
        for group in groups.values():
            n_chunks = min(self.n_workers, len(group))
            size = -(-len(group) // n_chunks)  # ceil division
            per_group.append(
                [group[i : i + size] for i in range(0, len(group), size)]
            )
        chunks: List[List[int]] = []
        for round_index in range(max(len(g) for g in per_group)):
            for group_chunks in per_group:
                if round_index < len(group_chunks):
                    chunks.append(group_chunks[round_index])
        return chunks


def _init_worker(memo_dir: Optional[str] = None) -> None:
    """Campaign worker-process init: pin shard compression to one thread.

    Each worker cell is already one process of a full pool; letting the
    sharded compressor fan out its own threads on top would oversubscribe
    the machine.  An explicit ``REPRO_COMPRESS_THREADS`` set by the user
    wins — frame bytes are identical either way.  ``memo_dir`` points the
    worker at the campaign's shared on-disk sub-result memo, so baselines
    and characterizations computed by any process are reused by all.
    """
    os.environ.setdefault("REPRO_COMPRESS_THREADS", "1")
    configure_memo_store(memo_dir)


def _execute_chunk(chunk: List[RunSpec]):
    """Worker-side execution of a batch of cells (module-level for pickling)."""
    results = []
    for cell in chunk:
        start = time.perf_counter()
        result = execute_cell(cell)
        results.append((result, time.perf_counter() - start))
    return results


def run_campaign(
    campaign: Union[CampaignSpec, Sequence[RunSpec]],
    *,
    n_workers: Optional[int] = 1,
    cache: "ResultCache | str | os.PathLike | None" = None,
    progress: Optional[ProgressFn] = None,
) -> CampaignResult:
    """Convenience wrapper: build a :class:`ParallelExecutor` and run once."""
    executor = ParallelExecutor(n_workers, cache=cache, progress=progress)
    return executor.run(campaign)
