"""Aggregation of campaign outcomes into tables and JSON summaries.

:class:`CampaignReport` groups cells along any subset of spec axes and
reduces the numeric fields of their results (means over repetitions is the
common case).  The report is built purely from the ordered
:class:`~repro.campaign.executor.CampaignResult`, so serial, parallel and
cache-served executions of the same spec render byte-identical reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.campaign.executor import CampaignResult
from repro.utils.tables import format_table

__all__ = ["CampaignReport"]

#: Per-cell metrics pulled out of an ``ft`` result for aggregation.
_FT_METRICS = (
    "overhead_fraction",
    "extra_iterations",
    "interval_seconds",
    "estimated_checkpoint_seconds",
    "mean_ratio",
)
#: FTRunReport fields additionally aggregated for ``ft`` cells.
_FT_REPORT_METRICS = (
    "total_seconds",
    "num_failures",
    "num_checkpoints",
    "total_iterations",
)


def _cell_metrics(spec, result: Dict[str, object]) -> Dict[str, float]:
    """Flatten one cell result into a {metric: value} mapping."""
    metrics: Dict[str, float] = {}
    if spec.kind == "ft":
        for name in _FT_METRICS:
            if name in result:
                metrics[name] = float(result[name])
        report = result.get("report", {})
        for name in _FT_REPORT_METRICS:
            if name in report:
                metrics[name] = float(report[name])
    else:
        for name, value in result.items():
            if isinstance(value, bool):
                metrics[name] = float(value)
            elif isinstance(value, (int, float)):
                metrics[name] = float(value)
    return metrics


@dataclass
class CampaignReport:
    """Aggregated view of one executed campaign."""

    result: CampaignResult

    # ------------------------------------------------------------------
    def aggregate(
        self, by: Sequence[str] = ("method", "scheme", "num_processes")
    ) -> "Dict[Tuple, Dict[str, float]]":
        """Group cells by the given spec fields and average their metrics.

        Returns an insertion-ordered mapping from the group key tuple to
        ``{metric: mean, ..., "cells": count}``.
        """
        groups: Dict[Tuple, List[Dict[str, float]]] = {}
        for outcome in self.result.outcomes:
            key = tuple(getattr(outcome.spec, axis) for axis in by)
            groups.setdefault(key, []).append(
                _cell_metrics(outcome.spec, outcome.result)
            )
        aggregated: Dict[Tuple, Dict[str, float]] = {}
        for key, rows in groups.items():
            merged: Dict[str, float] = {}
            names = sorted({name for row in rows for name in row})
            for name in names:
                values = [row[name] for row in rows if name in row]
                merged[name] = sum(values) / len(values)
            merged["cells"] = float(len(rows))
            aggregated[key] = merged
        return aggregated

    # ------------------------------------------------------------------
    def table(
        self,
        by: Sequence[str] = ("method", "scheme", "num_processes"),
        metrics: "Sequence[str] | None" = None,
        title: "str | None" = None,
    ) -> str:
        """Render the aggregated campaign as a text table."""
        aggregated = self.aggregate(by)
        if metrics is None:
            seen: List[str] = []
            for row in aggregated.values():
                for name in row:
                    if name != "cells" and name not in seen:
                        seen.append(name)
            metrics = seen
        headers = list(by) + list(metrics) + ["cells"]
        rows = []
        for key, row in aggregated.items():
            rendered = [str(part) for part in key]
            for name in metrics:
                value = row.get(name)
                rendered.append("-" if value is None else f"{value:.4g}")
            rendered.append(f"{int(row['cells'])}")
            rows.append(rendered)
        if title is None:
            title = (
                f"Campaign '{self.result.name}' — {len(self.result)} cells "
                f"({self.result.executed_count} executed, "
                f"{self.result.cached_count} cached) "
                f"in {self.result.wall_seconds:.1f}s with "
                f"{self.result.n_workers} worker(s)"
            )
        return format_table(headers, rows, title=title)

    # ------------------------------------------------------------------
    def to_dict(self, by: Sequence[str] = ("method", "scheme", "num_processes")) -> Dict:
        """Deterministic JSON-safe summary (used for byte-identity checks).

        Deliberately excludes wall-clock timing and worker counts so that the
        serial and parallel paths serialize identically.
        """
        aggregated = self.aggregate(by)
        return {
            "name": self.result.name,
            "cells": [
                {"spec": o.spec.to_dict(), "result": o.result}
                for o in self.result.outcomes
            ],
            "aggregate": [
                {"key": list(key), "metrics": row} for key, row in aggregated.items()
            ],
        }

    def to_json(self, by: Sequence[str] = ("method", "scheme", "num_processes")) -> str:
        """Canonical JSON of :meth:`to_dict` (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(by), sort_keys=True, separators=(",", ":"))
