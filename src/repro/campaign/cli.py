"""Command-line front end: ``python -m repro.campaign``.

Runs a campaign — either a named preset or a JSON spec file — through the
parallel executor with the on-disk result cache, printing per-cell progress
and the aggregated report table.

Examples
--------
List what is available::

    python -m repro.campaign --list-presets

Run the 24-cell demo sweep on 4 workers (second invocation hits the cache)::

    python -m repro.campaign --preset demo --workers 4

Run a spec you saved (``CampaignSpec.to_json``)::

    python -m repro.campaign --spec sweep.json --workers 8 --json out.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.campaign.cache import ResultCache
from repro.campaign.execute import PROFILE_ENV
from repro.campaign.executor import CellOutcome, run_campaign
from repro.campaign.report import CampaignReport
from repro.campaign.spec import CampaignSpec, RunSpec

__all__ = ["main", "PRESETS", "demo_campaign"]

DEFAULT_CACHE_DIR = ".campaign-cache"


def demo_campaign(*, grid_n: int = 10, seed: int = 2018) -> CampaignSpec:
    """A fast 24-cell failure-injected demo sweep (scheme x scale x rep)."""
    return CampaignSpec(
        name="demo",
        kind="ft",
        methods=("jacobi",),
        schemes=("traditional", "lossless", "lossy"),
        process_counts=(256, 2048),
        repetitions=4,
        grid_n=grid_n,
        seed=seed,
    )


def _scheme_sweep() -> CampaignSpec:
    """Every method under every scheme across the paper's scales."""
    return CampaignSpec(
        name="scheme-sweep",
        kind="ft",
        methods=("jacobi", "gmres", "cg"),
        schemes=("traditional", "lossless", "lossy"),
        process_counts=(256, 1024, 2048),
        repetitions=3,
    )


def _error_bound_sweep() -> CampaignSpec:
    """Lossy checkpointing across the paper's error bounds and compressors."""
    return CampaignSpec(
        name="error-bound-sweep",
        kind="ft",
        methods=("jacobi", "cg"),
        schemes=("lossy",),
        compressors=("sz", "zfp"),
        error_bounds=(1e-3, 1e-4, 1e-5, 1e-6),
        repetitions=3,
    )


def _async_vs_blocking() -> CampaignSpec:
    """Overlapped (async) vs stop-the-world checkpoint writes per scheme.

    Sweeps ``write_mode x checkpoint_costing`` over the paper's three schemes
    so the overhead reduction from draining checkpoint writes on the I/O
    channel can be read per scheme under both pricing regimes.
    """
    return CampaignSpec(
        name="async-vs-blocking",
        kind="ft",
        methods=("jacobi",),
        schemes=("traditional", "lossless", "lossy"),
        write_modes=("blocking", "async"),
        checkpoint_costings=("measured", "modeled"),
        repetitions=3,
    )


def _store_backends() -> CampaignSpec:
    """Lossy checkpointing across every checkpoint-store backend.

    Sweeps ``store_backend x write_mode`` under FTI multilevel recovery so
    the priced profiles (memory staging, node-local disk, remote object
    store) and the chunked backend's dedup ratio can be compared against the
    paper's implicit PFS on the same failure trace.
    """
    return CampaignSpec(
        name="store-backends",
        kind="ft",
        methods=("jacobi",),
        schemes=("lossy",),
        recovery_levels=("fti",),
        write_modes=("blocking", "async"),
        store_backends=("pfs", "memory", "disk", "object", "chunked"),
        repetitions=2,
    )


def _mtti_sweep() -> CampaignSpec:
    """Lossy vs traditional as the machine gets less reliable."""
    return CampaignSpec(
        name="mtti-sweep",
        kind="ft",
        methods=("jacobi",),
        schemes=("traditional", "lossy"),
        mttis=(1800.0, 3600.0, 10800.0),
        process_counts=(1024, 2048),
        repetitions=3,
    )


PRESETS: Dict[str, object] = {
    "demo": demo_campaign,
    "scheme-sweep": _scheme_sweep,
    "error-bound-sweep": _error_bound_sweep,
    "async-vs-blocking": _async_vs_blocking,
    "store-backends": _store_backends,
    "mtti-sweep": _mtti_sweep,
}


def _load_spec(args: argparse.Namespace, parser: argparse.ArgumentParser) -> CampaignSpec:
    if args.spec is not None:
        path = Path(args.spec)
        try:
            payload = path.read_text()
        except OSError as exc:
            parser.error(f"cannot read spec file {path}: {exc}")
        try:
            return CampaignSpec.from_json(payload)
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            parser.error(f"invalid campaign spec {path}: {exc}")
    factory = PRESETS[args.preset]
    return factory()


def _progress_printer(stream) -> "callable":
    def progress(done: int, total: int, outcome: CellOutcome) -> None:
        spec = outcome.spec
        label = f"{spec.kind}:{spec.method}/{spec.scheme}@{spec.num_processes}"
        status = "cached" if outcome.cached else f"{outcome.seconds:.2f}s"
        print(f"[{done:>{len(str(total))}}/{total}] {label:<40} {status}", file=stream)

    return progress


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run an experiment campaign through the parallel executor.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="demo",
        help="named campaign to run (default: demo)",
    )
    source.add_argument("--spec", help="path to a CampaignSpec JSON file")
    parser.add_argument(
        "--workers",
        "-j",
        type=int,
        default=1,
        help="worker processes; 1 = serial (default), 0 = auto from core count",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="execute every cell, cache nothing"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the full report JSON to PATH"
    )
    parser.add_argument(
        "--group-by",
        default="method,scheme,num_processes",
        help="comma-separated spec fields to aggregate over",
    )
    parser.add_argument(
        "--profile",
        metavar="DIR",
        help="profile each executed cell with cProfile and dump one pstats "
        "file per cell into DIR (sets REPRO_PROFILE; cache hits execute "
        "nothing, so combine with --no-cache to profile every cell)",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true", help="suppress per-cell progress lines"
    )
    parser.add_argument(
        "--list-presets", action="store_true", help="list available presets and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_presets:
        for name in sorted(PRESETS):
            spec = PRESETS[name]()
            print(f"{name:<20} {len(spec):>4} cells  kind={spec.kind}")
        return 0

    spec = _load_spec(args, parser)
    by = tuple(part.strip() for part in args.group_by.split(",") if part.strip())
    valid_axes = {f.name for f in dataclasses.fields(RunSpec)}
    unknown = [axis for axis in by if axis not in valid_axes]
    if unknown:
        parser.error(
            f"unknown --group-by field(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(valid_axes))}"
        )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    n_workers = None if args.workers == 0 else args.workers
    progress = None if args.quiet else _progress_printer(sys.stderr)
    # Worker processes inherit the environment, so the env hook covers both
    # the serial path and forked pool workers; restored after the run so an
    # in-process caller's environment is left untouched.
    saved_profile = os.environ.get(PROFILE_ENV)
    if args.profile:
        os.environ[PROFILE_ENV] = args.profile
    try:
        result = run_campaign(spec, n_workers=n_workers, cache=cache, progress=progress)
    finally:
        if args.profile:
            if saved_profile is None:
                os.environ.pop(PROFILE_ENV, None)
            else:
                os.environ[PROFILE_ENV] = saved_profile
    report = CampaignReport(result)
    print(report.table(by=by))
    print(
        f"{len(result)} cells: {result.executed_count} executed, "
        f"{result.cached_count} from cache, {result.wall_seconds:.1f}s wall"
    )
    if args.json:
        Path(args.json).write_text(json.dumps(report.to_dict(by=by), indent=2, sort_keys=True))
        print(f"report written to {args.json}")
    if args.profile:
        profiles = sorted(Path(args.profile).glob("*.pstats"))
        print(f"{len(profiles)} cell profile(s) in {args.profile}")
    return 0
