"""``python -m repro.campaign`` dispatch."""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
