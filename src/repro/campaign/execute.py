"""Execution of one campaign cell.

:func:`execute_cell` is the *only* entry point a worker process needs: it is a
module-level function of one picklable :class:`~repro.campaign.spec.RunSpec`
argument, so :class:`concurrent.futures.ProcessPoolExecutor` can ship cells to
workers directly.  Every handler returns a JSON-safe dictionary (what the
on-disk result cache stores), and every handler is a deterministic function of
the cell — the same cell always produces the same dictionary, which is what
makes the serial and parallel execution paths byte-identical.

Expensive sub-results that many cells share (the failure-free baseline of one
solver configuration, the compression-ratio characterization of one scheme)
are memoized at two levels.  Per worker process, ``functools.lru_cache`` keeps
the constructed objects live, so a campaign sweeping repetitions or scales
pays for each baseline/characterization at most once per worker.  Across
processes — and across campaign invocations — an optional on-disk
:class:`~repro.campaign.cache.MemoStore` (see :func:`configure_memo_store`)
holds the JSON form of each baseline/characterization, keyed by a SHA-256 of
the :func:`_problem_key`/:func:`_scheme_key` coordinates plus the
:data:`~repro.campaign.spec.CACHE_VERSION` salt: a fresh worker pool no
longer re-solves a baseline another worker (or yesterday's campaign) already
computed.  Floats survive the JSON round trip bit-exactly, so memo-served
cells stay byte-identical to cold ones.

Imports of the experiment-harness modules are deliberately lazy (inside the
handlers): the experiment modules themselves import :mod:`repro.campaign`, and
the lazy imports keep the package import graph acyclic in both directions.

Setting the :data:`PROFILE_ENV` environment variable (``REPRO_PROFILE``) to a
directory wraps every executed cell in :mod:`cProfile` and dumps one pstats
file per cell there — the ``--profile`` flag of ``python -m repro.campaign``
sets it for you.  Cache hits never execute a handler, so they leave no
profile; profile with ``--no-cache`` to capture every cell.
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from types import SimpleNamespace
from typing import Dict, Optional, Tuple

__all__ = ["execute_cell", "configure_memo_store", "PROFILE_ENV"]

#: Environment variable naming the directory cell profiles are dumped into.
PROFILE_ENV = "REPRO_PROFILE"


# -- on-disk memoization of shared sub-results --------------------------------

_MEMO_STORE = None


def configure_memo_store(directory: "str | os.PathLike | None") -> None:
    """Point this process at an on-disk sub-result memo (``None`` disables).

    The executor calls this in the parent for serial runs and through the
    worker initializer for pools, so every process of one campaign shares the
    same memo directory (by convention ``<result-cache>/memos``).  The
    in-process ``lru_cache`` layers stay in front either way; disabling only
    stops disk traffic, it never invalidates live objects.
    """
    global _MEMO_STORE
    if directory is None:
        _MEMO_STORE = None
        return
    from repro.campaign.cache import MemoStore

    _MEMO_STORE = MemoStore(directory)


def _memo_digest(kind: str, key: Tuple) -> str:
    """Content address of one sub-result: canonical JSON + version salt."""
    from repro.campaign.spec import CACHE_VERSION

    canonical = json.dumps(
        [kind, CACHE_VERSION, list(key)], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _baseline_to_dict(baseline) -> Dict[str, object]:
    return {
        "iterations": int(baseline.iterations),
        "converged": bool(baseline.converged),
        "residual_norms": [float(r) for r in baseline.residual_norms],
        "final_residual_norm": float(baseline.final_residual_norm),
        "x": [float(v) for v in baseline.x],
    }


def _baseline_from_dict(payload):
    import numpy as np

    from repro.engine import BaselineRun

    return BaselineRun(
        iterations=int(payload["iterations"]),
        converged=bool(payload["converged"]),
        residual_norms=[float(r) for r in payload["residual_norms"]],
        final_residual_norm=float(payload["final_residual_norm"]),
        x=np.asarray(payload["x"], dtype=np.float64),
    )


def _characterization_to_dict(char) -> Dict[str, object]:
    return {
        "scheme": str(char.scheme),
        "method": str(char.method),
        "mean_ratio": float(char.mean_ratio),
        "ratios": [float(r) for r in char.ratios],
        "baseline_iterations": int(char.baseline_iterations),
        "variable_ratios": {str(k): float(v) for k, v in char.variable_ratios.items()},
        "scalar_count": int(char.scalar_count),
        "overhead_bytes": float(char.overhead_bytes),
        "payload_bytes": [int(b) for b in char.payload_bytes],
    }


def _characterization_from_dict(payload):
    from repro.experiments.characterize import SchemeCharacterization

    return SchemeCharacterization(
        scheme=str(payload["scheme"]),
        method=str(payload["method"]),
        mean_ratio=float(payload["mean_ratio"]),
        ratios=[float(r) for r in payload["ratios"]],
        baseline_iterations=int(payload["baseline_iterations"]),
        variable_ratios={
            str(k): float(v) for k, v in payload["variable_ratios"].items()
        },
        scalar_count=int(payload["scalar_count"]),
        overhead_bytes=float(payload["overhead_bytes"]),
        payload_bytes=[int(b) for b in payload["payload_bytes"]],
    )


def _build_problem_and_solver(cell) -> Tuple[object, object]:
    """Construct the (problem, solver) pair one cell runs on.

    Delegates to the canonical builders in :mod:`repro.experiments.config` so
    worker-executed cells always reconstruct exactly what the in-process
    experiment path would build — the cell's fields are mapped back onto an
    :class:`~repro.experiments.config.ExperimentConfig` (the inverse of
    :func:`~repro.experiments.config.campaign_fields`).
    """
    from repro.experiments.config import (
        ExperimentConfig,
        kkt_problem,
        kkt_solver,
        method_problem,
        method_solver,
    )

    config = ExperimentConfig(
        grid_n=cell.grid_n,
        kkt_n=cell.kkt_n,
        gmres_restart=cell.gmres_restart,
        max_iter=cell.max_iter,
        seed=cell.problem_seed,
        **({"rtol": {cell.method: cell.rtol}} if cell.rtol is not None else {}),
    )
    if cell.method == "kkt":
        problem = kkt_problem(config)
        return problem, kkt_solver(config, problem)
    problem = method_problem(config, cell.method)
    return problem, method_solver(config, cell.method, problem)


def _build_scheme(cell):
    """The checkpointing scheme one cell runs under."""
    from repro.core.schemes import CheckpointingScheme

    if cell.scheme == "traditional":
        return CheckpointingScheme.traditional()
    if cell.scheme == "lossless":
        return CheckpointingScheme.lossless()
    if cell.scheme == "lossy":
        # ``adaptive`` (the paper's GMRES default) upgrades the *default*
        # fixed policy to Theorem 3; an explicitly non-default policy axis
        # wins, so a policy sweep never runs mislabeled configurations.
        policy = getattr(cell, "error_bound_policy", "fixed")
        if cell.adaptive and policy == "fixed":
            policy = "residual_adaptive"
        return CheckpointingScheme.lossy(
            cell.error_bound, compressor=cell.compressor, bound_policy=policy
        )
    raise ValueError(f"unknown scheme {cell.scheme!r}")


def _problem_key(cell) -> Tuple:
    """The part of a cell that determines its problem/solver/baseline."""
    return (
        cell.method,
        cell.grid_n,
        cell.kkt_n,
        cell.problem_seed,
        cell.rtol,
        cell.gmres_restart,
        cell.max_iter,
    )


def _scheme_key(cell) -> Tuple:
    """The part of a cell that additionally determines its characterization."""
    return _problem_key(cell) + (
        cell.scheme,
        cell.compressor,
        cell.error_bound,
        cell.adaptive,
        getattr(cell, "error_bound_policy", "fixed"),
    )


@lru_cache(maxsize=64)
def _cached_setup(
    method: str,
    grid_n: int,
    kkt_n: int,
    problem_seed: int,
    rtol: Optional[float],
    gmres_restart: int,
    max_iter: int,
):
    """Problem, solver and failure-free baseline for one configuration."""
    from repro.engine import run_failure_free

    cfg = SimpleNamespace(
        method=method,
        grid_n=grid_n,
        kkt_n=kkt_n,
        problem_seed=problem_seed,
        rtol=rtol,
        gmres_restart=gmres_restart,
        max_iter=max_iter,
    )
    problem, solver = _build_problem_and_solver(cfg)
    # The problem/solver construction is cheap; the baseline solve is the
    # expensive part worth persisting across processes and invocations.
    key = (method, grid_n, kkt_n, problem_seed, rtol, gmres_restart, max_iter)
    store = _MEMO_STORE
    digest = _memo_digest("baseline", key) if store is not None else None
    if store is not None:
        payload = store.get(digest)
        if payload is not None:
            try:
                return problem, solver, _baseline_from_dict(payload)
            except (KeyError, TypeError, ValueError):
                pass  # stale/foreign entry: recompute and overwrite below
    baseline = run_failure_free(solver, problem.b)
    if store is not None:
        store.put(digest, _baseline_to_dict(baseline))
    return problem, solver, baseline


@lru_cache(maxsize=256)
def _cached_characterization(
    method: str,
    grid_n: int,
    kkt_n: int,
    problem_seed: int,
    rtol: Optional[float],
    gmres_restart: int,
    max_iter: int,
    scheme: str,
    compressor: str,
    error_bound: float,
    adaptive: bool,
    error_bound_policy: str,
):
    """Measured pipeline-payload characterization of one scheme/config."""
    from repro.experiments.characterize import measure_scheme_ratio

    key = (
        method, grid_n, kkt_n, problem_seed, rtol, gmres_restart, max_iter,
        scheme, compressor, error_bound, adaptive, error_bound_policy,
    )
    store = _MEMO_STORE
    digest = _memo_digest("characterization", key) if store is not None else None
    if store is not None:
        payload = store.get(digest)
        if payload is not None:
            try:
                return _characterization_from_dict(payload)
            except (KeyError, TypeError, ValueError):
                pass  # stale/foreign entry: recompute and overwrite below
    problem, solver, _ = _cached_setup(
        method, grid_n, kkt_n, problem_seed, rtol, gmres_restart, max_iter
    )
    scheme_obj = _build_scheme(
        SimpleNamespace(
            scheme=scheme,
            compressor=compressor,
            error_bound=error_bound,
            adaptive=adaptive,
            error_bound_policy=error_bound_policy,
        )
    )
    char = measure_scheme_ratio(solver, problem.b, scheme_obj, method=method)
    if store is not None:
        store.put(digest, _characterization_to_dict(char))
    return char


def _setup(cell):
    return _cached_setup(*_problem_key(cell))


def _characterization(cell):
    return _cached_characterization(*_scheme_key(cell))


# -- kind handlers ------------------------------------------------------------
def _run_model(cell) -> Dict[str, object]:
    """Pure performance-model evaluation (Fig. 1): Eq. (5) at one grid point."""
    from repro.core.model import expected_overhead_fraction

    lam = cell.param("lam")
    tckp = cell.param("tckp")
    if lam is None or tckp is None:
        raise ValueError(
            "a 'model' cell needs 'lam' (failures/s) and 'tckp' (checkpoint "
            f"seconds) in params, got {cell.params!r}"
        )
    lam = float(lam)
    tckp = float(tckp)
    return {"lam": lam, "tckp": tckp, "overhead_fraction": expected_overhead_fraction(lam, tckp)}


def _run_solve(cell) -> Dict[str, object]:
    """One plain failure-free solve (Fig. 3's KKT system)."""
    problem, solver = _build_problem_and_solver(cell)
    result = solver.solve(problem.b)
    return {
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
        "relative_residual": float(result.relative_residual),
    }


def _run_characterize(cell) -> Dict[str, object]:
    """Measure one scheme's pipeline payload on representative iterates."""
    char = _characterization(cell)
    return {
        "scheme": char.scheme,
        "method": char.method,
        "mean_ratio": float(char.mean_ratio),
        "min_ratio": float(char.min_ratio),
        "ratios": [float(r) for r in char.ratios],
        "baseline_iterations": int(char.baseline_iterations),
        # Measured-payload composition: per-vector ratios plus the absolute
        # scalar/index bytes one serialized checkpoint carries.
        "variable_ratios": {
            str(k): float(v) for k, v in char.variable_ratios.items()
        },
        "scalar_count": int(char.scalar_count),
        "overhead_bytes": float(char.overhead_bytes),
        "payload_bytes": [int(b) for b in char.payload_bytes],
    }


def _run_extra_iterations(cell) -> Dict[str, object]:
    """Fig. 2 cell: random lossy restarts, count extra iterations."""
    from repro.compression.base import make_compressor
    from repro.core.extra_iterations import measure_extra_iterations

    problem, solver, _ = _setup(cell)
    compressor = make_compressor(cell.compressor, error_bound=cell.error_bound)
    trials = int(cell.param("trials", 10))
    study = measure_extra_iterations(
        solver, problem.b, compressor, trials=trials, seed=cell.seed
    )
    return {
        "baseline_iterations": int(study.baseline_iterations),
        "trials": [
            {
                "restart_iteration": int(t.restart_iteration),
                "iterations_after_restart": int(t.iterations_after_restart),
                "extra_iterations": int(t.extra_iterations),
                "compression_ratio": float(t.compression_ratio),
                "converged": bool(t.converged),
            }
            for t in study.trials
        ],
    }


def _run_trajectory(cell) -> Dict[str, object]:
    """Fig. 9 cell: residual trace with lossy restarts at given fractions."""
    from repro.compression.base import make_compressor
    from repro.experiments.fig9_jacobi_trajectories import solve_with_restarts

    problem, solver, baseline = _setup(cell)
    fractions = cell.param("restart_fractions", ())
    n = baseline.iterations
    if not fractions:
        trace = [[int(i), float(r)] for i, r in enumerate(baseline.residual_norms)]
        return {
            "baseline_iterations": int(n),
            "restart_iterations": [],
            "trace": trace,
            "total_iterations": int(n),
        }
    compressor = make_compressor(cell.compressor, error_bound=cell.error_bound)
    points = [max(1, min(n - 1, int(round(float(f) * n)))) for f in fractions]
    trace, total = solve_with_restarts(solver, problem.b, compressor, points)
    return {
        "baseline_iterations": int(n),
        "restart_iterations": [int(p) for p in points],
        "trace": [[int(i), float(r)] for i, r in trace],
        "total_iterations": int(total),
    }


def _run_ft(cell) -> Dict[str, object]:
    """One failure-injected fault-tolerant run (Figs. 8, 10 and the CLI demo).

    The checkpoint interval follows the paper's two-step methodology: the
    scheme's checkpoint cost is characterized first, then Young's formula maps
    it to the interval (unless the cell pins an explicit interval).  The
    cell's scenario coordinates (failure model x recovery levels x checkpoint
    costing x write mode x store backend) select the engine regime; the
    default prices
    checkpoints from the measured pipeline payload under the paper's
    blocking-write Poisson/PFS setup, while ``write_mode="async"`` runs the
    two-channel timeline with overlapped drains and incremental payloads.
    """
    from repro.cluster.machine import ClusterModel
    from repro.core.model import young_interval
    from repro.core.scale import paper_scale
    from repro.engine import FaultToleranceEngine, Scenario
    from repro.experiments.characterize import (
        measured_checkpoint_bytes,
        measured_scheme_timings,
        scheme_timings,
    )

    problem, solver, baseline = _setup(cell)
    scheme = _build_scheme(cell)
    char = _characterization(cell)

    scale = paper_scale(cell.num_processes)
    cluster = ClusterModel(num_processes=cell.num_processes)
    # The a-priori estimate (Young interval, reported estimated seconds) is
    # priced under the same costing the engine will charge, so the interval
    # is optimized for the cost the run actually pays.
    if cell.checkpoint_costing == "measured":
        timings = measured_scheme_timings(scheme, char, scale, cluster)
        ckpt_bytes = measured_checkpoint_bytes(
            char, scale, fallback_vectors=scheme.dynamic_vector_count(cell.method)
        )
    else:
        timings = scheme_timings(scheme, cell.method, char.mean_ratio, scale, cluster)
        uncompressed = scale.vector_bytes * scheme.dynamic_vector_count(cell.method)
        ckpt_bytes = (uncompressed, uncompressed / max(char.mean_ratio, 1e-12))
    asynchronous = cell.write_mode == "async"
    capture_seconds = drain_seconds = None
    if asynchronous:
        capture_seconds = cluster.capture_seconds(
            ckpt_bytes[0], ckpt_bytes[1], compressed=scheme.uses_compression
        )
        drain_seconds = cluster.drain_seconds(ckpt_bytes[1])
    iteration_seconds = cluster.calibrated_iteration_time(
        cell.method, baseline.iterations
    )
    interval: Optional[float] = cell.checkpoint_interval_seconds
    if interval is None:
        if cell.mtti_seconds is None:
            raise ValueError(
                "a failure-free ft cell needs an explicit checkpoint interval"
            )
        if asynchronous:
            # The solver's per-checkpoint stall is the capture plus the
            # interference the drain inflicts on overlapped compute
            # (``interference x drain`` seconds per checkpoint), so Young's
            # formula is applied to that sum — floored by the drain time,
            # since checkpointing faster than the I/O channel can flush just
            # grows the dirty-write queue without adding recovery points.
            stall = capture_seconds + cluster.async_interference * drain_seconds
            interval = max(young_interval(stall, cell.mtti_seconds), drain_seconds)
        else:
            interval = timings.young_interval(cell.mtti_seconds)

    runner = FaultToleranceEngine(
        solver,
        problem.b,
        scheme,
        cluster=cluster,
        scale=scale,
        mtti_seconds=cell.mtti_seconds,
        checkpoint_interval_seconds=interval,
        iteration_seconds=iteration_seconds,
        method=cell.method,
        baseline=baseline,
        seed=cell.seed,
        scenario=Scenario(
            failure_model=cell.failure_model,
            recovery_levels=cell.recovery_levels,
            checkpoint_costing=cell.checkpoint_costing,
            write_mode=cell.write_mode,
            store_backend=cell.store_backend,
        ),
    )
    report = runner.run()
    result_extra = {}
    if asynchronous:
        result_extra = {
            "estimated_capture_seconds": float(capture_seconds),
            "estimated_drain_seconds": float(drain_seconds),
        }
    return {
        "report": report.to_dict(),
        "overhead_fraction": float(report.overhead_fraction),
        "extra_iterations": int(report.extra_iterations),
        "mean_ratio": float(char.mean_ratio),
        "estimated_checkpoint_seconds": float(timings.checkpoint_seconds),
        "estimated_recovery_seconds": float(timings.recovery_seconds),
        **result_extra,
        "interval_seconds": float(interval),
        "iteration_seconds": float(iteration_seconds),
        "baseline_iterations": int(baseline.iterations),
        "failure_model": str(cell.failure_model),
        "recovery_levels": str(cell.recovery_levels),
        "checkpoint_costing": str(cell.checkpoint_costing),
        "write_mode": str(cell.write_mode),
        "store_backend": str(cell.store_backend),
    }


_HANDLERS = {
    "ft": _run_ft,
    "characterize": _run_characterize,
    "extra_iterations": _run_extra_iterations,
    "trajectory": _run_trajectory,
    "solve": _run_solve,
    "model": _run_model,
}


def _dump_profile(profiler: cProfile.Profile, cell) -> Path:
    """Write one cell's profile as ``<kind>-<method>-<scheme>-<hash>.pstats``.

    The cache-key prefix makes names collision-free across a grid (two cells
    differing only in, say, the seed still get distinct files); the readable
    prefix makes ``pstats.Stats`` sessions navigable without a lookup table.
    """
    root = Path(os.environ[PROFILE_ENV])
    root.mkdir(parents=True, exist_ok=True)
    parts = [cell.kind, cell.method or "none", cell.scheme or "none"]
    path = root / f"{'-'.join(parts)}-{cell.cache_key()[:12]}.pstats"
    profiler.dump_stats(path)
    return path


def execute_cell(cell) -> Dict[str, object]:
    """Execute one campaign cell and return its JSON-safe result dictionary.

    When :data:`PROFILE_ENV` names a directory, the handler runs under
    :mod:`cProfile` and its stats are dumped there (one pstats artifact per
    executed cell) — the result dictionary is unaffected.
    """
    try:
        handler = _HANDLERS[cell.kind]
    except KeyError:
        raise ValueError(f"unknown cell kind {cell.kind!r}; known: {sorted(_HANDLERS)}")
    if os.environ.get(PROFILE_ENV):
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = handler(cell)
        finally:
            profiler.disable()
            _dump_profile(profiler, cell)
    else:
        result = handler(cell)
    if not isinstance(result, dict):  # pragma: no cover - handler contract
        raise TypeError(f"handler for {cell.kind!r} returned {type(result)!r}")
    return result
