"""Content-addressed on-disk caches for campaign execution.

:class:`ResultCache` stores finished cell results: each cell's
:meth:`~repro.campaign.spec.RunSpec.cache_key` (a SHA-256 over the canonical
JSON of the spec plus an engine version salt) names one JSON file in the cache
directory holding ``{"spec": ..., "result": ...}``.  Re-running a campaign
therefore only executes cells whose spec changed; everything else is served
from disk.

:class:`MemoStore` stores the expensive *sub-results* many cells share — the
failure-free baseline of one solver configuration and the payload
characterization of one scheme (see :mod:`repro.campaign.execute`).  Unlike
cell results these are keyed by an explicit content digest rather than a
:class:`~repro.campaign.spec.RunSpec`, because one memo serves cells whose
specs differ in every other axis (seed, scale, failure model, ...).

Both stores write through a temporary file and ``os.replace`` so that
concurrent campaigns (or a crash mid-write) never leave a torn entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.campaign.spec import RunSpec

__all__ = ["ResultCache", "MemoStore"]


class ResultCache:
    """A directory of ``<cache_key>.json`` cell results."""

    def __init__(self, directory: "str | os.PathLike") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, cell: RunSpec) -> Path:
        return self.directory / f"{cell.cache_key()}.json"

    def get(self, cell: RunSpec) -> Optional[Dict[str, object]]:
        """The cached result for ``cell``, or ``None`` on a miss.

        A corrupt entry (torn write from a killed process, manual edit) is
        treated as a miss and removed so the cell simply re-executes.
        """
        path = self._path(cell)
        try:
            payload = json.loads(path.read_text())
            return payload["result"]
        except OSError:
            # Missing file or a transient I/O error: a miss, but the entry
            # (if any) may be perfectly valid — leave it alone.
            return None
        except (json.JSONDecodeError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, cell: RunSpec, result: Dict[str, object]) -> None:
        """Store ``result`` for ``cell`` atomically."""
        path = self._path(cell)
        payload = json.dumps(
            {"spec": cell.to_dict(), "result": result}, sort_keys=True
        )
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, cell: RunSpec) -> bool:
        return self._path(cell).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def keys(self) -> Iterator[str]:
        """Cache keys currently stored."""
        for path in sorted(self.directory.glob("*.json")):
            yield path.stem

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class MemoStore:
    """A directory of ``<digest>.json`` memos for shared sub-results.

    Keys are caller-computed content digests (hex strings); values are
    JSON-safe dictionaries.  The float fields round-trip bit-exactly —
    Python's JSON encoder emits ``repr``-faithful doubles — so a baseline
    trajectory restored from a memo is numerically indistinguishable from a
    freshly computed one, which is what keeps memo-served campaign cells
    byte-identical to cold ones.
    """

    def __init__(self, directory: "str | os.PathLike") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The memoized payload for ``key``, or ``None`` on a miss.

        A corrupt entry (torn write from a killed process, manual edit) is
        treated as a miss and removed so the sub-result simply recomputes.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except OSError:
            return None
        except json.JSONDecodeError:
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(payload, dict):
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return payload

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Store ``payload`` under ``key`` atomically."""
        path = self._path(key)
        text = json.dumps(payload, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
