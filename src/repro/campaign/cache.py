"""Content-addressed on-disk cache of campaign cell results.

Each cell's :meth:`~repro.campaign.spec.RunSpec.cache_key` (a SHA-256 over the
canonical JSON of the spec plus an engine version salt) names one JSON file in
the cache directory holding ``{"spec": ..., "result": ...}``.  Re-running a
campaign therefore only executes cells whose spec changed; everything else is
served from disk.  Writes go through a temporary file and ``os.replace`` so
that concurrent campaigns (or a crash mid-write) never leave a torn entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.campaign.spec import RunSpec

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of ``<cache_key>.json`` cell results."""

    def __init__(self, directory: "str | os.PathLike") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, cell: RunSpec) -> Path:
        return self.directory / f"{cell.cache_key()}.json"

    def get(self, cell: RunSpec) -> Optional[Dict[str, object]]:
        """The cached result for ``cell``, or ``None`` on a miss.

        A corrupt entry (torn write from a killed process, manual edit) is
        treated as a miss and removed so the cell simply re-executes.
        """
        path = self._path(cell)
        try:
            payload = json.loads(path.read_text())
            return payload["result"]
        except OSError:
            # Missing file or a transient I/O error: a miss, but the entry
            # (if any) may be perfectly valid — leave it alone.
            return None
        except (json.JSONDecodeError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, cell: RunSpec, result: Dict[str, object]) -> None:
        """Store ``result`` for ``cell`` atomically."""
        path = self._path(cell)
        payload = json.dumps(
            {"spec": cell.to_dict(), "result": result}, sort_keys=True
        )
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, cell: RunSpec) -> bool:
        return self._path(cell).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def keys(self) -> Iterator[str]:
        """Cache keys currently stored."""
        for path in sorted(self.directory.glob("*.json")):
            yield path.stem

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
