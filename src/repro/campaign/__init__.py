"""Parallel experiment-campaign engine with content-addressed result caching.

The campaign layer is the single API every multi-configuration experiment in
this repository plugs into:

* :class:`~repro.campaign.spec.CampaignSpec` declares a grid of {scheme x
  compressor x error bound x interval x MTTI x scale x repetition} cells and
  expands it into independent, fully self-seeded
  :class:`~repro.campaign.spec.RunSpec` cells;
* :class:`~repro.campaign.executor.ParallelExecutor` fans the cells out over
  a ``ProcessPoolExecutor`` (with a deterministic in-process serial path for
  ``n_workers=1``) — results are identical regardless of worker count;
* :class:`~repro.campaign.cache.ResultCache` stores each cell's JSON result
  content-addressed by the hash of its spec, so re-running a campaign only
  executes new cells;
* :class:`~repro.campaign.report.CampaignReport` aggregates the outcomes into
  tables and deterministic JSON summaries.

``python -m repro.campaign`` exposes presets and JSON specs on the command
line; the ``repro.experiments.fig*`` modules express each paper figure as a
campaign plus a thin post-processing step.
"""

from repro.campaign.cache import ResultCache
from repro.campaign.execute import execute_cell
from repro.campaign.executor import (
    CampaignResult,
    CellOutcome,
    ParallelExecutor,
    run_campaign,
)
from repro.campaign.report import CampaignReport
from repro.campaign.spec import CampaignSpec, RunSpec

__all__ = [
    "CampaignSpec",
    "RunSpec",
    "ResultCache",
    "ParallelExecutor",
    "CampaignResult",
    "CellOutcome",
    "CampaignReport",
    "run_campaign",
    "execute_cell",
]
