"""Compression-quality metrics and a one-call compressor evaluation helper.

Used by the Table 3 experiment (per-process checkpoint sizes under
traditional / lossless / lossy checkpointing) and by the compressor ablation
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import Compressor

__all__ = [
    "compression_ratio",
    "max_abs_error",
    "max_pointwise_relative_error",
    "value_range_relative_error",
    "psnr",
    "evaluate_compressor",
    "CompressorEvaluation",
]


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """Ratio of original to compressed size (larger is better)."""
    if original_bytes < 0 or compressed_bytes < 0:
        raise ValueError("byte counts must be non-negative")
    if compressed_bytes == 0:
        return float("inf")
    return original_bytes / compressed_bytes


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest absolute per-element deviation."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError("arrays must have the same shape")
    if original.size == 0:
        return 0.0
    return float(np.max(np.abs(original - reconstructed)))


def max_pointwise_relative_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest ``|x - x'| / |x|`` over elements with ``x != 0``.

    Elements that are exactly zero in the original must be reconstructed as
    zero; any deviation there is reported as ``inf``.
    """
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError("arrays must have the same shape")
    diff = np.abs(original - reconstructed)
    nonzero = original != 0.0
    worst = 0.0
    if np.any(nonzero):
        worst = float(np.max(diff[nonzero] / np.abs(original[nonzero])))
    if np.any(~nonzero) and np.any(diff[~nonzero] > 0.0):
        return float("inf")
    return worst


def value_range_relative_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest absolute deviation normalised by the original's value range."""
    original = np.asarray(original, dtype=np.float64)
    if original.size == 0:
        return 0.0
    value_range = float(np.max(original) - np.min(original))
    abs_err = max_abs_error(original, reconstructed)
    if value_range == 0.0:
        return 0.0 if abs_err == 0.0 else float("inf")
    return abs_err / value_range


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (infinite for exact reconstruction)."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError("arrays must have the same shape")
    mse = float(np.mean((original - reconstructed) ** 2)) if original.size else 0.0
    if mse == 0.0:
        return float("inf")
    peak = float(np.max(original) - np.min(original))
    if peak == 0.0:
        peak = float(np.max(np.abs(original))) or 1.0
    return 20.0 * np.log10(peak) - 10.0 * np.log10(mse)


@dataclass
class CompressorEvaluation:
    """Summary of one compressor applied to one array."""

    compressor: str
    original_bytes: int
    compressed_bytes: int
    ratio: float
    max_abs_error: float
    max_pointwise_relative_error: float
    psnr_db: float
    compress_seconds: float
    decompress_seconds: float


def evaluate_compressor(compressor: Compressor, data: np.ndarray) -> CompressorEvaluation:
    """Round-trip ``data`` through ``compressor`` and report size/error/timing."""
    compressor.reset_records()
    blob = compressor.compress(data)
    reconstructed = compressor.decompress(blob)
    return CompressorEvaluation(
        compressor=compressor.name,
        original_bytes=int(np.asarray(data).nbytes),
        compressed_bytes=blob.nbytes,
        ratio=blob.compression_ratio,
        max_abs_error=max_abs_error(data, reconstructed),
        max_pointwise_relative_error=max_pointwise_relative_error(data, reconstructed),
        psnr_db=psnr(data, reconstructed),
        compress_seconds=compressor.mean_seconds("compress"),
        decompress_seconds=compressor.mean_seconds("decompress"),
    )
