"""Error-bound specifications and selection policies for lossy compression.

The paper controls distortion with *relative* error bounds: for the CG and
Jacobi experiments ``|x_i - x'_i| <= eb * |x_i|`` with ``eb = 1e-4``
(pointwise relative), and for GMRES an adaptive bound
``eb = O(||r^(t)|| / ||b||)`` (Theorem 3).  SZ and ZFP additionally support
absolute and value-range-relative bounds.  :class:`ErrorBound` captures all
three modes and knows how to resolve itself against a concrete array.

:class:`ErrorBoundPolicy` generalizes *how the bound is chosen* at checkpoint
time.  The paper treats this per method (fixed ``1e-4`` for Jacobi/CG, the
Theorem-3 residual-adaptive bound for GMRES); the policy protocol makes the
choice a first-class, pluggable object on the checkpointing scheme so any
solver can be paired with any policy — including a per-variable policy that
resolves a different bound for each checkpointed variable of one payload.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

__all__ = [
    "ErrorBoundMode",
    "ErrorBound",
    "ErrorBoundPolicy",
    "FixedBoundPolicy",
    "ValueRangeBoundPolicy",
    "ResidualAdaptiveBoundPolicy",
    "PerVariableBoundPolicy",
    "BOUND_POLICIES",
    "make_bound_policy",
    "available_bound_policies",
]


class ErrorBoundMode(str, enum.Enum):
    """How the scalar bound value is interpreted against the data."""

    #: ``|x - x'| <= value`` for every element.
    ABSOLUTE = "abs"
    #: ``|x - x'| <= value * (max(x) - min(x))`` for every element.
    VALUE_RANGE_RELATIVE = "rel"
    #: ``|x - x'| <= value * |x|`` for every element (the paper's setting).
    POINTWISE_RELATIVE = "pw_rel"


@dataclass(frozen=True)
class ErrorBound:
    """A (mode, value) pair describing the allowed per-element distortion."""

    mode: ErrorBoundMode
    value: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", ErrorBoundMode(self.mode))
        value = float(self.value)
        if not np.isfinite(value) or value <= 0.0:
            raise ValueError(f"error-bound value must be positive and finite, got {value}")
        object.__setattr__(self, "value", value)

    # -- constructors ------------------------------------------------------
    @classmethod
    def absolute(cls, value: float) -> "ErrorBound":
        """Absolute bound: every element may move by at most ``value``."""
        return cls(ErrorBoundMode.ABSOLUTE, value)

    @classmethod
    def value_range_relative(cls, value: float) -> "ErrorBound":
        """Bound relative to the data's value range (SZ's ``REL`` mode)."""
        return cls(ErrorBoundMode.VALUE_RANGE_RELATIVE, value)

    @classmethod
    def pointwise_relative(cls, value: float) -> "ErrorBound":
        """Pointwise relative bound (the paper's ``eb``)."""
        return cls(ErrorBoundMode.POINTWISE_RELATIVE, value)

    # -- resolution --------------------------------------------------------
    def absolute_for(self, data: np.ndarray) -> float:
        """Resolve to a single absolute bound for ``data``.

        For the pointwise-relative mode this returns the *tightest* absolute
        bound (``value * min|x|`` over nonzero entries), which is what a
        compressor without native pointwise support must use to stay correct.
        """
        data = np.asarray(data, dtype=np.float64)
        if self.mode is ErrorBoundMode.ABSOLUTE:
            return self.value
        if self.mode is ErrorBoundMode.VALUE_RANGE_RELATIVE:
            if data.size == 0:
                return self.value
            value_range = float(np.max(data) - np.min(data))
            if value_range == 0.0:
                # Constant data: any positive bound preserves it exactly.
                return self.value * max(abs(float(data.flat[0])), 1.0)
            return self.value * value_range
        # POINTWISE_RELATIVE
        if data.size == 0:
            return self.value
        magnitudes = np.abs(data[data != 0.0])
        if magnitudes.size == 0:
            return self.value
        return self.value * float(np.min(magnitudes))

    def per_element(self, data: np.ndarray) -> np.ndarray:
        """Resolve to a per-element absolute tolerance array for ``data``."""
        data = np.asarray(data, dtype=np.float64)
        if self.mode is ErrorBoundMode.POINTWISE_RELATIVE:
            return self.value * np.abs(data)
        return np.full(data.shape, self.absolute_for(data), dtype=np.float64)

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return f"{self.mode.value}={self.value:g}"


class ErrorBoundPolicy(abc.ABC):
    """How a checkpoint chooses the error bound for one compressed variable.

    ``resolve`` is called once per lossily-compressed variable of a
    checkpoint; returning ``None`` means "keep the compressor's configured
    bound" (e.g. a residual-adaptive policy asked to compress before any
    residual information exists).  Policies are small immutable value objects
    so they can ride on (hashable, cache-key-friendly) scheme descriptions.
    """

    #: Registry name; subclasses override (used as a campaign-grid axis).
    name: str = "abstract"

    @abc.abstractmethod
    def resolve(
        self,
        *,
        variable: str = "x",
        residual_norm: Optional[float] = None,
        b_norm: Optional[float] = None,
    ) -> Optional[ErrorBound]:
        """The bound for ``variable`` given the current solver state."""

    def describe(self) -> str:
        """Human-readable description used in scheme/report summaries."""
        return self.name


@dataclass(frozen=True)
class FixedBoundPolicy(ErrorBoundPolicy):
    """The paper's Jacobi/CG setting: one fixed bound for every checkpoint."""

    bound: ErrorBound = field(
        default_factory=lambda: ErrorBound.pointwise_relative(1e-4)
    )
    name = "fixed"

    def __post_init__(self) -> None:
        if not isinstance(self.bound, ErrorBound):
            object.__setattr__(
                self, "bound", ErrorBound.pointwise_relative(float(self.bound))
            )

    def resolve(self, *, variable="x", residual_norm=None, b_norm=None):
        return self.bound

    def describe(self) -> str:
        return f"fixed({self.bound.describe()})"


@dataclass(frozen=True)
class ValueRangeBoundPolicy(ErrorBoundPolicy):
    """SZ's ``REL`` mode: bound relative to each variable's value range."""

    value: float = 1e-4
    name = "value_range"

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", float(self.value))

    def resolve(self, *, variable="x", residual_norm=None, b_norm=None):
        return ErrorBound.value_range_relative(self.value)

    def describe(self) -> str:
        return f"value_range({self.value:g})"


@dataclass(frozen=True)
class ResidualAdaptiveBoundPolicy(ErrorBoundPolicy):
    """Theorem 3's residual-adaptive bound ``eb = safety * ||r|| / ||b||``.

    The clip keeps the bound inside what error-bounded compressors handle
    robustly; the lower clip matters late in the run when the residual sits
    at the convergence threshold.  Without residual information the policy
    abstains (returns ``None``) so the compressor's configured default bound
    applies — matching the paper's use of the fixed bound for the very first
    characterization checkpoints.
    """

    safety_factor: float = 1.0
    min_bound: float = 1e-12
    max_bound: float = 1e-1
    name = "residual_adaptive"

    def bound_value(self, residual_norm: float, b_norm: float) -> float:
        """The scalar pointwise-relative bound for the current residual."""
        if residual_norm < 0:
            raise ValueError(f"residual_norm must be >= 0, got {residual_norm}")
        if b_norm <= 0:
            raise ValueError(f"b_norm must be > 0, got {b_norm}")
        if self.safety_factor <= 0:
            raise ValueError(f"safety_factor must be > 0, got {self.safety_factor}")
        raw = self.safety_factor * residual_norm / b_norm
        # Scalar clamp without np.clip: this runs once per checkpoint on the
        # snapshot hot path and the ufunc dispatch costs more than the math.
        return min(max(float(raw), self.min_bound), self.max_bound)

    def error_bound(self, residual_norm: float, b_norm: float) -> ErrorBound:
        """Same as :meth:`bound_value` but wrapped as an :class:`ErrorBound`."""
        return ErrorBound.pointwise_relative(self.bound_value(residual_norm, b_norm))

    def resolve(self, *, variable="x", residual_norm=None, b_norm=None):
        if residual_norm is None or b_norm is None:
            return None
        return self.error_bound(residual_norm, b_norm)

    def describe(self) -> str:
        return f"residual_adaptive(safety={self.safety_factor:g})"


@dataclass(frozen=True)
class PerVariableBoundPolicy(ErrorBoundPolicy):
    """Dispatch to a different policy per checkpointed variable.

    ``policies`` maps variable names to policies; unlisted variables fall
    back to ``default`` (or abstain when ``default`` is ``None``, keeping the
    compressor's configured bound).  This is the generalization the paper's
    per-method treatment hints at: one payload can compress ``x`` under the
    Theorem-3 adaptive bound while pinning any other lossily-stored variable
    to its own fixed bound.
    """

    policies: Mapping[str, ErrorBoundPolicy] = field(default_factory=dict)
    default: Optional[ErrorBoundPolicy] = None
    name = "per_variable"

    def __post_init__(self) -> None:
        # Freeze the mapping so the dataclass stays hashable in spirit even
        # though dicts are not (policies are never mutated after creation).
        object.__setattr__(self, "policies", dict(self.policies))

    def resolve(self, *, variable="x", residual_norm=None, b_norm=None):
        policy = self.policies.get(variable, self.default)
        if policy is None:
            return None
        return policy.resolve(
            variable=variable, residual_norm=residual_norm, b_norm=b_norm
        )

    def describe(self) -> str:
        inner = ", ".join(
            f"{name}={policy.describe()}" for name, policy in sorted(self.policies.items())
        )
        tail = f", default={self.default.describe()}" if self.default else ""
        return f"per_variable({inner}{tail})"


#: Policy names accepted as a campaign-grid axis.  ``per_variable`` is
#: deliberately excluded: a grid cell cannot carry the per-name mapping, so
#: it is constructed programmatically instead.
BOUND_POLICIES = ("fixed", "value_range", "residual_adaptive")

_POLICY_FACTORIES: Dict[str, Callable[..., ErrorBoundPolicy]] = {
    "fixed": lambda error_bound=1e-4, **_: FixedBoundPolicy(
        error_bound
        if isinstance(error_bound, ErrorBound)
        else ErrorBound.pointwise_relative(float(error_bound))
    ),
    "value_range": lambda error_bound=1e-4, **_: ValueRangeBoundPolicy(
        float(error_bound)
    ),
    "residual_adaptive": lambda safety_factor=1.0, **_: ResidualAdaptiveBoundPolicy(
        safety_factor=float(safety_factor)
    ),
}


def make_bound_policy(name: str, **kwargs) -> ErrorBoundPolicy:
    """Instantiate a registered error-bound policy by name.

    ``error_bound`` parameterizes the fixed/value-range policies;
    ``safety_factor`` the residual-adaptive one.  Unknown keyword arguments
    are ignored so one call site can pass the full cell configuration.
    """
    try:
        factory = _POLICY_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown error-bound policy {name!r}; known: {sorted(_POLICY_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def available_bound_policies() -> List[str]:
    """Names of all registered error-bound policies."""
    return sorted(_POLICY_FACTORIES)
