"""Error-bound specifications for lossy compression.

The paper controls distortion with *relative* error bounds: for the CG and
Jacobi experiments ``|x_i - x'_i| <= eb * |x_i|`` with ``eb = 1e-4``
(pointwise relative), and for GMRES an adaptive bound
``eb = O(||r^(t)|| / ||b||)`` (Theorem 3).  SZ and ZFP additionally support
absolute and value-range-relative bounds.  :class:`ErrorBound` captures all
three modes and knows how to resolve itself against a concrete array.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["ErrorBoundMode", "ErrorBound"]


class ErrorBoundMode(str, enum.Enum):
    """How the scalar bound value is interpreted against the data."""

    #: ``|x - x'| <= value`` for every element.
    ABSOLUTE = "abs"
    #: ``|x - x'| <= value * (max(x) - min(x))`` for every element.
    VALUE_RANGE_RELATIVE = "rel"
    #: ``|x - x'| <= value * |x|`` for every element (the paper's setting).
    POINTWISE_RELATIVE = "pw_rel"


@dataclass(frozen=True)
class ErrorBound:
    """A (mode, value) pair describing the allowed per-element distortion."""

    mode: ErrorBoundMode
    value: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", ErrorBoundMode(self.mode))
        value = float(self.value)
        if not np.isfinite(value) or value <= 0.0:
            raise ValueError(f"error-bound value must be positive and finite, got {value}")
        object.__setattr__(self, "value", value)

    # -- constructors ------------------------------------------------------
    @classmethod
    def absolute(cls, value: float) -> "ErrorBound":
        """Absolute bound: every element may move by at most ``value``."""
        return cls(ErrorBoundMode.ABSOLUTE, value)

    @classmethod
    def value_range_relative(cls, value: float) -> "ErrorBound":
        """Bound relative to the data's value range (SZ's ``REL`` mode)."""
        return cls(ErrorBoundMode.VALUE_RANGE_RELATIVE, value)

    @classmethod
    def pointwise_relative(cls, value: float) -> "ErrorBound":
        """Pointwise relative bound (the paper's ``eb``)."""
        return cls(ErrorBoundMode.POINTWISE_RELATIVE, value)

    # -- resolution --------------------------------------------------------
    def absolute_for(self, data: np.ndarray) -> float:
        """Resolve to a single absolute bound for ``data``.

        For the pointwise-relative mode this returns the *tightest* absolute
        bound (``value * min|x|`` over nonzero entries), which is what a
        compressor without native pointwise support must use to stay correct.
        """
        data = np.asarray(data, dtype=np.float64)
        if self.mode is ErrorBoundMode.ABSOLUTE:
            return self.value
        if self.mode is ErrorBoundMode.VALUE_RANGE_RELATIVE:
            if data.size == 0:
                return self.value
            value_range = float(np.max(data) - np.min(data))
            if value_range == 0.0:
                # Constant data: any positive bound preserves it exactly.
                return self.value * max(abs(float(data.flat[0])), 1.0)
            return self.value * value_range
        # POINTWISE_RELATIVE
        if data.size == 0:
            return self.value
        magnitudes = np.abs(data[data != 0.0])
        if magnitudes.size == 0:
            return self.value
        return self.value * float(np.min(magnitudes))

    def per_element(self, data: np.ndarray) -> np.ndarray:
        """Resolve to a per-element absolute tolerance array for ``data``."""
        data = np.asarray(data, dtype=np.float64)
        if self.mode is ErrorBoundMode.POINTWISE_RELATIVE:
            return self.value * np.abs(data)
        return np.full(data.shape, self.absolute_for(data), dtype=np.float64)

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return f"{self.mode.value}={self.value:g}"
