"""Low-level integer/byte encoders shared by the lossy compressors.

These helpers implement the bit-level plumbing:

* zigzag mapping (signed -> unsigned so small magnitudes get small codes),
* fixed-width bit packing at one global minimum width for the whole stream,
* a simple frame format for concatenating heterogeneous sections.

The zigzag and section helpers remain the building blocks of the versioned
block codec (:mod:`repro.compression.codec`).  :func:`pack_unsigned` /
:func:`unpack_unsigned` are the *legacy* (format version 0) whole-stream
encoder: one global bit width means a single outlier code inflates every
element, which is why new payloads use the codec's per-block widths plus
escape channel instead.  They are kept so pre-codec checkpoints decode.

Everything is vectorised NumPy (no per-element Python loops) following the
HPC-Python guidance used for this project.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

__all__ = [
    "zigzag_encode",
    "zigzag_decode",
    "pack_unsigned",
    "unpack_unsigned",
    "pack_sections",
    "unpack_sections",
]

_HEADER = struct.Struct("<QI")  # element count, bit width


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned so small |v| become small codes."""
    values = np.asarray(values, dtype=np.int64)
    out = values << 1
    out ^= values >> 63
    return out.view(np.uint64)


def zigzag_decode(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    codes = np.asarray(codes, dtype=np.uint64)
    out = (codes >> np.uint64(1)).view(np.int64)
    out ^= -(codes & np.uint64(1)).view(np.int64)
    return out


def _bit_width(max_value: int) -> int:
    if max_value <= 0:
        return 1
    return int(max_value).bit_length()


def pack_unsigned(codes: np.ndarray) -> bytes:
    """Pack unsigned integers at the minimal fixed bit width.

    The result starts with an 12-byte header (count, bit width) followed by
    the packed little-endian bit stream.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    count = codes.size
    if count == 0:
        return _HEADER.pack(0, 1)
    width = _bit_width(int(codes.max()))
    header = _HEADER.pack(count, width)
    # Expand each code into `width` bits (LSB first), then pack to bytes.
    bit_matrix = (
        (codes[:, None] >> np.arange(width, dtype=np.uint64)[None, :]) & np.uint64(1)
    ).astype(np.uint8)
    bits = bit_matrix.reshape(-1)
    packed = np.packbits(bits, bitorder="little")
    return header + packed.tobytes()


def unpack_unsigned(buffer: bytes) -> Tuple[np.ndarray, int]:
    """Inverse of :func:`pack_unsigned`; returns (codes, bytes consumed)."""
    count, width = _HEADER.unpack_from(buffer, 0)
    if count == 0:
        return np.empty(0, dtype=np.uint64), _HEADER.size
    total_bits = count * width
    nbytes = (total_bits + 7) // 8
    raw = np.frombuffer(buffer, dtype=np.uint8, count=nbytes, offset=_HEADER.size)
    bits = np.unpackbits(raw, bitorder="little")[:total_bits]
    bit_matrix = bits.reshape(count, width).astype(np.uint64)
    codes = (bit_matrix << np.arange(width, dtype=np.uint64)[None, :]).sum(
        axis=1, dtype=np.uint64
    )
    return codes, _HEADER.size + nbytes


_SECTION_HEADER = struct.Struct("<I")


def pack_sections(sections: List[bytes]) -> bytes:
    """Concatenate length-prefixed byte sections into one frame."""
    parts = [_SECTION_HEADER.pack(len(sections))]
    for section in sections:
        parts.append(_SECTION_HEADER.pack(len(section)))
        parts.append(section)
    return b"".join(parts)


def unpack_sections(frame: bytes) -> List[bytes]:
    """Inverse of :func:`pack_sections`."""
    (count,) = _SECTION_HEADER.unpack_from(frame, 0)
    offset = _SECTION_HEADER.size
    sections: List[bytes] = []
    for _ in range(count):
        (length,) = _SECTION_HEADER.unpack_from(frame, offset)
        offset += _SECTION_HEADER.size
        sections.append(frame[offset:offset + length])
        offset += length
    return sections
