"""Lossless compressors — the paper's "lossless checkpointing" baseline.

The paper uses Gzip; both Gzip and SZ's own lossless back end are DEFLATE
based, so :class:`ZlibCompressor` is the faithful stand-in.  An LZMA variant
is included as a stronger/slower lossless point for the ablation benchmarks.
Both reproduce the input bit-for-bit.

Since payload format v2 the encoders run the byte-shuffle filter
(:func:`~repro.compression.filters.byte_shuffle`) and ship each byte plane
through the sharded, entropy-gated frame of
:mod:`repro.compression.sharded`: near-constant exponent planes DEFLATE to
almost nothing while incompressible mantissa planes skip the codec
entirely — better ratio *and* several times the encode speed of the seed's
single ``zlib.compress(level=6)`` over the interleaved buffer.  Blobs
stamp ``format_version: 2`` plus the plane count in ``meta["shuffle"]``;
v1 blobs (no ``format_version`` key — one bare DEFLATE/LZMA stream over the
raw buffer) still decode through the retained legacy paths.
"""

from __future__ import annotations

import lzma
import zlib
from typing import Optional

import numpy as np

from repro.compression.base import CompressedBlob, Compressor, register_compressor
from repro.compression.filters import assemble_planes, byte_shuffle
from repro.compression.sharded import (
    SHARDED_FORMAT_VERSION,
    compress_sections,
    decompress_sections,
)

__all__ = ["ZlibCompressor", "LzmaCompressor"]


class _ShuffledShardedCompressor(Compressor):
    """Shared v2 encode/decode: byte-shuffle, then one sharded frame.

    Subclasses pick the shard codec (``deflate``/``lzma``) and its effort
    level; ``threads`` overrides the shard worker count for this instance
    (``None`` defers to ``REPRO_COMPRESS_THREADS``/CPU count at call time).
    """

    _codec = "deflate"

    def __init__(self, *, threads: Optional[int] = None) -> None:
        super().__init__()
        self.threads = None if threads is None else max(1, int(threads))

    def _codec_level(self) -> int:
        raise NotImplementedError

    def _compress_array(self, data: np.ndarray) -> CompressedBlob:
        planes = byte_shuffle(data)
        payload = compress_sections(
            list(planes),
            codec=self._codec,
            level=self._codec_level(),
            threads=self.threads,
        )
        return CompressedBlob(
            payload=payload,
            shape=tuple(data.shape),
            dtype=np.dtype(data.dtype).str,
            compressor=self.name,
            meta=self._meta() | {
                "format_version": SHARDED_FORMAT_VERSION,
                "shuffle": int(planes.shape[0]),
            },
        )

    def _meta(self) -> dict:
        return {}

    def _decompress_array(self, blob: CompressedBlob) -> np.ndarray:
        if blob.format_version >= SHARDED_FORMAT_VERSION:
            planes = decompress_sections(blob.payload)
            return assemble_planes(planes, blob.dtype, blob.shape)
        return self._legacy_decompress(blob)

    def _legacy_decompress(self, blob: CompressedBlob) -> np.ndarray:
        raise NotImplementedError


class ZlibCompressor(_ShuffledShardedCompressor):
    """DEFLATE (zlib/gzip-family) lossless compressor.

    The default level is 2 since payload format v2: after the byte shuffle
    the shards DEFLATE actually codes are either near-constant (where level
    2 already finds the runs) or semi-random (where level 6's deeper match
    search buys <1% for 3-4x the time — measured 365us vs 29us on a
    low-entropy solver plane).  Pass ``level=`` explicitly to trade speed
    for the last few hundred bytes.
    """

    name = "zlib"
    lossless = True
    _codec = "deflate"

    def __init__(self, level: int = 2, *, threads: Optional[int] = None) -> None:
        super().__init__(threads=threads)
        level = int(level)
        if not (0 <= level <= 9):
            raise ValueError(f"level must be in [0, 9], got {level}")
        self.level = level

    def _codec_level(self) -> int:
        return self.level

    def _meta(self) -> dict:
        return {"level": self.level}

    def _legacy_decompress(self, blob: CompressedBlob) -> np.ndarray:
        # v1: one DEFLATE stream over the interleaved buffer.
        raw = zlib.decompress(blob.payload)
        flat = np.frombuffer(raw, dtype=np.dtype(blob.dtype)).copy()
        return flat.reshape(blob.shape)


class LzmaCompressor(_ShuffledShardedCompressor):
    """LZMA (xz) lossless compressor — slower, usually higher ratio than zlib."""

    name = "lzma"
    lossless = True
    _codec = "lzma"

    def __init__(self, preset: int = 1, *, threads: Optional[int] = None) -> None:
        super().__init__(threads=threads)
        preset = int(preset)
        if not (0 <= preset <= 9):
            raise ValueError(f"preset must be in [0, 9], got {preset}")
        self.preset = preset

    def _codec_level(self) -> int:
        return self.preset

    def _meta(self) -> dict:
        return {"preset": self.preset}

    def _legacy_decompress(self, blob: CompressedBlob) -> np.ndarray:
        # v1: one LZMA stream over the interleaved buffer.
        raw = lzma.decompress(blob.payload)
        flat = np.frombuffer(raw, dtype=np.dtype(blob.dtype)).copy()
        return flat.reshape(blob.shape)


register_compressor("zlib", ZlibCompressor)
register_compressor("gzip", ZlibCompressor)
register_compressor("lzma", LzmaCompressor)
