"""Lossless compressors — the paper's "lossless checkpointing" baseline.

The paper uses Gzip; both Gzip and SZ's own lossless back end are DEFLATE
based, so :class:`ZlibCompressor` is the faithful stand-in.  An LZMA variant
is included as a stronger/slower lossless point for the ablation benchmarks.
Both reproduce the input bit-for-bit.
"""

from __future__ import annotations

import lzma
import zlib

import numpy as np

from repro.compression.base import CompressedBlob, Compressor, register_compressor

__all__ = ["ZlibCompressor", "LzmaCompressor"]


class ZlibCompressor(Compressor):
    """DEFLATE (zlib/gzip-family) lossless compressor."""

    name = "zlib"
    lossless = True

    def __init__(self, level: int = 6) -> None:
        super().__init__()
        level = int(level)
        if not (0 <= level <= 9):
            raise ValueError(f"level must be in [0, 9], got {level}")
        self.level = level

    def _compress_array(self, data: np.ndarray) -> CompressedBlob:
        contiguous = np.ascontiguousarray(data)
        payload = zlib.compress(contiguous.tobytes(), self.level)
        return CompressedBlob(
            payload=payload,
            shape=tuple(data.shape),
            dtype=np.dtype(data.dtype).str,
            compressor=self.name,
            meta={"level": self.level},
        )

    def _decompress_array(self, blob: CompressedBlob) -> np.ndarray:
        raw = zlib.decompress(blob.payload)
        flat = np.frombuffer(raw, dtype=np.dtype(blob.dtype)).copy()
        return flat.reshape(blob.shape)


class LzmaCompressor(Compressor):
    """LZMA (xz) lossless compressor — slower, usually higher ratio than zlib."""

    name = "lzma"
    lossless = True

    def __init__(self, preset: int = 1) -> None:
        super().__init__()
        preset = int(preset)
        if not (0 <= preset <= 9):
            raise ValueError(f"preset must be in [0, 9], got {preset}")
        self.preset = preset

    def _compress_array(self, data: np.ndarray) -> CompressedBlob:
        contiguous = np.ascontiguousarray(data)
        payload = lzma.compress(contiguous.tobytes(), preset=self.preset)
        return CompressedBlob(
            payload=payload,
            shape=tuple(data.shape),
            dtype=np.dtype(data.dtype).str,
            compressor=self.name,
            meta={"preset": self.preset},
        )

    def _decompress_array(self, blob: CompressedBlob) -> np.ndarray:
        raw = lzma.decompress(blob.payload)
        flat = np.frombuffer(raw, dtype=np.dtype(blob.dtype)).copy()
        return flat.reshape(blob.shape)


register_compressor("zlib", ZlibCompressor)
register_compressor("gzip", ZlibCompressor)
register_compressor("lzma", LzmaCompressor)
