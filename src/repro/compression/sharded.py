"""Sharded, entropy-gated compression frames (payload format v2, ``RSF2``).

One frame transports an ordered list of byte *sections* (byte planes, code
planes, masks, headers — the producer fixes their meaning, exactly like the
v1 ``RBCF`` frame).  Each section is split into fixed :data:`SHARD_SIZE`
shards and every shard is stored under the cheapest of three methods:

* **zero** — the shard is all zero bytes; it costs 0 payload bytes,
* **raw** — the shard's histogram entropy meets
  :data:`~repro.compression.filters.ENTROPY_GATE_BITS` (or the codec failed
  to shrink it); stored verbatim,
* **deflate** / **lzma** — the shard compressed by the frame's codec.

Shard compression fans out over a ``ThreadPoolExecutor`` — ``zlib`` and
``lzma`` release the GIL — but the framing is *deterministic by
construction*: method selection is a pure per-shard function, shard payloads
are concatenated in (section, shard index) order, and the header is derived
only from sizes, so the frame bytes are bit-identical for any worker count
(``tests/compression/test_sharded.py`` pins 1, 2 and 8 threads).  The
thread count resolves from the constructor/call argument, then the
``REPRO_COMPRESS_THREADS`` environment variable, then the CPU count;
campaign worker processes pin it to 1 so shard threads never oversubscribe
the process pool.

Frame layout (all little-endian; normative spec in
``docs/payload-format.md``):

```
magic "RSF2" | u16 version=2 | u8 codec | u8 level | u32 shard_size | u32 n_sections
per section:  u64 orig_len | u32 n_shards
per shard:    u8 method | u32 stored_len        (sections in order)
shard payloads, concatenated in (section, shard) order
```
"""

from __future__ import annotations

import lzma
import os
import struct
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.compression.filters import ENTROPY_GATE_BITS, plane_entropy

__all__ = [
    "SHARDED_FORMAT_VERSION",
    "SHARD_SIZE",
    "ShardedFormatError",
    "resolve_threads",
    "compress_sections",
    "decompress_sections",
]

#: Stamped into ``CompressedBlob.meta["format_version"]`` by compressors
#: that write RSF2 frames; v1 (block codec) and v0 (legacy) blobs keep
#: decoding through the retained paths.
SHARDED_FORMAT_VERSION = 2

#: Fixed shard size.  Large enough that per-shard overhead (5 bytes + one
#: DEFLATE stream header) is noise, small enough that multi-megabyte
#: sections fan out across threads.
SHARD_SIZE = 1 << 20

_MAGIC = b"RSF2"
_HEADER = struct.Struct("<4sHBBII")
_SECTION = struct.Struct("<QI")
_SHARD = struct.Struct("<BI")

_METHOD_ZERO = 0
_METHOD_RAW = 1
_METHOD_CODED = 2

#: Below this shard size the entropy estimate costs more than simply trying
#: the codec and falling back to raw when it fails to shrink the shard.
_ENTROPY_MIN_BYTES = 4096

_CODEC_DEFLATE = 2
_CODEC_LZMA = 3
_CODECS = {"deflate": _CODEC_DEFLATE, "lzma": _CODEC_LZMA}


class ShardedFormatError(ValueError):
    """A payload violates the RSF2 frame format."""


_CPU_DEFAULT = max(1, min(8, os.cpu_count() or 1))


def resolve_threads(threads: Optional[int] = None) -> int:
    """Shard-compression worker count for one call.

    Explicit argument first, then ``REPRO_COMPRESS_THREADS``, then the CPU
    count (capped at 8 — shard compression saturates memory bandwidth well
    before that).  Always at least 1.
    """
    if threads is not None:
        return max(1, int(threads))
    env = os.environ.get("REPRO_COMPRESS_THREADS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return _CPU_DEFAULT


def _compress_shard(codec: int, level: int, data) -> bytes:
    if codec == _CODEC_DEFLATE:
        return zlib.compress(data, level)
    return lzma.compress(data, preset=level)


def _decompress_shard(codec: int, data) -> bytes:
    if codec == _CODEC_DEFLATE:
        return zlib.decompress(data)
    return lzma.decompress(data)


def compress_sections(
    sections: Sequence,
    *,
    codec: str = "deflate",
    level: int = 6,
    threads: Optional[int] = None,
    gate: bool = True,
) -> bytes:
    """Pack byte sections into one RSF2 frame (bit-identical for any
    ``threads``).

    ``sections`` holds contiguous byte buffers (``bytes``, ``memoryview`` or
    uint8-viewable arrays).  With ``gate`` enabled, shards whose sampled
    entropy reaches the gate threshold skip the codec and ship raw.
    """
    try:
        codec_id = _CODECS[codec]
    except KeyError:
        raise ValueError(f"codec must be one of {sorted(_CODECS)}, got {codec!r}")
    views: List[np.ndarray] = [
        np.frombuffer(section, dtype=np.uint8) for section in sections
    ]
    shard_size = SHARD_SIZE

    # Deterministic per-shard method selection; codec jobs collected for the
    # (optional) thread fan-out, keyed by their flat position in the frame.
    flat_methods: List[int] = []  # method per shard, (section, shard) order
    flat_shards: List[np.ndarray] = []  # shard view per shard, same order
    section_shards: List[int] = []  # shard count per section
    jobs: List[int] = []  # flat positions of CODED shards
    for view in views:
        n_shards = max(1, -(-view.size // shard_size))
        section_shards.append(n_shards)
        shards = (
            [view]
            if n_shards == 1
            else [
                view[start:start + shard_size]
                for start in range(0, view.size, shard_size)
            ]
        )
        for shard in shards:
            flat_shards.append(shard)
            if not shard.any():
                flat_methods.append(_METHOD_ZERO)
            elif (
                gate
                and shard.size >= _ENTROPY_MIN_BYTES
                and plane_entropy(shard) >= ENTROPY_GATE_BITS
            ):
                flat_methods.append(_METHOD_RAW)
            else:
                jobs.append(len(flat_methods))
                flat_methods.append(_METHOD_CODED)

    worker_count = min(resolve_threads(threads), len(jobs))
    if worker_count > 1:
        with ThreadPoolExecutor(max_workers=worker_count) as pool:
            results = list(
                pool.map(
                    lambda position: _compress_shard(
                        codec_id, level, flat_shards[position]
                    ),
                    jobs,
                )
            )
    else:
        results = [
            _compress_shard(codec_id, level, flat_shards[position])
            for position in jobs
        ]
    stored: List = [b""] * len(flat_methods)
    body_size = 0
    for position, payload in zip(jobs, results):
        if len(payload) >= flat_shards[position].size:
            # Incompressible after all: ship raw.
            flat_methods[position] = _METHOD_RAW
        else:
            stored[position] = payload
            body_size += len(payload)
    for position, method in enumerate(flat_methods):
        if method == _METHOD_RAW:
            shard = flat_shards[position]
            stored[position] = memoryview(shard)
            body_size += shard.size

    # Assemble: header sizes are known up front, so the frame is built into
    # one preallocated buffer with a single pass and no intermediate joins.
    header_size = (
        _HEADER.size + _SECTION.size * len(views) + _SHARD.size * len(flat_methods)
    )
    out = bytearray(header_size + body_size)
    _HEADER.pack_into(
        out, 0, _MAGIC, SHARDED_FORMAT_VERSION, codec_id, level,
        shard_size, len(views),
    )
    pos = _HEADER.size
    for view, n_shards in zip(views, section_shards):
        _SECTION.pack_into(out, pos, view.size, n_shards)
        pos += _SECTION.size
    body_pos = header_size
    for method, payload in zip(flat_methods, stored):
        length = len(payload)
        _SHARD.pack_into(out, pos, method, length)
        pos += _SHARD.size
        if length:
            out[body_pos:body_pos + length] = payload
            body_pos += length
    return bytes(out)


def decompress_sections(payload) -> List[np.ndarray]:
    """Inverse of :func:`compress_sections`: writable uint8 section buffers."""
    payload = memoryview(payload)
    if len(payload) < _HEADER.size:
        raise ShardedFormatError("sharded frame shorter than its header")
    magic, version, codec_id, _level, shard_size, n_sections = _HEADER.unpack_from(
        payload, 0
    )
    if magic != _MAGIC:
        raise ShardedFormatError(f"bad sharded frame magic {magic!r}")
    if version != SHARDED_FORMAT_VERSION:
        raise ShardedFormatError(f"unsupported sharded frame version {version}")
    if codec_id not in (_CODEC_DEFLATE, _CODEC_LZMA):
        raise ShardedFormatError(f"unknown shard codec id {codec_id}")
    if shard_size <= 0:
        raise ShardedFormatError("sharded frame declares zero shard size")
    pos = _HEADER.size
    section_table = []
    for _ in range(n_sections):
        if pos + _SECTION.size > len(payload):
            raise ShardedFormatError("truncated sharded frame section table")
        orig_len, n_shards = _SECTION.unpack_from(payload, pos)
        pos += _SECTION.size
        section_table.append((orig_len, n_shards))
    shard_table = []
    for orig_len, n_shards in section_table:
        shards = []
        for _ in range(n_shards):
            if pos + _SHARD.size > len(payload):
                raise ShardedFormatError("truncated sharded frame shard table")
            shards.append(_SHARD.unpack_from(payload, pos))
            pos += _SHARD.size
        shard_table.append(shards)

    sections: List[np.ndarray] = []
    for (orig_len, _n_shards), shards in zip(section_table, shard_table):
        out = np.empty(orig_len, dtype=np.uint8)
        write_pos = 0
        for method, stored_len in shards:
            shard_len = min(shard_size, orig_len - write_pos) if orig_len else 0
            if method == _METHOD_ZERO:
                out[write_pos:write_pos + shard_len] = 0
            elif method == _METHOD_RAW:
                if stored_len != shard_len or pos + stored_len > len(payload):
                    raise ShardedFormatError("corrupt raw shard length")
                out[write_pos:write_pos + shard_len] = np.frombuffer(
                    payload[pos:pos + stored_len], dtype=np.uint8
                )
                pos += stored_len
            elif method == _METHOD_CODED:
                if pos + stored_len > len(payload):
                    raise ShardedFormatError("truncated coded shard")
                inflated = _decompress_shard(codec_id, payload[pos:pos + stored_len])
                if len(inflated) != shard_len:
                    raise ShardedFormatError("coded shard inflates to wrong length")
                out[write_pos:write_pos + shard_len] = np.frombuffer(
                    inflated, dtype=np.uint8
                )
                pos += stored_len
            else:
                raise ShardedFormatError(f"unknown shard method {method}")
            write_pos += shard_len
        if write_pos != orig_len:
            raise ShardedFormatError("sharded section does not cover its length")
        sections.append(out)
    if pos != len(payload):
        raise ShardedFormatError("trailing bytes after the final shard")
    return sections
