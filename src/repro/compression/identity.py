"""Identity (no-compression) codec — the paper's "traditional checkpointing".

The checkpoint manager always goes through a :class:`Compressor`, so the
baseline scheme is simply a codec that stores the raw little-endian bytes of
the array.  Keeping it behind the same interface lets every experiment treat
traditional, lossless and lossy checkpointing identically.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedBlob, Compressor, register_compressor

__all__ = ["IdentityCompressor"]


class IdentityCompressor(Compressor):
    """Stores arrays verbatim (compression ratio exactly 1)."""

    name = "none"
    lossless = True

    def _compress_array(self, data: np.ndarray) -> CompressedBlob:
        contiguous = np.ascontiguousarray(data)
        return CompressedBlob(
            payload=contiguous.tobytes(),
            shape=tuple(data.shape),
            dtype=np.dtype(data.dtype).str,
            compressor=self.name,
        )

    def _decompress_array(self, blob: CompressedBlob) -> np.ndarray:
        flat = np.frombuffer(blob.payload, dtype=np.dtype(blob.dtype)).copy()
        return flat.reshape(blob.shape)


register_compressor("none", IdentityCompressor)
register_compressor("identity", IdentityCompressor)
