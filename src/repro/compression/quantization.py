"""Error-bounded linear-scaling quantization.

This is the numerical core shared by the SZ-like and ZFP-like compressors:
map floating-point values onto an integer grid of spacing ``2 * bound`` so
that reconstruction is guaranteed to stay within ``bound`` of the original,
then let the entropy stage (delta + zigzag + bit packing + DEFLATE) exploit
the smoothness of the resulting integer codes.

Quantizing onto a *global* grid (rather than quantizing prediction residuals
against previously-decompressed values, as the original SZ does) keeps the
whole pipeline vectorised — no per-element Python loop — while preserving the
error-bound guarantee and, for smooth data, essentially the same first-order
(Lorenzo) prediction gains: the delta of grid codes *is* the quantized Lorenzo
residual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["quantize_absolute", "dequantize_absolute", "QuantizationOverflow"]

#: Largest admissible |code| before we refuse to quantize (guards int64 overflow).
_MAX_CODE = np.int64(2**62)


class QuantizationOverflow(RuntimeError):
    """Raised when the requested bound is too tight for integer quantization.

    Callers (the compressors) catch this and fall back to storing the block
    losslessly, so the user-visible error bound is still honoured.
    """


@dataclass(frozen=True)
class QuantizedArray:
    """Integer codes plus the grid spacing needed to reconstruct the data."""

    codes: np.ndarray
    quantum: float


def quantize_absolute(
    values: np.ndarray, bound: float, *, checked: bool = True
) -> QuantizedArray:
    """Quantize ``values`` so reconstruction error is at most ``bound``.

    Parameters
    ----------
    values:
        1-D float array (finite values only).
    bound:
        Positive absolute error bound.
    checked:
        Pass ``False`` to skip the finiteness scan when the caller already
        guarantees it (e.g. values produced by a transform that validated
        its own input); the scan is a full pass over the data.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {values.shape}")
    if not np.isfinite(bound) or bound <= 0:
        raise ValueError(f"bound must be positive and finite, got {bound}")
    if checked and values.size and not np.all(np.isfinite(values)):
        raise ValueError("cannot quantize non-finite values")
    quantum = 2.0 * bound
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    # Check representability on scalars first so no overflow warning is raised
    # for pathological bounds; the compressors catch this and fall back to
    # lossless storage.
    if max_abs > 0 and max_abs >= float(_MAX_CODE) * quantum:
        raise QuantizationOverflow(
            f"error bound {bound:g} is too tight relative to data magnitude "
            f"{max_abs:g} for 63-bit integer codes"
        )
    codes = np.rint(values / quantum).astype(np.int64)
    # Rounding in the division can land on the wrong grid neighbour for
    # large-magnitude values (the quotient is off by an ulp), pushing the
    # reconstruction error past the bound.  Nudge offending codes one grid
    # step toward the value; the remaining error is then the irreducible
    # half-ulp of the reconstruction product itself.
    if codes.size:
        error = values - codes.astype(np.float64) * quantum
        bad = np.abs(error) > bound
        if np.any(bad):
            step = np.where(error > 0, 1, -1).astype(np.int64)
            codes = np.where(bad, codes + step, codes)
    return QuantizedArray(codes=codes, quantum=quantum)


def dequantize_absolute(quantized: QuantizedArray) -> np.ndarray:
    """Reconstruct the float values from :func:`quantize_absolute` output."""
    return quantized.codes.astype(np.float64) * quantized.quantum


def quantization_error(values: np.ndarray, quantized: QuantizedArray) -> Tuple[float, float]:
    """Return (max, mean) absolute reconstruction error — used by tests."""
    recon = dequantize_absolute(quantized)
    err = np.abs(np.asarray(values, dtype=np.float64) - recon)
    if err.size == 0:
        return 0.0, 0.0
    return float(np.max(err)), float(np.mean(err))
