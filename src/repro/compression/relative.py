"""Pointwise-relative error bounds via the logarithmic transform.

The paper's experiments bound the distortion *pointwise relative to each
element*: ``|x_i - x'_i| <= eb * |x_i|``.  A quantizer with a single absolute
step cannot honour that directly (small-magnitude elements would be
over-perturbed), so — exactly like SZ's ``PW_REL`` mode — we compress
``log|x|`` under an absolute bound of ``log(1 + eb)`` and keep the signs and
the exact-zero positions separately.  If the reconstructed logarithm ``y'``
satisfies ``|y' - y| <= log(1 + eb)`` then ``x' = sign(x) * exp(y')`` satisfies
``x' / x`` within ``[1/(1+eb), 1+eb]``, hence ``|x' - x| <= eb * |x|``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PointwiseRelativeTransform", "pw_rel_sections", "reconstruct_from_masks"]

#: Relative safety margin absorbing exp/log round-off so the user-visible
#: bound is honoured exactly even after the transcendental round trip.
_SAFETY = 1e-9


@dataclass
class PointwiseRelativeTransform:
    """Forward/backward log transform for pointwise-relative compression.

    Attributes
    ----------
    log_values:
        ``log|x|`` for the nonzero elements, in original order.
    negative_mask:
        Boolean mask (over all elements) of strictly negative values.
    zero_mask:
        Boolean mask (over all elements) of exact zeros.
    log_bound:
        The absolute bound to use when compressing ``log_values``.
    """

    log_values: np.ndarray
    negative_mask: np.ndarray
    zero_mask: np.ndarray
    log_bound: float

    @classmethod
    def forward(cls, values: np.ndarray, eb: float) -> "PointwiseRelativeTransform":
        """Build the transform of ``values`` for pointwise relative bound ``eb``."""
        values = np.ascontiguousarray(values, dtype=np.float64)
        if not np.isfinite(eb) or eb <= 0:
            raise ValueError(f"eb must be positive and finite, got {eb}")
        if values.size and not np.all(np.isfinite(values)):
            raise ValueError("cannot transform non-finite values")
        zero_mask = values == 0.0
        negative_mask = values < 0.0
        nonzero = values[~zero_mask]
        log_values = np.log(np.abs(nonzero))
        log_bound = float(np.log1p(eb) * (1.0 - _SAFETY))
        return cls(
            log_values=log_values,
            negative_mask=negative_mask,
            zero_mask=zero_mask,
            log_bound=log_bound,
        )

    def backward(self, reconstructed_log: np.ndarray) -> np.ndarray:
        """Invert the transform given the (lossily) reconstructed logarithms."""
        reconstructed_log = np.asarray(reconstructed_log, dtype=np.float64)
        if reconstructed_log.shape != self.log_values.shape:
            raise ValueError(
                "reconstructed log array has wrong shape "
                f"{reconstructed_log.shape}, expected {self.log_values.shape}"
            )
        result = np.zeros(self.zero_mask.shape, dtype=np.float64)
        magnitudes = np.exp(reconstructed_log)
        result[~self.zero_mask] = magnitudes
        signs = np.where(self.negative_mask, -1.0, 1.0)
        return result * signs


def pw_rel_sections(
    transform: "PointwiseRelativeTransform", inner_sections, size: int
) -> list:
    """Assemble the pointwise-relative frame sections shared by SZ and ZFP:
    element count, the encoded log-value sections, then the packed sign and
    zero masks.  :func:`reconstruct_from_masks` is the decode counterpart.
    """
    sections = [np.asarray([size], dtype=np.int64).tobytes()]
    sections.extend(inner_sections)
    sections.append(np.packbits(transform.negative_mask.astype(np.uint8)).tobytes())
    sections.append(np.packbits(transform.zero_mask.astype(np.uint8)).tobytes())
    return sections


def reconstruct_from_masks(
    log_recon: np.ndarray, neg_section: bytes, zero_section: bytes, count: int
) -> np.ndarray:
    """Rebuild the full array from reconstructed logs plus packed masks.

    The decode-side counterpart of serializing a transform's masks with
    ``np.packbits``; shared by the SZ-like and ZFP-like decoders.
    """
    negative_mask = np.unpackbits(
        np.frombuffer(neg_section, dtype=np.uint8), count=count
    ).astype(bool)
    zero_mask = np.unpackbits(
        np.frombuffer(zero_section, dtype=np.uint8), count=count
    ).astype(bool)
    transform = PointwiseRelativeTransform(
        log_values=np.empty(int((~zero_mask).sum()), dtype=np.float64),
        negative_mask=negative_mask,
        zero_mask=zero_mask,
        log_bound=0.0,
    )
    return transform.backward(log_recon)
