"""Error-bounded lossy and lossless compressors for checkpoint payloads.

This subpackage stands in for the SZ, ZFP and Gzip compressors the paper
plugs into its checkpointing pipeline (see DESIGN.md for the substitution
table).  All compressors implement the same :class:`~repro.compression.base.Compressor`
interface so the checkpointing layer and the experiment harness can treat
"traditional" (identity), "lossless" (DEFLATE/LZMA) and "lossy" (SZ-like,
ZFP-like) checkpointing uniformly.

The lossy compressors guarantee their error bounds: for every element of the
decompressed array, the deviation from the original respects the requested
absolute / value-range-relative / pointwise-relative bound.  This guarantee is
what the paper's Theorems 2 and 3 rely on, and it is enforced by construction
and verified by the property-based tests.
"""

from repro.compression.base import (
    Compressor,
    CompressedBlob,
    CompressionRecord,
    register_compressor,
    make_compressor,
    available_compressors,
)
from repro.compression.codec import (
    FORMAT_VERSION,
    CodecFormatError,
    decode_frame,
    decode_signed,
    encode_frame,
    encode_signed,
)
from repro.compression.errorbounds import (
    BOUND_POLICIES,
    ErrorBound,
    ErrorBoundMode,
    ErrorBoundPolicy,
    FixedBoundPolicy,
    PerVariableBoundPolicy,
    ResidualAdaptiveBoundPolicy,
    ValueRangeBoundPolicy,
    available_bound_policies,
    make_bound_policy,
)
from repro.compression.identity import IdentityCompressor
from repro.compression.lossless import ZlibCompressor, LzmaCompressor
from repro.compression.sz import SZCompressor
from repro.compression.zfp import ZFPCompressor
from repro.compression.metrics import (
    compression_ratio,
    max_abs_error,
    max_pointwise_relative_error,
    value_range_relative_error,
    psnr,
    evaluate_compressor,
    CompressorEvaluation,
)

__all__ = [
    "Compressor",
    "CompressedBlob",
    "CompressionRecord",
    "register_compressor",
    "make_compressor",
    "available_compressors",
    "FORMAT_VERSION",
    "CodecFormatError",
    "encode_signed",
    "decode_signed",
    "encode_frame",
    "decode_frame",
    "ErrorBound",
    "ErrorBoundMode",
    "ErrorBoundPolicy",
    "FixedBoundPolicy",
    "ValueRangeBoundPolicy",
    "ResidualAdaptiveBoundPolicy",
    "PerVariableBoundPolicy",
    "BOUND_POLICIES",
    "make_bound_policy",
    "available_bound_policies",
    "IdentityCompressor",
    "ZlibCompressor",
    "LzmaCompressor",
    "SZCompressor",
    "ZFPCompressor",
    "compression_ratio",
    "max_abs_error",
    "max_pointwise_relative_error",
    "value_range_relative_error",
    "psnr",
    "evaluate_compressor",
    "CompressorEvaluation",
]
