"""Compressor interface, compressed-payload container and registry.

Every checkpointing scheme in the reproduction ("traditional", "lossless",
"lossy") is just a :class:`Compressor` plugged into the checkpoint manager.
The interface mirrors how the paper's pipeline uses SZ inside FTI: arrays in,
opaque bytes out, plus enough metadata to reconstruct the array and to report
compression ratios.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "CompressedBlob",
    "CompressionRecord",
    "Compressor",
    "register_compressor",
    "make_compressor",
    "available_compressors",
]


@dataclass
class CompressedBlob:
    """An opaque compressed payload plus the metadata needed to restore it.

    Attributes
    ----------
    payload:
        The compressed byte string.
    shape / dtype:
        Original array shape and dtype string (restored exactly).
    compressor:
        Name of the compressor that produced the payload.
    meta:
        Compressor-specific metadata (error bound used, codec parameters, ...).
    """

    payload: bytes
    shape: Tuple[int, ...]
    dtype: str
    compressor: str
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Size of the compressed payload in bytes (metadata excluded)."""
        return len(self.payload)

    @property
    def format_version(self) -> int:
        """Payload format version (0 = legacy, pre-block-codec payloads).

        Compressors stamp ``meta["format_version"]`` when they encode with
        the versioned block codec (:mod:`repro.compression.codec`); payloads
        without the key predate it and decode through the legacy paths.
        """
        return int(self.meta.get("format_version", 0))

    @property
    def original_nbytes(self) -> int:
        """Size of the original array in bytes."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize

    @property
    def compression_ratio(self) -> float:
        """Original bytes divided by compressed bytes."""
        if self.nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.nbytes


@dataclass
class CompressionRecord:
    """Timing/size bookkeeping for one compress or decompress call."""

    operation: str
    original_bytes: int
    compressed_bytes: int
    seconds: float

    @property
    def ratio(self) -> float:
        """Compression ratio achieved by this call."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes


class Compressor(abc.ABC):
    """Abstract base class for all checkpoint compressors.

    Subclasses implement :meth:`_compress_array` / :meth:`_decompress_array`;
    the public :meth:`compress` / :meth:`decompress` wrappers add input
    validation and per-call timing records (used by the experiment harness to
    report compression throughput).
    """

    #: Registry name; subclasses override.
    name: str = "abstract"
    #: Whether decompression reproduces the input bit-for-bit.
    lossless: bool = False

    def __init__(self) -> None:
        self.records: List[CompressionRecord] = []
        #: Record of the most recent compress/decompress call on this
        #: instance.  Prefer :meth:`compress_with_record` when the instance
        #: may be shared (several managers, ``with_error_bound`` swaps):
        #: the returned record is attributed to *that* call unambiguously.
        self.last_record: Optional[CompressionRecord] = None

    # -- public API --------------------------------------------------------
    def compress(self, data: np.ndarray) -> CompressedBlob:
        """Compress ``data`` (any-dimensional float/int array) to a blob."""
        return self.compress_with_record(data)[0]

    def compress_with_record(
        self, data: np.ndarray
    ) -> Tuple[CompressedBlob, CompressionRecord]:
        """Compress ``data`` and return the blob with this call's record.

        Unlike reading ``records[-1]`` after :meth:`compress`, the returned
        record cannot be mis-attributed when the compressor instance is
        shared between callers.
        """
        arr = np.ascontiguousarray(data)
        if arr.size == 0:
            raise ValueError("cannot compress an empty array")
        start = time.perf_counter()
        blob = self._compress_array(arr)
        elapsed = time.perf_counter() - start
        record = CompressionRecord("compress", arr.nbytes, blob.nbytes, elapsed)
        self.records.append(record)
        self.last_record = record
        return blob, record

    def compress_with_reconstruction(
        self, data: np.ndarray
    ) -> Tuple[CompressedBlob, CompressionRecord, np.ndarray]:
        """Compress ``data`` and also return what decompressing it yields.

        Semantically ``compress_with_record`` followed by ``decompress``;
        lossy compressors that already hold the quantized representation in
        memory override this to derive the reconstruction without decoding
        the payload.  The returned array is bitwise identical to
        ``decompress(blob)`` either way.
        """
        blob, record = self.compress_with_record(data)
        return blob, record, self._decompress_array(blob)

    def decompress(self, blob: CompressedBlob) -> np.ndarray:
        """Reconstruct the array stored in ``blob``."""
        if blob.compressor != self.name:
            raise ValueError(
                f"blob was produced by {blob.compressor!r}, not by {self.name!r}"
            )
        start = time.perf_counter()
        arr = self._decompress_array(blob)
        elapsed = time.perf_counter() - start
        record = CompressionRecord("decompress", arr.nbytes, blob.nbytes, elapsed)
        self.records.append(record)
        self.last_record = record
        return arr

    def roundtrip(self, data: np.ndarray) -> Tuple[np.ndarray, CompressedBlob]:
        """Convenience: compress then decompress, returning both results."""
        blob = self.compress(data)
        return self.decompress(blob), blob

    # -- bookkeeping --------------------------------------------------------
    def mean_seconds(self, operation: str) -> float:
        """Mean seconds per call for ``operation`` ('compress'/'decompress')."""
        times = [r.seconds for r in self.records if r.operation == operation]
        return float(np.mean(times)) if times else 0.0

    def reset_records(self) -> None:
        """Clear accumulated timing records."""
        self.records.clear()
        self.last_record = None

    # -- subclass hooks ------------------------------------------------------
    @abc.abstractmethod
    def _compress_array(self, data: np.ndarray) -> CompressedBlob:
        """Compress a non-empty contiguous array."""

    @abc.abstractmethod
    def _decompress_array(self, blob: CompressedBlob) -> np.ndarray:
        """Reconstruct the array stored in ``blob``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Callable[..., Compressor]] = {}


def register_compressor(name: str, factory: Callable[..., Compressor]) -> None:
    """Register ``factory`` under ``name`` for :func:`make_compressor`."""
    if not name:
        raise ValueError("compressor name must be non-empty")
    _REGISTRY[name] = factory


def make_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a registered compressor by name.

    Recognised names (after the built-ins register themselves on import):
    ``"none"``/``"identity"`` (traditional checkpointing), ``"zlib"``,
    ``"lzma"`` (lossless), ``"sz"`` (prediction-based lossy), ``"zfp"``
    (transform-based lossy).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_compressors() -> List[str]:
    """Names of all registered compressors."""
    return sorted(_REGISTRY)
