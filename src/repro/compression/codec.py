"""Versioned block codec for quantization-code streams (format v1).

This module is the encoding layer shared by the SZ-like and ZFP-like
compressors and the checkpoint delta layer.  It replaces the legacy
whole-stream encoder in :mod:`repro.compression.encoding`, which packed
every code at one *global* bit width (a single outlier inflated the whole
stream) and, on the pointwise-relative paths, DEFLATEd an already-DEFLATEd
inner section.  Following real SZ (Di & Cappello, IPDPS'16; Tao et al.,
IPDPS'17) the v1 codec instead:

* packs codes in fixed-size blocks (:data:`DEFAULT_BLOCK_SIZE` codes) at each
  block's minimal bit width, so a locally rough region cannot inflate the
  rest of the stream,
* routes codes wider than a cap (:data:`DEFAULT_WIDTH_CAP` bits) through an
  *escape channel* — SZ's "unpredictable values" — storing them verbatim and
  leaving a zero in the block stream,
* applies exactly **one** entropy (DEFLATE) pass over the whole frame.

The **normative wire-format specification** lives in
``docs/payload-format.md``; the layout summary::

    frame    magic b"RBCF" + uint16 version, then one DEFLATE stream over
             length-prefixed sections (see encoding.pack_sections)
    stream   <QIIQ> header (code count, block size, width cap, escape count)
             widths   one uint8 per block (0 = all-zero block, no bits)
             bits     zigzag codes bit-packed LSB-first at the block width,
                      blocks concatenated with no padding between them
             escapes  positions (uint64 each) then raw zigzag values

Compressors stamp ``format_version`` into ``CompressedBlob.meta``; payloads
without it predate this codec and are decoded through the compressors'
legacy paths.

Backends
--------
The bit-packing hot path has three interchangeable implementations, all
producing **bitwise-identical** streams (pinned by
``tests/compression/test_codec_equivalence.py``):

``vector`` (default)
    Whole-array NumPy ``uint64`` word-lane packing: for each distinct block
    width the codes are reshaped into groups that tile exactly onto 64-bit
    words, then assembled with at most 64 shift/OR passes per width — no
    per-element work and no 8x bit-expansion.  Requires a little-endian host
    and a block size divisible by 64 (the defaults); anything else falls
    back to the bit-matrix path below.
``scalar``
    A deliberately simple pure-Python reference implementation
    (:mod:`repro.compression._codec_scalar`) that reads like the format
    specification.  Orders of magnitude slower; used as the equivalence
    oracle and as a portability fallback.
``numba``
    Optional JIT-compiled kernels (:mod:`repro.compression._codec_numba`),
    used only when numba is importable.  Selecting it without numba
    installed falls back to ``vector`` with a warning.

Select a backend globally with the ``REPRO_CODEC`` environment variable
(``vector`` | ``scalar`` | ``numba``) or per call via the ``backend``
keyword of :func:`encode_signed` / :func:`decode_signed`.

Run the codec microbenchmarks with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_codec.py -q -s

which also writes ``BENCH_codec.json`` (ratio + MB/s per workload).
"""

from __future__ import annotations

import math
import os
import struct
import sys
import warnings
import zlib
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.compression.encoding import (
    pack_sections,
    unpack_sections,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "FORMAT_VERSION",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_WIDTH_CAP",
    "CODEC_BACKEND_ENV",
    "CodecFormatError",
    "available_backends",
    "resolve_backend",
    "encode_signed",
    "decode_signed",
    "encode_frame",
    "decode_frame",
]

#: Current payload format version, stamped into ``CompressedBlob.meta``.
FORMAT_VERSION = 1

#: Codes per block; each block is packed at its own minimal bit width.
DEFAULT_BLOCK_SIZE = 1024

#: Codes needing more bits than this go through the escape channel.
DEFAULT_WIDTH_CAP = 32

#: Environment variable selecting the bit-packing backend.
CODEC_BACKEND_ENV = "REPRO_CODEC"

_BACKENDS = ("vector", "scalar", "numba")

_FRAME_MAGIC = b"RBCF"
_FRAME_HEADER = struct.Struct("<4sH")
_STREAM_HEADER = struct.Struct("<QIIQ")  # count, block size, width cap, escapes

_LITTLE_ENDIAN = sys.byteorder == "little"


class CodecFormatError(ValueError):
    """Raised when a payload is not a valid codec frame."""


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
def _numba_kernels():
    """The JIT kernel module, or ``None`` when numba is not installed."""
    try:
        from repro.compression import _codec_numba
    except ImportError:  # pragma: no cover - depends on environment
        return None
    return _codec_numba if _codec_numba.HAVE_NUMBA else None


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this environment (``numba`` only if importable)."""
    names = ["vector", "scalar"]
    if _numba_kernels() is not None:
        names.append("numba")
    return tuple(names)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend name (or ``None`` = the ``REPRO_CODEC`` default).

    Parameters
    ----------
    backend:
        ``"vector"``, ``"scalar"``, ``"numba"`` or ``None`` to read the
        :data:`CODEC_BACKEND_ENV` environment variable (default
        ``"vector"``).

    Returns
    -------
    str
        The backend that will actually run.  Requesting ``numba`` without
        numba installed warns once and returns ``"vector"`` so pipelines
        keep working on machines without the optional dependency.
    """
    if backend is None:
        backend = os.environ.get(CODEC_BACKEND_ENV, "vector") or "vector"
    backend = str(backend).lower()
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown codec backend {backend!r}; choose one of {_BACKENDS}"
        )
    if backend == "numba" and _numba_kernels() is None:
        warnings.warn(
            "REPRO_CODEC=numba requested but numba is not installed; "
            "falling back to the vector backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return "vector"
    return backend


def _bit_widths(values: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for unsigned 64-bit values."""
    values = np.asarray(values, dtype=np.uint64)
    if values.size <= 8:
        # Tiny inputs (single-digit block counts) are dominated by numpy
        # call overhead in the masked-shift scan below; ``int.bit_length``
        # is exact and ~30x faster at this size.
        return np.array([int(v).bit_length() for v in values], dtype=np.uint8)
    widths = np.zeros(values.shape, dtype=np.uint8)
    v = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        mask = v >= np.uint64(1) << np.uint64(shift)
        widths[mask] += np.uint8(shift)
        v[mask] >>= np.uint64(shift)
    widths[values > 0] += np.uint8(1)
    return widths


# ----------------------------------------------------------------------
# bit packing backends (all produce identical byte streams)
# ----------------------------------------------------------------------
def _pack_bits_matrix(
    blocks: np.ndarray, widths: np.ndarray, bit_offsets: np.ndarray, block_size: int
) -> bytes:
    """Portable packer: expand each code into bits, then ``np.packbits``.

    Works for any block size / byte order, at the cost of materialising one
    uint8 per *bit*.  Kept as the fallback for non-64-aligned block sizes
    and big-endian hosts.
    """
    bits = np.zeros(int(bit_offsets[-1]), dtype=np.uint8)
    for width in np.unique(widths):
        w = int(width)
        if w == 0:
            continue
        sel = np.flatnonzero(widths == width)
        shifts = np.arange(w, dtype=np.uint64)
        bit_matrix = (
            (blocks[sel][:, :, None] >> shifts[None, None, :]) & np.uint64(1)
        ).astype(np.uint8)
        positions = (
            bit_offsets[sel][:, None]
            + np.arange(block_size * w, dtype=np.int64)[None, :]
        )
        bits[positions.reshape(-1)] = bit_matrix.reshape(-1)
    return np.packbits(bits, bitorder="little").tobytes()


def _unpack_bits_matrix(
    buffer: bytes,
    offset: int,
    widths: np.ndarray,
    bit_offsets: np.ndarray,
    block_size: int,
    n_blocks: int,
) -> np.ndarray:
    """Inverse of :func:`_pack_bits_matrix` (portable fallback)."""
    total_bits = int(bit_offsets[-1])
    nbytes = (total_bits + 7) // 8
    raw = np.frombuffer(buffer, dtype=np.uint8, count=nbytes, offset=offset)
    bits = np.unpackbits(raw, bitorder="little")[:total_bits]
    blocks = np.zeros((n_blocks, block_size), dtype=np.uint64)
    for width in np.unique(widths):
        w = int(width)
        if w == 0:
            continue
        sel = np.flatnonzero(widths == width)
        positions = (
            bit_offsets[sel][:, None]
            + np.arange(block_size * w, dtype=np.int64)[None, :]
        )
        group = bits[positions.reshape(-1)].reshape(len(sel), block_size, w)
        shifts = np.arange(w, dtype=np.uint64)
        blocks[sel] = (group.astype(np.uint64) << shifts[None, None, :]).sum(
            axis=2, dtype=np.uint64
        )
    return blocks


def _lane_geometry(w: int) -> Tuple[int, int]:
    """``(P, W)``: ``P`` codes of width ``w`` tile exactly onto ``W`` words.

    ``P = 64 / gcd(w, 64)`` is the smallest code count whose packed length
    is a whole number of 64-bit words; every block is a multiple of ``P``
    codes when the block size is divisible by 64.
    """
    p = 64 // math.gcd(w, 64)
    return p, (w * p) // 64


def _pack_bits_vector(
    blocks: np.ndarray, widths: np.ndarray, bit_offsets: np.ndarray, block_size: int
) -> bytes:
    """Vectorised word-lane packer (block size divisible by 64, little-endian).

    For each distinct width ``w`` the codes are reshaped into rows of ``P``
    codes that fill exactly ``W`` 64-bit words (:func:`_lane_geometry`);
    all ``P`` lane positions are shifted in one broadcast pass and OR-folded
    onto their target words with ``bitwise_or.reduceat`` (plus one
    fancy-indexed OR for the lanes that straddle a word boundary).  The
    lanes are transposed up front so the passes run over contiguous
    memory — a handful of vector ops regardless of ``P``, no per-element
    Python, no bit expansion.  OR is order-independent, so the folded word
    image is bit-for-bit the same as accumulating lane by lane.  Because
    the block size is a multiple of 64, every block's bit segment is
    word-aligned and the little-endian word image equals the LSB-first bit
    stream byte-for-byte.
    """
    total_words = int(bit_offsets[-1]) >> 6
    word_offsets = bit_offsets[:-1] >> 6
    n_blocks = blocks.shape[0]
    words = None
    for width in np.unique(widths):
        w = int(width)
        if w == 0:
            continue
        sel = np.flatnonzero(widths == width)
        uniform = sel.size == n_blocks
        group = blocks if uniform else blocks[sel]
        lane_p, lane_w = _lane_geometry(w)
        # lane-major copy: cols[j] is lane j of every row, contiguous
        cols = np.ascontiguousarray(group.reshape(-1, lane_p).T)
        lane_bits = np.arange(lane_p, dtype=np.int64) * w
        shifts = (lane_bits & 63).astype(np.uint64)
        word_index = lane_bits >> 6
        low = cols << shifts[:, None]
        # Every word contains at least one lane start (w <= 64), so the
        # first lane of each word marks a reduceat segment boundary.
        starts = np.searchsorted(word_index, np.arange(lane_w, dtype=np.int64))
        out = np.bitwise_or.reduceat(low, starts, axis=0)
        straddle = np.flatnonzero((lane_bits & 63) + w > 64)
        if straddle.size:
            # At most one lane straddles out of each word: target words are
            # unique, so a fancy-indexed OR lands every carry exactly once.
            high = cols[straddle] >> (np.uint64(64) - shifts[straddle])[:, None]
            out[word_index[straddle] + 1] |= high
        packed = np.ascontiguousarray(out.T).reshape(-1)
        if uniform:
            words = packed  # block offsets are consecutive: no scatter needed
            break
        if words is None:
            words = np.zeros(total_words, dtype=np.uint64)
        words_per_block = (block_size * w) >> 6
        positions = (
            word_offsets[sel][:, None]
            + np.arange(words_per_block, dtype=np.int64)[None, :]
        )
        words[positions.reshape(-1)] = packed
    if words is None:
        words = np.zeros(total_words, dtype=np.uint64)
    return words.tobytes()


def _unpack_bits_vector(
    buffer: bytes,
    offset: int,
    widths: np.ndarray,
    bit_offsets: np.ndarray,
    block_size: int,
    n_blocks: int,
) -> np.ndarray:
    """Inverse of :func:`_pack_bits_vector` (word-lane extraction)."""
    total_bits = int(bit_offsets[-1])
    nbytes = total_bits >> 3
    raw = np.frombuffer(buffer, dtype=np.uint8, count=nbytes, offset=offset)
    words = raw.copy().view(np.uint64)  # copy() realigns the buffer slice
    word_offsets = bit_offsets[:-1] >> 6
    blocks = None
    for width in np.unique(widths):
        w = int(width)
        if w == 0:
            continue
        sel = np.flatnonzero(widths == width)
        uniform = sel.size == n_blocks
        words_per_block = (block_size * w) >> 6
        if uniform:
            group_words = words
        else:
            positions = (
                word_offsets[sel][:, None]
                + np.arange(words_per_block, dtype=np.int64)[None, :]
            )
            group_words = words[positions.reshape(-1)]
        lane_p, lane_w = _lane_geometry(w)
        rows = np.ascontiguousarray(group_words.reshape(-1, lane_w).T)
        mask = np.uint64(0xFFFFFFFFFFFFFFFF) if w == 64 else np.uint64((1 << w) - 1)
        lane_bits = np.arange(lane_p, dtype=np.int64) * w
        shifts = (lane_bits & 63).astype(np.uint64)
        word_index = lane_bits >> 6
        vals = rows[word_index] >> shifts[:, None]
        straddle = np.flatnonzero((lane_bits & 63) + w > 64)
        if straddle.size:
            vals[straddle] |= (
                rows[word_index[straddle] + 1]
                << (np.uint64(64) - shifts[straddle])[:, None]
            )
        if w < 64:
            vals &= mask
        decoded = np.ascontiguousarray(vals.T).reshape(-1, block_size)
        if uniform:
            return decoded
        if blocks is None:
            blocks = np.zeros((n_blocks, block_size), dtype=np.uint64)
        blocks[sel] = decoded
    if blocks is None:
        blocks = np.zeros((n_blocks, block_size), dtype=np.uint64)
    return blocks


def _vector_path_ok(block_size: int) -> bool:
    """Whether the word-lane fast path applies for this block size."""
    return _LITTLE_ENDIAN and block_size % 64 == 0


# ----------------------------------------------------------------------
# block stream
# ----------------------------------------------------------------------
def encode_signed(
    codes: np.ndarray,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    width_cap: int = DEFAULT_WIDTH_CAP,
    backend: Optional[str] = None,
) -> bytes:
    """Encode signed int64 codes as a v1 block stream (no entropy stage).

    Codes are zigzag-mapped, outliers wider than ``width_cap`` bits are
    diverted to the escape channel, and each ``block_size``-code block is
    bit-packed at its own minimal width.

    Parameters
    ----------
    codes:
        Signed integer codes (any shape; flattened in C order).
    block_size:
        Codes per width block, ``>= 1``; the default 1024 follows SZ.
    width_cap:
        Escape threshold in bits, in ``[1, 64]``.
    backend:
        Bit-packing implementation (``"vector"``/``"scalar"``/``"numba"``);
        ``None`` reads :data:`CODEC_BACKEND_ENV`.  All backends produce
        bitwise-identical streams.

    Returns
    -------
    bytes
        The block stream: header, per-block widths, packed bits, escapes.
    """
    backend = resolve_backend(backend)
    if backend == "scalar":
        from repro.compression import _codec_scalar

        return _codec_scalar.encode_signed_scalar(
            codes, block_size=block_size, width_cap=width_cap
        )

    codes = np.ascontiguousarray(codes, dtype=np.int64).reshape(-1)
    block_size = int(block_size)
    width_cap = int(width_cap)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if not (1 <= width_cap <= 64):
        raise ValueError(f"width_cap must be in [1, 64], got {width_cap}")

    unsigned = zigzag_encode(codes)
    count = unsigned.size
    if count == 0:
        return _STREAM_HEADER.pack(0, block_size, width_cap, 0)

    if width_cap >= 64:
        escape_positions = np.empty(0, dtype=np.uint64)
        escape_values = np.empty(0, dtype=np.uint64)
        inline = unsigned
    else:
        escape_mask = unsigned >= np.uint64(1) << np.uint64(width_cap)
        escape_positions = np.flatnonzero(escape_mask).astype(np.uint64)
        if escape_positions.size:
            escape_values = unsigned[escape_mask]
            inline = np.where(escape_mask, np.uint64(0), unsigned)
        else:
            escape_values = np.empty(0, dtype=np.uint64)
            inline = unsigned

    n_blocks = -(-count // block_size)
    if n_blocks * block_size == count:
        padded = inline
    else:
        padded = np.zeros(n_blocks * block_size, dtype=np.uint64)
        padded[:count] = inline
    blocks = padded.reshape(n_blocks, block_size)
    widths = _bit_widths(blocks.max(axis=1))
    bit_offsets = np.concatenate(
        ([0], np.cumsum(widths.astype(np.int64) * block_size))
    )

    kernels = _numba_kernels() if backend == "numba" else None
    if kernels is not None:
        packed = kernels.pack_bits(padded, widths, bit_offsets, block_size)
    elif _vector_path_ok(block_size):
        packed = _pack_bits_vector(blocks, widths, bit_offsets, block_size)
    else:
        packed = _pack_bits_matrix(blocks, widths, bit_offsets, block_size)

    return b"".join(
        [
            _STREAM_HEADER.pack(count, block_size, width_cap, escape_values.size),
            widths.tobytes(),
            packed,
            escape_positions.tobytes(),
            escape_values.tobytes(),
        ]
    )


def decode_signed(buffer: bytes, *, backend: Optional[str] = None) -> np.ndarray:
    """Inverse of :func:`encode_signed`.

    Parameters
    ----------
    buffer:
        A block stream produced by :func:`encode_signed` (any backend).
    backend:
        Bit-unpacking implementation; ``None`` reads
        :data:`CODEC_BACKEND_ENV`.

    Returns
    -------
    numpy.ndarray
        The original signed int64 code array.

    Raises
    ------
    CodecFormatError
        If the stream header or escape table is corrupt.
    """
    backend = resolve_backend(backend)
    if backend == "scalar":
        from repro.compression import _codec_scalar

        return _codec_scalar.decode_signed_scalar(buffer)

    count, block_size, width_cap, n_escapes = _STREAM_HEADER.unpack_from(buffer, 0)
    offset = _STREAM_HEADER.size
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if not (1 <= width_cap <= 64):
        raise CodecFormatError(f"corrupt block stream: width cap {width_cap}")
    if block_size < 1:
        raise CodecFormatError(f"corrupt block stream: block size {block_size}")

    n_blocks = -(-count // block_size)
    widths = np.frombuffer(buffer, dtype=np.uint8, count=n_blocks, offset=offset)
    offset += n_blocks
    bit_offsets = np.concatenate(
        ([0], np.cumsum(widths.astype(np.int64) * block_size))
    )
    total_bits = int(bit_offsets[-1])
    nbytes = (total_bits + 7) // 8

    kernels = _numba_kernels() if backend == "numba" else None
    if kernels is not None:
        blocks = kernels.unpack_bits(
            buffer, offset, widths, bit_offsets, block_size, n_blocks
        )
    elif _vector_path_ok(block_size):
        blocks = _unpack_bits_vector(
            buffer, offset, widths, bit_offsets, block_size, n_blocks
        )
    else:
        blocks = _unpack_bits_matrix(
            buffer, offset, widths, bit_offsets, block_size, n_blocks
        )
    offset += nbytes

    unsigned = blocks.reshape(-1)[:count]
    if n_escapes:
        positions = np.frombuffer(
            buffer, dtype=np.uint64, count=n_escapes, offset=offset
        )
        offset += 8 * n_escapes
        values = np.frombuffer(buffer, dtype=np.uint64, count=n_escapes, offset=offset)
        if positions.size and int(positions.max()) >= count:
            raise CodecFormatError(
                f"corrupt block stream: escape position {int(positions.max())} "
                f">= code count {count}"
            )
        unsigned[positions.astype(np.int64)] = values
    return zigzag_decode(unsigned)


# ----------------------------------------------------------------------
# frame = versioned header + one entropy pass
# ----------------------------------------------------------------------
def encode_frame(sections: Iterable[bytes], *, level: int = 6) -> bytes:
    """Wrap byte sections in a v1 frame with a single DEFLATE pass.

    Parameters
    ----------
    sections:
        The raw sections, in order (see ``encoding.pack_sections``).
    level:
        DEFLATE effort, 0-9.

    Returns
    -------
    bytes
        ``b"RBCF"`` + version + one zlib stream over the packed sections.
    """
    body = zlib.compress(pack_sections(list(sections)), level)
    return _FRAME_HEADER.pack(_FRAME_MAGIC, FORMAT_VERSION) + body


def decode_frame(payload: bytes) -> List[bytes]:
    """Inverse of :func:`encode_frame`; returns the raw sections.

    Raises
    ------
    CodecFormatError
        On a short payload, bad magic, or an unsupported format version.
    """
    if len(payload) < _FRAME_HEADER.size:
        raise CodecFormatError("payload too short for a codec frame")
    magic, version = _FRAME_HEADER.unpack_from(payload, 0)
    if magic != _FRAME_MAGIC:
        raise CodecFormatError(f"bad codec frame magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CodecFormatError(
            f"unsupported codec format version {version} (supported: {FORMAT_VERSION})"
        )
    return unpack_sections(zlib.decompress(payload[_FRAME_HEADER.size :]))
